"""Differential testing: SparqLog vs the reference evaluator.

The strongest correctness evidence for the translation is that, on every
query the two engines both support, SparqLog's answer multiset equals the
reference evaluator's.  This module runs a broad query battery over
several datasets (the paper's running examples plus small generated
workloads) and compares results row-for-row.
"""

import pytest

from repro.baselines.native import NativeSparqlEngine
from repro.core.engine import SparqLogEngine
from repro.compliance.compare import results_equal
from repro.rdf.graph import Dataset, Graph
from repro.rdf.terms import IRI, Triple
from repro.workloads.beseppi import BeSEPPIWorkload
from repro.workloads.sp2bench import SP2BenchWorkload

from tests.helpers import EX, countries_dataset, directors_dataset

PREFIX = "PREFIX ex: <http://ex.org/>\n"

#: Queries over the running-example datasets covering every supported
#: construct of Table 1.
DIFFERENTIAL_QUERIES = [
    "SELECT ?x ?y WHERE { ?x ex:borders ?y }",
    "SELECT ?y WHERE { ex:spain ex:borders ?y }",
    "SELECT ?x WHERE { ?x ex:borders ex:germany }",
    "SELECT ?a ?c WHERE { ?a ex:borders ?b . ?b ex:borders ?c }",
    "SELECT DISTINCT ?b WHERE { ?a ex:borders ?b }",
    "SELECT ?a ?b WHERE { ?a ex:borders ?b FILTER (?a = ex:france) }",
    "SELECT ?a ?b WHERE { ?a ex:borders ?b FILTER (?a != ex:france) }",
    "SELECT ?a WHERE { ?a ex:borders ?b FILTER (BOUND(?b)) }",
    "SELECT ?x WHERE { { ex:spain ex:borders ?x } UNION { ex:france ex:borders ?x } }",
    "SELECT ?x ?y WHERE { { ?x ex:borders ex:france } UNION { ex:belgium ex:borders ?y } }",
    "SELECT ?x ?y WHERE { ?x ex:borders ?y MINUS { ?x ex:borders ex:germany } }",
    "SELECT ?x ?y ?z WHERE { ?x ex:borders ?y OPTIONAL { ?y ex:borders ?z } }",
    "SELECT ?x ?z WHERE { ?x ex:borders ?y OPTIONAL { ?y ex:borders ?z FILTER (?z = ex:austria) } }",
    "SELECT ?b WHERE { ex:spain ex:borders+ ?b }",
    "SELECT ?b WHERE { ex:spain ex:borders* ?b }",
    "SELECT ?b WHERE { ex:spain ex:borders? ?b }",
    "SELECT ?a WHERE { ?a ex:borders+ ex:austria }",
    "SELECT DISTINCT ?a ?b WHERE { ?a ex:borders+ ?b }",
    "SELECT DISTINCT ?a ?b WHERE { ?a (ex:borders|^ex:borders)+ ?b }",
    "SELECT ?a ?b WHERE { ?a ^ex:borders ?b }",
    "SELECT ?a ?b WHERE { ?a ex:borders/ex:borders ?b }",
    "SELECT ?a ?b WHERE { ?a (ex:borders|ex:borders) ?b }",
    "SELECT ?a ?b WHERE { ?a !(ex:nothing) ?b }",
    "SELECT ?a ?b WHERE { ?a ex:borders{2,3} ?b }",
    "SELECT ?b WHERE { ex:atlantis ex:borders* ?b }",
    "SELECT ?a (COUNT(?b) AS ?n) WHERE { ?a ex:borders ?b } GROUP BY ?a",
    "SELECT ?a ?b WHERE { ?a ex:borders ?b } ORDER BY ?b LIMIT 3",
    "SELECT ?a ?b WHERE { ?a ex:borders ?b } ORDER BY DESC(?a) OFFSET 2",
    "ASK WHERE { ex:spain ex:borders ex:france }",
    "ASK WHERE { ex:spain ex:borders ex:austria }",
    "ASK WHERE { ?x ex:borders+ ex:spain }",
]

DIRECTOR_QUERIES = [
    "SELECT ?n ?l WHERE { ?x ex:name ?n OPTIONAL { ?x ex:lastname ?l } }",
    'SELECT ?n WHERE { ?x ex:name ?n FILTER (REGEX(?n, "^G")) }',
    "SELECT ?n WHERE { ?x ex:name ?n FILTER (ISLITERAL(?n)) }",
    "SELECT ?n ?l WHERE { ?x ex:name ?n . ?x ex:lastname ?l }",
    "SELECT DISTINCT ?p WHERE { ?s ?p ?o }",
    'SELECT ?n WHERE { ?x ex:name ?n FILTER (STRLEN(?n) > 5) }',
]


def _compare(dataset, query_text):
    native = NativeSparqlEngine(dataset)
    translated = SparqLogEngine(dataset, timeout_seconds=30)
    native_result = native.query(query_text)
    sparqlog_result = translated.query(query_text)
    assert results_equal(native_result, sparqlog_result), (
        f"results differ for query:\n{query_text}\n"
        f"native   : {sorted(map(str, native_result.rows())) if not isinstance(native_result, bool) else native_result}\n"
        f"sparqlog : {sorted(map(str, sparqlog_result.rows())) if not isinstance(sparqlog_result, bool) else sparqlog_result}"
    )


@pytest.mark.parametrize("query_text", DIFFERENTIAL_QUERIES)
def test_countries_differential(query_text):
    _compare(countries_dataset(), PREFIX + query_text)


@pytest.mark.parametrize("query_text", DIRECTOR_QUERIES)
def test_directors_differential(query_text):
    _compare(directors_dataset(), PREFIX + query_text)


def test_beseppi_differential_sample():
    """SparqLog matches the native engine on a sample of BeSEPPI queries."""
    workload = BeSEPPIWorkload()
    dataset = workload.dataset()
    sample = workload.queries()[::10]
    for query in sample:
        _compare(dataset, query.text)


def test_sp2bench_differential_small_scale():
    """SparqLog matches the native engine on the SP2Bench-like queries."""
    workload = SP2BenchWorkload(scale=0.04, seed=2)
    dataset = workload.dataset()
    for query in workload.queries():
        _compare(dataset, query.text)


def test_named_graph_differential():
    dataset = countries_dataset()
    dataset.add_named_graph(IRI("http://g1"), Graph([Triple(EX.a, EX.p, EX.b)]))
    queries = [
        "SELECT ?s ?o WHERE { GRAPH <http://g1> { ?s ex:p ?o } }",
        "SELECT ?g ?s WHERE { GRAPH ?g { ?s ex:p ?o } }",
        "SELECT ?s WHERE { GRAPH ?g { ?s ex:p+ ?o } }",
    ]
    for query_text in queries:
        _compare(dataset, PREFIX + query_text)
