"""Tests for the physical operator layer (:mod:`repro.sparql.physical`).

Four angles on the logical-plan → physical-DAG lowering:

* unit tests for the analysis primitives — GYO cyclicity detection and
  the leapfrog sorted-intersection kernel,
* golden ``explain()`` renderings for the canonical BGP shapes (star,
  chain, triangle, path-bearing, filtered) on both backends, pinning
  which operator the lowering picks and how the tree reads,
* behavioural tests: leapfrog-vs-binary multiset parity, eligibility
  fallbacks (variable predicates, repeated variables, too few patterns,
  term-only backends), per-operator row/probe counters, and the
  evaluator's plan-cache dead-entry purge,
* differential tests for the extended FILTER pushdown: OPTIONAL-scoped
  conditions and FILTER-over-MINUS agree with the pushdown-disabled
  baseline.
"""

from collections import Counter

import gc

import pytest

from repro.rdf.graph import Dataset, Graph
from repro.rdf.terms import Triple, Variable
from repro.sparql import physical
from repro.sparql.algebra import TriplePatternNode
from repro.sparql.evaluator import SparqlEvaluator
from repro.sparql.parser import parse_query
from repro.sparql.physical import (
    IndexNestedLoopJoin,
    LeapfrogJoin,
    LoweringOptions,
    PathExpand,
    Scan,
    _leapfrog_intersect,
    is_cyclic,
    lower_bgp,
    supports_leapfrog,
)
from repro.sparql.plan import plan_bgp
from repro.store import EncodedGraph

from tests.helpers import EX

PREFIX = "PREFIX ex: <http://ex.org/>\n"


def tp(subject, predicate, obj):
    return TriplePatternNode(Triple(subject, predicate, obj))


def _vars(*names):
    return [Variable(name) for name in names]


# ----------------------------------------------------------------------
# GYO cyclicity detection
# ----------------------------------------------------------------------
class TestIsCyclic:
    def test_triangle_is_cyclic(self):
        a, b, c = _vars("a", "b", "c")
        assert is_cyclic([{a, b}, {b, c}, {c, a}])

    def test_chain_is_acyclic(self):
        a, b, c, d = _vars("a", "b", "c", "d")
        assert not is_cyclic([{a, b}, {b, c}, {c, d}])

    def test_star_is_acyclic(self):
        s, a, b, c = _vars("s", "a", "b", "c")
        assert not is_cyclic([{s, a}, {s, b}, {s, c}])

    def test_four_cycle_is_cyclic(self):
        a, b, c, d = _vars("a", "b", "c", "d")
        assert is_cyclic([{a, b}, {b, c}, {c, d}, {d, a}])

    def test_triangle_with_pendant_ear_is_cyclic(self):
        # Ear removal strips {a, w} but the triangle core remains stuck.
        a, b, c, w = _vars("a", "b", "c", "w")
        assert is_cyclic([{a, b}, {b, c}, {c, a}, {a, w}])

    def test_subset_edge_is_absorbed(self):
        # {a, b} ⊆ {a, b, c}: GYO removes it, leaving an acyclic rest.
        a, b, c = _vars("a", "b", "c")
        assert not is_cyclic([{a, b, c}, {a, b}, {b, c}])

    def test_disconnected_edges_are_acyclic(self):
        a, b, c, d = _vars("a", "b", "c", "d")
        assert not is_cyclic([{a, b}, {c, d}])

    def test_trivial_inputs(self):
        a, b = _vars("a", "b")
        assert not is_cyclic([])
        assert not is_cyclic([{a, b}])
        assert not is_cyclic([{a, b}, {a, b}])


# ----------------------------------------------------------------------
# leapfrog sorted intersection
# ----------------------------------------------------------------------
class TestLeapfrogIntersect:
    def test_no_arrays_yields_nothing(self):
        assert list(_leapfrog_intersect([])) == []

    def test_single_array_yields_all(self):
        assert list(_leapfrog_intersect([[1, 4, 9]])) == [1, 4, 9]

    def test_empty_member_short_circuits(self):
        assert list(_leapfrog_intersect([[1, 2, 3], []])) == []

    def test_pairwise_intersection(self):
        assert list(_leapfrog_intersect([[1, 3, 5, 7], [2, 3, 6, 7]])) == [3, 7]

    def test_three_way_intersection(self):
        arrays = [[1, 2, 3, 4, 5], [2, 4, 6, 8], [4, 5, 6, 7]]
        assert list(_leapfrog_intersect(arrays)) == [4]

    def test_disjoint_arrays(self):
        assert list(_leapfrog_intersect([[1, 3], [2, 4]])) == []

    def test_identical_arrays(self):
        assert list(_leapfrog_intersect([[2, 5, 8], [2, 5, 8], [2, 5, 8]])) == [2, 5, 8]

    def test_skewed_galloping(self):
        wide = list(range(0, 10_000, 3))
        assert list(_leapfrog_intersect([wide, [9, 27, 5000, 9998]])) == [9, 27]


# ----------------------------------------------------------------------
# golden explain() renderings
# ----------------------------------------------------------------------
_TRIPLES = [
    Triple(EX.s1, EX.p, EX.a),
    Triple(EX.s1, EX.q, EX.b),
    Triple(EX.s1, EX.r, EX.c),
    Triple(EX.s2, EX.p, EX.a),
    Triple(EX.s2, EX.q, EX.b),
    Triple(EX.a, EX.p, EX.b),
    Triple(EX.b, EX.p, EX.c),
    Triple(EX.c, EX.p, EX.a),
]

_STAR = PREFIX + "SELECT * WHERE { ?s ex:p ?a . ?s ex:q ?b . ?s ex:r ?c }"
_CHAIN = PREFIX + "SELECT * WHERE { ?a ex:p ?b . ?b ex:q ?c }"
_TRIANGLE = PREFIX + "SELECT * WHERE { ?a ex:p ?b . ?b ex:p ?c . ?c ex:p ?a }"
_PATH = PREFIX + "SELECT * WHERE { ?a ex:p ?b . ?b ex:q+ ?c }"
_FILTERED_TRIANGLE = (
    PREFIX
    + "SELECT * WHERE { ?a ex:p ?b . ?b ex:p ?c . ?c ex:p ?a . FILTER(?a != ?b) }"
)

_GOLDEN = {
    ("term", _STAR): """\
Project [?a, ?b, ?c, ?s] decode=term
└─ IndexNestedLoopJoin steps=3
   ├─ Scan TP(?s <http://ex.org/r> ?c) est=1
   ├─ Scan TP(?s <http://ex.org/p> ?a) est=1
   └─ Scan TP(?s <http://ex.org/q> ?b) est=1""",
    ("term", _CHAIN): """\
Project [?a, ?b, ?c] decode=term
└─ IndexNestedLoopJoin steps=2
   ├─ Scan TP(?b <http://ex.org/q> ?c) est=2
   └─ Scan TP(?a <http://ex.org/p> ?b) est=1.66667""",
    ("term", _TRIANGLE): """\
Project [?a, ?b, ?c] decode=term
└─ IndexNestedLoopJoin steps=3
   ├─ Scan TP(?a <http://ex.org/p> ?b) est=5
   ├─ Scan TP(?b <http://ex.org/p> ?c) est=1
   └─ Scan TP(?c <http://ex.org/p> ?a) est=0.333333""",
    ("term", _PATH): """\
Project [?a, ?b, ?c] decode=term
└─ IndexNestedLoopJoin steps=2
   ├─ Scan TP(?a <http://ex.org/p> ?b) est=5
   └─ PathExpand[term] Path(?b OneOrMore(Link(http://ex.org/q)) ?c) est=1.6""",
    ("term", _FILTERED_TRIANGLE): """\
Project [?a, ?b, ?c] decode=term
└─ IndexNestedLoopJoin steps=3
   ├─ Filter (?a != ?b)
   │  └─ Scan TP(?a <http://ex.org/p> ?b) est=5
   ├─ Scan TP(?b <http://ex.org/p> ?c) est=1
   └─ Scan TP(?c <http://ex.org/p> ?a) est=0.333333""",
    ("id", _STAR): """\
Project [?a, ?b, ?c, ?s] decode=id
└─ IndexNestedLoopJoin steps=3
   ├─ Scan TP(?s <http://ex.org/r> ?c) est=1
   ├─ Scan TP(?s <http://ex.org/p> ?a) est=1
   └─ Scan TP(?s <http://ex.org/q> ?b) est=1""",
    ("id", _CHAIN): """\
Project [?a, ?b, ?c] decode=id
└─ IndexNestedLoopJoin steps=2
   ├─ Scan TP(?b <http://ex.org/q> ?c) est=2
   └─ Scan TP(?a <http://ex.org/p> ?b) est=1.66667""",
    ("id", _TRIANGLE): """\
Project [?a, ?b, ?c] decode=id
└─ LeapfrogJoin order=[?a, ?b, ?c]
   ├─ Scan TP(?a <http://ex.org/p> ?b) est=5
   ├─ Scan TP(?b <http://ex.org/p> ?c) est=1
   └─ Scan TP(?c <http://ex.org/p> ?a) est=0.333333""",
    ("id", _PATH): """\
Project [?a, ?b, ?c] decode=id
└─ IndexNestedLoopJoin steps=2
   ├─ Scan TP(?a <http://ex.org/p> ?b) est=5
   └─ PathExpand[id] Path(?b OneOrMore(Link(http://ex.org/q)) ?c) est=1.6""",
    ("id", _FILTERED_TRIANGLE): """\
Project [?a, ?b, ?c] decode=id
└─ LeapfrogJoin order=[?a, ?b, ?c] filters=[(?a != ?b)@?b]
   ├─ Scan TP(?a <http://ex.org/p> ?b) est=5
   ├─ Scan TP(?b <http://ex.org/p> ?c) est=1
   └─ Scan TP(?c <http://ex.org/p> ?a) est=0.333333""",
}


@pytest.mark.parametrize("backend", [Graph, EncodedGraph], ids=["term", "id"])
@pytest.mark.parametrize(
    "query_text",
    [_STAR, _CHAIN, _TRIANGLE, _PATH, _FILTERED_TRIANGLE],
    ids=["star", "chain", "triangle", "path", "filtered-triangle"],
)
def test_golden_explain(backend, query_text):
    evaluator = SparqlEvaluator(Dataset.from_graph(backend(_TRIPLES)))
    space = "id" if backend is EncodedGraph else "term"
    rendered = evaluator.explain(parse_query(query_text))
    assert rendered == _GOLDEN[(space, query_text)]
    assert evaluator.last_physical_plan is not None
    assert evaluator.last_physical_plan.space == space


def test_explain_rejects_unplanned_patterns():
    evaluator = SparqlEvaluator(Dataset.from_graph(Graph(_TRIPLES)))
    query = parse_query(
        PREFIX + "SELECT * WHERE { { ?s ex:p ?o } UNION { ?s ex:q ?o } }"
    )
    with pytest.raises(Exception):
        evaluator.explain(query)


# ----------------------------------------------------------------------
# operator selection and fallbacks
# ----------------------------------------------------------------------
def _triangle_patterns():
    a, b, c = _vars("a", "b", "c")
    return [tp(a, EX.p, b), tp(b, EX.p, c), tp(c, EX.p, a)]


class TestOperatorSelection:
    def test_encoded_graph_supports_leapfrog_surface(self):
        assert supports_leapfrog(EncodedGraph())
        assert not supports_leapfrog(Graph())

    def test_triangle_selects_leapfrog_on_encoded(self):
        graph = EncodedGraph(_TRIPLES)
        plan = lower_bgp(graph, _triangle_patterns())
        assert isinstance(plan.root.child, LeapfrogJoin)

    def test_triangle_stays_binary_on_term_backend(self):
        graph = Graph(_TRIPLES)
        plan = lower_bgp(graph, _triangle_patterns())
        assert isinstance(plan.root.child, IndexNestedLoopJoin)

    def test_wcoj_option_off_pins_binary_join(self):
        graph = EncodedGraph(_TRIPLES)
        plan = lower_bgp(
            graph, _triangle_patterns(), options=LoweringOptions(wcoj=False)
        )
        assert isinstance(plan.root.child, IndexNestedLoopJoin)

    def test_acyclic_bgp_stays_binary(self):
        graph = EncodedGraph(_TRIPLES)
        a, b, c = _vars("a", "b", "c")
        plan = lower_bgp(graph, [tp(a, EX.p, b), tp(b, EX.q, c)])
        assert isinstance(plan.root.child, IndexNestedLoopJoin)

    def test_variable_predicate_disqualifies_leapfrog(self):
        graph = EncodedGraph(_TRIPLES)
        a, b, c, p = _vars("a", "b", "c", "p")
        plan = lower_bgp(graph, [tp(a, p, b), tp(b, EX.p, c), tp(c, EX.p, a)])
        assert isinstance(plan.root.child, IndexNestedLoopJoin)

    def test_repeated_variable_in_pattern_disqualifies_leapfrog(self):
        graph = EncodedGraph(_TRIPLES)
        a, b, c = _vars("a", "b", "c")
        plan = lower_bgp(
            graph, [tp(a, EX.p, a), tp(a, EX.p, b), tp(b, EX.p, c), tp(c, EX.p, a)]
        )
        assert isinstance(plan.root.child, IndexNestedLoopJoin)

    def test_two_patterns_never_leapfrog(self):
        graph = EncodedGraph(_TRIPLES)
        a, b = _vars("a", "b")
        plan = lower_bgp(graph, [tp(a, EX.p, b), tp(b, EX.p, a)])
        assert isinstance(plan.root.child, IndexNestedLoopJoin)

    def test_id_execution_off_lowers_to_term_space(self):
        graph = EncodedGraph(_TRIPLES)
        plan = lower_bgp(
            graph,
            _triangle_patterns(),
            options=LoweringOptions(id_execution=False),
        )
        assert plan.space == "term"
        assert isinstance(plan.root.child, IndexNestedLoopJoin)


# ----------------------------------------------------------------------
# leapfrog-vs-binary parity and counters
# ----------------------------------------------------------------------
class TestExecution:
    def _clique(self, size=6):
        nodes = [EX[f"n{index}"] for index in range(size)]
        triples = [
            Triple(left, EX.p, right)
            for left in nodes
            for right in nodes
            if left != right
        ]
        return EncodedGraph(triples)

    def test_leapfrog_matches_binary_on_clique(self):
        graph = self._clique()
        patterns = _triangle_patterns()
        leapfrog = lower_bgp(graph, patterns)
        binary = lower_bgp(graph, patterns, options=LoweringOptions(wcoj=False))
        assert isinstance(leapfrog.root.child, LeapfrogJoin)
        assert isinstance(binary.root.child, IndexNestedLoopJoin)
        left = Counter(map(str, physical.execute(leapfrog, graph)))
        right = Counter(map(str, physical.execute(binary, graph)))
        assert left == right
        assert sum(left.values()) == 6 * 5 * 4  # ordered triangles of K6

    def test_counters_populate_after_execution(self):
        graph = self._clique(4)
        plan = lower_bgp(graph, _triangle_patterns())
        list(physical.execute(plan, graph))
        counters = plan.counters()
        assert counters[0]["operator"] == "Project"
        assert counters[0]["rows"] == 4 * 3 * 2
        by_operator = {entry["operator"] for entry in counters}
        assert "LeapfrogJoin" in by_operator
        scan_rows = [
            entry["probes"] for entry in counters if entry["operator"] == "Scan"
        ]
        assert all(probes > 0 for probes in scan_rows)
        plan.reset_stats()
        assert all(entry["rows"] == 0 for entry in plan.counters())

    def test_inlj_counters_track_probes_and_rows(self):
        graph = EncodedGraph(_TRIPLES)
        a, b = _vars("a", "b")
        plan = lower_bgp(graph, [tp(a, EX.p, b), tp(b, EX.p, a)])
        rows = list(physical.execute(plan, graph))
        counters = {entry["operator"]: entry for entry in plan.counters()}
        assert counters["Project"]["rows"] == len(rows)
        assert counters["IndexNestedLoopJoin"]["rows"] == len(rows)

    def test_term_plan_requires_path_evaluator_lazily(self):
        graph = Graph(_TRIPLES)
        query = parse_query(_PATH)
        evaluator = SparqlEvaluator(Dataset.from_graph(graph))
        evaluator.explain(query)  # rendering alone never executes
        plan = evaluator.last_physical_plan
        assert any(
            isinstance(operator, PathExpand) for operator in plan.operators()
        )
        with pytest.raises(TypeError):
            list(physical.execute(plan, graph))


# ----------------------------------------------------------------------
# plan cache hygiene
# ----------------------------------------------------------------------
def test_plan_cache_purges_dead_graph_entries():
    dataset = Dataset.from_graph(EncodedGraph(_TRIPLES))
    # use_id_paths=False keeps the path-engine cache (which holds graphs
    # strongly by design) out of the lifetime picture.
    evaluator = SparqlEvaluator(dataset, use_id_paths=False)
    query = parse_query(PREFIX + "SELECT * WHERE { ?s ex:p ?o . ?o ex:p ?t }")

    transient = EncodedGraph(_TRIPLES)
    list(
        evaluator._eval_pattern_stream(
            parse_query(
                PREFIX + "SELECT * WHERE { ?s ex:q ?o . ?o ex:p ?t }"
            ).pattern,
            transient,
            dataset,
        )
    )
    assert any(
        reference() is transient for reference, _ in evaluator._plan_cache.values()
    )
    del transient
    gc.collect()

    # The next miss sweeps every entry whose graph has been collected.
    list(evaluator.evaluate(query).rows())
    assert all(
        reference() is not None for reference, _ in evaluator._plan_cache.values()
    )
    assert len(evaluator._plan_cache) == 1


# ----------------------------------------------------------------------
# extended FILTER pushdown: OPTIONAL and MINUS
# ----------------------------------------------------------------------
_PUSHDOWN_TRIPLES = [
    Triple(EX.s1, EX.p, EX.a),
    Triple(EX.s2, EX.p, EX.b),
    Triple(EX.s3, EX.p, EX.c),
    Triple(EX.a, EX.q, EX.v1),
    Triple(EX.a, EX.q, EX.v2),
    Triple(EX.b, EX.q, EX.v2),
    Triple(EX.s1, EX.r, EX.x),
    Triple(EX.s2, EX.r, EX.v1),
]

_PUSHDOWN_QUERIES = [
    # OPTIONAL condition over the right-side variables only: pushable.
    PREFIX
    + "SELECT * WHERE { ?s ex:p ?o OPTIONAL { ?o ex:q ?v FILTER(?v != ex:v2) } }",
    # Multi-pattern OPTIONAL right side with a pushable conjunct and a
    # cross-side conjunct that must stay residual.
    PREFIX
    + "SELECT * WHERE { ?s ex:p ?o OPTIONAL { ?o ex:q ?v . ?s ex:r ?w"
    + " FILTER(?v != ex:v2 && ?w != ?o) } }",
    # FILTER scoped over a MINUS: pushes into the left-side pipeline.
    PREFIX
    + "SELECT * WHERE { ?s ex:p ?o . MINUS { ?s ex:r ?x } FILTER(?o != ex:a) }",
    # FILTER both inside the MINUS left group and over the whole group.
    PREFIX
    + "SELECT * WHERE { { ?s ex:p ?o . FILTER(isIRI(?o)) } MINUS { ?s ex:r ?x }"
    + " FILTER(?o != ex:b) }",
    # Empty filtered-left short-circuit: the right side is never needed.
    PREFIX
    + "SELECT * WHERE { ?s ex:p ?o . MINUS { ?s ex:r ?x } FILTER(?o = ex:nothing) }",
]


@pytest.mark.parametrize("backend", [Graph, EncodedGraph], ids=["term", "id"])
@pytest.mark.parametrize(
    "query_text",
    _PUSHDOWN_QUERIES,
    ids=["optional", "optional-partial", "minus", "minus-nested", "minus-empty"],
)
def test_extended_pushdown_matches_baseline(backend, query_text):
    dataset = Dataset.from_graph(backend(_PUSHDOWN_TRIPLES))
    pushdown = SparqlEvaluator(dataset)
    baseline = SparqlEvaluator(
        dataset, use_id_execution=False, use_filter_pushdown=False
    )
    query = parse_query(query_text)
    assert Counter(pushdown.evaluate(query).rows()) == Counter(
        baseline.evaluate(query).rows()
    )


def test_optional_pushdown_keeps_unmatched_left_rows():
    # ?s3's object ?c has no ex:q edge: the OPTIONAL must keep the bare
    # left row whether or not the condition was pushed into the right BGP.
    dataset = Dataset.from_graph(EncodedGraph(_PUSHDOWN_TRIPLES))
    evaluator = SparqlEvaluator(dataset)
    query = parse_query(
        PREFIX
        + "SELECT ?s ?v WHERE { ?s ex:p ?o OPTIONAL { ?o ex:q ?v"
        + " FILTER(?v != ex:v2) } }"
    )
    rows = Counter(evaluator.evaluate(query).rows())
    assert rows == Counter(
        {
            (EX.s1, EX.v1): 1,  # v2 filtered away, v1 survives
            (EX.s2, None): 1,  # only v2 matched: left row kept bare
            (EX.s3, None): 1,  # no ex:q edge at all
        }
    )


def test_minus_pushdown_streams_into_left_pipeline():
    dataset = Dataset.from_graph(EncodedGraph(_PUSHDOWN_TRIPLES))
    evaluator = SparqlEvaluator(dataset)
    query = parse_query(
        PREFIX
        + "SELECT ?s ?o WHERE { ?s ex:p ?o . MINUS { ?s ex:r ?x } FILTER(?o != ex:a) }"
    )
    rows = Counter(evaluator.evaluate(query).rows())
    # s1 filtered (o = a), s2 removed by MINUS (has ex:r), s3 survives.
    assert rows == Counter({(EX.s3, EX.c): 1})
    # The filtered BGP ran through the physical pipeline.
    assert evaluator.last_physical_plan is not None
