"""Tests for id-native BGP execution and streaming FILTER pushdown.

Three layers of assurance that the id-space pipeline
(:mod:`repro.sparql.idexec`) is a pure optimisation:

* targeted unit tests for the moving parts — filter attachment, the
  raw-id fast paths (including the one genuinely subtle case: distinct
  dictionary ids for value-equal literals), path patterns inside an
  id-native plan,
* a hypothesis differential property: random BGP + FILTER queries on
  random graphs return the identical multiset of solutions across all
  four evaluator configurations (hash / encoded backend x decoded /
  optimised pipeline),
* a workload differential: every query of all five paper workloads,
  id-native vs decoded, on the encoded backend.
"""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.rdf.graph import Dataset, Graph
from repro.rdf.terms import Literal, Triple, Variable, XSD_INTEGER
from repro.sparql.evaluator import SparqlEvaluator
from repro.sparql.profile import ExecutionProfile
from repro.sparql.expressions import (
    And,
    Comparison,
    FunctionCall,
    TermExpr,
    VariableExpr,
    conjuncts,
)
from repro.sparql.idexec import IdFilter, execute_plan_ids, supports_id_execution
from repro.sparql.parser import parse_query
from repro.sparql.plan import attach_filters, plan_bgp
from repro.sparql.solutions import Binding
from repro.store import EncodedGraph

from tests.helpers import EX

PREFIX = "PREFIX ex: <http://ex.org/>\n"


def tp(subject, predicate, obj):
    from repro.sparql.algebra import TriplePatternNode

    return TriplePatternNode(Triple(subject, predicate, obj))


def _all_configurations(graph_triples):
    """Both backends x (FULL, ID_NATIVE, BASELINE) execution profiles.

    The FULL profile may lower cyclic BGPs to the leapfrog-triejoin
    operator on the encoded backend; ID_NATIVE pins the binary
    index-nested-loop pipeline, so any divergence between the two
    isolates the WCOJ operator; BASELINE is the decoded post-filtered
    differential oracle.
    """
    configurations = []
    for backend in (Graph, EncodedGraph):
        dataset = Dataset.from_graph(backend(graph_triples))
        for profile in (
            ExecutionProfile.FULL,
            ExecutionProfile.ID_NATIVE,
            ExecutionProfile.BASELINE,
        ):
            configurations.append(SparqlEvaluator(dataset, profile=profile))
    return configurations


def _assert_all_equal(query_text, graph_triples):
    query = parse_query(query_text)
    results = [
        Counter(evaluator.evaluate(query).rows())
        for evaluator in _all_configurations(graph_triples)
    ]
    for other in results[1:]:
        assert other == results[0]
    return results[0]


# ----------------------------------------------------------------------
# filter attachment
# ----------------------------------------------------------------------
class TestAttachFilters:
    def _plan(self):
        graph = Graph([Triple(EX.s, EX.p, EX.o), Triple(EX.o, EX.q, EX.t)])
        x, y = Variable("x"), Variable("y")
        return plan_bgp(graph, [tp(EX.s, EX.p, x), tp(x, EX.q, y)]), x, y

    def test_condition_lands_after_earliest_binding_step(self):
        plan, x, y = self._plan()
        condition = Comparison("=", VariableExpr(x), TermExpr(EX.o))
        slots = attach_filters(plan, [condition])
        bound_first = plan.steps[0].node.variables()
        expected = 1 if x in bound_first else 2
        assert slots[expected] == (condition,)
        assert sum(len(slot) for slot in slots) == 1

    def test_variable_free_condition_lands_in_slot_zero(self):
        plan, _, _ = self._plan()
        condition = Comparison("=", TermExpr(EX.o), TermExpr(EX.o))
        slots = attach_filters(plan, [condition])
        assert slots[0] == (condition,)

    def test_never_bound_variable_lands_after_last_step(self):
        plan, _, _ = self._plan()
        condition = FunctionCall("BOUND", (VariableExpr(Variable("missing")),))
        slots = attach_filters(plan, [condition])
        assert slots[-1] == (condition,)

    def test_conjuncts_split_nested_and(self):
        x = VariableExpr(Variable("x"))
        a = Comparison("=", x, TermExpr(EX.o))
        b = Comparison("!=", x, TermExpr(EX.t))
        c = FunctionCall("ISIRI", (x,))
        assert conjuncts(And(And(a, b), c)) == [a, b, c]


# ----------------------------------------------------------------------
# raw-id fast paths
# ----------------------------------------------------------------------
class TestIdFilterFastPaths:
    def _graph(self):
        graph = EncodedGraph()
        graph.add(Triple(EX.a, EX.p, Literal("1", XSD_INTEGER)))
        graph.add(Triple(EX.b, EX.p, Literal("01", XSD_INTEGER)))
        graph.add(Triple(EX.c, EX.p, EX.a))
        return graph

    def test_value_equal_literals_with_distinct_ids(self):
        # "1"^^xsd:integer and "01"^^xsd:integer intern to different ids
        # but compare =-equal by value: the fast path must *not* decide
        # this case on ids and must fall back to decoding.
        graph = self._graph()
        v = Variable("v")
        condition = Comparison(
            "=", VariableExpr(v), TermExpr(Literal("01", XSD_INTEGER))
        )
        id_filter = IdFilter(condition, graph.dictionary)
        one = graph.dictionary.id_for(Literal("1", XSD_INTEGER))
        zero_one = graph.dictionary.id_for(Literal("01", XSD_INTEGER))
        assert one != zero_one
        assert id_filter.test({v: one}, graph.dictionary) is True
        assert id_filter.test({v: zero_one}, graph.dictionary) is True

    def test_sameterm_distinguishes_value_equal_literals(self):
        graph = self._graph()
        v = Variable("v")
        condition = FunctionCall(
            "SAMETERM",
            (VariableExpr(v), TermExpr(Literal("01", XSD_INTEGER))),
        )
        id_filter = IdFilter(condition, graph.dictionary)
        assert id_filter._probe is not None  # the fast path compiled
        one = graph.dictionary.id_for(Literal("1", XSD_INTEGER))
        zero_one = graph.dictionary.id_for(Literal("01", XSD_INTEGER))
        assert id_filter.test({v: zero_one}, graph.dictionary) is True
        assert id_filter.test({v: one}, graph.dictionary) is False

    def test_iri_inequality_decided_on_ids(self):
        graph = self._graph()
        v = Variable("v")
        condition = Comparison("!=", VariableExpr(v), TermExpr(EX.a))
        id_filter = IdFilter(condition, graph.dictionary)
        assert id_filter._probe is not None
        a = graph.dictionary.id_for(EX.a)
        b = graph.dictionary.id_for(EX.b)
        assert id_filter.test({v: a}, graph.dictionary) is False
        assert id_filter.test({v: b}, graph.dictionary) is True

    def test_unbound_variable_is_an_error_hence_false(self):
        graph = self._graph()
        v = Variable("v")
        for condition in (
            Comparison("=", VariableExpr(v), TermExpr(EX.a)),
            FunctionCall("SAMETERM", (VariableExpr(v), TermExpr(EX.a))),
        ):
            assert IdFilter(condition, graph.dictionary).test({}, graph.dictionary) is False

    def test_uninterned_constant_takes_the_slow_path(self):
        graph = self._graph()
        v = Variable("v")
        condition = Comparison("=", VariableExpr(v), TermExpr(EX.never_seen))
        id_filter = IdFilter(condition, graph.dictionary)
        assert id_filter._probe is None
        a = graph.dictionary.id_for(EX.a)
        assert id_filter.test({v: a}, graph.dictionary) is False


# ----------------------------------------------------------------------
# end-to-end id-native evaluation
# ----------------------------------------------------------------------
class TestIdNativeEvaluation:
    def _triples(self):
        return [
            Triple(EX.s1, EX.p, EX.o1),
            Triple(EX.s1, EX.q, Literal("1", XSD_INTEGER)),
            Triple(EX.s2, EX.p, EX.o2),
            Triple(EX.s2, EX.q, Literal("01", XSD_INTEGER)),
            Triple(EX.o1, EX.r, EX.s2),
        ]

    def test_supports_id_execution_detection(self):
        assert supports_id_execution(EncodedGraph())
        assert not supports_id_execution(Graph())

    def test_filtered_bgp_matches_across_configurations(self):
        rows = _assert_all_equal(
            PREFIX
            + "SELECT ?s ?v WHERE { ?s ex:p ?o . ?s ex:q ?v . FILTER(?v = 1) }",
            self._triples(),
        )
        assert sum(rows.values()) == 2  # both integer spellings are =-equal

    def test_sameterm_filter_matches_across_configurations(self):
        rows = _assert_all_equal(
            PREFIX
            + 'SELECT ?s WHERE { ?s ex:q ?v . FILTER(sameTerm(?v, "1"^^'
            + "<http://www.w3.org/2001/XMLSchema#integer>)) }",
            self._triples(),
        )
        assert sum(rows.values()) == 1

    def test_nested_filters_and_conjunctions_push_down(self):
        _assert_all_equal(
            PREFIX
            + "SELECT ?s ?o WHERE { ?s ex:p ?o . ?o ex:r ?t ."
            + " FILTER(?s != ?t && isIRI(?o)) FILTER(bound(?s)) }",
            self._triples(),
        )

    def test_filter_on_variable_outside_bgp_drops_all_rows(self):
        rows = _assert_all_equal(
            PREFIX + "SELECT ?s WHERE { ?s ex:p ?o . FILTER(?nope = 1) }",
            self._triples(),
        )
        assert not rows

    def test_path_pattern_inside_id_native_bgp(self):
        _assert_all_equal(
            PREFIX + "SELECT ?s ?t WHERE { ?s ex:p/ex:r ?t . ?t ex:p ?o }",
            self._triples(),
        )
        _assert_all_equal(
            PREFIX + "SELECT ?s ?t WHERE { ?s (ex:p|ex:r)+ ?t . FILTER(?t = ex:s2) }",
            self._triples(),
        )

    def test_repeated_variable_in_triple_pattern(self):
        triples = self._triples() + [Triple(EX.loop, EX.p, EX.loop)]
        rows = _assert_all_equal(
            PREFIX + "SELECT ?x WHERE { ?x ex:p ?x }", triples
        )
        assert rows == Counter({(EX.loop,): 1})

    def test_execute_plan_ids_rejects_paths_without_evaluator(self):
        from repro.sparql.algebra import PathPattern
        from repro.sparql.paths import LinkPath

        graph = EncodedGraph(self._triples())
        plan = plan_bgp(
            graph, [PathPattern(Variable("a"), LinkPath(EX.p), Variable("b"))]
        )
        # The id engine needs no term-level path evaluator at all ...
        assert len(list(execute_plan_ids(plan, graph))) == 2
        # ... but the term-level bridge still requires one.
        with pytest.raises(TypeError):
            list(execute_plan_ids(plan, graph, use_id_paths=False))

    def test_initial_binding_with_foreign_term_yields_nothing(self):
        graph = EncodedGraph(self._triples())
        x, o = Variable("x"), Variable("o")
        plan = plan_bgp(graph, [tp(x, EX.p, o)])
        initial = Binding({x: EX.unseen_subject})
        assert list(execute_plan_ids(plan, graph, initial=initial)) == []

    def test_ask_short_circuits_through_id_pipeline(self):
        dataset = Dataset.from_graph(EncodedGraph(self._triples()))
        evaluator = SparqlEvaluator(dataset)
        query = parse_query(
            PREFIX + "ASK WHERE { ?s ex:p ?o . FILTER(sameTerm(?o, ex:o1)) }"
        )
        assert evaluator.evaluate(query) is True


# ----------------------------------------------------------------------
# hypothesis differential: random BGP + FILTER on random graphs
# ----------------------------------------------------------------------
_NODES = [EX[f"n{i}"] for i in range(6)]
_PREDICATES = [EX.p, EX.q]
_LITERALS = [
    Literal("1", XSD_INTEGER),
    Literal("01", XSD_INTEGER),
    Literal("2", XSD_INTEGER),
    Literal("alpha"),
]
_VARIABLES = [Variable(name) for name in ("x", "y", "z")]

edges = st.lists(
    st.tuples(
        st.sampled_from(_NODES),
        st.sampled_from(_PREDICATES),
        st.sampled_from(_NODES + _LITERALS),
    ),
    min_size=0,
    max_size=20,
)

subject_part = st.sampled_from(_VARIABLES + _NODES)
object_part = st.sampled_from(_VARIABLES + _NODES + _LITERALS)
pattern = st.tuples(subject_part, st.sampled_from(_PREDICATES), object_part)
patterns = st.lists(pattern, min_size=1, max_size=3)

operand = st.sampled_from(
    [VariableExpr(variable) for variable in _VARIABLES]
    + [TermExpr(term) for term in _NODES[:2] + _LITERALS[:3]]
)
comparison = st.builds(
    Comparison, st.sampled_from(["=", "!=", "<", ">="]), operand, operand
)
sameterm = st.builds(
    lambda left, right: FunctionCall("SAMETERM", (left, right)), operand, operand
)
bound_call = st.builds(
    lambda variable: FunctionCall("BOUND", (VariableExpr(variable),)),
    st.sampled_from(_VARIABLES),
)
condition = st.one_of(comparison, sameterm, bound_call)
conditions = st.lists(condition, min_size=0, max_size=2)


@settings(max_examples=60, deadline=None)
@given(edges=edges, bgp=patterns, filter_conditions=conditions)
def test_differential_random_bgp_filters(edges, bgp, filter_conditions):
    """Id-native and decoded pipelines agree on both backends."""
    from repro.sparql.algebra import (
        BGP,
        Filter,
        ProjectionItem,
        SelectQuery,
    )

    triples = [Triple(*edge) for edge in edges]
    node = BGP(tuple(tp(*parts) for parts in bgp))
    pattern_node = node
    for filter_condition in filter_conditions:
        pattern_node = Filter(pattern_node, filter_condition)
    variables = sorted(pattern_node.variables(), key=lambda v: v.name)
    query = SelectQuery(
        projection=tuple(ProjectionItem(variable) for variable in variables),
        pattern=pattern_node,
    )
    results = [
        Counter(evaluator.evaluate(query).rows())
        for evaluator in _all_configurations(triples)
    ]
    for other in results[1:]:
        assert other == results[0]


# ----------------------------------------------------------------------
# hypothesis differential: cyclic BGPs exercise the leapfrog operator
# ----------------------------------------------------------------------
_CYCLIC_SHAPES = [
    # triangle
    lambda x, y, z, w: [(x, EX.p, y), (y, EX.p, z), (z, EX.p, x)],
    # triangle over mixed predicates
    lambda x, y, z, w: [(x, EX.p, y), (y, EX.q, z), (z, EX.p, x)],
    # 4-cycle
    lambda x, y, z, w: [(x, EX.p, y), (y, EX.p, z), (z, EX.p, w), (w, EX.p, x)],
    # triangle + pendant edge (still cyclic after ear removal)
    lambda x, y, z, w: [
        (x, EX.p, y),
        (y, EX.p, z),
        (z, EX.p, x),
        (x, EX.q, w),
    ],
]


@settings(max_examples=40, deadline=None)
@given(
    edges=edges,
    shape=st.sampled_from(_CYCLIC_SHAPES),
    filter_conditions=conditions,
)
def test_differential_cyclic_bgps(edges, shape, filter_conditions):
    """Cyclic BGPs: leapfrog, binary-join and decoded pipelines agree.

    The default encoded-backend evaluator lowers these shapes to the
    LeapfrogJoin operator, so this property differentially pins the WCOJ
    implementation against every pre-existing pipeline.
    """
    from repro.sparql.algebra import BGP, Filter, ProjectionItem, SelectQuery

    triples = [Triple(*edge) for edge in edges]
    x, y, z = _VARIABLES
    w = Variable("w")
    node = BGP(tuple(tp(*parts) for parts in shape(x, y, z, w)))
    pattern_node = node
    for filter_condition in filter_conditions:
        pattern_node = Filter(pattern_node, filter_condition)
    variables = sorted(pattern_node.variables(), key=lambda v: v.name)
    query = SelectQuery(
        projection=tuple(ProjectionItem(variable) for variable in variables),
        pattern=pattern_node,
    )
    results = [
        Counter(evaluator.evaluate(query).rows())
        for evaluator in _all_configurations(triples)
    ]
    for other in results[1:]:
        assert other == results[0]


# ----------------------------------------------------------------------
# workload differential: all five paper workloads
# ----------------------------------------------------------------------
def _workloads():
    from repro.workloads.beseppi import BeSEPPIWorkload
    from repro.workloads.feasible import FeasibleWorkload
    from repro.workloads.gmark import GMarkWorkload, test_scenario
    from repro.workloads.ontology_bench import OntologyBenchmark
    from repro.workloads.sp2bench import SP2BenchWorkload

    return [
        ("sp2bench", SP2BenchWorkload(scale=0.04, backend="encoded")),
        ("gmark", GMarkWorkload(scenario=test_scenario(), scale=0.2, backend="encoded")),
        ("beseppi", BeSEPPIWorkload(backend="encoded")),
        ("feasible", FeasibleWorkload(scale=0.05, backend="encoded")),
        ("ontology", OntologyBenchmark(scale=0.05, backend="encoded")),
    ]


@pytest.mark.parametrize("name,workload", _workloads(), ids=lambda value: value if isinstance(value, str) else "")
def test_differential_workload_queries(name, workload):
    """Every workload query: id-native multiset == decoded multiset."""
    dataset = workload.dataset()
    idnative = SparqlEvaluator(dataset)
    decoded = SparqlEvaluator(dataset, profile=ExecutionProfile.BASELINE)
    compared = 0
    for query in workload.queries()[:8]:
        try:
            parsed = parse_query(query.text)
        except Exception:
            continue
        try:
            expected = decoded.evaluate(parsed)
        except Exception:
            continue
        actual = idnative.evaluate(parsed)
        if isinstance(expected, bool):
            assert actual == expected, query.query_id
        else:
            assert Counter(actual.rows()) == Counter(expected.rows()), query.query_id
        compared += 1
    assert compared > 0, f"no comparable queries in workload {name}"
