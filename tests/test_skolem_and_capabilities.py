"""Tests for the Skolem generator, capabilities registry and solution containers."""

from repro.core.capabilities import (
    FEATURE_TABLE,
    feature_rows_by_group,
    supported_features,
)
from repro.core.skolem import SET_ID, SkolemFunctionGenerator
from repro.datalog.rules import Assignment, SkolemExpr
from repro.datalog.terms import Var
from repro.rdf.terms import IRI, Literal, Variable
from repro.sparql.solutions import Binding, SolutionSequence


class TestSkolemGenerator:
    def test_ids_are_unique_per_rule(self):
        generator = SkolemFunctionGenerator()
        first = generator.tuple_id_assignment(Var("Id"), [Var("X")], "join")
        second = generator.tuple_id_assignment(Var("Id"), [Var("X")], "join")
        assert isinstance(first.expression, SkolemExpr)
        assert first.expression.functor != second.expression.functor

    def test_body_variables_sorted_and_deduplicated(self):
        generator = SkolemFunctionGenerator()
        assignment = generator.tuple_id_assignment(
            Var("Id"), [Var("B"), Var("A"), Var("B")], "test"
        )
        assert assignment.expression.arguments == (Var("A"), Var("B"))

    def test_label_is_embedded_in_functor(self):
        generator = SkolemFunctionGenerator()
        assignment = generator.tuple_id_assignment(Var("Id"), [], "union-left")
        assert "union-left" in assignment.expression.functor

    def test_set_semantics_assignment_is_constant(self):
        assignment = SkolemFunctionGenerator.set_semantics_assignment(Var("Id"))
        assert isinstance(assignment, Assignment)
        assert assignment.expression == SET_ID


class TestCapabilities:
    def test_table_has_paper_row_count(self):
        assert len(FEATURE_TABLE) == 40

    def test_headline_features_supported(self):
        supported = supported_features()
        for feature in (
            "OPTIONAL", "UNION", "MINUS", "SELECT", "ASK", "DISTINCT",
            "ZeroOrMorePath (exp*)", "OneOrMorePath (exp+)", "GROUP BY",
        ):
            assert feature in supported

    def test_unsupported_features_match_paper(self):
        supported = supported_features()
        for feature in ("CONSTRUCT", "DESCRIBE", "BIND", "VALUES", "HAVING"):
            assert feature not in supported

    def test_grouping_by_general_feature(self):
        grouped = feature_rows_by_group()
        assert "Property paths" in grouped
        assert len(grouped["Property paths"]) == 8


class TestSolutionSequence:
    def _sequence(self):
        x, y = Variable("x"), Variable("y")
        rows = [
            Binding({x: IRI("http://a"), y: Literal("1")}),
            Binding({x: IRI("http://a"), y: Literal("1")}),
            Binding({x: IRI("http://b")}),
        ]
        return SolutionSequence([x, y], rows)

    def test_len_and_rows(self):
        sequence = self._sequence()
        assert len(sequence) == 3
        assert sequence.rows()[2] == (IRI("http://b"), None)

    def test_bag_equality_ignores_order(self):
        left = self._sequence()
        right = SolutionSequence(left.variables, list(reversed(left.bindings)))
        assert left == right

    def test_distinct(self):
        assert len(self._sequence().distinct()) == 2

    def test_counter_counts_duplicates(self):
        counts = self._sequence().counter()
        assert max(counts.values()) == 2

    def test_sorted_rows_deterministic(self):
        sequence = self._sequence()
        assert sequence.sorted_rows() == sorted(
            sequence.rows(), key=lambda row: [str(value) for value in row]
        ) or len(sequence.sorted_rows()) == 3
