"""Tests for the id-native property-path engine (:mod:`repro.sparql.idpaths`).

Three layers of assurance that the id engine is a pure optimisation over
the term-level ALP procedure:

* targeted unit tests for the moving parts — direction selection,
  bidirectional meet-in-the-middle, path reversal, the zero-length rules
  for bound endpoints outside the graph, duplicate preservation for the
  non-closure operators,
* a hypothesis differential property: random path expressions over
  random graphs, with random bound/free endpoints, return the identical
  multiset through the id engine and the term-level fallback, on both
  backends and through both join pipelines,
* gMark workload parity: every query of a recursive-only gMark workload
  agrees between ``use_id_paths=True`` and the ALP baseline.
"""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.rdf.graph import Dataset, Graph
from repro.rdf.terms import Triple, Variable
from repro.sparql.algebra import BGP, PathPattern, ProjectionItem, SelectQuery, TriplePatternNode
from repro.sparql.evaluator import SparqlEvaluator
from repro.sparql.idpaths import IdPathEngine, supports_id_paths
from repro.sparql.parser import parse_query
from repro.sparql.paths import (
    AlternativePath,
    InversePath,
    LinkPath,
    NegatedPropertySet,
    OneOrMorePath,
    RepeatPath,
    SequencePath,
    ZeroOrMorePath,
    ZeroOrOnePath,
    normalize_path,
    reverse_path,
)
from repro.store import EncodedGraph

from tests.helpers import EX

PREFIX = "PREFIX ex: <http://ex.org/>\n"

X, Y = Variable("x"), Variable("y")


def _select(pattern_nodes):
    variables = sorted(
        {v for node in pattern_nodes for v in node.variables()},
        key=lambda v: v.name,
    )
    return SelectQuery(
        projection=tuple(ProjectionItem(variable) for variable in variables),
        pattern=BGP(tuple(pattern_nodes)),
    )


def _evaluators(triples):
    """Every (backend, pipeline, path engine) combination under test."""
    evaluators = []
    for backend in (Graph, EncodedGraph):
        dataset = Dataset.from_graph(backend(triples))
        evaluators.append(SparqlEvaluator(dataset))
        evaluators.append(SparqlEvaluator(dataset, use_id_paths=False))
        evaluators.append(
            SparqlEvaluator(
                dataset, use_id_execution=False, use_filter_pushdown=False
            )
        )
        evaluators.append(
            SparqlEvaluator(
                dataset,
                use_id_execution=False,
                use_filter_pushdown=False,
                use_id_paths=False,
                use_planner=False,
            )
        )
    return evaluators


def _assert_configurations_agree(pattern_nodes, triples):
    query = _select(pattern_nodes)
    results = [
        Counter(evaluator.evaluate(query).rows())
        for evaluator in _evaluators(triples)
    ]
    for other in results[1:]:
        assert other == results[0]
    return results[0]


# ----------------------------------------------------------------------
# unit tests: engine surface
# ----------------------------------------------------------------------
class TestEngineSurface:
    def _graph(self):
        return EncodedGraph(
            [
                Triple(EX.a, EX.p, EX.b),
                Triple(EX.b, EX.p, EX.c),
                Triple(EX.c, EX.q, EX.d),
            ]
        )

    def test_supports_id_paths_detection(self):
        assert supports_id_paths(self._graph())
        assert not supports_id_paths(Graph())

    def test_forward_closure_from_bound_subject(self):
        graph = self._graph()
        engine = IdPathEngine(graph)
        a = graph.dictionary.id_for(EX.a)
        pairs = set(engine.pair_ids(OneOrMorePath(LinkPath(EX.p)), a, None))
        decode = graph.dictionary.term
        assert {decode(end) for _, end in pairs} == {EX.b, EX.c}

    def test_backward_closure_from_bound_object(self):
        graph = self._graph()
        engine = IdPathEngine(graph)
        c = graph.dictionary.id_for(EX.c)
        pairs = set(engine.pair_ids(OneOrMorePath(LinkPath(EX.p)), None, c))
        decode = graph.dictionary.term
        assert {decode(start) for start, _ in pairs} == {EX.a, EX.b}

    def test_bidirectional_reachability_both_bound(self):
        graph = EncodedGraph()
        for i in range(50):
            graph.add(Triple(EX[f"n{i}"], EX.next, EX[f"n{i + 1}"]))
        engine = IdPathEngine(graph)
        first = graph.dictionary.id_for(EX.n0)
        last = graph.dictionary.id_for(EX.n50)
        path = OneOrMorePath(LinkPath(EX.next))
        assert list(engine.pair_ids(path, first, last)) == [(first, last)]
        assert list(engine.pair_ids(path, last, first)) == []

    def test_cycle_reachability_same_endpoint(self):
        graph = EncodedGraph(
            [
                Triple(EX.a, EX.p, EX.b),
                Triple(EX.b, EX.p, EX.a),
                Triple(EX.c, EX.p, EX.d),
            ]
        )
        engine = IdPathEngine(graph)
        a = graph.dictionary.id_for(EX.a)
        c = graph.dictionary.id_for(EX.c)
        path = OneOrMorePath(LinkPath(EX.p))
        assert list(engine.pair_ids(path, a, a)) == [(a, a)]
        assert list(engine.pair_ids(path, c, c)) == []

    def test_bound_endpoint_outside_graph_zero_length(self):
        graph = self._graph()
        engine = IdPathEngine(graph)
        ghost = graph.dictionary.encode(EX.ghost)
        star = ZeroOrMorePath(LinkPath(EX.p))
        assert list(engine.pair_ids(star, ghost, None)) == [(ghost, ghost)]
        plus = OneOrMorePath(LinkPath(EX.p))
        assert list(engine.pair_ids(plus, ghost, None)) == []

    def test_relation_stats_reflects_direction_asymmetry(self):
        graph = EncodedGraph()
        hub = EX.hub
        for i in range(20):
            graph.add(Triple(EX[f"s{i}"], EX.into, hub))
        engine = IdPathEngine(graph)
        edges, sources, targets = engine.relation_stats(LinkPath(EX.into))
        assert edges == 20.0 and sources == 20.0 and targets == 1.0
        edges, sources, targets = engine.relation_stats(
            InversePath(LinkPath(EX.into))
        )
        assert sources == 1.0 and targets == 20.0

    def test_unknown_constant_endpoint_does_not_grow_dictionary(self):
        # Non-zero-admitting paths bail on unknown constants like the
        # triple pipeline does; only zero-length-admitting paths may
        # intern the constant (they need an id for the syntactic match).
        graph = self._graph()
        engine = IdPathEngine(graph)
        before = len(graph.dictionary)
        node = PathPattern(EX.total_stranger, OneOrMorePath(LinkPath(EX.p)), Y)
        assert engine.evaluate(node) == []
        assert len(graph.dictionary) == before
        node = PathPattern(EX.total_stranger, ZeroOrMorePath(LinkPath(EX.p)), Y)
        assert len(engine.evaluate(node)) == 1
        assert len(graph.dictionary) == before + 1

    def test_unknown_predicate_is_empty_but_zero_length_survives(self):
        graph = self._graph()
        engine = IdPathEngine(graph)
        a = graph.dictionary.id_for(EX.a)
        assert list(engine.pair_ids(LinkPath(EX.never_seen), a, None)) == []
        pairs = list(engine.pair_ids(ZeroOrMorePath(LinkPath(EX.never_seen)), a, None))
        assert pairs == [(a, a)]


class TestReversePath:
    def test_reverse_inverts_pairs(self):
        graph = EncodedGraph(
            [
                Triple(EX.a, EX.p, EX.b),
                Triple(EX.b, EX.q, EX.c),
                Triple(EX.c, EX.p, EX.c),
            ]
        )
        engine = IdPathEngine(graph)
        paths = [
            LinkPath(EX.p),
            InversePath(LinkPath(EX.q)),
            SequencePath(LinkPath(EX.p), LinkPath(EX.q)),
            AlternativePath(LinkPath(EX.p), InversePath(LinkPath(EX.q))),
            OneOrMorePath(AlternativePath(LinkPath(EX.p), LinkPath(EX.q))),
            ZeroOrMorePath(LinkPath(EX.p)),
            ZeroOrOnePath(SequencePath(LinkPath(EX.p), LinkPath(EX.p))),
            NegatedPropertySet((EX.p,), (EX.q,)),
            RepeatPath(LinkPath(EX.p), 1, 2),
        ]
        for path in paths:
            forward = Counter(engine.pair_ids(normalize_path(path), None, None))
            backward = Counter(
                (start, end)
                for end, start in engine.pair_ids(
                    normalize_path(reverse_path(path)), None, None
                )
            )
            assert forward == backward, repr(path)


# ----------------------------------------------------------------------
# duplicate semantics
# ----------------------------------------------------------------------
class TestDuplicateSemantics:
    def _diamond(self):
        # Two length-2 routes a -> c: duplicates must survive sequences.
        return [
            Triple(EX.a, EX.p, EX.b1),
            Triple(EX.a, EX.p, EX.b2),
            Triple(EX.b1, EX.q, EX.c),
            Triple(EX.b2, EX.q, EX.c),
        ]

    def test_sequence_preserves_duplicates(self):
        rows = _assert_configurations_agree(
            [PathPattern(X, SequencePath(LinkPath(EX.p), LinkPath(EX.q)), Y)],
            self._diamond(),
        )
        assert rows[(EX.a, EX.c)] == 2

    def test_alternative_preserves_duplicates(self):
        triples = [Triple(EX.a, EX.p, EX.b)]
        rows = _assert_configurations_agree(
            [PathPattern(X, AlternativePath(LinkPath(EX.p), LinkPath(EX.p)), Y)],
            triples,
        )
        assert rows[(EX.a, EX.b)] == 2

    def test_zero_or_one_deduplicates(self):
        # ? has set semantics: the two p/q routes collapse to one row.
        rows = _assert_configurations_agree(
            [
                PathPattern(
                    X,
                    ZeroOrOnePath(SequencePath(LinkPath(EX.p), LinkPath(EX.q))),
                    Y,
                )
            ],
            self._diamond(),
        )
        assert rows[(EX.a, EX.c)] == 1

    def test_closure_is_set_semantics(self):
        rows = _assert_configurations_agree(
            [
                PathPattern(
                    EX.a,
                    OneOrMorePath(AlternativePath(LinkPath(EX.p), LinkPath(EX.q))),
                    Y,
                )
            ],
            self._diamond(),
        )
        assert all(count == 1 for count in rows.values())

    def test_inverse_sequence_duplicates(self):
        rows = _assert_configurations_agree(
            [
                PathPattern(
                    X,
                    InversePath(SequencePath(LinkPath(EX.p), LinkPath(EX.q))),
                    Y,
                )
            ],
            self._diamond(),
        )
        assert rows[(EX.c, EX.a)] == 2


# ----------------------------------------------------------------------
# id-native plan steps
# ----------------------------------------------------------------------
class TestIdNativePlanIntegration:
    def _triples(self):
        return [
            Triple(EX.s1, EX.start, EX.go),
            Triple(EX.s1, EX.p, EX.m1),
            Triple(EX.m1, EX.p, EX.m2),
            Triple(EX.s2, EX.p, EX.m2),
            Triple(EX.m2, EX.q, EX.s2),
        ]

    def test_path_step_after_binding_triple(self):
        _assert_configurations_agree(
            [
                TriplePatternNode(Triple(X, EX.start, EX.go)),
                PathPattern(X, OneOrMorePath(LinkPath(EX.p)), Y),
            ],
            self._triples(),
        )

    def test_path_step_with_shared_variable_both_ends(self):
        _assert_configurations_agree(
            [
                PathPattern(
                    X,
                    OneOrMorePath(
                        AlternativePath(LinkPath(EX.p), LinkPath(EX.q))
                    ),
                    X,
                )
            ],
            self._triples(),
        )

    def test_filter_pushdown_after_path_step(self):
        query = parse_query(
            PREFIX
            + "SELECT ?x ?y WHERE { ?x ex:p+ ?y . FILTER(?y = ex:m2) }"
        )
        results = []
        for evaluator in _evaluators(self._triples()):
            results.append(Counter(evaluator.evaluate(query).rows()))
        for other in results[1:]:
            assert other == results[0]
        assert results[0]
        assert all(row[1] == EX.m2 for row in results[0])

    def test_substituted_non_node_endpoint_blocks_zero_length(self):
        # ?x is bound by VALUES to a term outside the graph: a * path
        # must not zero-length-match it (variables range over nodes).
        query = parse_query(
            PREFIX
            + "SELECT ?x ?y WHERE { VALUES ?x { ex:ghost } ?x ex:p* ?y }"
        )
        for evaluator in _evaluators(self._triples()):
            result = evaluator.evaluate(query)
            assert list(result.rows()) == [], type(evaluator.dataset.default_graph)


# ----------------------------------------------------------------------
# hypothesis differential
# ----------------------------------------------------------------------
_NODES = [EX[f"n{i}"] for i in range(5)]
_PREDICATES = [EX.p, EX.q, EX.r]

_links = st.sampled_from([LinkPath(iri) for iri in _PREDICATES])
_negated = st.sampled_from(
    [
        NegatedPropertySet((EX.p,)),
        NegatedPropertySet((EX.p,), (EX.q,)),
        NegatedPropertySet((), (EX.r,)),
    ]
)
_path_expressions = st.recursive(
    st.one_of(_links, _negated),
    lambda children: st.one_of(
        st.builds(InversePath, children),
        st.builds(SequencePath, children, children),
        st.builds(AlternativePath, children, children),
        st.builds(ZeroOrOnePath, children),
        st.builds(OneOrMorePath, children),
        st.builds(ZeroOrMorePath, children),
        st.builds(lambda inner: RepeatPath(inner, 1, 2), children),
    ),
    max_leaves=4,
)

_edges = st.lists(
    st.tuples(
        st.sampled_from(_NODES),
        st.sampled_from(_PREDICATES),
        st.sampled_from(_NODES),
    ),
    min_size=0,
    max_size=14,
)

_subjects = st.sampled_from([X, EX.n0, EX.n1, EX.ghost])
_objects = st.sampled_from([Y, X, EX.n0, EX.n2, EX.ghost])


@settings(max_examples=80, deadline=None)
@given(edges=_edges, path=_path_expressions, subject=_subjects, obj=_objects)
def test_differential_random_paths(edges, path, subject, obj):
    """Random path, random graph, random endpoints: all pipelines agree."""
    triples = [Triple(*edge) for edge in edges]
    _assert_configurations_agree([PathPattern(subject, path, obj)], triples)


@settings(max_examples=40, deadline=None)
@given(edges=_edges, path=_path_expressions)
def test_differential_engine_vs_term_alp(edges, path):
    """Engine pair semantics == term ALP, compared at the binding level."""
    graph = EncodedGraph(Triple(*edge) for edge in edges)
    dataset = Dataset.from_graph(graph)
    idnative = SparqlEvaluator(dataset)
    termlevel = SparqlEvaluator(dataset, use_id_paths=False)
    node = PathPattern(X, path, Y)
    expected = Counter(
        tuple(sorted(binding.items()))
        for binding in termlevel._eval_path_pattern(node, graph)
    )
    actual = Counter(
        tuple(sorted(binding.items()))
        for binding in idnative._eval_path_pattern(node, graph)
    )
    assert actual == expected


# ----------------------------------------------------------------------
# gMark workload parity
# ----------------------------------------------------------------------
def test_gmark_recursive_workload_parity():
    from repro.workloads.gmark import GMarkWorkload, test_scenario

    workload = GMarkWorkload(
        scenario=test_scenario(),
        scale=0.15,
        backend="encoded",
        recursive_only=True,
        query_count=12,
    )
    dataset = workload.dataset()
    idnative = SparqlEvaluator(dataset)
    termlevel = SparqlEvaluator(dataset, use_id_paths=False)
    compared = 0
    for query in workload.queries():
        parsed = parse_query(query.text)
        expected = termlevel.evaluate(parsed)
        actual = idnative.evaluate(parsed)
        assert Counter(actual.rows()) == Counter(expected.rows()), query.query_id
        compared += 1
    assert compared == 12
