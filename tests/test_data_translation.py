"""Tests for the data translation T_D (Appendix A.1)."""

from repro.core.data_translation import (
    DEFAULT_GRAPH,
    DataTranslator,
    NULL,
    PRED_BNODE,
    PRED_COMP,
    PRED_IRI,
    PRED_LITERAL,
    PRED_NAMED,
    PRED_SUBJECT_OR_OBJECT,
    PRED_TERM,
    PRED_TRIPLE,
)
from repro.datalog.engine import DatalogEngine
from repro.rdf.graph import Dataset, Graph
from repro.rdf.terms import BlankNode, IRI, Literal, Triple

from tests.helpers import EX, countries_dataset, directors_graph


class TestDataTranslation:
    def test_triple_facts_for_default_graph(self):
        program = DataTranslator().translate(countries_dataset())
        triple_facts = [fact for fact in program.facts if fact.predicate == PRED_TRIPLE]
        assert len(triple_facts) == 5
        assert all(fact.arguments[3] == DEFAULT_GRAPH for fact in triple_facts)

    def test_term_classification_facts(self):
        graph = directors_graph()
        graph.add(Triple(BlankNode("b1"), EX.name, Literal("Anon")))
        program = DataTranslator().translate(Dataset.from_graph(graph))
        predicates = {fact.predicate for fact in program.facts}
        assert {PRED_IRI, PRED_LITERAL, PRED_BNODE} <= predicates

    def test_named_graphs_produce_named_facts(self):
        dataset = countries_dataset()
        dataset.add_named_graph(IRI("http://g1"), Graph([Triple(EX.a, EX.p, EX.b)]))
        program = DataTranslator().translate(dataset)
        named = [fact for fact in program.facts if fact.predicate == PRED_NAMED]
        assert len(named) == 1
        graph_args = {
            fact.arguments[3].value
            for fact in program.facts
            if fact.predicate == PRED_TRIPLE
        }
        assert IRI("http://g1") in graph_args

    def test_null_fact_present(self):
        program = DataTranslator().translate(countries_dataset())
        null_facts = [fact for fact in program.facts if fact.predicate == "null"]
        assert len(null_facts) == 1
        assert null_facts[0].arguments[0] == NULL

    def test_auxiliary_predicates_evaluate(self):
        """term, comp and subjectOrObject behave per Definitions A.1/A.2/A.17."""
        program = DataTranslator().translate(countries_dataset())
        relations = DatalogEngine().evaluate(program)
        # Every IRI of the graph is a term.
        assert (EX.spain,) in relations[PRED_TERM]
        # comp(x, x, x), comp(x, null, x), comp(null, x, x), comp(null, null, null).
        assert (EX.spain, EX.spain, EX.spain) in relations[PRED_COMP]
        assert (EX.spain, "null", EX.spain) in relations[PRED_COMP]
        assert ("null", EX.spain, EX.spain) in relations[PRED_COMP]
        assert ("null", "null", "null") in relations[PRED_COMP]
        # subjectOrObject contains subjects and objects but not predicates.
        subject_or_object = {row[0] for row in relations[PRED_SUBJECT_OR_OBJECT]}
        assert EX.spain in subject_or_object
        assert EX.austria in subject_or_object
        assert EX.borders not in subject_or_object

    def test_comp_count_matches_term_count(self):
        program = DataTranslator().translate(countries_dataset())
        relations = DatalogEngine().evaluate(program)
        term_count = len(relations[PRED_TERM])
        # 3 comp rows per term (eq, null-left, null-right) + 1 for null-null.
        assert len(relations[PRED_COMP]) == 3 * term_count + 1
