"""Tests for the engine facade, execution profiles and ``open_graph``.

Covers the API-redesign surface:

* :class:`~repro.sparql.profile.ExecutionProfile` presets and the
  deprecation shims for the legacy ``use_*`` evaluator kwargs,
* :func:`repro.open_graph` — one entry point over files, backends and
  snapshot warm starts,
* :func:`repro.create_engine` / :class:`~repro.engine.Engine` — query,
  explain, metrics, live views and lifecycle.
"""

import warnings

import pytest

from repro import (
    Engine,
    ExecutionProfile,
    create_engine,
    open_graph,
)
from repro.rdf.graph import Dataset, Graph
from repro.rdf.terms import Triple
from repro.sparql.evaluator import SparqlEvaluator
from repro.sparql.parser import parse_query
from repro.store import EncodedGraph

from tests.helpers import EX


NT = (
    "<http://ex.org/n1> <http://ex.org/p> <http://ex.org/n2> .\n"
    "<http://ex.org/n2> <http://ex.org/p> <http://ex.org/n3> .\n"
)
TTL = "@prefix ex: <http://ex.org/> . ex:n1 ex:p ex:n2 , ex:n3 ."
QUERY = "PREFIX ex: <http://ex.org/>\nSELECT ?a ?b WHERE { ?a ex:p ?b }"


def triples():
    return [
        Triple(EX.n1, EX.p, EX.n2),
        Triple(EX.n2, EX.p, EX.n3),
    ]


# ----------------------------------------------------------------------
# execution profiles
# ----------------------------------------------------------------------
class TestExecutionProfile:
    def test_presets(self):
        full = ExecutionProfile.FULL
        assert (
            full.use_planner
            and full.use_id_execution
            and full.use_filter_pushdown
            and full.use_id_paths
            and full.use_wcoj
        )
        id_native = ExecutionProfile.ID_NATIVE
        assert id_native.use_id_execution and not id_native.use_wcoj
        baseline = ExecutionProfile.BASELINE
        assert baseline.use_planner
        assert not (
            baseline.use_id_execution
            or baseline.use_filter_pushdown
            or baseline.use_id_paths
            or baseline.use_wcoj
        )
        assert str(full) == "full"
        assert str(baseline) == "baseline"

    def test_with_options_renames_to_custom(self):
        derived = ExecutionProfile.FULL.with_options(use_wcoj=False)
        assert derived.name == "custom"
        assert not derived.use_wcoj
        assert derived.use_id_paths
        named = ExecutionProfile.FULL.with_options(name="ablation", use_wcoj=False)
        assert named.name == "ablation"

    def test_evaluator_accepts_profile(self):
        dataset = Dataset.from_graph(Graph(triples()))
        evaluator = SparqlEvaluator(dataset, profile=ExecutionProfile.BASELINE)
        assert evaluator.profile is ExecutionProfile.BASELINE
        assert not evaluator.use_id_execution
        assert len(list(evaluator.evaluate(parse_query(QUERY)).rows())) == 2

    def test_default_profile_is_full(self):
        evaluator = SparqlEvaluator(Dataset())
        assert evaluator.profile is ExecutionProfile.FULL


class TestDeprecatedKwargs:
    def test_legacy_kwargs_warn_and_resolve_to_custom_profile(self):
        dataset = Dataset.from_graph(Graph(triples()))
        with pytest.warns(DeprecationWarning, match="ExecutionProfile"):
            evaluator = SparqlEvaluator(dataset, use_wcoj=False)
        assert evaluator.profile.name == "custom"
        assert not evaluator.use_wcoj
        assert evaluator.use_id_execution  # untouched knobs keep FULL values
        assert len(list(evaluator.evaluate(parse_query(QUERY)).rows())) == 2

    def test_legacy_kwargs_match_baseline_semantics(self):
        dataset = Dataset.from_graph(Graph(triples()))
        with pytest.warns(DeprecationWarning):
            legacy = SparqlEvaluator(
                dataset,
                use_id_execution=False,
                use_filter_pushdown=False,
                use_id_paths=False,
                use_wcoj=False,
            )
        for knob in (
            "use_planner",
            "use_id_execution",
            "use_filter_pushdown",
            "use_id_paths",
            "use_wcoj",
        ):
            assert getattr(legacy, knob) == getattr(
                ExecutionProfile.BASELINE, knob
            )

    def test_mixing_profile_and_legacy_kwargs_is_an_error(self):
        with pytest.raises(ValueError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                SparqlEvaluator(
                    Dataset(),
                    profile=ExecutionProfile.FULL,
                    use_wcoj=False,
                )


# ----------------------------------------------------------------------
# open_graph
# ----------------------------------------------------------------------
class TestOpenGraph:
    def test_empty_default_backend(self):
        graph = open_graph()
        assert isinstance(graph, Graph)
        assert len(graph) == 0

    def test_empty_encoded_backend(self):
        graph = open_graph(backend="encoded")
        assert isinstance(graph, EncodedGraph)

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            open_graph(backend="btree")

    @pytest.mark.parametrize("backend", ["hash", "encoded"])
    def test_load_ntriples_by_extension(self, tmp_path, backend):
        source = tmp_path / "data.nt"
        source.write_text(NT)
        graph = open_graph(source, backend=backend)
        assert set(graph.triples()) == set(triples())

    @pytest.mark.parametrize("backend", ["hash", "encoded"])
    def test_load_turtle_by_extension(self, tmp_path, backend):
        source = tmp_path / "data.ttl"
        source.write_text(TTL)
        graph = open_graph(source, backend=backend)
        assert len(graph) == 2

    def test_format_override_beats_extension(self, tmp_path):
        source = tmp_path / "data.rdf"
        source.write_text(NT)
        graph = open_graph(source, backend="encoded", format="ntriples")
        assert len(graph) == 2

    def test_unknown_extension_without_format(self, tmp_path):
        source = tmp_path / "data.rdf"
        source.write_text(NT)
        with pytest.raises(ValueError):
            open_graph(source)

    def test_snapshot_warm_start_roundtrip(self, tmp_path):
        source = tmp_path / "data.nt"
        source.write_text(NT)
        snapshot = tmp_path / "data.snap"
        cold = open_graph(source, snapshot=snapshot)
        assert isinstance(cold, EncodedGraph)
        assert snapshot.exists()
        # Second open must come from the snapshot, not the source file.
        source.write_text("")
        warm = open_graph(source, snapshot=snapshot)
        assert set(warm.triples()) == set(triples())

    def test_snapshot_requires_encoded_backend(self, tmp_path):
        with pytest.raises(ValueError):
            open_graph(snapshot=tmp_path / "data.snap", backend="hash")

    def test_snapshot_only_persists_empty_graph(self, tmp_path):
        snapshot = tmp_path / "empty.snap"
        first = open_graph(snapshot=snapshot)
        assert isinstance(first, EncodedGraph)
        assert len(first) == 0
        assert snapshot.exists()


# ----------------------------------------------------------------------
# engine facade
# ----------------------------------------------------------------------
class TestCreateEngine:
    def test_over_hash_graph(self):
        engine = create_engine(Graph(triples()))
        assert isinstance(engine, Engine)
        assert isinstance(engine.graph, Graph)

    def test_over_encoded_graph(self):
        engine = create_engine(EncodedGraph(triples()))
        assert isinstance(engine.graph, EncodedGraph)

    def test_over_dataset(self):
        dataset = Dataset.from_graph(Graph(triples()))
        engine = create_engine(dataset)
        assert engine.dataset is dataset

    def test_over_nothing(self):
        engine = create_engine()
        assert len(engine.graph) == 0

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            create_engine(42)

    def test_profile_is_threaded_through(self):
        engine = create_engine(Graph(), profile=ExecutionProfile.BASELINE)
        assert engine.profile is ExecutionProfile.BASELINE


class TestEngine:
    def test_query_parses_strings(self):
        engine = create_engine(Graph(triples()))
        rows = list(engine.query(QUERY).rows())
        assert len(rows) == 2

    def test_query_accepts_parsed_queries(self):
        engine = create_engine(Graph(triples()))
        assert len(list(engine.query(parse_query(QUERY)).rows())) == 2

    def test_ask_query_returns_bool(self):
        engine = create_engine(Graph(triples()))
        assert engine.query("ASK { ?s ?p ?o }") is True

    def test_explain_renders_a_plan(self):
        engine = create_engine(EncodedGraph(triples()))
        two_hop = (
            "PREFIX ex: <http://ex.org/>\n"
            "SELECT ?a ?c WHERE { ?a ex:p ?b . ?b ex:p ?c }"
        )
        assert "Scan" in engine.explain(two_hop)

    def test_explain_analyze_reports(self):
        engine = create_engine(EncodedGraph(triples()))
        report = engine.explain_analyze(QUERY)
        assert report.rows

    def test_metrics_exposes_ivm_counters(self):
        engine = create_engine(Graph(triples()))
        snapshot = engine.metrics()
        assert "ivm_views_active" in snapshot
        assert snapshot["ivm_views_active"] == 0

    def test_context_manager_closes_views(self):
        graph = Graph(triples())
        with create_engine(graph) as engine:
            view = engine.materialize(QUERY)
            assert len(view) == 2
        assert view.closed
        assert graph._delta_listeners == []

    def test_repr_mentions_profile_and_views(self):
        engine = create_engine(Graph(triples()))
        engine.materialize(QUERY)
        text = repr(engine)
        assert "full" in text and "views=1" in text
