"""Tests for the cost-based BGP planner and the graph statistics API."""

from itertools import islice

import pytest

from repro.rdf.graph import Dataset, Graph
from repro.rdf.terms import IRI, Triple, Variable
from repro.sparql.algebra import BGP, PathPattern, TriplePatternNode
from repro.sparql.evaluator import SparqlEvaluator
from repro.sparql.parser import parse_query
from repro.sparql.paths import LinkPath, OneOrMorePath
from repro.sparql.plan import evaluate_bgp, plan_bgp

from tests.helpers import EX, countries_dataset, rows_multiset

PREFIX = "PREFIX ex: <http://ex.org/>\n"


def tp(subject, predicate, obj) -> TriplePatternNode:
    return TriplePatternNode(Triple(subject, predicate, obj))


def star_graph(n_subjects: int = 50, fanout: int = 3) -> Graph:
    """Many subjects with :a / :b edges, exactly one with a :selective edge."""
    graph = Graph()
    for i in range(n_subjects):
        subject = EX[f"s{i}"]
        for j in range(fanout):
            graph.add(Triple(subject, EX.a, EX[f"a{i}_{j}"]))
            graph.add(Triple(subject, EX.b, EX[f"b{i}_{j}"]))
    graph.add(Triple(EX.s0, EX.selective, EX.target))
    return graph


class TestGraphStatistics:
    def test_cardinalities_track_adds(self):
        graph = star_graph(10, 2)
        assert graph.predicate_cardinality(EX.a) == 20
        assert graph.predicate_cardinality(EX.selective) == 1
        assert graph.subject_cardinality(EX.s0) == 5
        assert graph.object_cardinality(EX.target) == 1
        assert graph.distinct_subjects(EX.a) == 10
        assert graph.distinct_objects(EX.a) == 20
        assert graph.distinct_predicates() == 3

    def test_cardinalities_track_removes(self):
        graph = star_graph(4, 2)
        graph.remove(Triple(EX.s0, EX.selective, EX.target))
        assert graph.predicate_cardinality(EX.selective) == 0
        assert graph.distinct_predicates() == 2
        for j in range(2):
            graph.remove(Triple(EX.s1, EX.a, EX[f"a1_{j}"]))
        assert graph.distinct_subjects(EX.a) == 3
        assert graph.subject_cardinality(EX.s1) == 2  # the :b edges remain

    def test_pattern_cardinality_exact_for_every_shape(self):
        graph = countries_dataset().default_graph
        assert graph.pattern_cardinality() == 5
        assert graph.pattern_cardinality(subject=EX.france) == 2
        assert graph.pattern_cardinality(predicate=EX.borders) == 5
        assert graph.pattern_cardinality(obj=EX.germany) == 2
        assert graph.pattern_cardinality(EX.france, EX.borders) == 2
        assert graph.pattern_cardinality(None, EX.borders, EX.germany) == 2
        assert graph.pattern_cardinality(EX.spain, None, EX.france) == 1
        assert graph.pattern_cardinality(EX.spain, EX.borders, EX.france) == 1
        assert graph.pattern_cardinality(EX.spain, EX.borders, EX.austria) == 0


class TestPlanBGP:
    def test_star_selects_selective_pattern_first(self):
        graph = star_graph()
        v, x, y = Variable("v"), Variable("x"), Variable("y")
        patterns = [
            tp(v, EX.a, x),
            tp(v, EX.b, y),
            tp(v, EX.selective, EX.target),  # listed last, must run first
        ]
        plan = plan_bgp(graph, patterns)
        assert plan.order()[0] == 2
        assert plan.steps[0].estimate <= 1.0

    def test_chain_propagates_bound_variables(self):
        # ?x :p ?y . ?y :q ?z with a single :q edge: the :q pattern goes
        # first and the :p pattern is then priced as a bound probe.
        graph = Graph()
        for i in range(20):
            graph.add(Triple(EX[f"x{i}"], EX.p, EX[f"y{i}"]))
        graph.add(Triple(EX.y0, EX.q, EX.z0))
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        plan = plan_bgp(graph, [tp(x, EX.p, y), tp(y, EX.q, z)])
        assert plan.order() == [1, 0]
        # The second step's estimate reflects the bound join variable.
        assert plan.steps[1].estimate < 20

    def test_disconnected_pattern_chosen_last(self):
        graph = star_graph(10, 2)
        v, x, w, u = Variable("v"), Variable("x"), Variable("w"), Variable("u")
        patterns = [
            tp(w, EX.b, u),  # disconnected from the other two
            tp(v, EX.selective, EX.target),
            tp(v, EX.a, x),
        ]
        plan = plan_bgp(graph, patterns)
        assert plan.order()[-1] == 0

    def test_ground_pattern_is_maximally_selective(self):
        graph = countries_dataset().default_graph
        a, b = Variable("a"), Variable("b")
        plan = plan_bgp(
            graph, [tp(a, EX.borders, b), tp(EX.spain, EX.borders, EX.france)]
        )
        assert plan.order() == [1, 0]

    def test_zero_or_more_over_absent_predicate_not_priced_free(self):
        # Regression: p*/p? over a predicate with no triples was priced at
        # 0 and scheduled first, even though zero-length semantics make it
        # match every node; the selective ground pattern must go first.
        from repro.sparql.paths import ZeroOrMorePath

        graph = Graph()
        for i in range(50):
            graph.add(Triple(EX[f"s{i}"], EX.q, EX[f"o{i}"]))
        x, y = Variable("x"), Variable("y")
        patterns = [
            PathPattern(x, ZeroOrMorePath(LinkPath(EX.absent)), y),
            tp(y, EX.q, EX.o0),
        ]
        plan = plan_bgp(graph, patterns)
        assert plan.order() == [1, 0]

    def test_nested_closure_not_priced_free(self):
        # Zero-length admission propagates through inverse/alternative
        # wrappers: ^(p*) and (p*|q) still pair every node with itself.
        from repro.sparql.paths import AlternativePath, InversePath, ZeroOrMorePath

        graph = Graph()
        for i in range(50):
            graph.add(Triple(EX[f"s{i}"], EX.q, EX[f"o{i}"]))
        x, y = Variable("x"), Variable("y")
        for path in (
            InversePath(ZeroOrMorePath(LinkPath(EX.absent))),
            AlternativePath(ZeroOrMorePath(LinkPath(EX.absent)), LinkPath(EX.also_absent)),
        ):
            plan = plan_bgp(graph, [PathPattern(x, path, y), tp(y, EX.q, EX.o0)])
            assert plan.order() == [1, 0], repr(path)

    def test_explain_renders_one_line_per_step(self):
        graph = star_graph()
        v, x = Variable("v"), Variable("x")
        plan = plan_bgp(graph, [tp(v, EX.a, x), tp(v, EX.selective, EX.target)])
        explanation = plan.explain()
        assert len(explanation.splitlines()) == 2
        assert "est=" in explanation


class TestStreamingExecution:
    def test_streaming_matches_naive_join(self):
        graph = star_graph(20, 2)
        v, x, y = Variable("v"), Variable("x"), Variable("y")
        patterns = [tp(v, EX.a, x), tp(v, EX.b, y), tp(v, EX.selective, EX.target)]
        streamed = list(evaluate_bgp(graph, patterns))
        assert len(streamed) == 4  # 2 :a edges x 2 :b edges of s0
        assert all(binding[v] == EX.s0 for binding in streamed)

    def test_execution_is_lazy(self):
        class CountingGraph(Graph):
            probes = 0

            def triples(self, subject=None, predicate=None, obj=None):
                CountingGraph.probes += 1
                return super().triples(subject, predicate, obj)

        graph = CountingGraph()
        for i in range(100):
            graph.add(Triple(EX[f"s{i}"], EX.p, EX[f"o{i}"]))
        v, o = Variable("v"), Variable("o")
        stream = evaluate_bgp(graph, [tp(v, EX.p, o)])
        CountingGraph.probes = 0
        first = next(iter(stream))
        assert first is not None
        # One probe produced the first solution; the other 99 were not paid.
        assert CountingGraph.probes == 1

    def test_repeated_variable_within_pattern(self):
        graph = Graph([Triple(EX.a, EX.p, EX.a), Triple(EX.a, EX.p, EX.b)])
        x = Variable("x")
        results = list(evaluate_bgp(graph, [tp(x, EX.p, x)]))
        assert len(results) == 1
        assert results[0][x] == EX.a

    def test_path_pattern_endpoint_substitution(self):
        graph = Graph()
        for i in range(5):
            graph.add(Triple(EX[f"n{i}"], EX.next, EX[f"n{i+1}"]))
        graph.add(Triple(EX.n0, EX.start, EX.go))
        evaluator = SparqlEvaluator(Dataset.from_graph(graph))
        v, end = Variable("v"), Variable("end")
        patterns = [
            PathPattern(v, OneOrMorePath(LinkPath(EX.next)), end),
            tp(v, EX.start, EX.go),
        ]
        plan = plan_bgp(graph, patterns)
        # The selective triple pattern must be probed before the closure.
        assert plan.order() == [1, 0]
        results = list(
            evaluate_bgp(graph, patterns, path_evaluator=evaluator._eval_path_pattern)
        )
        assert {binding[end] for binding in results} == {
            EX[f"n{i}"] for i in range(1, 6)
        }
        assert all(binding[v] == EX.n0 for binding in results)


class TestZeroLengthPathSubstitution:
    def test_substituted_non_node_endpoint_yields_nothing(self):
        # Regression: substituting a bound variable into p?/p* used to make
        # the evaluator treat it like a syntactic constant, which matches
        # itself even off-graph; a variable endpoint only ranges over nodes.
        graph = Graph([Triple(EX.s, EX.a, EX.o)])
        ds = Dataset.from_graph(graph)
        query = parse_query(
            PREFIX + "SELECT ?p ?z WHERE { ?s ?p ?o . ?p ex:q? ?z }"
        )
        planned = SparqlEvaluator(ds).evaluate(query)
        naive = SparqlEvaluator(ds, use_planner=False).evaluate(query)
        assert rows_multiset(planned) == rows_multiset(naive)
        assert len(planned) == 0

    def test_repeat_and_nested_closure_zero_length_guard(self):
        # RepeatPath{0,} and p+ over a zero-admitting inner path also admit
        # zero-length matches; the substitution guard must cover them.
        graph = Graph([Triple(EX.s, EX.P, EX.o)])
        ds = Dataset.from_graph(graph)
        for path_text in ("ex:q{0,}", "(ex:q?)+", "ex:q{0,2}"):
            query = parse_query(
                PREFIX + "SELECT ?p ?z WHERE { ?s ?p ?o . ?p " + path_text + " ?z }"
            )
            planned = SparqlEvaluator(ds).evaluate(query)
            naive = SparqlEvaluator(ds, use_planner=False).evaluate(query)
            assert rows_multiset(planned) == rows_multiset(naive), path_text
            assert len(planned) == 0, path_text

    def test_substituted_node_endpoint_keeps_zero_length_match(self):
        graph = Graph([Triple(EX.s, EX.a, EX.o)])
        ds = Dataset.from_graph(graph)
        query = parse_query(
            PREFIX + "SELECT ?s ?z WHERE { ?s ?p ?o . ?s ex:q* ?z }"
        )
        planned = SparqlEvaluator(ds).evaluate(query)
        naive = SparqlEvaluator(ds, use_planner=False).evaluate(query)
        assert rows_multiset(planned) == rows_multiset(naive)
        assert (EX.s, EX.s) in planned.to_set()


class TestPlannedEvaluatorEquivalence:
    QUERIES = [
        "SELECT ?a ?c WHERE { ?a ex:borders ?b . ?b ex:borders ?c }",
        "SELECT ?a WHERE { ?a ex:borders ex:germany . ?a ex:borders ?b }",
        "SELECT ?n WHERE { ?x ex:name ?n . ?y ex:name ?n }",
        "ASK WHERE { ?a ex:borders ?b . ?b ex:borders ex:austria }",
        "SELECT ?a ?b WHERE { ?a ex:borders ?b } LIMIT 2",
    ]

    @pytest.mark.parametrize("query_text", QUERIES)
    def test_planned_equals_naive(self, query_text):
        dataset = countries_dataset()
        query = parse_query(PREFIX + query_text)
        planned = SparqlEvaluator(dataset).evaluate(query)
        naive = SparqlEvaluator(dataset, use_planner=False).evaluate(query)
        if isinstance(planned, bool):
            assert planned == naive
        elif "LIMIT" in query_text:
            # LIMIT without ORDER BY may pick different rows; compare sizes.
            assert len(planned) == len(naive)
        else:
            assert rows_multiset(planned) == rows_multiset(naive)


class TestPlanCache:
    def _two_pattern_query(self):
        return parse_query(
            PREFIX + "SELECT ?a ?c WHERE { ?a ex:borders ?b . ?b ex:borders ?c }"
        )

    def test_repeated_query_hits_cache(self):
        evaluator = SparqlEvaluator(countries_dataset())
        query = self._two_pattern_query()
        first = evaluator.evaluate(query)
        second = evaluator.evaluate(query)
        assert rows_multiset(first) == rows_multiset(second)
        assert evaluator.plan_cache_misses == 1
        assert evaluator.plan_cache_hits == 1

    def test_mutation_invalidates_cache(self):
        dataset = countries_dataset()
        evaluator = SparqlEvaluator(dataset)
        query = self._two_pattern_query()
        evaluator.evaluate(query)
        before = rows_multiset(evaluator.evaluate(query))
        dataset.default_graph.add(Triple(EX.austria, EX.borders, EX.italy))
        after = evaluator.evaluate(query)
        assert evaluator.plan_cache_misses == 2
        naive = SparqlEvaluator(dataset, use_planner=False).evaluate(query)
        assert rows_multiset(after) == rows_multiset(naive)
        assert rows_multiset(after) != before

    def test_version_stamp_semantics(self):
        graph = Graph()
        triple = Triple(EX.a, EX.p, EX.b)
        assert graph.version == 0
        graph.add(triple)
        graph.add(triple)  # idempotent re-add does not bump
        assert graph.version == 1
        graph.remove(triple)
        graph.remove(triple)  # removing a missing triple does not bump
        assert graph.version == 2

    def test_cache_is_bounded(self):
        evaluator = SparqlEvaluator(countries_dataset())
        evaluator.PLAN_CACHE_SIZE = 4
        for index in range(10):
            query = parse_query(
                PREFIX
                + f"SELECT ?a ?b WHERE {{ ?a ex:borders ?b . ?b ex:borders ex:n{index} }}"
            )
            evaluator.evaluate(query)
        assert len(evaluator._plan_cache) <= 4

    def test_distinct_graphs_cached_separately(self):
        query = self._two_pattern_query()
        first = SparqlEvaluator(countries_dataset())
        second = SparqlEvaluator(countries_dataset())
        first.evaluate(query)
        second.evaluate(query)
        assert first.plan_cache_misses == 1
        assert second.plan_cache_misses == 1
