"""Tests for the reference SPARQL evaluator (bag semantics, W3C behaviour)."""

from collections import Counter

import pytest

from repro.rdf.graph import Dataset, Graph
from repro.rdf.terms import IRI, Literal, Triple
from repro.sparql.evaluator import SparqlEvaluator
from repro.sparql.parser import parse_query

from tests.helpers import EX, countries_dataset, directors_dataset

PREFIX = "PREFIX ex: <http://ex.org/>\n"


def run(dataset, query_text):
    return SparqlEvaluator(dataset).evaluate(parse_query(PREFIX + query_text))


class TestBasicGraphPatterns:
    def test_single_triple_pattern(self):
        result = run(countries_dataset(), "SELECT ?x WHERE { ex:spain ex:borders ?x }")
        assert result.to_set() == {(EX.france,)}

    def test_join_over_shared_variable(self):
        result = run(
            countries_dataset(),
            "SELECT ?a ?c WHERE { ?a ex:borders ?b . ?b ex:borders ?c }",
        )
        assert (EX.spain, EX.belgium) in result.to_set()
        assert (EX.spain, EX.germany) in result.to_set()

    def test_same_variable_twice_in_triple(self):
        graph = Graph([Triple(EX.a, EX.p, EX.a), Triple(EX.a, EX.p, EX.b)])
        result = run(Dataset.from_graph(graph), "SELECT ?x WHERE { ?x ex:p ?x }")
        assert result.to_set() == {(EX.a,)}

    def test_empty_pattern_yields_one_row(self):
        result = run(countries_dataset(), "SELECT * WHERE { }")
        assert len(result) == 1

    def test_bag_semantics_preserves_duplicates(self):
        # ?x bound twice through different journals produces duplicate rows.
        result = run(
            directors_dataset(),
            "SELECT ?n WHERE { ?x ex:name ?n . ?y ex:name ?n }",
        )
        # George and Steven each join with themselves only -> 2 rows.
        assert len(result) == 2


class TestOptionalUnionMinus:
    def test_optional_keeps_unmatched_left_rows(self):
        result = run(
            directors_dataset(),
            "SELECT ?n ?l WHERE { ?x ex:name ?n OPTIONAL { ?x ex:lastname ?l } }",
        )
        rows = result.to_set()
        assert (Literal("George"), Literal("Lucas")) in rows
        assert (Literal("Steven"), None) in rows

    def test_optional_filter_scoping(self):
        # The filter in the OPTIONAL refers to the outer variable; rows whose
        # extension fails the filter keep the left binding with ?l unbound.
        result = run(
            directors_dataset(),
            'SELECT ?n ?l WHERE { ?x ex:name ?n OPTIONAL { ?x ex:lastname ?l FILTER (?n = "Nobody") } }',
        )
        assert result.to_set() == {
            (Literal("George"), None),
            (Literal("Steven"), None),
        }

    def test_union_concatenates_bags(self):
        result = run(
            countries_dataset(),
            "SELECT ?x WHERE { { ex:spain ex:borders ?x } UNION { ex:spain ex:borders ?x } }",
        )
        assert len(result) == 2  # duplicates preserved

    def test_union_with_disjoint_variables(self):
        result = run(
            directors_dataset(),
            "SELECT ?n ?l WHERE { { ?x ex:name ?n } UNION { ?x ex:lastname ?l } }",
        )
        rows = result.to_set()
        assert (Literal("George"), None) in rows
        assert (None, Literal("Lucas")) in rows

    def test_minus_removes_matching_rows(self):
        result = run(
            countries_dataset(),
            "SELECT ?x WHERE { ?x ex:borders ?y MINUS { ?x ex:borders ex:germany } }",
        )
        assert EX.france not in {row[0] for row in result.rows()}
        assert EX.spain in {row[0] for row in result.rows()}

    def test_minus_with_disjoint_domains_removes_nothing(self):
        result = run(
            countries_dataset(),
            "SELECT ?x WHERE { ?x ex:borders ?y MINUS { ?a ex:nothing ?b } }",
        )
        assert len(result) == 5


class TestFiltersAndModifiers:
    def test_filter_equality(self):
        result = run(
            countries_dataset(),
            "SELECT ?b WHERE { ?a ex:borders ?b FILTER (?a = ex:france) }",
        )
        assert result.to_set() == {(EX.belgium,), (EX.germany,)}

    def test_filter_regex(self):
        result = run(
            directors_dataset(),
            'SELECT ?n WHERE { ?x ex:name ?n FILTER (REGEX(?n, "^Ge")) }',
        )
        assert result.to_set() == {(Literal("George"),)}

    def test_order_by_limit_offset(self):
        result = run(
            countries_dataset(),
            "SELECT ?b WHERE { ?a ex:borders ?b } ORDER BY ?b LIMIT 2 OFFSET 1",
        )
        values = [row[0] for row in result.rows()]
        assert len(values) == 2
        assert values == sorted(values, key=lambda t: t.value)

    def test_distinct(self):
        result = run(
            countries_dataset(),
            "SELECT DISTINCT ?b WHERE { ?a ex:borders ?b . ?c ex:borders ?b }",
        )
        assert len(result) == len(result.to_set())

    def test_ask(self):
        assert run(countries_dataset(), "ASK WHERE { ex:spain ex:borders ex:france }") is True
        assert run(countries_dataset(), "ASK WHERE { ex:spain ex:borders ex:austria }") is False

    def test_group_by_count(self):
        result = run(
            countries_dataset(),
            "SELECT ?a (COUNT(?b) AS ?n) WHERE { ?a ex:borders ?b } GROUP BY ?a",
        )
        by_country = {row[0]: row[1].as_python() for row in result.rows()}
        assert by_country[EX.france] == 2
        assert by_country[EX.spain] == 1

    def test_bind(self):
        result = run(
            directors_dataset(),
            'SELECT ?n ?u WHERE { ?x ex:name ?n BIND(UCASE(?n) AS ?u) }',
        )
        rows = dict(result.rows())
        assert rows[Literal("George")] == Literal("GEORGE")

    def test_values(self):
        result = run(
            countries_dataset(),
            "SELECT ?x ?b WHERE { VALUES ?x { ex:spain ex:france } ?x ex:borders ?b }",
        )
        assert (EX.spain, EX.france) in result.to_set()
        assert all(row[0] in {EX.spain, EX.france} for row in result.rows())


class TestJoinSharedVariables:
    def test_heterogeneous_union_join_is_exact(self):
        # Regression: _join used to infer shared variables from only the
        # first 16 bindings per side, so a shared variable appearing later
        # in a heterogeneous sequence (e.g. from UNION) was missed and the
        # join silently misbehaved on large inputs.
        graph = Graph()
        for i in range(40):
            graph.add(Triple(EX[f"s{i}"], EX.p, EX[f"o{i}"]))
        graph.add(Triple(EX.special, EX.q, EX.o0))
        graph.add(Triple(EX.o0, EX.r, EX.hit))
        dataset = Dataset.from_graph(graph)
        # Left side of the join: 40 {?y} rows from ex:p plus one {?x ?y}
        # row from ex:q — the ?x variable only appears past position 16.
        result = run(
            dataset,
            "SELECT ?x ?z WHERE { "
            "{ { ?a ex:p ?y } UNION { ?x ex:q ?y } } . ?y ex:r ?z }",
        )
        assert (EX.special, EX.hit) in result.to_set()

    def test_join_with_unbound_shared_variable_on_left(self):
        result = run(
            directors_dataset(),
            "SELECT ?n ?l WHERE { "
            "{ { ?x ex:name ?n } UNION { ?y ex:lastname ?l } } . ?x ex:lastname ?l }",
        )
        rows = result.to_set()
        # The UNION row binding only ?l joins with the ?x/?l pattern.
        assert (None, Literal("Lucas")) in rows
        assert (Literal("George"), Literal("Lucas")) in rows


class TestOrderByEdgeCases:
    def _optional_dataset(self):
        return directors_dataset()

    def test_unbound_sorts_first_ascending(self):
        result = run(
            self._optional_dataset(),
            "SELECT ?n ?l WHERE { ?x ex:name ?n OPTIONAL { ?x ex:lastname ?l } } "
            "ORDER BY ?l",
        )
        rows = result.rows()
        assert rows[0][1] is None  # Steven's unbound lastname first
        assert rows[1][1] == Literal("Lucas")

    def test_unbound_sorts_last_descending(self):
        # SPARQL ranks unbound lowest and DESC reverses the whole
        # ordering, so unbound keys move to the *end* under DESC — the
        # reference-engine placement (Jena ARQ, Virtuoso).
        result = run(
            self._optional_dataset(),
            "SELECT ?n ?l WHERE { ?x ex:name ?n OPTIONAL { ?x ex:lastname ?l } } "
            "ORDER BY DESC(?l)",
        )
        rows = result.rows()
        assert rows[0][1] == Literal("Lucas")
        assert rows[-1][1] is None  # Steven's unbound lastname last under DESC

    def test_mixed_direction_keys(self):
        result = run(
            countries_dataset(),
            "SELECT ?a ?b WHERE { ?a ex:borders ?b } ORDER BY DESC(?a) ?b",
        )
        subjects = [row[0].value for row in result.rows()]
        assert subjects == sorted(subjects, reverse=True)

    def test_reversed_wrapper_rejects_foreign_comparand(self):
        from repro.sparql.evaluator import _Reversed

        with pytest.raises(TypeError):
            _Reversed((1, "a")) < (1, "a")
        assert _Reversed((1, "a")) != (1, "a")


class TestNamedGraphs:
    def _dataset(self):
        dataset = Dataset.from_graph(countries_dataset().default_graph)
        named = Graph([Triple(EX.a, EX.p, EX.b)])
        dataset.add_named_graph(IRI("http://g1"), named)
        return dataset

    def test_graph_with_iri(self):
        result = run(
            self._dataset(),
            "SELECT ?s WHERE { GRAPH <http://g1> { ?s ex:p ?o } }",
        )
        assert result.to_set() == {(EX.a,)}

    def test_graph_with_variable_binds_graph_name(self):
        result = run(
            self._dataset(),
            "SELECT ?g ?s WHERE { GRAPH ?g { ?s ex:p ?o } }",
        )
        assert result.to_set() == {(IRI("http://g1"), EX.a)}

    def test_default_graph_not_visible_inside_graph(self):
        result = run(
            self._dataset(),
            "SELECT ?s WHERE { GRAPH <http://g1> { ?s ex:borders ?o } }",
        )
        assert len(result) == 0
