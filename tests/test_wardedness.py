"""Tests for the wardedness analysis and its use on translated programs."""

from repro.datalog.rules import Atom, Negation, Program, Rule
from repro.datalog.terms import Const, Var
from repro.datalog.wardedness import (
    affected_positions,
    analyze_wardedness,
    dangerous_variables,
)
from repro.core.engine import SparqLogEngine

from tests.helpers import countries_dataset

X, Y, Z = Var("X"), Var("Y"), Var("Z")


class TestAffectedPositions:
    def test_existential_position_is_affected(self):
        program = Program()
        program.add_rule(
            Rule(Atom("p", (X, Z)), (Atom("q", (X,)),), existential_variables=(Z,))
        )
        assert ("p", 1) in affected_positions(program)
        assert ("p", 0) not in affected_positions(program)

    def test_affectedness_propagates(self):
        program = Program()
        program.add_rule(
            Rule(Atom("p", (X, Z)), (Atom("q", (X,)),), existential_variables=(Z,))
        )
        # r copies the affected position of p into its own second position.
        program.add_rule(Rule(Atom("r", (X, Y)), (Atom("p", (X, Y)),)))
        affected = affected_positions(program)
        assert ("r", 1) in affected

    def test_dangerous_variables(self):
        program = Program()
        program.add_rule(
            Rule(Atom("p", (X, Z)), (Atom("q", (X,)),), existential_variables=(Z,))
        )
        rule = Rule(Atom("s", (Y,)), (Atom("p", (X, Y)),))
        program.add_rule(rule)
        affected = affected_positions(program)
        assert dangerous_variables(rule, affected) == {Y}


class TestWardedness:
    def test_plain_datalog_is_warded(self):
        program = Program()
        program.add_rule(Rule(Atom("tc", (X, Y)), (Atom("e", (X, Y)),)))
        program.add_rule(Rule(Atom("tc", (X, Z)), (Atom("e", (X, Y)), Atom("tc", (Y, Z)))))
        assert analyze_wardedness(program).warded

    def test_single_ward_is_accepted(self):
        program = Program()
        program.add_rule(
            Rule(Atom("p", (X, Z)), (Atom("q", (X,)),), existential_variables=(Z,))
        )
        # Dangerous variable Y occurs only in the single body atom p(X, Y),
        # and the shared variable X also occurs at a non-affected position.
        program.add_rule(
            Rule(Atom("out", (Y,)), (Atom("p", (X, Y)), Atom("q", (X,))))
        )
        report = analyze_wardedness(program)
        assert report.warded, report.violations

    def test_violation_detected_when_dangerous_vars_span_atoms(self):
        program = Program()
        program.add_rule(
            Rule(Atom("p", (X, Z)), (Atom("q", (X,)),), existential_variables=(Z,))
        )
        # Y and W are both dangerous and occur in two *different* body atoms,
        # so no single atom can serve as the ward.
        W = Var("W")
        program.add_rule(
            Rule(
                Atom("bad", (Y, W)),
                (Atom("p", (X, Y)), Atom("p", (Z, W))),
            )
        )
        report = analyze_wardedness(program)
        assert not report.warded
        assert report.violations

    def test_translated_query_programs_are_warded(self):
        """Programs produced by the SparqLog translation are warded (Sect. 2.2)."""
        engine = SparqLogEngine(countries_dataset())
        queries = [
            "PREFIX ex: <http://ex.org/> SELECT ?b WHERE { ?a ex:borders+ ?b . FILTER (?a = ex:spain) }",
            "PREFIX ex: <http://ex.org/> SELECT DISTINCT ?a ?b WHERE { ?a (ex:borders|^ex:borders)* ?b }",
            "PREFIX ex: <http://ex.org/> SELECT ?a WHERE { ?a ex:borders ?b OPTIONAL { ?b ex:borders ?c } }",
            "PREFIX ex: <http://ex.org/> ASK WHERE { ex:spain ex:borders ?x }",
        ]
        for query in queries:
            program, _ = engine.translate(query)
            report = analyze_wardedness(program)
            assert report.warded, report.violations
