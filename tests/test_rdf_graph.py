"""Unit tests for graphs and datasets."""

import pytest

from repro.rdf.graph import Dataset, Graph
from repro.rdf.terms import IRI, Literal, Triple, Variable

from tests.helpers import EX, countries_graph


class TestGraph:
    def test_add_and_len(self):
        graph = Graph()
        graph.add(Triple(EX.a, EX.p, EX.b))
        graph.add(Triple(EX.a, EX.p, EX.b))  # duplicate ignored
        assert len(graph) == 1

    def test_add_rejects_non_ground_triples(self):
        graph = Graph()
        with pytest.raises(ValueError):
            graph.add(Triple(Variable("x"), EX.p, EX.b))

    def test_contains_and_iteration(self):
        triple = Triple(EX.a, EX.p, EX.b)
        graph = Graph([triple])
        assert triple in graph
        assert list(graph) == [triple]

    def test_pattern_matching_all_index_shapes(self):
        graph = countries_graph()
        assert len(list(graph.triples(EX.spain, None, None))) == 1
        assert len(list(graph.triples(None, EX.borders, None))) == 5
        assert len(list(graph.triples(None, None, EX.germany))) == 2
        assert len(list(graph.triples(EX.france, EX.borders, None))) == 2
        assert len(list(graph.triples(None, EX.borders, EX.germany))) == 2
        assert len(list(graph.triples(EX.spain, None, EX.france))) == 1
        assert len(list(graph.triples(EX.spain, EX.borders, EX.france))) == 1
        assert len(list(graph.triples(None, None, None))) == 5

    def test_pattern_matching_misses(self):
        graph = countries_graph()
        assert list(graph.triples(EX.austria, EX.borders, None)) == []
        assert list(graph.triples(None, EX.unknown, None)) == []

    def test_remove(self):
        graph = countries_graph()
        graph.remove(Triple(EX.spain, EX.borders, EX.france))
        assert len(graph) == 4
        assert list(graph.triples(EX.spain, None, None)) == []
        # removing again is a no-op
        graph.remove(Triple(EX.spain, EX.borders, EX.france))
        assert len(graph) == 4

    def test_remove_prunes_index_shells(self):
        # Regression: remove() used to leave empty inner sets and dict
        # shells behind, so term accessors reported stale terms and memory
        # grew monotonically under add/remove churn.
        graph = Graph()
        triple = Triple(EX.a, EX.p, EX.b)
        graph.add(triple)
        graph.remove(triple)
        assert graph.subjects() == set()
        assert graph.predicates() == set()
        assert graph.objects() == set()
        assert graph.terms() == set()
        assert graph.nodes() == set()
        assert graph._spo == {} and graph._pos == {} and graph._osp == {}

    def test_remove_churn_keeps_memory_bounded(self):
        graph = Graph()
        for i in range(200):
            triple = Triple(EX[f"s{i}"], EX.p, EX[f"o{i}"])
            graph.add(triple)
            graph.remove(triple)
        assert len(graph) == 0
        assert len(graph._spo) == 0
        assert len(graph._pos) == 0
        assert len(graph._osp) == 0
        assert graph.predicate_cardinality(EX.p) == 0

    def test_remove_keeps_sibling_entries(self):
        graph = countries_graph()
        graph.remove(Triple(EX.france, EX.borders, EX.belgium))
        assert EX.france in graph.subjects()  # still borders germany
        assert EX.belgium not in graph.objects()
        assert graph.objects_for(EX.france, EX.borders) == {EX.germany}

    def test_subjects_predicates_objects(self):
        graph = countries_graph()
        assert EX.spain in graph.subjects()
        assert graph.predicates() == {EX.borders}
        assert EX.austria in graph.objects()

    def test_nodes_excludes_predicates(self):
        graph = countries_graph()
        assert EX.borders not in graph.nodes()
        assert EX.spain in graph.nodes()

    def test_copy_is_independent(self):
        graph = countries_graph()
        clone = graph.copy()
        clone.add(Triple(EX.austria, EX.borders, EX.italy))
        assert len(graph) == 5
        assert len(clone) == 6

    def test_objects_for_and_subjects_for(self):
        graph = countries_graph()
        assert graph.objects_for(EX.france, EX.borders) == {EX.belgium, EX.germany}
        assert graph.subjects_for(EX.borders, EX.germany) == {EX.france, EX.belgium}


class TestDataset:
    def test_default_graph_wrapping(self):
        graph = countries_graph()
        dataset = Dataset.from_graph(graph)
        assert dataset.graph() is graph
        assert len(dataset) == 5

    def test_named_graphs(self):
        dataset = Dataset()
        named = Graph([Triple(EX.a, EX.p, EX.b)])
        dataset.add_named_graph(IRI("http://g1"), named)
        assert dataset.graph(IRI("http://g1")) is named
        assert dataset.names() == {IRI("http://g1")}
        # unknown graph name yields an empty graph
        assert len(dataset.graph(IRI("http://nope"))) == 0

    def test_quads_iteration(self):
        dataset = Dataset.from_graph(countries_graph())
        dataset.add_named_graph(IRI("http://g1"), Graph([Triple(EX.a, EX.p, EX.b)]))
        quads = list(dataset.quads())
        assert len(quads) == 6
        names = {name for _, name in quads}
        assert names == {None, IRI("http://g1")}

    def test_copy_deep(self):
        dataset = Dataset.from_graph(countries_graph())
        clone = dataset.copy()
        clone.default_graph.add(Triple(EX.x, EX.p, EX.y))
        assert len(dataset.default_graph) == 5
