"""Tests for the compliance framework (metrics, classification, voting)."""

from collections import Counter

import pytest

from repro.compliance.compare import (
    ComparisonOutcome,
    classify_result,
    completeness,
    correctness,
    majority_vote,
    results_equal,
)
from repro.compliance.runner import ComplianceRunner
from repro.baselines.native import NativeSparqlEngine
from repro.baselines.virtuoso_like import VirtuosoLikeEngine
from repro.core.engine import SparqLogEngine
from repro.rdf.terms import BlankNode, IRI, Literal, Variable
from repro.sparql.solutions import Binding, SolutionSequence
from repro.workloads.beseppi import BeSEPPIWorkload

from tests.helpers import countries_dataset


def sequence(rows):
    variables = [Variable("x")]
    bindings = [Binding({Variable("x"): value}) for value in rows]
    return SolutionSequence(variables, bindings)


A, B, C = IRI("http://a"), IRI("http://b"), IRI("http://c")


class TestMetrics:
    def test_correctness_and_completeness_perfect_match(self):
        actual, expected = sequence([A, B]), sequence([B, A])
        assert correctness(actual, expected) == 1.0
        assert completeness(actual, expected) == 1.0
        assert classify_result(actual, expected) is ComparisonOutcome.CORRECT

    def test_incomplete_but_correct(self):
        actual, expected = sequence([A]), sequence([A, B])
        assert correctness(actual, expected) == 1.0
        assert completeness(actual, expected) == 0.5
        assert classify_result(actual, expected) is ComparisonOutcome.INCOMPLETE_CORRECT

    def test_complete_but_incorrect(self):
        actual, expected = sequence([A, B, C]), sequence([A, B])
        assert classify_result(actual, expected) is ComparisonOutcome.COMPLETE_INCORRECT

    def test_incomplete_and_incorrect(self):
        actual, expected = sequence([A, C]), sequence([A, B])
        assert classify_result(actual, expected) is ComparisonOutcome.INCOMPLETE_INCORRECT

    def test_error_classification(self):
        assert classify_result(None, sequence([A]), errored=True) is ComparisonOutcome.ERROR

    def test_duplicates_matter(self):
        actual, expected = sequence([A]), sequence([A, A])
        assert classify_result(actual, expected) is ComparisonOutcome.INCOMPLETE_CORRECT

    def test_empty_results(self):
        assert correctness(sequence([]), sequence([])) == 1.0
        assert completeness(sequence([]), sequence([])) == 1.0

    def test_boolean_results(self):
        assert classify_result(True, True) is ComparisonOutcome.CORRECT
        assert classify_result(False, True) is ComparisonOutcome.INCOMPLETE_INCORRECT

    def test_expected_as_counter(self):
        expected = Counter({(A,): 2, (B,): 1})
        assert classify_result(sequence([A, A, B]), expected) is ComparisonOutcome.CORRECT

    def test_blank_nodes_compare_equal_regardless_of_label(self):
        left = sequence([BlankNode("x1")])
        right = sequence([BlankNode("y9")])
        assert results_equal(left, right)


class TestMajorityVote:
    def test_two_out_of_three(self):
        winner = majority_vote([sequence([A]), sequence([A]), sequence([B])])
        assert results_equal(winner, sequence([A]))

    def test_errors_do_not_vote(self):
        winner = majority_vote([None, sequence([A]), sequence([A])])
        assert results_equal(winner, sequence([A]))

    def test_no_majority_falls_back_to_first(self):
        winner = majority_vote([sequence([A]), sequence([B]), sequence([C])])
        assert results_equal(winner, sequence([A]))

    def test_all_errors(self):
        assert majority_vote([None, None]) is None


class TestRunner:
    def test_beseppi_runner_on_sample(self):
        workload = BeSEPPIWorkload()
        queries = workload.queries()[:8]
        engines = [
            NativeSparqlEngine(workload.dataset()),
            SparqLogEngine(workload.dataset(), timeout_seconds=20),
        ]
        report = ComplianceRunner(engines).run_with_expected("BeSEPPI", queries)
        assert report.total_queries() == len(queries)
        for engine in engines:
            assert report.correct_count(engine.name) == len(queries)

    def test_majority_vote_runner(self):
        from repro.workloads.sp2bench import BenchmarkQuery

        queries = [
            BenchmarkQuery(
                "mv-1",
                "PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ex:spain ex:borders ?x }",
                ("BGP",),
            )
        ]
        dataset = countries_dataset()
        engines = [
            NativeSparqlEngine(dataset),
            VirtuosoLikeEngine(dataset),
            SparqLogEngine(dataset, timeout_seconds=20),
        ]
        report = ComplianceRunner(engines).run_with_majority_vote("tiny", queries)
        for engine in engines:
            assert report.correct_count(engine.name) == 1
