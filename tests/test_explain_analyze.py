"""Golden tests for ``SparqlEvaluator.explain_analyze``.

The rendered tree is deterministic except for wall-clock times, which a
normalisation regex blanks out; everything else — operator structure,
join-order, estimated cardinalities, actual rows/probes and the
estimated-vs-actual error column — is compared verbatim against golden
text in both execution spaces.  Separate tests cover the misestimate
flag (``!`` beyond 10x error), the WCOJ-fallback footer, string-input
parsing, the report surface and rejection of non-BGP forms.
"""

import re

import pytest

from repro.rdf.graph import Dataset, Graph
from repro.rdf.terms import Triple
from repro.sparql.evaluator import EvaluationError, SparqlEvaluator
from repro.sparql.parser import parse_query
from repro.store import EncodedGraph

from tests.helpers import EX

PREFIX = "PREFIX ex: <http://ex.org/>\n"

_TRIPLES = [
    Triple(EX.s1, EX.p, EX.a),
    Triple(EX.s1, EX.q, EX.b),
    Triple(EX.s1, EX.r, EX.c),
    Triple(EX.s2, EX.p, EX.a),
    Triple(EX.s2, EX.q, EX.b),
    Triple(EX.a, EX.p, EX.b),
    Triple(EX.b, EX.p, EX.c),
    Triple(EX.c, EX.p, EX.a),
]

_STAR = PREFIX + "SELECT * WHERE { ?s ex:p ?a . ?s ex:q ?b . ?s ex:r ?c }"
_TRIANGLE = PREFIX + "SELECT * WHERE { ?a ex:p ?b . ?b ex:p ?c . ?c ex:p ?a }"

_GOLDEN = {
    ("term", "star"): """\
EXPLAIN ANALYZE (term space) total=_
└─ Project [?a, ?b, ?c, ?s] decode=term | time=_ rows=1 probes=0
   └─ IndexNestedLoopJoin steps=3 | time=_ rows=1 probes=0
      ├─ Scan TP(?s <http://ex.org/r> ?c) est=1 | time=_ rows=1 probes=1 actual=1/probe err=1x
      ├─ Scan TP(?s <http://ex.org/p> ?a) est=1 | time=_ rows=1 probes=1 actual=1/probe err=1x
      └─ Scan TP(?s <http://ex.org/q> ?b) est=1 | time=_ rows=1 probes=1 actual=1/probe err=1x""",
    ("term", "triangle"): """\
EXPLAIN ANALYZE (term space) total=_
└─ Project [?a, ?b, ?c] decode=term | time=_ rows=3 probes=0
   └─ IndexNestedLoopJoin steps=3 | time=_ rows=3 probes=0
      ├─ Scan TP(?a <http://ex.org/p> ?b) est=5 | time=_ rows=5 probes=1 actual=5/probe err=1x
      ├─ Scan TP(?b <http://ex.org/p> ?c) est=1 | time=_ rows=5 probes=5 actual=1/probe err=1x
      └─ Scan TP(?c <http://ex.org/p> ?a) est=0.333333 | time=_ rows=3 probes=5 actual=0.6/probe err=0.56x""",
    ("id", "star"): """\
EXPLAIN ANALYZE (id space) total=_
└─ Project [?a, ?b, ?c, ?s] decode=id | time=_ rows=1 probes=0
   └─ IndexNestedLoopJoin steps=3 | time=_ rows=1 probes=0
      ├─ Scan TP(?s <http://ex.org/r> ?c) est=1 | time=_ rows=1 probes=1 actual=1/probe err=1x
      ├─ Scan TP(?s <http://ex.org/p> ?a) est=1 | time=_ rows=1 probes=1 actual=1/probe err=1x
      └─ Scan TP(?s <http://ex.org/q> ?b) est=1 | time=_ rows=1 probes=1 actual=1/probe err=1x""",
    ("id", "triangle"): """\
EXPLAIN ANALYZE (id space) total=_
└─ Project [?a, ?b, ?c] decode=id | time=_ rows=3 probes=0
   └─ LeapfrogJoin order=[?a, ?b, ?c] | time=_ rows=3 probes=0
      ├─ Scan TP(?a <http://ex.org/p> ?b) est=5 | time=_ rows=8 probes=4 actual=2/probe err=2.5x
      ├─ Scan TP(?b <http://ex.org/p> ?c) est=1 | time=_ rows=18 probes=6 actual=3/probe err=0.33x
      └─ Scan TP(?c <http://ex.org/p> ?a) est=0.333333 | time=_ rows=8 probes=4 actual=2/probe err=0.17x""",
}


def _normalize(text: str) -> str:
    """Blank out wall-clock times; everything else must match exactly."""
    return re.sub(r"(time|total)=\d+(\.\d+)?ms", r"\1=_", text)


def _evaluator(graph_cls) -> SparqlEvaluator:
    return SparqlEvaluator(Dataset.from_graph(graph_cls(_TRIPLES)))


@pytest.mark.parametrize("graph_cls", [Graph, EncodedGraph], ids=["term", "id"])
@pytest.mark.parametrize("query_name", ["star", "triangle"])
def test_explain_analyze_golden(graph_cls, query_name):
    space = "term" if graph_cls is Graph else "id"
    query = _STAR if query_name == "star" else _TRIANGLE
    report = _evaluator(graph_cls).explain_analyze(query)
    assert _normalize(report.text) == _GOLDEN[(space, query_name)]


def test_report_surface():
    report = _evaluator(EncodedGraph).explain_analyze(_TRIANGLE)
    assert report.rows == 3
    assert report.total_seconds > 0.0
    assert str(report) == report.text
    assert report.plan is not None
    # analysis() carries the same numbers the rendering shows.
    entries = report.plan.analysis()
    scans = [entry for entry in entries if entry["operator"] == "Scan"]
    assert len(scans) == 3
    assert all(entry.get("est_error") is not None for entry in scans)


def test_accepts_parsed_queries_too():
    text_report = _evaluator(Graph).explain_analyze(_STAR)
    parsed_report = _evaluator(Graph).explain_analyze(parse_query(_STAR))
    assert _normalize(parsed_report.text) == _normalize(text_report.text)


def test_misestimate_beyond_10x_is_flagged():
    # A hub: 60 spokes in, 60 spokes out.  The uniform per-probe estimate
    # for the second chain step is tiny, but every probe that reaches the
    # hub fans out to all 60 successors — an estimation error well beyond
    # the 10x flagging threshold.
    triples = []
    for i in range(60):
        triples.append(Triple(EX[f"a{i}"], EX.p, EX.hub))
        triples.append(Triple(EX.hub, EX.p, EX[f"c{i}"]))
    evaluator = SparqlEvaluator(Dataset.from_graph(EncodedGraph(triples)))
    report = evaluator.explain_analyze(
        PREFIX + "SELECT * WHERE { ?x ex:p ?y . ?y ex:p ?z }"
    )
    assert " !" in report.text
    flagged = [
        entry for entry in report.plan.analysis() if entry.get("flagged")
    ]
    assert flagged
    assert any(entry["est_error"] < 0.1 for entry in flagged)


def test_wcoj_fallback_footer():
    evaluator = _evaluator(EncodedGraph)
    report = evaluator.explain_analyze(
        PREFIX + "SELECT * WHERE { ?a ?p ?b . ?b ?p ?c . ?c ?p ?a }"
    )
    assert report.text.rstrip().endswith("-- wcoj fallback: variable predicate")


def test_non_bgp_forms_are_rejected():
    evaluator = _evaluator(Graph)
    union = PREFIX + (
        "SELECT * WHERE { { ?s ex:p ?a } UNION { ?s ex:q ?a } }"
    )
    with pytest.raises(EvaluationError):
        evaluator.explain_analyze(union)
