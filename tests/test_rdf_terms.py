"""Unit tests for the RDF term model."""

import pytest

from repro.rdf.terms import (
    BlankNode,
    IRI,
    Literal,
    RDF,
    Triple,
    Variable,
    XSD,
    XSD_BOOLEAN,
    XSD_INTEGER,
    XSD_STRING,
    term_sort_key,
)


class TestIRI:
    def test_equality_by_value(self):
        assert IRI("http://ex.org/a") == IRI("http://ex.org/a")
        assert IRI("http://ex.org/a") != IRI("http://ex.org/b")

    def test_hashable(self):
        assert len({IRI("http://ex.org/a"), IRI("http://ex.org/a")}) == 1

    def test_n3_serialisation(self):
        assert IRI("http://ex.org/a").n3() == "<http://ex.org/a>"

    def test_namespace_constants(self):
        assert RDF.type.value.endswith("#type")
        assert XSD.integer.value.endswith("#integer")


class TestLiteral:
    def test_plain_literal_defaults_to_no_datatype(self):
        literal = Literal("hello")
        assert literal.datatype is None
        assert literal.effective_datatype == XSD_STRING

    def test_language_tag_forces_langstring_datatype(self):
        literal = Literal("bonjour", language="fr")
        assert literal.language == "fr"
        assert literal.effective_datatype.value.endswith("#langString")

    def test_numeric_conversion(self):
        assert Literal("42", XSD_INTEGER).as_python() == 42
        assert Literal("3.5", IRI("http://www.w3.org/2001/XMLSchema#double")).as_python() == 3.5

    def test_boolean_conversion(self):
        assert Literal("true", XSD_BOOLEAN).as_python() is True
        assert Literal("false", XSD_BOOLEAN).as_python() is False

    def test_from_python_round_trip(self):
        assert Literal.from_python(7).as_python() == 7
        assert Literal.from_python(2.5).as_python() == 2.5
        assert Literal.from_python(True).as_python() is True
        assert Literal.from_python("x").lexical == "x"

    def test_is_numeric(self):
        assert Literal("1", XSD_INTEGER).is_numeric()
        assert not Literal("1").is_numeric()

    def test_n3_escapes_quotes_and_newlines(self):
        literal = Literal('say "hi"\n')
        assert '\\"' in literal.n3()
        assert "\\n" in literal.n3()

    def test_typed_literal_n3_includes_datatype(self):
        assert "^^" in Literal("5", XSD_INTEGER).n3()

    def test_malformed_numeric_falls_back_to_lexical(self):
        assert Literal("not-a-number", XSD_INTEGER).as_python() == "not-a-number"


class TestTriple:
    def test_iteration_order(self):
        triple = Triple(IRI("s"), IRI("p"), IRI("o"))
        assert list(triple) == [IRI("s"), IRI("p"), IRI("o")]

    def test_is_ground(self):
        assert Triple(IRI("s"), IRI("p"), IRI("o")).is_ground()
        assert not Triple(Variable("s"), IRI("p"), IRI("o")).is_ground()

    def test_variables(self):
        triple = Triple(Variable("s"), IRI("p"), Variable("o"))
        assert triple.variables() == {Variable("s"), Variable("o")}


class TestTermSortKey:
    def test_blank_nodes_sort_before_iris_before_literals(self):
        keys = [
            term_sort_key(BlankNode("b")),
            term_sort_key(IRI("http://a")),
            term_sort_key(Literal("x")),
        ]
        assert keys == sorted(keys)

    def test_numeric_literals_sort_numerically(self):
        two = term_sort_key(Literal("2", XSD_INTEGER))
        ten = term_sort_key(Literal("10", XSD_INTEGER))
        assert two < ten

    def test_none_sorts_first(self):
        assert term_sort_key(None) < term_sort_key(BlankNode("b"))
