"""Tests for filter expressions, built-in functions and EBV semantics."""

import pytest

from repro.rdf.terms import BlankNode, IRI, Literal, Variable, XSD_BOOLEAN, XSD_INTEGER
from repro.sparql.expressions import (
    And,
    Arithmetic,
    Comparison,
    FunctionCall,
    InExpr,
    Not,
    Or,
    TermExpr,
    UnaryMinus,
    VariableExpr,
    evaluate,
    satisfies,
)
from repro.sparql.functions import (
    ExpressionError,
    apply_function,
    effective_boolean_value,
    numeric_value,
    term_compare,
)
from repro.sparql.solutions import Binding

X = Variable("x")
Y = Variable("y")


def _binding(**values):
    return Binding({Variable(name): value for name, value in values.items()})


def lit(value) -> Literal:
    return Literal.from_python(value)


class TestEffectiveBooleanValue:
    def test_boolean_literals(self):
        assert effective_boolean_value(Literal("true", XSD_BOOLEAN)) is True
        assert effective_boolean_value(Literal("false", XSD_BOOLEAN)) is False

    def test_numbers(self):
        assert effective_boolean_value(lit(1)) is True
        assert effective_boolean_value(lit(0)) is False

    def test_strings(self):
        assert effective_boolean_value(Literal("x")) is True
        assert effective_boolean_value(Literal("")) is False

    def test_iri_has_no_ebv(self):
        with pytest.raises(ExpressionError):
            effective_boolean_value(IRI("http://x"))


class TestTermCompare:
    def test_numeric_equality_across_datatypes(self):
        assert term_compare("=", lit(2), Literal("2.0", IRI("http://www.w3.org/2001/XMLSchema#double")))

    def test_string_ordering(self):
        assert term_compare("<", Literal("abc"), Literal("abd"))

    def test_numeric_ordering(self):
        assert term_compare(">", lit(10), lit(2))

    def test_iri_equality(self):
        assert term_compare("=", IRI("http://a"), IRI("http://a"))
        assert term_compare("!=", IRI("http://a"), IRI("http://b"))

    def test_incomparable_raise(self):
        with pytest.raises(ExpressionError):
            term_compare("<", IRI("http://a"), lit(1))


class TestFunctions:
    def test_str_lang_datatype(self):
        assert apply_function("STR", [IRI("http://a")]).lexical == "http://a"
        assert apply_function("LANG", [Literal("chat", language="fr")]).lexical == "fr"
        assert apply_function("DATATYPE", [lit(3)]) == XSD_INTEGER

    def test_term_tests(self):
        assert apply_function("ISIRI", [IRI("http://a")]).lexical == "true"
        assert apply_function("ISBLANK", [BlankNode("b")]).lexical == "true"
        assert apply_function("ISLITERAL", [lit(1)]).lexical == "true"
        assert apply_function("ISNUMERIC", [Literal("x")]).lexical == "false"

    def test_regex(self):
        assert apply_function("REGEX", [Literal("Hello"), Literal("^h"), Literal("i")]).lexical == "true"
        assert apply_function("REGEX", [Literal("Hello"), Literal("^x")]).lexical == "false"

    def test_regex_malformed_pattern_errors(self):
        with pytest.raises(ExpressionError):
            apply_function("REGEX", [Literal("a"), Literal("(")])

    def test_string_functions(self):
        assert apply_function("UCASE", [Literal("abc")]).lexical == "ABC"
        assert apply_function("LCASE", [Literal("ABC")]).lexical == "abc"
        assert apply_function("STRLEN", [Literal("abcd")]).as_python() == 4
        assert apply_function("CONTAINS", [Literal("abcd"), Literal("bc")]).lexical == "true"
        assert apply_function("STRSTARTS", [Literal("abcd"), Literal("ab")]).lexical == "true"
        assert apply_function("STRENDS", [Literal("abcd"), Literal("cd")]).lexical == "true"
        assert apply_function("SUBSTR", [Literal("abcd"), lit(2), lit(2)]).lexical == "bc"
        assert apply_function("CONCAT", [Literal("ab"), Literal("cd")]).lexical == "abcd"
        assert apply_function("REPLACE", [Literal("abab"), Literal("a"), Literal("x")]).lexical == "xbxb"

    def test_numeric_functions(self):
        assert apply_function("ABS", [lit(-3)]).as_python() == 3
        assert apply_function("CEIL", [lit(2.1)]).as_python() == 3
        assert apply_function("FLOOR", [lit(2.9)]).as_python() == 2
        assert apply_function("ROUND", [lit(2.5)]).as_python() == 2

    def test_unknown_function_errors(self):
        with pytest.raises(ExpressionError):
            apply_function("NOPE", [lit(1)])


class TestExpressionEvaluation:
    def test_comparison_over_binding(self):
        expression = Comparison(">", VariableExpr(X), TermExpr(lit(3)))
        assert satisfies(expression, _binding(x=lit(5)))
        assert not satisfies(expression, _binding(x=lit(2)))

    def test_unbound_variable_is_error_not_match(self):
        expression = Comparison("=", VariableExpr(X), TermExpr(lit(3)))
        assert not satisfies(expression, _binding())

    def test_bound_function(self):
        expression = FunctionCall("BOUND", (VariableExpr(X),))
        assert satisfies(expression, _binding(x=lit(1)))
        assert not satisfies(expression, _binding())

    def test_arithmetic(self):
        expression = Comparison(
            "=", Arithmetic("+", VariableExpr(X), TermExpr(lit(2))), TermExpr(lit(5))
        )
        assert satisfies(expression, _binding(x=lit(3)))

    def test_division_by_zero_is_error(self):
        expression = Arithmetic("/", TermExpr(lit(1)), TermExpr(lit(0)))
        with pytest.raises(ExpressionError):
            evaluate(expression, _binding())

    def test_unary_minus(self):
        expression = UnaryMinus(VariableExpr(X))
        assert evaluate(expression, _binding(x=lit(4))).as_python() == -4

    def test_and_or_error_absorption(self):
        # false && error  -> false ; true || error -> true  (SPARQL 3-valued logic)
        error_expr = Comparison("=", VariableExpr(Y), TermExpr(lit(1)))  # y unbound
        false_expr = TermExpr(Literal("false", XSD_BOOLEAN))
        true_expr = TermExpr(Literal("true", XSD_BOOLEAN))
        assert not satisfies(And(false_expr, error_expr), _binding())
        assert satisfies(Or(true_expr, error_expr), _binding())
        # error && true -> error -> filter drops the row
        assert not satisfies(And(error_expr, true_expr), _binding())

    def test_not(self):
        assert satisfies(Not(TermExpr(Literal("false", XSD_BOOLEAN))), _binding())

    def test_in_and_not_in(self):
        expression = InExpr(VariableExpr(X), (TermExpr(lit(1)), TermExpr(lit(2))))
        assert satisfies(expression, _binding(x=lit(2)))
        negated = InExpr(VariableExpr(X), (TermExpr(lit(1)),), negated=True)
        assert satisfies(negated, _binding(x=lit(2)))

    def test_coalesce_and_if(self):
        coalesce = FunctionCall("COALESCE", (VariableExpr(Y), TermExpr(lit(7))))
        assert evaluate(coalesce, _binding()).as_python() == 7
        conditional = FunctionCall(
            "IF",
            (Comparison(">", VariableExpr(X), TermExpr(lit(0))),
             TermExpr(Literal("pos")), TermExpr(Literal("neg"))),
        )
        assert evaluate(conditional, _binding(x=lit(3))).lexical == "pos"

    def test_variables_collection(self):
        expression = And(
            Comparison("=", VariableExpr(X), VariableExpr(Y)),
            FunctionCall("BOUND", (VariableExpr(X),)),
        )
        assert expression.variables() == {X, Y}


class TestBinding:
    def test_merge_and_compatibility(self):
        left = _binding(x=lit(1))
        right = _binding(y=lit(2))
        merged = left.merge(right)
        assert merged[X] == lit(1)
        assert merged[Y] == lit(2)

    def test_incompatible(self):
        assert not _binding(x=lit(1)).is_compatible(_binding(x=lit(2)))
        assert _binding(x=lit(1)).is_compatible(_binding(x=lit(1), y=lit(3)))

    def test_project_and_extend(self):
        binding = _binding(x=lit(1), y=lit(2))
        assert binding.project([X]).variables() == {X}
        assert binding.extend(Variable("z"), lit(9))[Variable("z")] == lit(9)

    def test_equality_and_hash(self):
        assert _binding(x=lit(1)) == _binding(x=lit(1))
        assert hash(_binding(x=lit(1))) == hash(_binding(x=lit(1)))
        assert _binding(x=lit(1)) != _binding(x=lit(2))
