"""Tests for the baseline engines and their documented behaviour profiles."""

import pytest

from repro.baselines.interface import EngineError
from repro.baselines.native import NativeSparqlEngine
from repro.baselines.stardog_like import StardogLikeEngine
from repro.baselines.virtuoso_like import VirtuosoLikeEngine
from repro.rdf.graph import Dataset, Graph
from repro.rdf.terms import RDF, Triple

from tests.helpers import EX, countries_dataset
from tests.test_ontology import university_graph, university_ontology

PREFIX = "PREFIX ex: <http://ex.org/>\n"


class TestNativeEngine:
    def test_select_and_ask(self):
        engine = NativeSparqlEngine(countries_dataset())
        result = engine.query(PREFIX + "SELECT ?x WHERE { ex:spain ex:borders ?x }")
        assert result.to_set() == {(EX.france,)}
        assert engine.query(PREFIX + "ASK WHERE { ex:spain ex:borders ex:france }") is True

    def test_parse_errors_become_engine_errors(self):
        engine = NativeSparqlEngine(countries_dataset())
        with pytest.raises(EngineError):
            engine.query("SELECT WHERE {")

    def test_load_replaces_dataset(self):
        engine = NativeSparqlEngine(countries_dataset())
        engine.load(Dataset.from_graph(Graph()))
        assert len(engine.query(PREFIX + "SELECT ?x ?y WHERE { ?x ex:borders ?y }")) == 0


class TestVirtuosoLikeDeviations:
    def test_two_variable_recursive_path_errors(self):
        engine = VirtuosoLikeEngine(countries_dataset())
        with pytest.raises(EngineError, match="transitive start"):
            engine.query(PREFIX + "SELECT ?x ?y WHERE { ?x ex:borders+ ?y }")

    def test_bound_subject_recursive_path_still_works(self):
        engine = VirtuosoLikeEngine(countries_dataset())
        result = engine.query(PREFIX + "SELECT ?x WHERE { ex:spain ex:borders+ ?x }")
        assert (EX.austria,) in result.to_set()

    def test_one_or_more_drops_cycle_start_node(self):
        cyclic = Graph(
            [
                Triple(EX.a, EX.p, EX.b),
                Triple(EX.b, EX.p, EX.c),
                Triple(EX.c, EX.p, EX.a),
            ]
        )
        virtuoso = VirtuosoLikeEngine(Dataset.from_graph(cyclic))
        native = NativeSparqlEngine(Dataset.from_graph(cyclic))
        correct = native.query(PREFIX + "SELECT ?x WHERE { ex:a ex:p+ ?x }")
        deviant = virtuoso.query(PREFIX + "SELECT ?x WHERE { ex:a ex:p+ ?x }")
        assert (EX.a,) in correct.to_set()
        assert (EX.a,) not in deviant.to_set()
        assert deviant.to_set() < correct.to_set()

    def test_alternative_path_loses_duplicates(self):
        virtuoso = VirtuosoLikeEngine(countries_dataset())
        native = NativeSparqlEngine(countries_dataset())
        query = PREFIX + "SELECT ?x WHERE { ex:spain (ex:borders|ex:borders) ?x }"
        assert len(native.query(query)) == 2
        assert len(virtuoso.query(query)) == 1

    def test_union_duplicates_omitted(self):
        virtuoso = VirtuosoLikeEngine(countries_dataset())
        query = (
            PREFIX
            + "SELECT ?x WHERE { { ex:spain ex:borders ?x } UNION { ex:spain ex:borders ?x } }"
        )
        assert len(virtuoso.query(query)) == 1

    def test_non_path_queries_are_standard(self):
        virtuoso = VirtuosoLikeEngine(countries_dataset())
        native = NativeSparqlEngine(countries_dataset())
        query = PREFIX + "SELECT ?a ?b WHERE { ?a ex:borders ?b FILTER (?a != ex:spain) }"
        assert virtuoso.query(query).to_set() == native.query(query).to_set()


class TestStardogLike:
    def test_materialised_reasoning(self):
        engine = StardogLikeEngine(
            Dataset.from_graph(university_graph()), ontology=university_ontology()
        )
        result = engine.query(
            PREFIX
            + "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
            + "SELECT ?x WHERE { ?x rdf:type ex:Person }"
        )
        assert {row[0] for row in result.rows()} == {EX.alice, EX.bob}

    def test_reload_invalidates_materialisation(self):
        engine = StardogLikeEngine(
            Dataset.from_graph(university_graph()), ontology=university_ontology()
        )
        engine.load(Dataset.from_graph(Graph()))
        result = engine.query(
            PREFIX
            + "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
            + "SELECT ?x WHERE { ?x rdf:type ex:Person }"
        )
        assert len(result) == 0

    def test_agrees_with_sparqlog_under_ontology(self):
        from repro.core.engine import SparqLogEngine
        from repro.compliance.compare import results_equal

        dataset = Dataset.from_graph(university_graph())
        ontology = university_ontology()
        stardog = StardogLikeEngine(dataset, ontology=ontology)
        sparqlog = SparqLogEngine(dataset, ontology=ontology)
        queries = [
            "SELECT ?x WHERE { ?x rdf:type ex:Person }",
            "SELECT ?x ?y WHERE { ?x ex:involvedIn ?y }",
            "SELECT DISTINCT ?x ?y WHERE { ?x ex:involvedIn/^ex:involvedIn ?y }",
        ]
        full_prefix = PREFIX + "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
        for query in queries:
            assert results_equal(stardog.query(full_prefix + query), sparqlog.query(full_prefix + query))
