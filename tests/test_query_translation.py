"""Tests for the query translation T_Q (Figure 5 / Appendix A.2–A.4)."""

import pytest

from repro.core.query_translation import (
    QueryTranslator,
    TranslationResult,
    UnsupportedFeatureError,
)
from repro.core.engine import SparqLogEngine
from repro.datalog.rules import Assignment, Atom, FilterCondition, Negation
from repro.rdf.terms import Literal, Variable
from repro.sparql.parser import parse_query

from tests.helpers import countries_dataset, directors_dataset

PREFIX = "PREFIX ex: <http://ex.org/>\n"


def translate(query_text: str) -> TranslationResult:
    return QueryTranslator().translate(parse_query(PREFIX + query_text))


def sparqlog(dataset):
    return SparqLogEngine(dataset)


class TestTranslationStructure:
    def test_triple_pattern_produces_single_rule(self):
        result = translate("SELECT ?x WHERE { ?x ex:p ex:o }")
        rule_heads = {rule.head.predicate for rule in result.program.rules}
        assert result.answer_predicate in rule_heads
        # one rule for the triple pattern, one for the SELECT projection
        assert len(result.program.rules) == 2

    def test_bag_semantics_adds_id_column_and_skolem(self):
        result = translate("SELECT ?x WHERE { ?x ex:p ex:o }")
        assert result.has_id_column
        assignments = [
            element
            for rule in result.program.rules
            for element in rule.body
            if isinstance(element, Assignment)
        ]
        assert assignments, "expected Skolem tuple-ID assignments under bag semantics"

    def test_distinct_removes_id_column(self):
        result = translate("SELECT DISTINCT ?x WHERE { ?x ex:p ex:o }")
        assert not result.has_id_column
        for rule in result.program.rules:
            assert not any(isinstance(element, Assignment) for element in rule.body)

    def test_optional_produces_three_rules(self):
        result = translate(
            "SELECT ?x ?y WHERE { ?x ex:p ?z OPTIONAL { ?x ex:q ?y } }"
        )
        # triple ×2 + ans_opt + join-rule + keep-rule + select = 7 rules
        negations = [
            element
            for rule in result.program.rules
            for element in rule.body
            if isinstance(element, Negation)
        ]
        assert negations, "OPTIONAL translation requires a negated ans_opt atom"

    def test_filter_becomes_embedded_condition(self):
        result = translate("SELECT ?x WHERE { ?x ex:p ?y FILTER (?y > 3) }")
        conditions = [
            element
            for rule in result.program.rules
            for element in rule.body
            if isinstance(element, FilterCondition)
        ]
        assert len(conditions) == 1

    def test_ask_translation(self):
        result = translate("ASK WHERE { ?x ex:p ex:o }")
        assert result.form == "ASK"
        assert result.answer_variables == ()

    def test_answer_variables_sorted_lexicographically(self):
        result = translate("SELECT ?b ?a WHERE { ?a ex:p ?b }")
        assert result.answer_variables == (Variable("a"), Variable("b"))

    def test_post_directives_recorded(self):
        result = translate(
            "SELECT DISTINCT ?x WHERE { ?x ex:p ?y } ORDER BY ?x LIMIT 3 OFFSET 1"
        )
        post = result.program.post_directives(result.answer_predicate)
        assert "orderby" in post
        assert "limit(3)" in post
        assert "offset(1)" in post
        assert "distinct" in post

    def test_output_directive_points_to_answer_predicate(self):
        result = translate("SELECT ?x WHERE { ?x ex:p ?y }")
        assert result.program.output_predicates() == [result.answer_predicate]


class TestUnsupportedFeatures:
    def test_bind_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            translate("SELECT ?x WHERE { ?x ex:p ?y BIND(STR(?y) AS ?s) }")

    def test_values_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            translate("SELECT ?x WHERE { VALUES ?x { ex:a } ?x ex:p ?y }")

    def test_select_expression_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            translate("SELECT (STR(?y) AS ?s) WHERE { ?x ex:p ?y }")

    def test_having_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            translate(
                "SELECT ?x (COUNT(?y) AS ?n) WHERE { ?x ex:p ?y } "
                "GROUP BY ?x HAVING (?n > 2)"
            )


class TestEndToEndSemantics:
    """Figure 2 / Figure 4 style end-to-end checks of the translated programs."""

    def test_paper_example_optional(self):
        engine = sparqlog(directors_dataset())
        result = engine.query(
            PREFIX + "SELECT ?N ?L WHERE { ?X ex:name ?N . OPTIONAL { ?X ex:lastname ?L } } ORDER BY ?N"
        )
        rows = result.to_set()
        assert (Literal("George"), Literal("Lucas")) in rows
        assert (Literal("Steven"), None) in rows

    def test_paper_example_property_path(self):
        engine = sparqlog(countries_dataset())
        result = engine.query(
            PREFIX + "SELECT ?B WHERE { ?A ex:borders+ ?B . FILTER (?A = ex:spain) }"
        )
        values = {row[0].value.rsplit("/", 1)[-1] for row in result.rows()}
        assert values == {"france", "belgium", "germany", "austria"}

    def test_bag_semantics_duplicates_preserved(self):
        engine = sparqlog(countries_dataset())
        result = engine.query(
            PREFIX + "SELECT ?x WHERE { { ex:spain ex:borders ?x } UNION { ex:spain ex:borders ?x } }"
        )
        assert len(result) == 2

    def test_distinct_eliminates_duplicates(self):
        engine = sparqlog(countries_dataset())
        result = engine.query(
            PREFIX
            + "SELECT DISTINCT ?x WHERE { { ex:spain ex:borders ?x } UNION { ex:spain ex:borders ?x } }"
        )
        assert len(result) == 1

    def test_group_by_count(self):
        engine = sparqlog(countries_dataset())
        result = engine.query(
            PREFIX + "SELECT ?a (COUNT(?b) AS ?n) WHERE { ?a ex:borders ?b } GROUP BY ?a"
        )
        counts = {row[0]: row[1].as_python() for row in result.rows()}
        assert counts[EX_FRANCE] == 2

    def test_minus(self):
        engine = sparqlog(countries_dataset())
        result = engine.query(
            PREFIX + "SELECT ?x WHERE { ?x ex:borders ?y MINUS { ?x ex:borders ex:germany } }"
        )
        subjects = {row[0] for row in result.rows()}
        assert EX_FRANCE not in subjects
        assert len(subjects) >= 2

    def test_ask_true_and_false(self):
        engine = sparqlog(countries_dataset())
        assert engine.query(PREFIX + "ASK WHERE { ex:spain ex:borders ex:france }") is True
        assert engine.query(PREFIX + "ASK WHERE { ex:spain ex:borders ex:austria }") is False


from repro.rdf.namespace import Namespace

EX_FRANCE = Namespace("http://ex.org/").france
