"""Unit tests for Datalog rule / program data structures."""

from repro.datalog.rules import (
    Assignment,
    Atom,
    Comparison,
    Negation,
    Program,
    Rule,
    SkolemExpr,
)
from repro.datalog.terms import Const, SkolemTerm, Var, is_ground, substitute

X, Y, Z = Var("X"), Var("Y"), Var("Z")
A, B = Const("a"), Const("b")


class TestTerms:
    def test_is_ground(self):
        assert is_ground(A)
        assert is_ground(SkolemTerm("f", ("a",)))
        assert not is_ground(X)

    def test_substitute(self):
        assert substitute(X, {X: A}) == A
        assert substitute(Y, {X: A}) == Y
        assert substitute(A, {X: B}) == A

    def test_skolem_terms_are_hashable_values(self):
        assert SkolemTerm("f", (1, 2)) == SkolemTerm("f", (1, 2))
        assert len({SkolemTerm("f", (1,)), SkolemTerm("f", (1,))}) == 1


class TestAtomsAndRules:
    def test_atom_variables_and_substitution(self):
        atom = Atom("p", (X, A, Y))
        assert atom.variables() == {X, Y}
        assert atom.substitute({X: A, Y: B}) == Atom("p", (A, A, B))
        assert atom.substitute({X: A, Y: B}).is_ground()

    def test_rule_accessors(self):
        rule = Rule(
            Atom("head", (X, Z)),
            (
                Atom("p", (X, Y)),
                Negation(Atom("q", (Y,))),
                Comparison(">", Y, Const(3)),
                Assignment(Z, SkolemExpr("f", (X, Y))),
            ),
        )
        assert {atom.predicate for atom in rule.positive_atoms()} == {"p"}
        assert {atom.predicate for atom in rule.negated_atoms()} == {"q"}
        assert rule.body_predicates() == {"p", "q"}
        assert rule.head_variables() == {X, Z}
        assert rule.frontier_variables() == {X, Z}

    def test_rule_safety(self):
        safe = Rule(Atom("h", (X,)), (Atom("p", (X, Y)),))
        assert safe.is_safe()
        unsafe_head = Rule(Atom("h", (Z,)), (Atom("p", (X, Y)),))
        assert not unsafe_head.is_safe()
        safe_via_assignment = Rule(
            Atom("h", (Z,)), (Atom("p", (X, Y)), Assignment(Z, SkolemExpr("f", (X,))))
        )
        assert safe_via_assignment.is_safe()
        unsafe_negation = Rule(
            Atom("h", (X,)), (Atom("p", (X,)), Negation(Atom("q", (Y,))))
        )
        assert not unsafe_negation.is_safe()
        existential = Rule(Atom("h", (X, Z)), (Atom("p", (X,)),), existential_variables=(Z,))
        assert existential.is_safe()


class TestProgram:
    def test_facts_must_be_ground(self):
        program = Program()
        program.add_fact(Atom("p", (A,)))
        import pytest

        with pytest.raises(ValueError):
            program.add_fact(Atom("p", (X,)))

    def test_directives(self):
        program = Program()
        program.add_directive("output", "ans")
        program.add_directive("post", "ans", "orderby")
        program.add_directive("post", "other", "limit(3)")
        assert program.output_predicates() == ["ans"]
        assert program.post_directives("ans") == ["orderby"]
        assert program.post_directives("other") == ["limit(3)"]

    def test_predicates_collects_all(self):
        program = Program()
        program.add_fact(Atom("p", (A,)))
        program.add_rule(Rule(Atom("q", (X,)), (Atom("p", (X,)), Negation(Atom("r", (X,))))))
        assert program.predicates() == {"p", "q", "r"}

    def test_extend_merges_programs(self):
        first, second = Program(), Program()
        first.add_fact(Atom("p", (A,)))
        second.add_rule(Rule(Atom("q", (X,)), (Atom("p", (X,)),)))
        second.add_directive("output", "q")
        first.extend(second)
        assert len(first.facts) == 1
        assert len(first.rules) == 1
        assert first.output_predicates() == ["q"]

    def test_pretty_rendering(self):
        program = Program()
        program.add_fact(Atom("p", (A,)))
        program.add_rule(Rule(Atom("q", (X,)), (Atom("p", (X,)),)))
        program.add_directive("output", "q")
        text = program.pretty()
        assert "p(" in text and ":-" in text and "@output" in text
