"""Tests for the Warded Datalog± engine."""

import pytest

from repro.datalog.engine import DatalogEngine, EvaluationLimitExceeded, compare_values
from repro.datalog.rules import (
    AggregateRule,
    AggregateSpec,
    Assignment,
    Atom,
    Comparison,
    Negation,
    Program,
    Rule,
    SkolemExpr,
)
from repro.datalog.stratify import StratificationError, stratify
from repro.datalog.terms import Const, SkolemTerm, Var
from repro.rdf.terms import Literal


def c(value):
    return Const(value)


X, Y, Z, W = Var("X"), Var("Y"), Var("Z"), Var("W")


def edge_program(edges):
    program = Program()
    for source, target in edges:
        program.add_fact(Atom("edge", (c(source), c(target))))
    return program


class TestBasicEvaluation:
    def test_facts_only(self):
        program = edge_program([("a", "b")])
        result = DatalogEngine().evaluate(program)
        assert result["edge"] == {("a", "b")}

    def test_simple_rule(self):
        program = edge_program([("a", "b"), ("b", "c")])
        program.add_rule(Rule(Atom("node", (X,)), (Atom("edge", (X, Y)),)))
        result = DatalogEngine().evaluate(program)
        assert result["node"] == {("a",), ("b",)}

    def test_join(self):
        program = edge_program([("a", "b"), ("b", "c"), ("c", "d")])
        program.add_rule(
            Rule(Atom("two_hop", (X, Z)), (Atom("edge", (X, Y)), Atom("edge", (Y, Z))))
        )
        result = DatalogEngine().evaluate(program)
        assert result["two_hop"] == {("a", "c"), ("b", "d")}

    def test_transitive_closure(self):
        program = edge_program([("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")])
        program.add_rule(Rule(Atom("tc", (X, Y)), (Atom("edge", (X, Y)),)))
        program.add_rule(
            Rule(Atom("tc", (X, Z)), (Atom("edge", (X, Y)), Atom("tc", (Y, Z))))
        )
        result = DatalogEngine().evaluate(program)
        assert len(result["tc"]) == 16  # complete digraph on the 4-cycle

    def test_constants_in_rule_bodies(self):
        program = edge_program([("a", "b"), ("b", "c")])
        program.add_rule(
            Rule(Atom("from_a", (Y,)), (Atom("edge", (c("a"), Y)),))
        )
        result = DatalogEngine().evaluate(program)
        assert result["from_a"] == {("b",)}

    def test_unknown_predicate_in_body_yields_nothing(self):
        program = edge_program([("a", "b")])
        program.add_rule(Rule(Atom("out", (X,)), (Atom("missing", (X,)),)))
        result = DatalogEngine().evaluate(program)
        assert "out" not in result or result["out"] == set()


class TestNegationAndBuiltins:
    def test_stratified_negation(self):
        program = edge_program([("a", "b"), ("b", "c")])
        program.add_rule(Rule(Atom("node", (X,)), (Atom("edge", (X, Y)),)))
        program.add_rule(Rule(Atom("node", (Y,)), (Atom("edge", (X, Y)),)))
        program.add_rule(
            Rule(Atom("sink", (X,)), (Atom("node", (X,)), Negation(Atom("edge", (X, Y)))))
        )
        result = DatalogEngine().evaluate(program)
        assert result["sink"] == {("c",)}

    def test_negation_through_recursion_rejected(self):
        program = Program()
        program.add_fact(Atom("p", (c("a"),)))
        program.add_rule(Rule(Atom("q", (X,)), (Atom("p", (X,)), Negation(Atom("r", (X,))))))
        program.add_rule(Rule(Atom("r", (X,)), (Atom("q", (X,)),)))
        with pytest.raises(StratificationError):
            DatalogEngine().evaluate(program)

    def test_comparison_builtin(self):
        program = Program()
        for value in (1, 5, 9):
            program.add_fact(Atom("val", (c(value),)))
        program.add_rule(
            Rule(Atom("big", (X,)), (Atom("val", (X,)), Comparison(">", X, c(4))))
        )
        result = DatalogEngine().evaluate(program)
        assert result["big"] == {(5,), (9,)}

    def test_comparison_on_rdf_literals(self):
        assert compare_values(">", Literal.from_python(10), Literal.from_python(2))
        assert compare_values("=", Literal.from_python(2), Literal.from_python(2.0))
        assert not compare_values("<", Literal.from_python(3), Literal.from_python(1))

    def test_assignment_with_skolem(self):
        program = edge_program([("a", "b"), ("a", "b")])  # duplicate fact collapses
        program.add_rule(
            Rule(
                Atom("tagged", (Z, X, Y)),
                (Atom("edge", (X, Y)), Assignment(Z, SkolemExpr("f1", (X, Y)))),
            )
        )
        result = DatalogEngine().evaluate(program)
        assert result["tagged"] == {(SkolemTerm("f1", ("a", "b")), "a", "b")}

    def test_assignment_constant(self):
        program = edge_program([("a", "b")])
        program.add_rule(
            Rule(Atom("flag", (X, Z)), (Atom("edge", (X, Y)), Assignment(Z, c("yes"))))
        )
        result = DatalogEngine().evaluate(program)
        assert result["flag"] == {("a", "yes")}


class TestExistentialsAndAggregates:
    def test_existential_head_variable_becomes_skolem(self):
        program = Program()
        program.add_fact(Atom("person", (c("alice"),)))
        program.add_rule(
            Rule(
                Atom("has_parent", (X, Z)),
                (Atom("person", (X,)),),
                existential_variables=(Z,),
                label="parent",
            )
        )
        result = DatalogEngine().evaluate(program)
        ((person, parent),) = result["has_parent"]
        assert person == "alice"
        assert isinstance(parent, SkolemTerm)

    def test_aggregate_count(self):
        program = edge_program([("a", "b"), ("a", "c"), ("b", "c")])
        program.aggregate_rules.append(
            AggregateRule(
                head=Atom("degree", (X, W)),
                body=(Atom("edge", (X, Y)),),
                group_variables=(X,),
                aggregates=(AggregateSpec("COUNT", Y, W),),
            )
        )
        result = DatalogEngine().evaluate(program)
        degrees = {row[0]: row[1].as_python() for row in result["degree"]}
        assert degrees == {"a": 2, "b": 1}

    def test_aggregate_sum_min_max(self):
        program = Program()
        for name, value in [("a", 1), ("a", 4), ("b", 10)]:
            program.add_fact(Atom("m", (c(name), c(Literal.from_python(value)))))
        program.aggregate_rules.append(
            AggregateRule(
                head=Atom("s", (X, W)),
                body=(Atom("m", (X, Y)),),
                group_variables=(X,),
                aggregates=(AggregateSpec("SUM", Y, W),),
            )
        )
        result = DatalogEngine().evaluate(program)
        sums = {row[0]: row[1].as_python() for row in result["s"]}
        assert sums == {"a": 5, "b": 10}


class TestLimits:
    def test_fact_limit(self):
        program = Program()
        for index in range(20):
            program.add_fact(Atom("n", (c(index),)))
        program.add_rule(
            Rule(Atom("pair", (X, Y)), (Atom("n", (X,)), Atom("n", (Y,))))
        )
        with pytest.raises(EvaluationLimitExceeded):
            DatalogEngine(max_facts=100).evaluate(program)

    def test_timeout(self):
        program = Program()
        for index in range(200):
            program.add_fact(Atom("n", (c(index),)))
        program.add_rule(
            Rule(Atom("pair", (X, Y, Z)), (Atom("n", (X,)), Atom("n", (Y,)), Atom("n", (Z,))))
        )
        with pytest.raises(EvaluationLimitExceeded):
            DatalogEngine(timeout_seconds=0.05).evaluate(program)


class TestStratification:
    def test_strata_ordering(self):
        program = Program()
        program.add_fact(Atom("base", (c(1),)))
        program.add_rule(Rule(Atom("derived", (X,)), (Atom("base", (X,)),)))
        program.add_rule(
            Rule(Atom("top", (X,)), (Atom("base", (X,)), Negation(Atom("derived", (X,)))))
        )
        strata = stratify(program)
        stratum_of = {}
        for index, predicates in enumerate(strata):
            for predicate in predicates:
                stratum_of[predicate] = index
        assert stratum_of["derived"] < stratum_of["top"]

    def test_recursive_predicates_in_same_stratum(self):
        program = Program()
        program.add_fact(Atom("e", (c(1), c(2))))
        program.add_rule(Rule(Atom("tc", (X, Y)), (Atom("e", (X, Y)),)))
        program.add_rule(Rule(Atom("tc", (X, Z)), (Atom("e", (X, Y)), Atom("tc", (Y, Z)))))
        strata = stratify(program)
        for predicates in strata:
            if "tc" in predicates:
                assert "tc" in predicates
                break
        else:
            pytest.fail("tc not assigned to any stratum")
