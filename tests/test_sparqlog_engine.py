"""Tests for the SparqLog engine façade and the solution translation."""

import pytest

from collections import Counter

from repro.core.engine import SparqLogEngine, resolve_dataset_clauses
from repro.core.solution_translation import SolutionTranslator
from repro.datalog.engine import EvaluationLimitExceeded
from repro.rdf.graph import Dataset, Graph
from repro.rdf.terms import IRI, Literal, Triple, Variable
from repro.sparql.algebra import DatasetClause, OrderCondition
from repro.sparql.expressions import VariableExpr
from repro.sparql.solutions import Binding

from tests.helpers import EX, countries_dataset, countries_graph, directors_dataset

PREFIX = "PREFIX ex: <http://ex.org/>\n"


class TestEngineBasics:
    def test_query_accepts_strings_and_parsed_queries(self):
        from repro.sparql.parser import parse_query

        engine = SparqLogEngine(countries_dataset())
        text = PREFIX + "SELECT ?x WHERE { ex:spain ex:borders ?x }"
        assert engine.query(text).to_set() == engine.query(parse_query(text)).to_set()

    def test_result_variable_order_follows_projection(self):
        engine = SparqLogEngine(countries_dataset())
        result = engine.query(PREFIX + "SELECT ?y ?x WHERE { ?x ex:borders ?y }")
        assert result.variables == [Variable("y"), Variable("x")]

    def test_order_by_applied(self):
        engine = SparqLogEngine(countries_dataset())
        result = engine.query(
            PREFIX + "SELECT ?b WHERE { ?a ex:borders ?b } ORDER BY ?b"
        )
        values = [row[0].value for row in result.rows()]
        assert values == sorted(values)

    def test_limit_offset_applied(self):
        engine = SparqLogEngine(countries_dataset())
        result = engine.query(
            PREFIX + "SELECT ?b WHERE { ?a ex:borders ?b } ORDER BY ?b LIMIT 2 OFFSET 1"
        )
        assert len(result) == 2

    def test_load_invalidates_cache(self):
        engine = SparqLogEngine(countries_dataset())
        assert len(engine.query(PREFIX + "SELECT ?x ?y WHERE { ?x ex:borders ?y }")) == 5
        engine.load(directors_dataset())
        assert len(engine.query(PREFIX + "SELECT ?x ?y WHERE { ?x ex:borders ?y }")) == 0

    def test_translate_exposes_program(self):
        engine = SparqLogEngine(countries_dataset())
        program, translation = engine.translate(
            PREFIX + "SELECT ?x WHERE { ex:spain ex:borders ?x }"
        )
        assert translation.answer_predicate in {rule.head.predicate for rule in program.rules}
        assert any(fact.predicate == "triple" for fact in program.facts)

    def test_timeout_propagates(self):
        # A cartesian blow-up should hit the engine's cooperative limits.
        big = Graph()
        for index in range(60):
            big.add(Triple(IRI(f"http://n/{index}"), EX.p, IRI(f"http://m/{index}")))
        engine = SparqLogEngine(Dataset.from_graph(big), max_facts=500)
        with pytest.raises(EvaluationLimitExceeded):
            engine.query(
                PREFIX + "SELECT ?a ?b ?c ?d WHERE { ?a ex:p ?b . ?c ex:p ?d }"
            )


class TestDatasetClauses:
    def _dataset(self) -> Dataset:
        dataset = Dataset()
        dataset.add_named_graph(IRI("http://g1"), countries_graph())
        dataset.add_named_graph(
            IRI("http://g2"), Graph([Triple(EX.a, EX.p, EX.b)])
        )
        return dataset

    def test_resolve_from_merges_into_default(self):
        active = resolve_dataset_clauses(
            self._dataset(), [DatasetClause(IRI("http://g1"), named=False)]
        )
        assert len(active.default_graph) == 5
        assert not active.named_graphs

    def test_resolve_from_named_keeps_named(self):
        active = resolve_dataset_clauses(
            self._dataset(), [DatasetClause(IRI("http://g2"), named=True)]
        )
        assert len(active.default_graph) == 0
        assert IRI("http://g2") in active.named_graphs

    def test_from_clause_in_query(self):
        engine = SparqLogEngine(self._dataset())
        result = engine.query(
            PREFIX
            + "SELECT ?x FROM <http://g1> WHERE { ex:spain ex:borders ?x }"
        )
        assert result.to_set() == {(EX.france,)}

    def test_from_named_with_graph_pattern(self):
        engine = SparqLogEngine(self._dataset())
        result = engine.query(
            PREFIX
            + "SELECT ?s FROM NAMED <http://g2> WHERE { GRAPH <http://g2> { ?s ex:p ?o } }"
        )
        assert result.to_set() == {(EX.a,)}


class TestSolutionTranslation:
    def test_null_constant_maps_to_unbound(self):
        engine = SparqLogEngine(directors_dataset())
        result = engine.query(
            PREFIX + "SELECT ?n ?l WHERE { ?x ex:name ?n OPTIONAL { ?x ex:lastname ?l } }"
        )
        rows = result.to_set()
        assert (Literal("Steven"), None) in rows

    def test_projecting_never_bound_variable(self):
        engine = SparqLogEngine(countries_dataset())
        result = engine.query(PREFIX + "SELECT ?nope ?x WHERE { ex:spain ex:borders ?x }")
        assert result.to_set() == {(None, EX.france)}

    def test_ask_translation_boolean(self):
        translator = SolutionTranslator()
        # Craft a fake ASK relation: a single row holding literal true.
        from repro.core.query_translation import QueryTranslator
        from repro.sparql.parser import parse_query

        translation = QueryTranslator().translate(
            parse_query(PREFIX + "ASK WHERE { ?x ex:borders ?y }")
        )
        relations = {translation.answer_predicate: {(Literal("true", None),)}}
        assert translator.translate(relations, translation) is True
        assert translator.translate({}, translation) is False

    def test_distinct_projection_after_translation(self):
        engine = SparqLogEngine(countries_dataset())
        duplicated = engine.query(
            PREFIX + "SELECT ?x WHERE { ?x ex:borders ?y }"
        )
        deduplicated = engine.query(
            PREFIX + "SELECT DISTINCT ?x WHERE { ?x ex:borders ?y }"
        )
        assert len(duplicated) == 5
        assert Counter(row[0] for row in deduplicated.rows())[EX.france] == 1


class TestSolutionTranslationOrderBy:
    """The translated-solution engine shares the evaluator's comparator."""

    def _rows(self):
        lastname = Variable("l")
        bound = Binding({lastname: Literal("Lucas")})
        unbound = Binding({})
        return lastname, bound, unbound

    def test_unbound_sorts_first_ascending(self):
        lastname, bound, unbound = self._rows()
        ordered = SolutionTranslator._order(
            [bound, unbound], (OrderCondition(VariableExpr(lastname), True),)
        )
        assert ordered == [unbound, bound]

    def test_unbound_sorts_last_descending(self):
        # Regression for the ROADMAP-flagged semantics: DESC reverses the
        # whole ordering, so unbound keys move to the end (reference-engine
        # behaviour), in the translation exactly as in the evaluator.
        lastname, bound, unbound = self._rows()
        ordered = SolutionTranslator._order(
            [unbound, bound], (OrderCondition(VariableExpr(lastname), False),)
        )
        assert ordered == [bound, unbound]
