"""Property-based tests (hypothesis) for core data structures and invariants."""

import string
from collections import Counter

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.baselines.native import NativeSparqlEngine
from repro.compliance.compare import results_equal
from repro.core.engine import SparqLogEngine
from repro.datalog.engine import DatalogEngine
from repro.datalog.rules import Atom, Program, Rule
from repro.datalog.terms import Const, Var
from repro.rdf.graph import Dataset, Graph
from repro.rdf.ntriples import parse_ntriples, serialize_ntriples
from repro.rdf.terms import IRI, Literal, Triple, Variable
from repro.sparql.solutions import Binding

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
_NODE_NAMES = [f"n{i}" for i in range(8)]
_PREDICATE_NAMES = ["p", "q"]


def _iri(name: str) -> IRI:
    return IRI(f"http://ex.org/{name}")


edges_strategy = st.lists(
    st.tuples(
        st.sampled_from(_NODE_NAMES),
        st.sampled_from(_PREDICATE_NAMES),
        st.sampled_from(_NODE_NAMES),
    ),
    min_size=0,
    max_size=25,
)

simple_literals = st.text(alphabet=string.ascii_letters + string.digits + " ", max_size=12)


def graph_from_edges(edges) -> Graph:
    graph = Graph()
    for subject, predicate, obj in edges:
        graph.add(Triple(_iri(subject), _iri(predicate), _iri(obj)))
    return graph


# ----------------------------------------------------------------------
# RDF graph invariants
# ----------------------------------------------------------------------
class TestGraphProperties:
    @given(edges_strategy)
    @settings(max_examples=60, deadline=None)
    def test_graph_is_a_set_of_triples(self, edges):
        graph = graph_from_edges(edges)
        assert len(graph) == len({(s, p, o) for s, p, o in edges})

    @given(edges_strategy)
    @settings(max_examples=60, deadline=None)
    def test_pattern_matching_consistent_with_scan(self, edges):
        graph = graph_from_edges(edges)
        for predicate in _PREDICATE_NAMES:
            via_index = set(graph.triples(None, _iri(predicate), None))
            via_scan = {t for t in graph if t.predicate == _iri(predicate)}
            assert via_index == via_scan

    @given(edges_strategy)
    @settings(max_examples=40, deadline=None)
    def test_ntriples_round_trip(self, edges):
        graph = graph_from_edges(edges)
        assert set(parse_ntriples(serialize_ntriples(graph))) == set(graph)

    @given(st.lists(simple_literals, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_literal_ntriples_round_trip(self, values):
        graph = Graph()
        for index, value in enumerate(values):
            graph.add(Triple(_iri(f"s{index}"), _iri("p"), Literal(value)))
        assert set(parse_ntriples(serialize_ntriples(graph))) == set(graph)


# ----------------------------------------------------------------------
# binding algebra invariants
# ----------------------------------------------------------------------
binding_strategy = st.dictionaries(
    st.sampled_from([Variable("a"), Variable("b"), Variable("c")]),
    st.sampled_from([_iri("x"), _iri("y"), Literal("1")]),
    max_size=3,
).map(Binding)


class TestBindingProperties:
    @given(binding_strategy, binding_strategy)
    @settings(max_examples=100, deadline=None)
    def test_compatibility_is_symmetric(self, left, right):
        assert left.is_compatible(right) == right.is_compatible(left)

    @given(binding_strategy, binding_strategy)
    @settings(max_examples=100, deadline=None)
    def test_merge_of_compatible_mappings_extends_both(self, left, right):
        if left.is_compatible(right):
            merged = left.merge(right)
            for variable in left:
                assert merged[variable] == left[variable]
            for variable in right:
                assert merged[variable] == right[variable]

    @given(binding_strategy)
    @settings(max_examples=50, deadline=None)
    def test_merge_with_empty_is_identity(self, binding):
        assert binding.merge(Binding()) == binding

    @given(binding_strategy, st.sets(st.sampled_from([Variable("a"), Variable("b")])))
    @settings(max_examples=50, deadline=None)
    def test_projection_domain(self, binding, variables):
        projected = binding.project(variables)
        assert projected.variables() <= variables


# ----------------------------------------------------------------------
# Datalog engine vs networkx: transitive closure
# ----------------------------------------------------------------------
class TestDatalogClosureProperties:
    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_transitive_closure_matches_networkx(self, edges):
        program = Program()
        for source, target in edges:
            program.add_fact(Atom("edge", (Const(source), Const(target))))
        X, Y, Z = Var("X"), Var("Y"), Var("Z")
        program.add_rule(Rule(Atom("tc", (X, Y)), (Atom("edge", (X, Y)),)))
        program.add_rule(
            Rule(Atom("tc", (X, Z)), (Atom("edge", (X, Y)), Atom("tc", (Y, Z))))
        )
        relations = DatalogEngine().evaluate(program)
        digraph = nx.DiGraph()
        digraph.add_nodes_from(range(10))
        digraph.add_edges_from(edges)
        # Expected: (s, t) such that t is reachable from s in one or more steps.
        expected = set()
        for source in digraph.nodes:
            for successor in digraph.successors(source):
                expected.add((source, successor))
                for target in nx.descendants(digraph, successor):
                    expected.add((source, target))
                expected.add((source, successor))
        computed = relations.get("tc", set())
        assert computed == expected


# ----------------------------------------------------------------------
# differential property: SparqLog vs native evaluator on random graphs
# ----------------------------------------------------------------------
_PROPERTY_QUERIES = [
    "PREFIX ex: <http://ex.org/> SELECT ?x ?y WHERE { ?x ex:p ?y }",
    "PREFIX ex: <http://ex.org/> SELECT ?x ?z WHERE { ?x ex:p ?y . ?y ex:q ?z }",
    "PREFIX ex: <http://ex.org/> SELECT ?x ?y WHERE { ?x ex:p ?y OPTIONAL { ?y ex:q ?z } }",
    "PREFIX ex: <http://ex.org/> SELECT DISTINCT ?x ?y WHERE { ?x ex:p+ ?y }",
    "PREFIX ex: <http://ex.org/> SELECT ?x ?y WHERE { ?x (ex:p|ex:q) ?y }",
    "PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:p ?y MINUS { ?x ex:q ?y } }",
]


class TestTranslationDifferentialProperties:
    @given(edges_strategy, st.sampled_from(_PROPERTY_QUERIES))
    @settings(max_examples=40, deadline=None)
    def test_sparqlog_matches_reference_on_random_graphs(self, edges, query_text):
        dataset = Dataset.from_graph(graph_from_edges(edges))
        native = NativeSparqlEngine(dataset).query(query_text)
        translated = SparqLogEngine(dataset, timeout_seconds=30).query(query_text)
        assert results_equal(native, translated)


# ----------------------------------------------------------------------
# differential property: planned BGP evaluation vs naive textual order
# ----------------------------------------------------------------------
_BGP_QUERIES = [
    "PREFIX ex: <http://ex.org/> SELECT ?x ?y WHERE { ?x ex:p ?y }",
    "PREFIX ex: <http://ex.org/> SELECT ?x ?z WHERE { ?x ex:p ?y . ?y ex:q ?z }",
    "PREFIX ex: <http://ex.org/> SELECT ?x ?y ?z WHERE { ?x ex:p ?y . ?x ex:q ?z }",
    "PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:p ?y . ?y ex:q ?z . ?z ex:p ?x }",
    "PREFIX ex: <http://ex.org/> SELECT ?x ?y WHERE { ?x ex:p ?y . ?x ex:p ?y }",
    "PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:p ?x }",
    "PREFIX ex: <http://ex.org/> SELECT ?x ?y WHERE { ?x ex:p ?y . ?a ex:q ?b }",
    "PREFIX ex: <http://ex.org/> ASK WHERE { ?x ex:p ?y . ?y ex:q ?z }",
    "PREFIX ex: <http://ex.org/> SELECT DISTINCT ?x ?y WHERE { ?x ex:p+ ?y . ?y ex:q ?z }",
    # Zero-length-admitting paths joined through a variable endpoint:
    # substitution must not admit non-node terms as zero-length matches.
    "PREFIX ex: <http://ex.org/> SELECT DISTINCT ?y ?z WHERE { ?x ex:p ?y . ?y ex:q? ?z }",
    "PREFIX ex: <http://ex.org/> SELECT DISTINCT ?y ?z WHERE { ?x ex:p ?y . ?y ex:q* ?z }",
]


class TestPlannerDifferentialProperties:
    @given(edges_strategy, st.sampled_from(_BGP_QUERIES))
    @settings(max_examples=60, deadline=None)
    def test_planned_bgp_multiset_equals_textual_order(self, edges, query_text):
        from repro.sparql.evaluator import SparqlEvaluator
        from repro.sparql.parser import parse_query

        dataset = Dataset.from_graph(graph_from_edges(edges))
        query = parse_query(query_text)
        planned = SparqlEvaluator(dataset, use_planner=True).evaluate(query)
        naive = SparqlEvaluator(dataset, use_planner=False).evaluate(query)
        if isinstance(planned, bool):
            assert planned == naive
        else:
            assert Counter(planned.rows()) == Counter(naive.rows())
