"""Smoke tests: every example script runs end to end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: The quick example scripts (the full evaluation script is exercised by the
#: benchmark suite instead, since it runs for minutes).
QUICK_EXAMPLES = [
    "quickstart.py",
    "property_paths.py",
    "ontology_reasoning.py",
    "bag_semantics.py",
    "live_views.py",
]


@pytest.mark.parametrize("script_name", QUICK_EXAMPLES)
def test_example_runs(script_name, capsys):
    script = EXAMPLES_DIR / script_name
    assert script.exists(), f"missing example {script_name}"
    runpy.run_path(str(script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script_name} produced no output"


def test_examples_directory_contains_full_evaluation_script():
    assert (EXAMPLES_DIR / "run_full_evaluation.py").exists()
    assert (EXAMPLES_DIR / "compliance_check.py").exists()
