"""Tests for the benchmark workload generators."""

from collections import Counter

import pytest

from repro.sparql.parser import parse_query
from repro.workloads.beseppi import BeSEPPIWorkload, CATEGORY_COUNTS, beseppi_graph
from repro.workloads.feasible import FeasibleWorkload
from repro.workloads.feature_analysis import (
    PAPER_TABLE2,
    analyze_workload_features,
)
from repro.workloads.gmark import (
    GMarkWorkload,
    generate_gmark_graph,
    social_scenario,
)
from repro.workloads.gmark import test_scenario as gmark_test_scenario
from repro.workloads.ontology_bench import OntologyBenchmark
from repro.workloads.sp2bench import SP2BenchWorkload, generate_sp2bench_graph


class TestSP2Bench:
    def test_generator_is_deterministic(self):
        first = generate_sp2bench_graph(n_articles=30, n_persons=20, seed=5)
        second = generate_sp2bench_graph(n_articles=30, n_persons=20, seed=5)
        assert set(first) == set(second)

    def test_seed_changes_data(self):
        first = generate_sp2bench_graph(n_articles=30, n_persons=20, seed=5)
        second = generate_sp2bench_graph(n_articles=30, n_persons=20, seed=6)
        assert set(first) != set(second)

    def test_seventeen_queries_all_parse(self):
        workload = SP2BenchWorkload(scale=0.05)
        queries = workload.queries()
        assert len(queries) == 17
        for query in queries:
            parse_query(query.text)

    def test_statistics(self):
        workload = SP2BenchWorkload(scale=0.05)
        statistics = workload.statistics()
        assert statistics["triples"] > 100
        assert statistics["queries"] == 17

    def test_scaling_grows_the_graph(self):
        small = SP2BenchWorkload(scale=0.05).statistics()["triples"]
        large = SP2BenchWorkload(scale=0.2).statistics()["triples"]
        assert large > small


class TestGMark:
    def test_scenarios(self):
        assert len(social_scenario().edges) == 27
        assert len(gmark_test_scenario().edges) == 4

    def test_graph_respects_schema(self):
        scenario = gmark_test_scenario().scaled(0.1)
        graph = generate_gmark_graph(scenario, seed=3)
        predicates = {p.value.rsplit("/", 1)[-1] for p in graph.predicates()}
        assert predicates <= {edge.predicate for edge in scenario.edges}

    def test_fifty_queries_generated_and_parse(self):
        workload = GMarkWorkload(gmark_test_scenario(), scale=0.05, seed=4)
        queries = workload.queries()
        assert len(queries) == 50
        for query in queries:
            parse_query(query.text)

    def test_query_mix_contains_recursion_and_two_variable_queries(self):
        workload = GMarkWorkload(social_scenario(), scale=0.05, seed=4)
        features = Counter(
            feature for query in workload.queries() for feature in query.features
        )
        assert features["RecursivePath"] >= 15
        assert features["TwoVariables"] >= 10
        assert features["BoundSubject"] >= 10

    def test_determinism(self):
        first = GMarkWorkload(gmark_test_scenario(), scale=0.05, seed=4).queries()
        second = GMarkWorkload(gmark_test_scenario(), scale=0.05, seed=4).queries()
        assert [q.text for q in first] == [q.text for q in second]

    def test_query_count_override(self):
        workload = GMarkWorkload(gmark_test_scenario(), scale=0.05, seed=4, query_count=7)
        assert len(workload.queries()) == 7


class TestBeSEPPI:
    def test_category_counts_match_paper(self):
        workload = BeSEPPIWorkload()
        counts = Counter(query.category for query in workload.queries())
        assert dict(counts) == CATEGORY_COUNTS
        assert sum(counts.values()) == 236

    def test_all_queries_parse(self):
        for query in BeSEPPIWorkload().queries():
            parse_query(query.text)

    def test_expected_answers_present(self):
        for query in BeSEPPIWorkload().queries():
            assert (query.expected_rows is not None) != (query.expected_boolean is not None)

    def test_graph_contains_cycles_and_literal(self):
        graph = beseppi_graph()
        assert len(graph) == 23
        from repro.rdf.terms import Literal

        assert any(isinstance(t.object, Literal) for t in graph)

    def test_expected_rows_nonempty_for_two_variable_queries(self):
        workload = BeSEPPIWorkload()
        two_variable = [
            query
            for query in workload.queries()
            if query.variables == ("x", "y") and query.category != "Negated"
        ]
        assert any(sum(query.expected_rows.values()) > 0 for query in two_variable)


class TestFeasible:
    def test_exactly_77_queries(self):
        assert len(FeasibleWorkload(scale=0.1).queries()) == 77

    def test_all_queries_parse(self):
        for query in FeasibleWorkload(scale=0.1).queries():
            parse_query(query.text)

    def test_dataset_has_named_graph(self):
        dataset = FeasibleWorkload(scale=0.1).dataset()
        assert len(dataset.named_graphs) == 1

    def test_feature_profile_is_diverse(self):
        workload = FeasibleWorkload(scale=0.1)
        profile = analyze_workload_features(workload.name, workload.queries())
        assert profile.percentages["DIST"] > 20
        assert profile.percentages["OPT"] > 5
        assert profile.percentages["UN"] > 5
        assert profile.percentages["GRA"] > 5
        assert profile.percentages["GRO"] > 5
        assert profile.unparsed == 0


class TestOntologyBenchmark:
    def test_queries_and_axioms(self):
        benchmark = OntologyBenchmark(scale=0.05)
        assert len(benchmark.queries()) == 8
        assert benchmark.statistics()["axioms"] >= 7
        for query in benchmark.queries():
            parse_query(query.text)


class TestFeatureAnalysis:
    def test_paper_reference_table_is_complete(self):
        assert len(PAPER_TABLE2) == 12
        for values in PAPER_TABLE2.values():
            assert set(values) == {"DIST", "FILT", "REG", "OPT", "UN", "GRA", "PSeq", "PAlt", "GRO"}

    def test_sp2bench_profile_close_to_paper(self):
        workload = SP2BenchWorkload(scale=0.05)
        profile = analyze_workload_features("SP2Bench", workload.queries())
        # Same shape as the paper's SP2Bench row: FILTER-heavy, no paths.
        assert profile.percentages["FILT"] >= 25
        assert profile.percentages["PSeq"] == 0.0
        assert profile.percentages["GRA"] == 0.0
