"""Tests for incremental view maintenance and change capture.

Four layers:

* change-capture units — both store backends notify listeners of exactly
  the effective mutations, through every mutation path (``add``/``remove``,
  bulk loaders, Turtle streaming, snapshots bump the version stamp),
* delta-view units — O(|Δ|) maintenance matches fresh evaluation through
  add/remove churn, multiplicities, DISTINCT support transitions,
  subscriptions and close(),
* loader regressions — a view can never serve stale rows after *any*
  loader touched its graph,
* a hypothesis differential — random add/remove churn against random
  BGP + FILTER views on both backends: the maintained Z-set equals the
  re-evaluated multiset at every step.
"""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro import create_engine
from repro.rdf.graph import Dataset, Graph
from repro.rdf.terms import Literal, Triple, Variable, XSD_INTEGER
from repro.rdf.turtle import parse_turtle
from repro.sparql.algebra import BGP, Filter, ProjectionItem, SelectQuery, TriplePatternNode
from repro.sparql.evaluator import SparqlEvaluator
from repro.sparql.expressions import Comparison, FunctionCall, TermExpr, VariableExpr
from repro.sparql.parser import parse_query
from repro.store import EncodedGraph, bulk_load_ntriples, load_snapshot, save_snapshot
from repro.ivm import ViewRegistry, zset_diff, zset_from_rows, zset_merge

from tests.helpers import EX

BACKENDS = [Graph, EncodedGraph]


def tp(subject, predicate, obj):
    return TriplePatternNode(Triple(subject, predicate, obj))


def chain(a, b):
    return Triple(EX[f"n{a}"], EX.p, EX[f"n{b}"])


TWO_HOP = (
    "PREFIX ex: <http://ex.org/>\n"
    "SELECT ?a ?c WHERE { ?a ex:p ?b . ?b ex:p ?c . FILTER(?a != ?c) }"
)


def fresh_counter(evaluator, query):
    return Counter(tuple(row) for row in evaluator.evaluate(query).rows())


# ----------------------------------------------------------------------
# change capture
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
class TestChangeCapture:
    def test_effective_mutations_notify_after_the_fact(self, backend):
        graph = backend()
        seen = []

        def listener(batch):
            # Post-mutation protocol: the graph already reflects the batch.
            for triple, weight in batch:
                assert (triple in graph) == (weight > 0)
            seen.extend(batch)

        graph.add_change_listener(listener)
        triple = chain(1, 2)
        graph.add(triple)
        graph.add(triple)  # duplicate: not an effective mutation
        graph.remove(triple)
        graph.remove(triple)  # already gone
        assert seen == [(triple, 1), (triple, -1)]

    def test_removed_listener_stops_receiving(self, backend):
        graph = backend()
        seen = []
        listener = seen.append
        graph.add_change_listener(listener)
        graph.add(chain(1, 2))
        graph.remove_change_listener(listener)
        graph.remove_change_listener(listener)  # idempotent
        graph.add(chain(2, 3))
        assert len(seen) == 1


class TestEncodedLoaderCapture:
    def test_bulk_load_fresh_notifies_per_insert(self):
        graph = EncodedGraph()
        seen = []
        graph.add_change_listener(seen.extend)
        bulk_load_ntriples(
            "<http://ex.org/n1> <http://ex.org/p> <http://ex.org/n2> .\n"
            "<http://ex.org/n2> <http://ex.org/p> <http://ex.org/n3> .\n"
            "<http://ex.org/n1> <http://ex.org/p> <http://ex.org/n2> .\n",
            graph,
        )
        assert seen == [(chain(1, 2), 1), (chain(2, 3), 1)]

    def test_bulk_load_incremental_notifies(self):
        graph = EncodedGraph([chain(1, 2)])
        seen = []
        graph.add_change_listener(seen.extend)
        bulk_load_ntriples(
            "<http://ex.org/n1> <http://ex.org/p> <http://ex.org/n2> .\n"
            "<http://ex.org/n5> <http://ex.org/p> <http://ex.org/n6> .\n",
            graph,
        )
        assert seen == [(chain(5, 6), 1)]

    def test_turtle_streaming_notifies(self):
        graph = EncodedGraph()
        seen = []
        graph.add_change_listener(seen.extend)
        parse_turtle(
            "@prefix ex: <http://ex.org/> . ex:n1 ex:p ex:n2 .", graph=graph
        )
        assert seen == [(chain(1, 2), 1)]

    def test_snapshot_load_bumps_version(self, tmp_path):
        target = tmp_path / "graph.snap"
        save_snapshot(EncodedGraph([chain(1, 2)]), target)
        loaded = load_snapshot(target)
        # A non-empty load is a mutation of the fresh graph: version-keyed
        # consumers (plan caches, views) must see a distinct stamp.
        assert loaded.version > EncodedGraph().version


# ----------------------------------------------------------------------
# delta views
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
class TestDeltaViews:
    def _engine(self, backend, triples=()):
        return create_engine(backend(list(triples)))

    def test_two_hop_churn_matches_reference(self, backend):
        engine = self._engine(backend, [chain(1, 2), chain(2, 3)])
        view = engine.materialize(TWO_HOP)
        assert view.maintenance == "delta"
        query = parse_query(TWO_HOP)
        script = [
            ("add", chain(3, 4)),
            ("add", chain(4, 1)),
            ("remove", chain(2, 3)),
            ("add", chain(2, 3)),
            ("remove", chain(1, 2)),
            ("add", chain(5, 5)),  # self loop: killed by the FILTER
            ("remove", chain(4, 1)),
        ]
        for action, triple in script:
            getattr(engine.graph, action)(triple)
            assert Counter(view.rows()) == fresh_counter(engine.evaluator, query)

    def test_bag_multiplicities_maintained(self, backend):
        # SELECT ?a projects away ?b: two outgoing edges → multiplicity 2.
        engine = self._engine(backend, [chain(1, 2), chain(1, 3)])
        view = engine.materialize(
            "PREFIX ex: <http://ex.org/>\nSELECT ?a WHERE { ?a ex:p ?b }"
        )
        assert view.maintenance == "delta"
        assert view.rows() == [(EX.n1,), (EX.n1,)]
        engine.graph.remove(chain(1, 3))
        assert view.rows() == [(EX.n1,)]
        engine.graph.remove(chain(1, 2))
        assert view.rows() == []

    def test_distinct_view_reports_support_transitions(self, backend):
        engine = self._engine(backend, [chain(1, 2), chain(1, 3)])
        view = engine.materialize(
            "PREFIX ex: <http://ex.org/>\nSELECT DISTINCT ?a WHERE { ?a ex:p ?b }"
        )
        assert view.maintenance == "delta"
        events = []
        view.on_change(events.append)
        engine.graph.add(chain(1, 4))  # multiplicity 2 → 3: no transition
        assert events == []
        engine.graph.remove(chain(1, 2))
        engine.graph.remove(chain(1, 3))
        assert events == []  # still supported by n1 -> n4
        engine.graph.remove(chain(1, 4))
        assert events == [[((EX.n1,), -1)]]
        assert view.rows() == []

    def test_on_change_delivers_weighted_rows_and_unsubscribes(self, backend):
        engine = self._engine(backend, [chain(1, 2)])
        view = engine.materialize(TWO_HOP)
        events = []
        unsubscribe = view.on_change(events.append)
        engine.graph.add(chain(2, 3))
        assert events == [[((EX.n1, EX.n3), 1)]]
        unsubscribe()
        engine.graph.remove(chain(2, 3))
        assert len(events) == 1

    def test_closed_view_detaches_and_refuses_reads(self, backend):
        engine = self._engine(backend, [chain(1, 2)])
        view = engine.materialize(TWO_HOP)
        assert len(engine.graph._delta_listeners) == 1
        view.close()
        assert engine.graph._delta_listeners == []
        engine.graph.add(chain(2, 3))  # must not blow up
        with pytest.raises(RuntimeError):
            view.rows()
        view.close()  # idempotent

    def test_engine_close_closes_views(self, backend):
        engine = self._engine(backend, [chain(1, 2)])
        view = engine.materialize(TWO_HOP)
        engine.close()
        assert view.closed
        assert engine.graph._delta_listeners == []
        with pytest.raises(RuntimeError):
            engine.materialize(TWO_HOP)

    def test_view_over_non_default_graph(self, backend):
        engine = self._engine(backend, [chain(1, 2)])
        other = backend([chain(7, 8)])
        view = engine.materialize(
            "PREFIX ex: <http://ex.org/>\nSELECT ?a WHERE { ?a ex:p ?b }",
            graph=other,
        )
        assert view.rows() == [(EX.n7,)]
        other.add(chain(8, 9))
        assert view.rows() == [(EX.n7,), (EX.n8,)]


# ----------------------------------------------------------------------
# re-evaluation fallback
# ----------------------------------------------------------------------
class TestReevalFallback:
    def test_path_query_falls_back_and_stays_fresh(self):
        engine = create_engine(EncodedGraph([chain(1, 2), chain(2, 3)]))
        view = engine.materialize(
            "PREFIX ex: <http://ex.org/>\nSELECT ?x WHERE { ex:n1 ex:p+ ?x }"
        )
        assert view.maintenance == "reeval"
        engine.graph.add(chain(3, 4))
        assert view.rows() == [(EX.n2,), (EX.n3,), (EX.n4,)]
        engine.graph.remove(chain(2, 3))
        assert view.rows() == [(EX.n2,)]

    def test_cyclic_bgp_leapfrog_plan_falls_back(self):
        triangle = (
            "PREFIX ex: <http://ex.org/>\n"
            "SELECT ?a ?b ?c WHERE { ?a ex:p ?b . ?b ex:p ?c . ?c ex:p ?a }"
        )
        engine = create_engine(EncodedGraph([chain(1, 2), chain(2, 3)]))
        view = engine.materialize(triangle)
        # The encoded backend lowers this cyclic BGP to LeapfrogJoin,
        # which does not differentiate.
        assert view.maintenance == "reeval"
        engine.graph.add(chain(3, 1))
        assert len(view.rows()) == 3

    def test_irrelevant_predicate_batches_are_gated(self):
        engine = create_engine(EncodedGraph([chain(1, 2), chain(2, 3)]))
        view = engine.materialize(
            "PREFIX ex: <http://ex.org/>\n"
            "SELECT ?a ?c WHERE { ?a ex:p ?b . ?b ex:p ?c . ?c ex:p ?a }"
        )
        assert view.maintenance == "reeval"
        view.rows()
        before = engine.metrics()
        engine.graph.add(Triple(EX.n1, EX.unrelated, EX.n2))
        after = engine.metrics()
        assert (
            after["ivm_skipped_batches_total"]
            == before["ivm_skipped_batches_total"] + 1
        )
        assert (
            after["ivm_view_refreshes_total"] == before["ivm_view_refreshes_total"]
        )
        # The gate kept the view synchronised: reading does not refresh.
        view.rows()
        assert (
            engine.metrics()["ivm_view_refreshes_total"]
            == before["ivm_view_refreshes_total"]
        )

    def test_unsubscribed_fallback_defers_reevaluation_to_reads(self):
        engine = create_engine(EncodedGraph([chain(1, 2), chain(2, 3)]))
        view = engine.materialize(
            "PREFIX ex: <http://ex.org/>\nSELECT ?x WHERE { ex:n1 ex:p+ ?x }"
        )
        baseline = engine.metrics()["ivm_view_refreshes_total"]
        engine.graph.add(chain(3, 4))
        engine.graph.add(chain(4, 5))
        engine.graph.add(chain(5, 6))
        # No subscriber: the three mutations cost zero re-evaluations ...
        assert engine.metrics()["ivm_view_refreshes_total"] == baseline
        # ... and the next read pays exactly one.
        assert len(view.rows()) == 5
        assert engine.metrics()["ivm_view_refreshes_total"] == baseline + 1

    def test_subscribed_fallback_notifies_on_mutation(self):
        engine = create_engine(EncodedGraph([chain(1, 2)]))
        view = engine.materialize(
            "PREFIX ex: <http://ex.org/>\nSELECT ?x WHERE { ex:n1 ex:p+ ?x }"
        )
        events = []
        view.on_change(events.append)
        engine.graph.add(chain(2, 3))
        assert events == [[((EX.n3,), 1)]]

    def test_union_view_stays_fresh(self):
        engine = create_engine(Graph([chain(1, 2)]))
        view = engine.materialize(
            "PREFIX ex: <http://ex.org/>\n"
            "SELECT ?s WHERE { { ?s ex:p ?o } UNION { ?o ex:p ?s } }"
        )
        assert view.maintenance == "reeval"
        assert view.rows() == [(EX.n1,), (EX.n2,)]
        engine.graph.add(chain(2, 3))
        assert view.rows() == [(EX.n1,), (EX.n2,), (EX.n2,), (EX.n3,)]


# ----------------------------------------------------------------------
# unsupported shapes
# ----------------------------------------------------------------------
class TestMaterializeValidation:
    def test_ask_queries_are_rejected(self):
        engine = create_engine(Graph())
        with pytest.raises(ValueError):
            engine.materialize("ASK { ?s ?p ?o }")

    def test_from_clauses_are_rejected(self):
        engine = create_engine(Graph())
        with pytest.raises(ValueError):
            engine.materialize(
                "SELECT ?s FROM <http://ex.org/g> WHERE { ?s ?p ?o }"
            )

    def test_graph_patterns_are_rejected(self):
        engine = create_engine(Graph())
        with pytest.raises(ValueError):
            engine.materialize(
                "SELECT ?s WHERE { GRAPH <http://ex.org/g> { ?s ?p ?o } }"
            )


# ----------------------------------------------------------------------
# loader regressions: a stale view is impossible
# ----------------------------------------------------------------------
class TestLoaderFreshness:
    QUERY = "PREFIX ex: <http://ex.org/>\nSELECT ?a ?b WHERE { ?a ex:p ?b }"

    def _view(self, graph):
        engine = create_engine(graph)
        return engine, engine.materialize(self.QUERY)

    def test_fresh_bulk_load_cannot_leave_a_stale_view(self):
        graph = EncodedGraph()
        engine, view = self._view(graph)
        assert view.rows() == []
        bulk_load_ntriples(
            "<http://ex.org/n1> <http://ex.org/p> <http://ex.org/n2> .", graph
        )
        assert view.rows() == [(EX.n1, EX.n2)]

    def test_incremental_bulk_load_cannot_leave_a_stale_view(self):
        graph = EncodedGraph([chain(1, 2)])
        engine, view = self._view(graph)
        assert view.rows() == [(EX.n1, EX.n2)]
        bulk_load_ntriples(
            "<http://ex.org/n2> <http://ex.org/p> <http://ex.org/n3> .", graph
        )
        assert view.rows() == [(EX.n1, EX.n2), (EX.n2, EX.n3)]

    def test_turtle_streaming_cannot_leave_a_stale_view(self):
        graph = EncodedGraph()
        engine, view = self._view(graph)
        assert view.rows() == []
        parse_turtle(
            "@prefix ex: <http://ex.org/> . ex:n1 ex:p ex:n2 .", graph=graph
        )
        assert view.rows() == [(EX.n1, EX.n2)]

    def test_hash_update_loop_cannot_leave_a_stale_view(self):
        graph = Graph()
        engine, view = self._view(graph)
        graph.update([chain(1, 2), chain(2, 3)])
        assert view.rows() == [(EX.n1, EX.n2), (EX.n2, EX.n3)]

    def test_snapshot_roundtrip_is_version_distinct(self, tmp_path):
        target = tmp_path / "graph.snap"
        save_snapshot(EncodedGraph([chain(1, 2)]), target)
        loaded = load_snapshot(target)
        engine, view = self._view(loaded)
        assert view.rows() == [(EX.n1, EX.n2)]
        # The load bumped the version, so evaluator plan caches keyed by
        # (graph id, version) can never alias a dead pre-load stamp.
        assert loaded.version > 0
        loaded.add(chain(2, 3))
        assert view.rows() == [(EX.n1, EX.n2), (EX.n2, EX.n3)]


# ----------------------------------------------------------------------
# registry bookkeeping
# ----------------------------------------------------------------------
class TestRegistry:
    def test_one_listener_per_graph_and_detach_on_last_close(self):
        graph = Graph([chain(1, 2)])
        registry = ViewRegistry(SparqlEvaluator(Dataset.from_graph(graph)))
        query = "PREFIX ex: <http://ex.org/>\nSELECT ?a WHERE { ?a ex:p ?b }"
        first = registry.materialize(query)
        second = registry.materialize(query)
        assert len(graph._delta_listeners) == 1
        first.close()
        assert len(graph._delta_listeners) == 1
        second.close()
        assert graph._delta_listeners == []

    def test_metrics_registered(self):
        engine = create_engine(Graph([chain(1, 2)]))
        view = engine.materialize(
            "PREFIX ex: <http://ex.org/>\nSELECT ?a WHERE { ?a ex:p ?b }"
        )
        engine.graph.add(chain(2, 3))
        snapshot = engine.metrics()
        assert snapshot["ivm_views_active"] == 1
        assert snapshot["ivm_delta_batches_total"] == 1
        assert snapshot["ivm_delta_rows_total"] == 1
        view.close()
        assert engine.metrics()["ivm_views_active"] == 0


# ----------------------------------------------------------------------
# z-set primitives
# ----------------------------------------------------------------------
class TestZSets:
    def test_merge_drops_zeroed_entries(self):
        target = {"a": 1, "b": 2}
        zset_merge(target, {"a": -1, "b": 1, "c": -3})
        assert target == {"b": 3, "c": -3}

    def test_diff_roundtrips(self):
        old = zset_from_rows(["a", "a", "b"])
        new = zset_from_rows(["a", "c"])
        delta = zset_diff(new, old)
        assert delta == {"a": -1, "b": -1, "c": 1}
        zset_merge(old, delta)
        assert old == new


# ----------------------------------------------------------------------
# hypothesis differential: random churn vs random views
# ----------------------------------------------------------------------
_NODES = [EX[f"n{i}"] for i in range(5)]
_PREDICATES = [EX.p, EX.q]
_LITERALS = [Literal("1", XSD_INTEGER), Literal("2", XSD_INTEGER)]
_VARIABLES = [Variable(name) for name in ("x", "y", "z")]

_edge = st.tuples(
    st.sampled_from(_NODES),
    st.sampled_from(_PREDICATES),
    st.sampled_from(_NODES + _LITERALS),
)
_pattern = st.tuples(
    st.sampled_from(_VARIABLES + _NODES[:2]),
    st.sampled_from(_PREDICATES),
    st.sampled_from(_VARIABLES + _NODES[:2] + _LITERALS),
)
_operand = st.sampled_from(
    [VariableExpr(variable) for variable in _VARIABLES]
    + [TermExpr(term) for term in _NODES[:2] + _LITERALS]
)
_condition = st.one_of(
    st.builds(Comparison, st.sampled_from(["=", "!=", "<"]), _operand, _operand),
    st.builds(
        lambda left, right: FunctionCall("SAMETERM", (left, right)),
        _operand,
        _operand,
    ),
)


@settings(max_examples=40, deadline=None)
@given(
    initial=st.lists(_edge, min_size=0, max_size=12),
    churn=st.lists(_edge, min_size=1, max_size=15),
    bgp=st.lists(_pattern, min_size=1, max_size=3),
    filter_conditions=st.lists(_condition, min_size=0, max_size=2),
    distinct=st.booleans(),
    backend_index=st.integers(min_value=0, max_value=1),
)
def test_differential_random_churn(
    initial, churn, bgp, filter_conditions, distinct, backend_index
):
    """Maintained views equal re-evaluation after every add/remove."""
    backend = BACKENDS[backend_index]
    pattern_node = BGP(tuple(tp(*parts) for parts in bgp))
    for condition in filter_conditions:
        pattern_node = Filter(pattern_node, condition)
    variables = sorted(pattern_node.variables(), key=lambda v: v.name)
    query = SelectQuery(
        projection=tuple(ProjectionItem(variable) for variable in variables),
        pattern=pattern_node,
        distinct=distinct,
    )
    engine = create_engine(backend(Triple(*edge) for edge in initial))
    view = engine.materialize(query)
    reference = SparqlEvaluator(engine.dataset)
    for edge in churn:
        triple = Triple(*edge)
        # Alternate adds and removes through membership: present → remove.
        if triple in engine.graph:
            engine.graph.remove(triple)
        else:
            engine.graph.add(triple)
        expected = Counter(tuple(row) for row in reference.evaluate(query).rows())
        assert Counter(view.rows()) == expected
    engine.close()
