"""Tests for property-path semantics in the reference evaluator."""

import pytest

from repro.rdf.graph import Dataset, Graph
from repro.rdf.terms import IRI, Literal, Triple
from repro.sparql.evaluator import SparqlEvaluator
from repro.sparql.parser import parse_query
from repro.sparql.paths import (
    OneOrMorePath,
    RepeatPath,
    SequencePath,
    ZeroOrMorePath,
    ZeroOrOnePath,
    LinkPath,
    expand_repeat,
    normalize_path,
)

from tests.helpers import EX, countries_dataset

PREFIX = "PREFIX ex: <http://ex.org/>\n"


def run(dataset, query_text):
    return SparqlEvaluator(dataset).evaluate(parse_query(PREFIX + query_text))


def cyclic_dataset() -> Dataset:
    graph = Graph(
        [
            Triple(EX.a, EX.p, EX.b),
            Triple(EX.b, EX.p, EX.c),
            Triple(EX.c, EX.p, EX.a),  # cycle
            Triple(EX.c, EX.q, EX.d),
        ]
    )
    return Dataset.from_graph(graph)


class TestClosurePaths:
    def test_one_or_more_from_bound_subject(self):
        result = run(
            countries_dataset(),
            "SELECT ?b WHERE { ex:spain ex:borders+ ?b }",
        )
        assert result.to_set() == {
            (EX.france,), (EX.belgium,), (EX.germany,), (EX.austria,),
        }

    def test_one_or_more_set_semantics_no_duplicates(self):
        # germany is reachable from france via two paths, but + has set semantics.
        result = run(
            countries_dataset(),
            "SELECT ?b WHERE { ex:france ex:borders+ ?b }",
        )
        assert len(result) == len(result.to_set())

    def test_one_or_more_on_cycle_includes_start(self):
        result = run(cyclic_dataset(), "SELECT ?x WHERE { ex:a ex:p+ ?x }")
        assert (EX.a,) in result.to_set()

    def test_zero_or_more_includes_start_even_without_edges(self):
        result = run(
            countries_dataset(),
            "SELECT ?b WHERE { ex:austria ex:borders* ?b }",
        )
        assert result.to_set() == {(EX.austria,)}

    def test_zero_or_more_for_node_not_in_graph(self):
        # The zero-length path must exist for a bound term absent from the
        # graph — the corner case the paper fixes (Section 5.2).
        result = run(
            countries_dataset(),
            "SELECT ?b WHERE { ex:atlantis ex:borders* ?b }",
        )
        assert result.to_set() == {(IRI("http://ex.org/atlantis"),)}

    def test_zero_or_one(self):
        result = run(
            countries_dataset(),
            "SELECT ?b WHERE { ex:spain ex:borders? ?b }",
        )
        assert result.to_set() == {(EX.spain,), (EX.france,)}

    def test_zero_or_more_two_variables_includes_all_nodes(self):
        result = run(cyclic_dataset(), "SELECT ?x ?y WHERE { ?x ex:p* ?y }")
        nodes = {EX.a, EX.b, EX.c, EX.d}
        for node in nodes:
            assert (node, node) in result.to_set()

    def test_backwards_evaluation_with_bound_object(self):
        result = run(
            countries_dataset(),
            "SELECT ?a WHERE { ?a ex:borders+ ex:austria }",
        )
        assert result.to_set() == {
            (EX.spain,), (EX.france,), (EX.belgium,), (EX.germany,),
        }


class TestStructuralPaths:
    def test_inverse(self):
        result = run(
            countries_dataset(), "SELECT ?x WHERE { ex:germany ^ex:borders ?x }"
        )
        assert result.to_set() == {(EX.france,), (EX.belgium,)}

    def test_sequence(self):
        result = run(
            countries_dataset(), "SELECT ?x WHERE { ex:spain ex:borders/ex:borders ?x }"
        )
        assert result.to_set() == {(EX.belgium,), (EX.germany,)}

    def test_alternative_preserves_duplicates(self):
        result = run(
            countries_dataset(),
            "SELECT ?x WHERE { ex:spain (ex:borders|ex:borders) ?x }",
        )
        assert len(result) == 2

    def test_negated_property_set(self):
        dataset = cyclic_dataset()
        result = run(dataset, "SELECT ?x ?y WHERE { ?x !(ex:p) ?y }")
        assert result.to_set() == {(EX.c, EX.d)}

    def test_negated_with_inverse_member(self):
        dataset = cyclic_dataset()
        result = run(dataset, "SELECT ?x ?y WHERE { ?x !(ex:p|^ex:p) ?y }")
        # forward: only the q edge; inverse: only the reversed q edge.
        assert result.to_set() == {(EX.c, EX.d), (EX.d, EX.c)}

    def test_bounded_repetition(self):
        result = run(
            countries_dataset(),
            "SELECT ?x WHERE { ex:spain ex:borders{2,3} ?x }",
        )
        assert result.to_set() == {(EX.belgium,), (EX.germany,), (EX.austria,)}

    def test_sequence_of_inverse_and_forward(self):
        result = run(
            countries_dataset(),
            "SELECT ?x WHERE { ex:belgium ^ex:borders/ex:borders ?x }",
        )
        assert (EX.germany,) in result.to_set()


class TestRepeatExpansion:
    def test_exact_repeat(self):
        path = expand_repeat(RepeatPath(LinkPath(EX.p), 3, 3))
        assert isinstance(path, SequencePath)

    def test_zero_to_n(self):
        path = expand_repeat(RepeatPath(LinkPath(EX.p), 0, 2))
        assert isinstance(path, SequencePath)
        assert isinstance(path.left, ZeroOrOnePath)

    def test_n_or_more(self):
        path = expand_repeat(RepeatPath(LinkPath(EX.p), 2, None))
        assert isinstance(path, SequencePath)
        assert isinstance(path.right, OneOrMorePath)

    def test_zero_or_more_equivalent(self):
        assert isinstance(expand_repeat(RepeatPath(LinkPath(EX.p), 0, None)), ZeroOrMorePath)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            expand_repeat(RepeatPath(LinkPath(EX.p), 3, 2))
        with pytest.raises(ValueError):
            expand_repeat(RepeatPath(LinkPath(EX.p), 0, 0))

    def test_normalize_is_recursive(self):
        path = normalize_path(SequencePath(RepeatPath(LinkPath(EX.p), 1, 2), LinkPath(EX.q)))
        assert not any(
            isinstance(node, RepeatPath)
            for node in [path, path.left, path.right]
        )

    def test_is_recursive_flag(self):
        assert OneOrMorePath(LinkPath(EX.p)).is_recursive()
        assert RepeatPath(LinkPath(EX.p), 1, None).is_recursive()
        assert not RepeatPath(LinkPath(EX.p), 1, 3).is_recursive()
        assert not LinkPath(EX.p).is_recursive()


class TestSequenceClosureRegressions:
    """Regressions for the ``None`` endpoint-hint bug and its relatives.

    Sequences hand their halves ``None`` for the shared middle position;
    ``_closure_pairs`` used to misread that as a *bound* endpoint and
    expand from the non-term ``None``, so any sequence containing a
    closure with free outer endpoints silently returned nothing.
    """

    def _chain_dataset(self):
        graph = Graph(
            [
                Triple(EX.a, EX.p, EX.b),
                Triple(EX.b, EX.q, EX.c),
                Triple(EX.c, EX.q, EX.d),
                Triple(EX.x, EX.q, EX.y),
            ]
        )
        return Dataset.from_graph(graph)

    def test_closure_on_right_of_sequence_with_free_endpoints(self):
        result = run(
            self._chain_dataset(), "SELECT ?x ?y WHERE { ?x ex:p/ex:q+ ?y }"
        )
        assert result.to_set() == {(EX.a, EX.c), (EX.a, EX.d)}

    def test_closure_on_left_of_sequence_with_free_endpoints(self):
        result = run(
            self._chain_dataset(), "SELECT ?x ?y WHERE { ?x ex:q*/ex:p ?y }"
        )
        assert result.to_set() == {(EX.a, EX.b)}

    def test_sequence_of_optionals_matches_bound_non_node(self):
        # A bound endpoint outside the graph still zero-length-matches
        # through a sequence whose halves both admit zero length.
        result = run(
            self._chain_dataset(),
            "SELECT ?y WHERE { ex:atlantis ex:p?/ex:q? ?y }",
        )
        assert (EX.atlantis,) in result.to_set()
        result = run(
            self._chain_dataset(),
            "SELECT ?x WHERE { ?x ex:p?/ex:q? ex:atlantis }",
        )
        assert (EX.atlantis,) in result.to_set()

    def test_bound_non_node_both_endpoints_yields_single_solution(self):
        # Regression: the zero-length graft used to re-append the
        # (subject, subject) self-pair the left half already contained,
        # doubling the solution when both endpoints were the same bound
        # term outside the graph.
        result = run(
            self._chain_dataset(),
            "SELECT ?z WHERE { ex:atlantis ex:p?/ex:q? ex:atlantis . BIND(1 AS ?z) }",
        )
        assert list(result.rows()) == [(Literal("1", IRI("http://www.w3.org/2001/XMLSchema#integer")),)]

    def test_datalog_translation_agreement_on_sequence_closure(self):
        from collections import Counter

        from repro.core.engine import SparqLogEngine

        dataset = self._chain_dataset()
        query = "SELECT ?x ?y WHERE { ?x ex:p/ex:q+ ?y }"
        reference = run(dataset, query)
        translated = SparqLogEngine(dataset).query(PREFIX + query)
        assert Counter(reference.rows()) == Counter(translated.rows())


class TestBoundEndpointShortCircuit:
    """The both-endpoints-bound closure stops at the first target sighting."""

    class _CountingGraph(Graph):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            self.probes = 0

        def triples(self, subject=None, predicate=None, obj=None):
            self.probes += 1
            return super().triples(subject, predicate, obj)

    def _long_chain(self, length=200):
        graph = self._CountingGraph()
        for i in range(length):
            graph.add(Triple(EX[f"n{i}"], EX.next, EX[f"n{i + 1}"]))
        return graph

    def test_reachability_probe_stops_at_adjacent_target(self):
        graph = self._long_chain()
        evaluator = SparqlEvaluator(Dataset.from_graph(graph), use_id_paths=False)
        graph.probes = 0
        result = evaluator.evaluate(
            parse_query(PREFIX + "ASK { ex:n0 ex:next+ ex:n1 }")
        )
        assert result is True
        # Without the short-circuit the expansion walks the whole chain
        # (~200 probes); with it, the target is adjacent, so only a
        # handful of index probes happen.
        assert graph.probes < 10

    def test_unreachable_target_still_correct(self):
        graph = self._long_chain()
        evaluator = SparqlEvaluator(Dataset.from_graph(graph), use_id_paths=False)
        assert (
            evaluator.evaluate(
                parse_query(PREFIX + "ASK { ex:n5 ex:next+ ex:n0 }")
            )
            is False
        )

    def test_short_circuit_preserves_bound_pair_results(self):
        graph = self._long_chain(20)
        evaluator = SparqlEvaluator(Dataset.from_graph(graph), use_id_paths=False)
        result = evaluator.evaluate(
            parse_query(PREFIX + "SELECT ?x WHERE { ex:n0 ex:next* ex:n20 . ?x ex:next ex:n1 }")
        )
        assert result.to_set() == {(EX.n0,)}
