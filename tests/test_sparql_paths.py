"""Tests for property-path semantics in the reference evaluator."""

import pytest

from repro.rdf.graph import Dataset, Graph
from repro.rdf.terms import IRI, Literal, Triple
from repro.sparql.evaluator import SparqlEvaluator
from repro.sparql.parser import parse_query
from repro.sparql.paths import (
    OneOrMorePath,
    RepeatPath,
    SequencePath,
    ZeroOrMorePath,
    ZeroOrOnePath,
    LinkPath,
    expand_repeat,
    normalize_path,
)

from tests.helpers import EX, countries_dataset

PREFIX = "PREFIX ex: <http://ex.org/>\n"


def run(dataset, query_text):
    return SparqlEvaluator(dataset).evaluate(parse_query(PREFIX + query_text))


def cyclic_dataset() -> Dataset:
    graph = Graph(
        [
            Triple(EX.a, EX.p, EX.b),
            Triple(EX.b, EX.p, EX.c),
            Triple(EX.c, EX.p, EX.a),  # cycle
            Triple(EX.c, EX.q, EX.d),
        ]
    )
    return Dataset.from_graph(graph)


class TestClosurePaths:
    def test_one_or_more_from_bound_subject(self):
        result = run(
            countries_dataset(),
            "SELECT ?b WHERE { ex:spain ex:borders+ ?b }",
        )
        assert result.to_set() == {
            (EX.france,), (EX.belgium,), (EX.germany,), (EX.austria,),
        }

    def test_one_or_more_set_semantics_no_duplicates(self):
        # germany is reachable from france via two paths, but + has set semantics.
        result = run(
            countries_dataset(),
            "SELECT ?b WHERE { ex:france ex:borders+ ?b }",
        )
        assert len(result) == len(result.to_set())

    def test_one_or_more_on_cycle_includes_start(self):
        result = run(cyclic_dataset(), "SELECT ?x WHERE { ex:a ex:p+ ?x }")
        assert (EX.a,) in result.to_set()

    def test_zero_or_more_includes_start_even_without_edges(self):
        result = run(
            countries_dataset(),
            "SELECT ?b WHERE { ex:austria ex:borders* ?b }",
        )
        assert result.to_set() == {(EX.austria,)}

    def test_zero_or_more_for_node_not_in_graph(self):
        # The zero-length path must exist for a bound term absent from the
        # graph — the corner case the paper fixes (Section 5.2).
        result = run(
            countries_dataset(),
            "SELECT ?b WHERE { ex:atlantis ex:borders* ?b }",
        )
        assert result.to_set() == {(IRI("http://ex.org/atlantis"),)}

    def test_zero_or_one(self):
        result = run(
            countries_dataset(),
            "SELECT ?b WHERE { ex:spain ex:borders? ?b }",
        )
        assert result.to_set() == {(EX.spain,), (EX.france,)}

    def test_zero_or_more_two_variables_includes_all_nodes(self):
        result = run(cyclic_dataset(), "SELECT ?x ?y WHERE { ?x ex:p* ?y }")
        nodes = {EX.a, EX.b, EX.c, EX.d}
        for node in nodes:
            assert (node, node) in result.to_set()

    def test_backwards_evaluation_with_bound_object(self):
        result = run(
            countries_dataset(),
            "SELECT ?a WHERE { ?a ex:borders+ ex:austria }",
        )
        assert result.to_set() == {
            (EX.spain,), (EX.france,), (EX.belgium,), (EX.germany,),
        }


class TestStructuralPaths:
    def test_inverse(self):
        result = run(
            countries_dataset(), "SELECT ?x WHERE { ex:germany ^ex:borders ?x }"
        )
        assert result.to_set() == {(EX.france,), (EX.belgium,)}

    def test_sequence(self):
        result = run(
            countries_dataset(), "SELECT ?x WHERE { ex:spain ex:borders/ex:borders ?x }"
        )
        assert result.to_set() == {(EX.belgium,), (EX.germany,)}

    def test_alternative_preserves_duplicates(self):
        result = run(
            countries_dataset(),
            "SELECT ?x WHERE { ex:spain (ex:borders|ex:borders) ?x }",
        )
        assert len(result) == 2

    def test_negated_property_set(self):
        dataset = cyclic_dataset()
        result = run(dataset, "SELECT ?x ?y WHERE { ?x !(ex:p) ?y }")
        assert result.to_set() == {(EX.c, EX.d)}

    def test_negated_with_inverse_member(self):
        dataset = cyclic_dataset()
        result = run(dataset, "SELECT ?x ?y WHERE { ?x !(ex:p|^ex:p) ?y }")
        # forward: only the q edge; inverse: only the reversed q edge.
        assert result.to_set() == {(EX.c, EX.d), (EX.d, EX.c)}

    def test_bounded_repetition(self):
        result = run(
            countries_dataset(),
            "SELECT ?x WHERE { ex:spain ex:borders{2,3} ?x }",
        )
        assert result.to_set() == {(EX.belgium,), (EX.germany,), (EX.austria,)}

    def test_sequence_of_inverse_and_forward(self):
        result = run(
            countries_dataset(),
            "SELECT ?x WHERE { ex:belgium ^ex:borders/ex:borders ?x }",
        )
        assert (EX.germany,) in result.to_set()


class TestRepeatExpansion:
    def test_exact_repeat(self):
        path = expand_repeat(RepeatPath(LinkPath(EX.p), 3, 3))
        assert isinstance(path, SequencePath)

    def test_zero_to_n(self):
        path = expand_repeat(RepeatPath(LinkPath(EX.p), 0, 2))
        assert isinstance(path, SequencePath)
        assert isinstance(path.left, ZeroOrOnePath)

    def test_n_or_more(self):
        path = expand_repeat(RepeatPath(LinkPath(EX.p), 2, None))
        assert isinstance(path, SequencePath)
        assert isinstance(path.right, OneOrMorePath)

    def test_zero_or_more_equivalent(self):
        assert isinstance(expand_repeat(RepeatPath(LinkPath(EX.p), 0, None)), ZeroOrMorePath)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            expand_repeat(RepeatPath(LinkPath(EX.p), 3, 2))
        with pytest.raises(ValueError):
            expand_repeat(RepeatPath(LinkPath(EX.p), 0, 0))

    def test_normalize_is_recursive(self):
        path = normalize_path(SequencePath(RepeatPath(LinkPath(EX.p), 1, 2), LinkPath(EX.q)))
        assert not any(
            isinstance(node, RepeatPath)
            for node in [path, path.left, path.right]
        )

    def test_is_recursive_flag(self):
        assert OneOrMorePath(LinkPath(EX.p)).is_recursive()
        assert RepeatPath(LinkPath(EX.p), 1, None).is_recursive()
        assert not RepeatPath(LinkPath(EX.p), 1, 3).is_recursive()
        assert not LinkPath(EX.p).is_recursive()
