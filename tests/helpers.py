"""Shared helpers for the test suite."""

from __future__ import annotations

from collections import Counter
from typing import Union

from repro.rdf.graph import Dataset, Graph
from repro.rdf.namespace import Namespace
from repro.rdf.terms import Literal, Triple
from repro.sparql.solutions import SolutionSequence

EX = Namespace("http://ex.org/")


def countries_graph() -> Graph:
    """The bordering-countries example graph from the paper (Section 4.2)."""
    graph = Graph()
    graph.add(Triple(EX.spain, EX.borders, EX.france))
    graph.add(Triple(EX.france, EX.borders, EX.belgium))
    graph.add(Triple(EX.france, EX.borders, EX.germany))
    graph.add(Triple(EX.belgium, EX.borders, EX.germany))
    graph.add(Triple(EX.germany, EX.borders, EX.austria))
    return graph


def directors_graph() -> Graph:
    """The film-directors example graph from the paper (Section 3.1)."""
    graph = Graph()
    graph.add(Triple(EX.glucas, EX.name, Literal("George")))
    graph.add(Triple(EX.glucas, EX.lastname, Literal("Lucas")))
    graph.add(Triple(EX.sspielberg, EX.name, Literal("Steven")))
    return graph


def countries_dataset() -> Dataset:
    return Dataset.from_graph(countries_graph())


def directors_dataset() -> Dataset:
    return Dataset.from_graph(directors_graph())


def rows_multiset(result: Union[SolutionSequence, bool]) -> Counter:
    """Multiset of result rows for order-insensitive comparisons."""
    if isinstance(result, bool):
        return Counter([(result,)])
    return Counter(result.rows())


def assert_same_solutions(left, right) -> None:
    """Assert two engine results are equal as multisets."""
    assert rows_multiset(left) == rows_multiset(right)
