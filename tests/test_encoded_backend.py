"""Re-run the Graph and SPARQL evaluator suites over the encoded backend.

Acceptance for the store subsystem: :class:`repro.store.EncodedGraph` is a
drop-in replacement for :class:`repro.rdf.graph.Graph`.  Every test class
of ``tests/test_rdf_graph.py`` and ``tests/test_sparql_evaluator.py`` is
subclassed here and executed with the module-level ``Graph`` name (and the
graph builders in ``tests.helpers``) patched to the encoded backend, so
the exact same assertions run against both storage layers.
"""

import pytest

import tests.helpers as helpers
import tests.test_rdf_graph as graph_suite
import tests.test_sparql_evaluator as evaluator_suite
from repro.store import EncodedGraph


@pytest.fixture(autouse=True, params=["id-native", "decoded"])
def _encoded_backend(request, monkeypatch):
    """Substitute EncodedGraph for Graph in the suites and their helpers.

    Parametrised over both execution pipelines: the default evaluator
    joins planned BGPs over raw dictionary ids (``id-native``), the
    ``decoded`` variant pins the term-space pipeline — so every assertion
    of the evaluator suite doubles as a decoded-vs-id-native differential
    on the encoded backend.
    """
    for module in (graph_suite, evaluator_suite, helpers):
        monkeypatch.setattr(module, "Graph", EncodedGraph)
    if request.param == "decoded":
        reference = evaluator_suite.SparqlEvaluator

        def decoded_evaluator(dataset, **kwargs):
            kwargs.setdefault("use_id_execution", False)
            kwargs.setdefault("use_filter_pushdown", False)
            return reference(dataset, **kwargs)

        monkeypatch.setattr(evaluator_suite, "SparqlEvaluator", decoded_evaluator)
    yield


def _subclass_suites(module, prefix):
    for name, obj in list(vars(module).items()):
        if isinstance(obj, type) and name.startswith("Test"):
            subclass = type(f"{prefix}{name[4:]}", (obj,), {})
            subclass.__module__ = __name__
            globals()[subclass.__name__] = subclass


_subclass_suites(graph_suite, "TestEncodedRdf")
_subclass_suites(evaluator_suite, "TestEncodedSparql")


def test_suites_collected():
    """Guard: the dynamic subclassing actually produced the suites."""
    generated = [name for name in globals() if name.startswith("TestEncoded")]
    assert any(name.startswith("TestEncodedRdf") for name in generated)
    assert any(name.startswith("TestEncodedSparql") for name in generated)
    assert len(generated) >= 8, generated
