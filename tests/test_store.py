"""Tests for the dictionary-encoded storage subsystem (repro.store)."""

import io
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.rdf.graph import Dataset, Graph
from repro.rdf.ntriples import NTriplesParseError, parse_ntriples, serialize_ntriples
from repro.rdf.terms import BlankNode, IRI, Literal, Triple, Variable
from repro.sparql.evaluator import SparqlEvaluator
from repro.sparql.parser import parse_query
from repro.store import (
    EncodedGraph,
    GRAPH_BACKENDS,
    SnapshotError,
    TermDictionary,
    bulk_load_ntriples,
    bulk_load_path,
    bulk_load_turtle,
    create_graph,
    load_snapshot,
    save_snapshot,
)
from repro.store.dictionary import KIND_BLANK, KIND_IRI, KIND_LITERAL

from tests.helpers import EX, countries_graph


# ----------------------------------------------------------------------
# term strategies (hypothesis)
# ----------------------------------------------------------------------
_names = st.text(
    alphabet="abcdefgh0123456789", min_size=1, max_size=6
)

iris = st.builds(lambda n: IRI(f"http://ex.org/{n}"), _names)
bnodes = st.builds(BlankNode, _names)
plain_literals = st.builds(Literal, st.text(max_size=8))
typed_literals = st.builds(
    lambda lex, dt: Literal(lex, IRI(f"http://ex.org/dt/{dt}")),
    st.text(max_size=6),
    _names,
)
lang_literals = st.builds(
    lambda lex, tag: Literal(lex, None, tag),
    st.text(max_size=6),
    st.sampled_from(["en", "es-419", "de-CH-1901", "zh-Hant", "x-a-b"]),
)
terms = st.one_of(iris, bnodes, plain_literals, typed_literals, lang_literals)
ground_triples = st.builds(
    Triple, st.one_of(iris, bnodes), iris, terms
)


class TestTermDictionary:
    def test_ids_are_stable_and_bidirectional(self):
        dictionary = TermDictionary()
        first = dictionary.encode(EX.a)
        second = dictionary.encode(EX.b)
        assert first != second
        assert dictionary.encode(EX.a) == first
        assert dictionary.term(first) == EX.a
        assert dictionary.term(second) == EX.b
        assert len(dictionary) == 2

    def test_kind_tagging(self):
        dictionary = TermDictionary()
        assert dictionary.kind(dictionary.encode(EX.a)) == KIND_IRI
        assert dictionary.kind(dictionary.encode(BlankNode("b"))) == KIND_BLANK
        assert dictionary.kind(dictionary.encode(Literal("x"))) == KIND_LITERAL

    def test_distinct_literals_stay_distinct(self):
        # A plain literal and an explicitly xsd:string-typed literal are
        # different terms (dataclass equality) and must get different ids.
        from repro.rdf.terms import XSD_STRING

        dictionary = TermDictionary()
        plain = dictionary.encode(Literal("5"))
        typed = dictionary.encode(Literal("5", XSD_STRING))
        integer = dictionary.encode(Literal("5", IRI("http://www.w3.org/2001/XMLSchema#integer")))
        assert len({plain, typed, integer}) == 3

    def test_language_literal_interning_is_canonical(self):
        # Term-level and token-level interning must agree on language
        # literals despite the implied rdf:langString datatype.
        dictionary = TermDictionary()
        via_term = dictionary.encode(Literal("hola", None, "es-419"))
        via_token = dictionary.encode_literal("hola", None, "es-419")
        assert via_term == via_token
        assert dictionary.term(via_token) == Literal("hola", None, "es-419")

    def test_id_for_does_not_intern(self):
        dictionary = TermDictionary()
        assert dictionary.id_for(EX.a) is None
        assert len(dictionary) == 0
        assert EX.a not in dictionary

    def test_rejects_variables(self):
        with pytest.raises(TypeError):
            TermDictionary().encode(Variable("x"))

    @given(st.lists(terms, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, term_list):
        dictionary = TermDictionary()
        ids = [dictionary.encode(term) for term in term_list]
        # decode(encode(t)) == t, and equal terms share one id
        for term, term_id in zip(term_list, ids):
            assert dictionary.term(term_id) == term
            assert dictionary.id_for(term) == term_id
        assert len(dictionary) == len(set(term_list))


class TestEncodedGraphBasics:
    def test_len_contains_iter(self):
        graph = EncodedGraph()
        triple = Triple(EX.a, EX.p, EX.b)
        graph.add(triple)
        graph.add(triple)
        assert len(graph) == 1
        assert triple in graph
        assert list(graph) == [triple]

    def test_rejects_non_ground(self):
        graph = EncodedGraph()
        with pytest.raises(ValueError):
            graph.add(Triple(Variable("x"), EX.p, EX.b))
        with pytest.raises(ValueError):
            graph.add_triple(EX.a, EX.p, Variable("o"))

    def test_remove_unknown_term_is_noop(self):
        graph = EncodedGraph([Triple(EX.a, EX.p, EX.b)])
        graph.remove(Triple(EX.never, EX.seen, EX.before))
        assert len(graph) == 1
        # probing with unknown terms answers empty, not KeyError
        assert list(graph.triples(EX.never, None, None)) == []
        assert graph.pattern_cardinality(None, EX.seen, None) == 0

    def test_copy_shares_dictionary_but_not_indexes(self):
        graph = EncodedGraph([Triple(EX.a, EX.p, EX.b)])
        clone = graph.copy()
        clone.add(Triple(EX.a, EX.p, EX.c))
        assert len(graph) == 1
        assert len(clone) == 2
        assert clone.dictionary is graph.dictionary

    def test_version_counts_effective_mutations(self):
        graph = EncodedGraph()
        triple = Triple(EX.a, EX.p, EX.b)
        assert graph.version == 0
        graph.add(triple)
        graph.add(triple)  # duplicate: no bump
        assert graph.version == 1
        graph.remove(triple)
        graph.remove(triple)  # absent: no bump
        assert graph.version == 2

    @given(st.lists(st.tuples(st.booleans(), ground_triples), max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_differential_against_seed_graph(self, operations):
        """Random add/remove churn keeps both backends observably equal."""
        seed, encoded = Graph(), EncodedGraph()
        for is_add, triple in operations:
            if is_add:
                seed.add(triple)
                encoded.add(triple)
            else:
                seed.remove(triple)
                encoded.remove(triple)
        assert Counter(iter(seed)) == Counter(iter(encoded))
        assert seed.subjects() == encoded.subjects()
        assert seed.predicates() == encoded.predicates()
        assert seed.objects() == encoded.objects()
        assert seed.terms() == encoded.terms()
        for _, triple in operations:
            subject, predicate, obj = triple
            for pattern in [
                (subject, None, None),
                (None, predicate, None),
                (None, None, obj),
                (subject, predicate, None),
                (None, predicate, obj),
                (subject, None, obj),
                (subject, predicate, obj),
            ]:
                assert seed.pattern_cardinality(*pattern) == encoded.pattern_cardinality(
                    *pattern
                ), pattern
                assert Counter(seed.triples(*pattern)) == Counter(
                    encoded.triples(*pattern)
                ), pattern
            assert seed.distinct_subjects(predicate) == encoded.distinct_subjects(predicate)
            assert seed.distinct_objects(predicate) == encoded.distinct_objects(predicate)


class TestBulkLoader:
    def test_matches_seed_parser(self):
        text = serialize_ntriples(countries_graph())
        assert Counter(iter(bulk_load_ntriples(text))) == Counter(
            iter(parse_ntriples(text))
        )

    def test_literals_comments_and_blank_nodes(self):
        text = "\n".join(
            [
                "# leading comment",
                '<http://e/s> <http://e/p> "plain" .',
                '<http://e/s> <http://e/p> "hola"@es-419 .',
                '<http://e/s> <http://e/p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .',
                '_:b1 <http://e/p> "esc\\"aped\\n" .',
                "",
                "<http://e/s> <http://e/p> _:b1 .",
            ]
        )
        graph = bulk_load_ntriples(text)
        assert Counter(iter(graph)) == Counter(iter(parse_ntriples(text)))
        assert Literal("hola", None, "es-419") in graph.terms()

    def test_accepts_line_iterables_and_files(self):
        text = serialize_ntriples(countries_graph())
        from_lines = bulk_load_ntriples(text.splitlines())
        from_file = bulk_load_ntriples(io.StringIO(text))
        assert Counter(iter(from_lines)) == Counter(iter(from_file))

    def test_error_reports_line_number(self):
        with pytest.raises(NTriplesParseError) as excinfo:
            bulk_load_ntriples('<http://e/s> <http://e/p> <http://e/o> .\nnot a triple .')
        assert excinfo.value.line_number == 2

    def test_literal_predicate_rejected(self):
        with pytest.raises(NTriplesParseError):
            bulk_load_ntriples('<http://e/s> "lit" <http://e/o> .')

    def test_bnode_object_dot_dialect_parity(self):
        # '_:b.' — the greedy blank-node label swallows the dot, so the
        # strict parser rejects the line; the fast path must agree
        # instead of backtracking its way into accepting it.
        line = "<http://e/s> <http://e/p> _:b."
        with pytest.raises(NTriplesParseError):
            parse_ntriples(line)
        with pytest.raises(NTriplesParseError):
            bulk_load_ntriples(line)
        # ...while a dot-terminated label before a spaced dot is legal in
        # both (label "b.").
        spaced = "<http://e/s> <http://e/p> _:b. ."
        assert Counter(iter(bulk_load_ntriples(spaced))) == Counter(
            iter(parse_ntriples(spaced))
        )

    def test_turtle_bulk_load(self):
        text = """
        @prefix ex: <http://ex.org/> .
        ex:a ex:p ex:b , ex:c ; ex:q "v"@de-CH-1901 .
        """
        graph = bulk_load_turtle(text)
        assert isinstance(graph, EncodedGraph)
        from repro.rdf.turtle import parse_turtle

        assert Counter(iter(graph)) == Counter(iter(parse_turtle(text)))

    def test_bulk_load_path_infers_format(self, tmp_path):
        nt = tmp_path / "data.nt"
        nt.write_text(serialize_ntriples(countries_graph()), encoding="utf-8")
        assert len(bulk_load_path(nt)) == len(countries_graph())
        ttl = tmp_path / "data.ttl"
        ttl.write_text("@prefix ex: <http://ex.org/> .\nex:a ex:p ex:b .\n", encoding="utf-8")
        assert len(bulk_load_path(ttl)) == 1
        with pytest.raises(ValueError):
            bulk_load_path(tmp_path / "data.unknown")

    def test_chunked_load_matches_one_shot(self):
        # Loading in chunks into one graph (incremental statistics path)
        # must be indistinguishable from a single load (rebuild path).
        lines = [
            f"<http://e/s{i % 5}> <http://e/p{i % 2}> <http://e/o{i % 7}> ."
            for i in range(40)
        ]
        one_shot = bulk_load_ntriples("\n".join(lines))
        chunked = bulk_load_ntriples("\n".join(lines[:20]))
        bulk_load_ntriples("\n".join(lines[20:]), chunked)
        assert Counter(iter(one_shot)) == Counter(iter(chunked))
        for index in range(2):
            predicate = IRI(f"http://e/p{index}")
            assert one_shot.pattern_cardinality(
                None, predicate, None
            ) == chunked.pattern_cardinality(None, predicate, None)
            assert one_shot.distinct_subjects(predicate) == chunked.distinct_subjects(
                predicate
            )
            assert one_shot.distinct_objects(predicate) == chunked.distinct_objects(
                predicate
            )
        for index in range(5):
            subject = IRI(f"http://e/s{index}")
            assert one_shot.subject_cardinality(subject) == chunked.subject_cardinality(
                subject
            )

    def test_failed_load_leaves_graph_consistent(self):
        # A parse error part-way through the load must not leave the
        # statistics (or the version stamp) behind the indexes.
        graph = EncodedGraph([Triple(EX.a, EX.p, EX.b)])
        version = graph.version
        with pytest.raises(NTriplesParseError):
            bulk_load_ntriples(
                '<http://ex.org/a> <http://ex.org/p> <http://ex.org/c> .\n'
                'not a triple .',
                graph,
            )
        assert len(graph) == 2
        assert graph.pattern_cardinality(EX.a, None, None) == 2
        assert graph.subject_cardinality(EX.a) == 2
        assert graph.version == version + 1

    def test_loads_into_existing_graph(self):
        graph = EncodedGraph([Triple(EX.a, EX.p, EX.b)])
        bulk_load_ntriples('<http://ex.org/a> <http://ex.org/p> <http://ex.org/c> .', graph)
        assert len(graph) == 2
        assert graph.pattern_cardinality(EX.a, None, None) == 2


class TestSnapshot:
    def _graph(self):
        return bulk_load_ntriples(
            "\n".join(
                [
                    '<http://e/s1> <http://e/p> <http://e/o1> .',
                    '<http://e/s1> <http://e/p> "x"@en-US .',
                    '<http://e/s2> <http://e/q> "7"^^<http://www.w3.org/2001/XMLSchema#integer> .',
                    '_:b <http://e/p> "plain" .',
                ]
            )
        )

    def test_round_trip_stream(self):
        graph = self._graph()
        buffer = io.BytesIO()
        save_snapshot(graph, buffer)
        buffer.seek(0)
        loaded = load_snapshot(buffer)
        assert Counter(iter(loaded)) == Counter(iter(graph))

    def test_round_trip_path(self, tmp_path):
        graph = self._graph()
        path = tmp_path / "graph.snap"
        save_snapshot(graph, path)
        loaded = load_snapshot(path)
        assert Counter(iter(loaded)) == Counter(iter(graph))

    def test_bad_magic_and_truncation(self, tmp_path):
        with pytest.raises(SnapshotError):
            load_snapshot(io.BytesIO(b"NOTASNAP" + b"\0" * 16))
        buffer = io.BytesIO()
        save_snapshot(self._graph(), buffer)
        truncated = buffer.getvalue()[:-5]
        with pytest.raises(SnapshotError):
            load_snapshot(io.BytesIO(truncated))

    def test_trailing_bytes_rejected(self):
        buffer = io.BytesIO()
        save_snapshot(self._graph(), buffer)
        with pytest.raises(SnapshotError):
            load_snapshot(io.BytesIO(buffer.getvalue() + b"\0" * 24))

    def test_out_of_range_triple_id_rejected(self):
        # Corrupt id streams must fail at load time, not as an IndexError
        # during a later decode.
        buffer = io.BytesIO()
        save_snapshot(self._graph(), buffer)
        data = bytearray(buffer.getvalue())
        data[-8:] = (1 << 40).to_bytes(8, "little")  # clobber the last oid
        with pytest.raises(SnapshotError):
            load_snapshot(io.BytesIO(bytes(data)))

    def test_corrupt_kind_tag_rejected(self):
        buffer = io.BytesIO()
        save_snapshot(self._graph(), buffer)
        data = bytearray(buffer.getvalue())
        # Flip the kind bits of the last object id while staying in range.
        original = int.from_bytes(data[-8:], "little")
        data[-8:] = (original ^ 0b11).to_bytes(8, "little")
        with pytest.raises(SnapshotError):
            load_snapshot(io.BytesIO(bytes(data)))

    def test_duplicate_triple_records_rejected(self):
        buffer = io.BytesIO()
        save_snapshot(self._graph(), buffer)
        data = bytearray(buffer.getvalue())
        # Duplicate the last id record and bump the declared triple count.
        n_offset = len(data) - 4 * 24 - 8
        count = int.from_bytes(data[n_offset:n_offset + 8], "little")
        assert count == 4
        data[n_offset:n_offset + 8] = (count + 1).to_bytes(8, "little")
        data.extend(data[-24:])
        with pytest.raises(SnapshotError):
            load_snapshot(io.BytesIO(bytes(data)))

    @given(st.lists(ground_triples, max_size=25))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_property(self, triple_list):
        """Snapshot load reproduces the triple multiset and the statistics."""
        graph = EncodedGraph(triple_list)
        buffer = io.BytesIO()
        save_snapshot(graph, buffer)
        buffer.seek(0)
        loaded = load_snapshot(buffer)
        assert Counter(iter(loaded)) == Counter(iter(graph))
        for triple in triple_list:
            subject, predicate, obj = triple
            for pattern in [
                (subject, None, None),
                (None, predicate, None),
                (None, None, obj),
                (subject, predicate, None),
                (None, predicate, obj),
                (subject, None, obj),
            ]:
                assert graph.pattern_cardinality(*pattern) == loaded.pattern_cardinality(
                    *pattern
                )
            assert graph.distinct_subjects(predicate) == loaded.distinct_subjects(predicate)
            assert graph.distinct_objects(predicate) == loaded.distinct_objects(predicate)
        assert graph.distinct_predicates() == loaded.distinct_predicates()


class TestBackendFactory:
    def test_default_is_hash(self):
        assert type(create_graph()) is Graph

    def test_named_backends(self):
        assert type(create_graph("hash")) is Graph
        assert type(create_graph("encoded")) is EncodedGraph
        assert set(GRAPH_BACKENDS) == {"hash", "encoded"}

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_BACKEND", "encoded")
        assert type(create_graph()) is EncodedGraph

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            create_graph("btree")

    def test_prefilled(self):
        triples = list(countries_graph())
        assert len(create_graph("encoded", triples)) == len(triples)


class TestPlannedQueryDifferential:
    """Planned SPARQL evaluation is backend-independent."""

    QUERIES = [
        "SELECT ?a ?c WHERE { ?a ex:borders ?b . ?b ex:borders ?c }",
        "SELECT ?x WHERE { ?x ex:borders ex:germany . ?x ex:borders ex:belgium }",
        "ASK WHERE { ex:spain ex:borders ?x . ?x ex:borders ?y }",
        "SELECT ?a ?b WHERE { ?a ex:borders+ ?b }",
        "SELECT (COUNT(?x) AS ?n) WHERE { ?s ex:borders ?x }",
    ]

    @pytest.mark.parametrize("query_text", QUERIES)
    def test_same_solutions(self, query_text):
        query = parse_query("PREFIX ex: <http://ex.org/>\n" + query_text)
        triples = list(countries_graph())
        results = []
        for backend in ("hash", "encoded"):
            graph = create_graph(backend, triples)
            evaluator = SparqlEvaluator(Dataset.from_graph(graph))
            outcome = evaluator.evaluate(query)
            results.append(
                outcome if isinstance(outcome, bool) else Counter(outcome.rows())
            )
        assert results[0] == results[1]

    @given(st.lists(ground_triples, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_join_query_property(self, triple_list):
        query = parse_query(
            "SELECT ?s ?o ?o2 WHERE { ?s <http://ex.org/a> ?o . ?o <http://ex.org/a> ?o2 }"
        )
        rows = []
        for backend in ("hash", "encoded"):
            graph = create_graph(backend, triple_list)
            result = SparqlEvaluator(Dataset.from_graph(graph)).evaluate(query)
            rows.append(Counter(result.rows()))
        assert rows[0] == rows[1]


class TestIdLevelSurface:
    """The id-native executor's store surface: match_triple_ids & friends."""

    def _graph(self):
        graph = EncodedGraph()
        graph.add(Triple(EX.s1, EX.p, EX.o1))
        graph.add(Triple(EX.s1, EX.p, EX.o2))
        graph.add(Triple(EX.s1, EX.q, EX.o1))
        graph.add(Triple(EX.s2, EX.p, EX.o1))
        return graph

    def _ids(self, graph, *terms):
        return tuple(graph.dictionary.id_for(term) for term in terms)

    def test_match_triple_ids_agrees_with_triples_on_every_shape(self):
        graph = self._graph()
        s1, p, o1 = self._ids(graph, EX.s1, EX.p, EX.o1)
        shapes = [
            (None, None, None),
            (s1, None, None),
            (None, p, None),
            (None, None, o1),
            (s1, p, None),
            (s1, None, o1),
            (None, p, o1),
            (s1, p, o1),
        ]
        decode = graph.dictionary.term
        for sid, pid, oid in shapes:
            by_ids = Counter(
                Triple(decode(s), decode(q), decode(o))
                for s, q, o in graph.match_triple_ids(sid, pid, oid)
            )
            by_terms = Counter(
                graph.triples(
                    decode(sid) if sid is not None else None,
                    decode(pid) if pid is not None else None,
                    decode(oid) if oid is not None else None,
                )
            )
            assert by_ids == by_terms, (sid, pid, oid)
            assert graph.pattern_cardinality_ids(sid, pid, oid) == sum(
                by_ids.values()
            ), (sid, pid, oid)

    def test_match_triple_ids_misses_return_empty(self):
        graph = self._graph()
        s1, p = self._ids(graph, EX.s1, EX.p)
        absent = 1 << 20  # an id the dictionary never handed out
        assert list(graph.match_triple_ids(absent, None, None)) == []
        assert list(graph.match_triple_ids(s1, absent, None)) == []
        assert list(graph.match_triple_ids(s1, p, absent)) == []
        assert graph.pattern_cardinality_ids(absent) == 0

    def test_match_triple_ids_tracks_removal(self):
        graph = self._graph()
        s1, p, o2 = self._ids(graph, EX.s1, EX.p, EX.o2)
        assert graph.pattern_cardinality_ids(s1, p, None) == 2
        graph.remove(Triple(EX.s1, EX.p, EX.o2))
        assert list(graph.match_triple_ids(s1, p, None)) == [
            (s1, p, self._ids(graph, EX.o1)[0])
        ]
        assert graph.pattern_cardinality_ids(s1, p, o2) == 0
