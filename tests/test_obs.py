"""Tests for the observability layer (:mod:`repro.obs`) and its wiring.

Covers the tracer (span nesting, disabled no-ops, iterator tracing), the
metrics registry (instrument kinds, get-or-create, Prometheus text
exposition), both trace exporters against the committed schema, and the
integration points: evaluator cache metrics with the deprecated
``plan_cache_*`` aliases, per-execution operator-stat reset on cached
physical plans, counter consistency under LIMIT/ASK early exit, the
WCOJ-fallback warning/counter, store and dictionary counters bound
through :func:`repro.obs.metrics.bind_store_metrics`, the Datalog
fixpoint-iteration counter, and the harness ``time_call`` tracer hook.
"""

import logging
from collections import Counter as MultiSet

import pytest

from repro.core.engine import SparqLogEngine
from repro.harness.timing import time_call
from repro.obs import (
    NULL_SPAN,
    Tracer,
    bind_store_metrics,
    to_chrome_trace,
    trace_to_dict,
    validate_trace,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import trace_iterator
from repro.rdf.graph import Dataset, Graph
from repro.rdf.terms import Triple
from repro.sparql.evaluator import SparqlEvaluator
from repro.sparql.parser import parse_query
from repro.store import EncodedGraph

from tests.helpers import EX

PREFIX = "PREFIX ex: <http://ex.org/>\n"

_TRIPLES = [
    Triple(EX.s1, EX.p, EX.a),
    Triple(EX.s1, EX.q, EX.b),
    Triple(EX.s2, EX.p, EX.a),
    Triple(EX.a, EX.p, EX.b),
    Triple(EX.b, EX.p, EX.c),
    Triple(EX.c, EX.p, EX.a),
]

_TRIANGLE = PREFIX + "SELECT * WHERE { ?a ex:p ?b . ?b ex:p ?c . ?c ex:p ?a }"


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_nesting_and_completion_order(self):
        tracer = Tracer("t")
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
            outer.annotate(detail=1)
        assert [span.name for span in tracer.spans] == ["inner", "outer"]
        inner, outer = tracer.spans
        assert inner.parent is outer
        assert outer.parent is None
        assert outer.args == {"detail": 1}
        assert inner.duration is not None and inner.duration >= 0.0

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("phase")
        assert span is NULL_SPAN
        with span as active:
            active.annotate(ignored=True)
        tracer.event("summary", duration=1.0)
        assert len(tracer) == 0

    def test_event_synthesises_start_from_duration(self):
        tracer = Tracer()
        tracer.event("op", category="operator", duration=0.25, rows=7)
        (span,) = tracer.spans
        assert span.end is not None
        assert span.duration == pytest.approx(0.25)
        assert span.args == {"rows": 7}

    def test_phase_totals_sums_by_name_within_category(self):
        tracer = Tracer()
        tracer.event("execute", category="phase", duration=0.1)
        tracer.event("execute", category="phase", duration=0.2)
        tracer.event("other", category="query", duration=5.0)
        totals = tracer.phase_totals()
        assert totals["execute"] == pytest.approx(0.3)
        assert "other" not in totals

    def test_clear_drops_finished_spans(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.clear()
        assert len(tracer) == 0

    def test_trace_iterator_counts_rows_and_is_lazy(self):
        tracer = Tracer()
        wrapped = trace_iterator(tracer, "stream", iter([1, 2, 3]))
        assert len(tracer) == 0  # nothing recorded before consumption
        assert list(wrapped) == [1, 2, 3]
        (span,) = tracer.spans
        assert span.name == "stream"
        assert span.args == {"rows": 3}

    def test_trace_iterator_passthrough_without_tracer(self):
        assert list(trace_iterator(None, "s", iter([1, 2]))) == [1, 2]


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_gauge_and_get_or_create(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "help text")
        counter.inc()
        counter.inc(2)
        assert registry.counter("hits_total") is counter
        gauge = registry.gauge("size")
        gauge.set(12.5)
        snapshot = registry.snapshot()
        assert snapshot == {"hits_total": 3, "size": 12.5}

    def test_kind_collision_is_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_invalid_name_is_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("1bad")
        with pytest.raises(ValueError):
            registry.counter("has space")

    def test_callback_instruments_read_live_state(self):
        registry = MetricsRegistry()
        state = {"value": 1}
        registry.gauge("live", callback=lambda: state["value"])
        assert registry.snapshot()["live"] == 1
        state["value"] = 9
        assert registry.snapshot()["live"] == 9

    def test_histogram_cumulative_buckets(self):
        histogram = Histogram("lat", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.05, 0.5, 5.0):
            histogram.observe(value)
        collected = histogram.collect()
        assert collected["count"] == 5
        assert collected["sum"] == pytest.approx(5.605)
        assert collected["buckets"] == {"0.01": 1, "0.1": 3, "1": 4, "+Inf": 5}

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", "Requests served").inc(4)
        registry.histogram("latency_seconds", buckets=(0.1, 1.0)).observe(0.05)
        text = registry.render_prometheus()
        assert "# HELP requests_total Requests served" in text
        assert "# TYPE requests_total counter" in text
        assert "requests_total 4" in text
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="+Inf"} 1' in text
        assert "latency_seconds_count 1" in text
        assert text.endswith("\n")

    def test_instrument_kinds_exposed(self):
        assert Counter("c").kind == "counter"
        assert Gauge("g").kind == "gauge"
        assert Histogram("h").kind == "histogram"


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
class TestExporters:
    def _traced(self):
        tracer = Tracer("unit")
        with tracer.span("outer"):
            with tracer.span("inner", category="operator", rows=3):
                pass
        return tracer

    def test_trace_to_dict_validates_and_links_parents(self):
        payload = trace_to_dict(self._traced())
        assert validate_trace(payload) == []
        assert payload["name"] == "unit"
        by_name = {span["name"]: span for span in payload["spans"]}
        assert by_name["inner"]["parent"] == payload["spans"].index(by_name["outer"])
        assert "parent" not in by_name["outer"]
        assert by_name["inner"]["args"] == {"rows": 3}

    def test_validator_rejects_malformed_payloads(self):
        assert validate_trace({"spans": []})  # missing name
        assert validate_trace({"name": "", "spans": []})  # empty name
        assert validate_trace({"name": "x", "spans": [{}]})  # span missing keys
        assert validate_trace(
            {"name": "x", "spans": [], "extra": 1}
        )  # additionalProperties: false
        assert validate_trace(
            {
                "name": "x",
                "spans": [
                    {"name": "s", "category": "phase", "start_us": 0, "duration_us": -1}
                ],
            }
        )  # negative duration

    def test_chrome_trace_events(self):
        chrome = to_chrome_trace(self._traced())
        assert chrome["displayTimeUnit"] == "ms"
        events = chrome["traceEvents"]
        assert [event["name"] for event in events] == ["inner", "outer"]
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert event["pid"] == 1 and event["tid"] == 1


# ----------------------------------------------------------------------
# evaluator integration
# ----------------------------------------------------------------------
class TestEvaluatorObservability:
    def test_metrics_and_deprecated_aliases(self):
        evaluator = SparqlEvaluator(Dataset.from_graph(EncodedGraph(_TRIPLES)))
        query = parse_query(_TRIANGLE)
        evaluator.evaluate(query)
        evaluator.evaluate(query)
        metrics = evaluator.metrics()
        assert metrics["sparql_plan_cache_misses_total"] == 1
        assert metrics["sparql_physical_cache_misses_total"] == 1
        assert metrics["sparql_physical_cache_hits_total"] == 1
        assert metrics["sparql_plan_cache_size"] == 1
        assert metrics["sparql_physical_cache_size"] == 1
        # Deprecated aliases keep the historical combined semantics.
        assert evaluator.plan_cache_misses == 1
        assert evaluator.plan_cache_hits == 1

    def test_phase_spans_and_operator_events(self):
        tracer = Tracer("q")
        evaluator = SparqlEvaluator(
            Dataset.from_graph(EncodedGraph(_TRIPLES)), tracer=tracer
        )
        evaluator.evaluate(parse_query(_TRIANGLE))
        names = {span.name for span in tracer.spans}
        assert {"plan", "lower", "execute", "evaluate"} <= names
        operator_spans = [
            span for span in tracer.spans if span.category == "operator"
        ]
        assert {span.name for span in operator_spans} >= {"Project", "Scan"}
        execute = next(span for span in tracer.spans if span.name == "execute")
        assert execute.args["rows"] == 3

    def test_cached_plan_stats_reset_per_execution(self):
        # Regression: a physical-cache hit used to keep accumulating the
        # shared OperatorStats across executions.
        evaluator = SparqlEvaluator(Dataset.from_graph(EncodedGraph(_TRIPLES)))
        query = parse_query(_TRIANGLE)
        first = MultiSet(evaluator.evaluate(query).rows())
        plan_one = evaluator.last_physical_plan
        second = MultiSet(evaluator.evaluate(query).rows())
        plan_two = evaluator.last_physical_plan
        assert plan_two is plan_one  # cache hit: same physical plan object
        assert first == second
        assert plan_two.counters()[0]["rows"] == len(list(second.elements()))

    def test_limit_early_exit_counters_are_consistent(self):
        evaluator = SparqlEvaluator(Dataset.from_graph(EncodedGraph(_TRIPLES)))
        query = parse_query(
            PREFIX + "SELECT * WHERE { ?a ex:p ?b . ?b ex:p ?c . ?c ex:p ?a } LIMIT 1"
        )
        result = evaluator.evaluate(query)
        assert len(list(result.rows())) == 1
        counters = evaluator.last_physical_plan.counters()
        # The explicit stream close flushes the batched counters: the
        # root reports exactly the rows actually pulled, and no operator
        # reports fewer rows than its consumer received.
        assert counters[0]["operator"] == "Project"
        assert counters[0]["rows"] == 1
        assert all(entry["rows"] >= 0 for entry in counters)

    def test_ask_early_exit_counters_are_consistent(self):
        evaluator = SparqlEvaluator(Dataset.from_graph(EncodedGraph(_TRIPLES)))
        query = parse_query(
            PREFIX + "ASK WHERE { ?a ex:p ?b . ?b ex:p ?c . ?c ex:p ?a }"
        )
        assert evaluator.evaluate(query) is True
        counters = evaluator.last_physical_plan.counters()
        assert counters[0]["rows"] == 1  # stopped after the first witness

    def test_wcoj_fallback_warns_counts_and_traces(self, caplog):
        tracer = Tracer("f")
        evaluator = SparqlEvaluator(
            Dataset.from_graph(EncodedGraph(_TRIPLES)), tracer=tracer
        )
        # GYO-cyclic but with a variable predicate: structurally barred
        # from the leapfrog operator.
        query = parse_query(
            PREFIX + "SELECT * WHERE { ?a ?p ?b . ?b ?p ?c . ?c ?p ?a }"
        )
        with caplog.at_level(logging.WARNING, logger="repro.sparql.physical"):
            evaluator.evaluate(query)
        assert "variable predicate" in caplog.text
        assert "WCOJ selection rejected" in caplog.text
        assert evaluator.metrics()["sparql_wcoj_fallback_total"] == 1
        assert evaluator.last_physical_plan.wcoj_fallback == "variable predicate"
        execute = next(span for span in tracer.spans if span.name == "execute")
        assert execute.args["wcoj_fallback"] == "variable predicate"
        # A physical-cache hit replays the decision without re-counting.
        evaluator.evaluate(query)
        assert evaluator.metrics()["sparql_wcoj_fallback_total"] == 1

    def test_acyclic_and_disabled_wcoj_stay_silent(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.sparql.physical"):
            evaluator = SparqlEvaluator(Dataset.from_graph(EncodedGraph(_TRIPLES)))
            evaluator.evaluate(
                parse_query(PREFIX + "SELECT * WHERE { ?s ex:p ?a . ?s ex:q ?b }")
            )
            assert evaluator.metrics()["sparql_wcoj_fallback_total"] == 0
            # Deliberate opt-out is not a fallback either.
            opted_out = SparqlEvaluator(
                Dataset.from_graph(EncodedGraph(_TRIPLES)), use_wcoj=False
            )
            opted_out.evaluate(parse_query(_TRIANGLE))
            assert opted_out.metrics()["sparql_wcoj_fallback_total"] == 0
        assert not [
            record
            for record in caplog.records
            if record.name == "repro.sparql.physical"
        ]


# ----------------------------------------------------------------------
# store / dictionary / datalog counters
# ----------------------------------------------------------------------
class TestStoreMetrics:
    def test_bind_store_metrics_counts_probes_and_dictionary_traffic(self):
        graph = EncodedGraph(_TRIPLES)
        evaluator = SparqlEvaluator(Dataset.from_graph(graph))
        registry = evaluator.metrics_registry
        bind_store_metrics(registry, graph)
        evaluator.evaluate(
            parse_query(PREFIX + "SELECT * WHERE { ?s ex:p ?a . ?s ex:q ?b }")
        )
        snapshot = registry.snapshot()
        assert snapshot["store_index_probes_total"] > 0
        assert snapshot["store_dictionary_decodes_total"] > 0
        # Query constants resolve through the non-interning ``id_for``
        # lookup; encodes tick when new terms are interned on mutation.
        assert snapshot["store_dictionary_encodes_total"] == 0
        graph.add(Triple(EX.fresh1, EX.p, EX.fresh2))
        assert registry.snapshot()["store_dictionary_encodes_total"] > 0

    def test_sorted_run_builds_and_invalidations(self):
        graph = EncodedGraph(_TRIPLES)
        counters = graph.enable_counters()
        evaluator = SparqlEvaluator(Dataset.from_graph(graph))
        triangle = parse_query(_TRIANGLE)
        evaluator.evaluate(triangle)  # leapfrog: builds sorted runs
        assert counters.sorted_run_builds > 0
        assert counters.sorted_run_invalidations == 0
        graph.add(Triple(EX.z1, EX.p, EX.z2))  # bump the version stamp
        evaluator.evaluate(triangle)
        assert counters.sorted_run_invalidations == 1

    def test_counters_are_idempotent_and_match_results(self):
        graph = EncodedGraph(_TRIPLES)
        first = graph.enable_counters()
        assert graph.enable_counters() is first
        baseline = MultiSet(
            SparqlEvaluator(Dataset.from_graph(EncodedGraph(_TRIPLES)))
            .evaluate(parse_query(_TRIANGLE))
            .rows()
        )
        counted = MultiSet(
            SparqlEvaluator(Dataset.from_graph(graph))
            .evaluate(parse_query(_TRIANGLE))
            .rows()
        )
        assert counted == baseline

    def test_datalog_fixpoint_iterations_surface(self):
        graph = Graph(
            [
                Triple(EX.n1, EX.p, EX.n2),
                Triple(EX.n2, EX.p, EX.n3),
                Triple(EX.n3, EX.p, EX.n4),
            ]
        )
        engine = SparqLogEngine(Dataset.from_graph(graph))
        result = engine.query(
            PREFIX + "SELECT ?x WHERE { ex:n1 ex:p+ ?x }"
        )
        assert len(list(result.rows())) == 3
        # The recursive closure needs at least one semi-naive delta round.
        assert engine.last_fixpoint_iterations >= 1


# ----------------------------------------------------------------------
# harness hook
# ----------------------------------------------------------------------
def test_time_call_records_harness_span():
    tracer = Tracer("h")
    result, elapsed = time_call(lambda: 42, tracer=tracer, label="load")
    assert result == 42 and elapsed >= 0.0
    (span,) = tracer.spans
    assert span.name == "load" and span.category == "harness"
    assert span.duration == pytest.approx(elapsed)
