"""Tests for the N-Triples and Turtle parsers / serialisers."""

import pytest

from repro.rdf.namespace import Namespace, PrefixMap
from repro.rdf.ntriples import (
    NTriplesParseError,
    parse_ntriples,
    serialize_ntriples,
)
from repro.rdf.terms import BlankNode, IRI, Literal, Triple, XSD_INTEGER
from repro.rdf.turtle import TurtleParseError, parse_turtle


class TestNTriples:
    def test_parse_simple_document(self):
        text = (
            "<http://ex.org/a> <http://ex.org/p> <http://ex.org/b> .\n"
            '<http://ex.org/a> <http://ex.org/name> "Alice" .\n'
        )
        graph = parse_ntriples(text)
        assert len(graph) == 2
        assert Triple(IRI("http://ex.org/a"), IRI("http://ex.org/p"), IRI("http://ex.org/b")) in graph

    def test_parse_typed_and_language_literals(self):
        text = (
            '<http://ex.org/a> <http://ex.org/age> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .\n'
            '<http://ex.org/a> <http://ex.org/label> "chat"@fr .\n'
        )
        graph = parse_ntriples(text)
        objects = {t.object for t in graph}
        assert Literal("42", XSD_INTEGER) in objects
        assert Literal("chat", language="fr") in objects

    def test_parse_blank_nodes(self):
        text = "_:b1 <http://ex.org/p> _:b2 .\n"
        graph = parse_ntriples(text)
        triple = next(iter(graph))
        assert triple.subject == BlankNode("b1")
        assert triple.object == BlankNode("b2")

    def test_comments_and_blank_lines_skipped(self):
        text = "# a comment\n\n<http://a> <http://p> <http://b> .\n"
        assert len(parse_ntriples(text)) == 1

    def test_missing_dot_raises(self):
        with pytest.raises(NTriplesParseError):
            parse_ntriples("<http://a> <http://p> <http://b>\n")

    def test_escaped_characters(self):
        text = '<http://a> <http://p> "line1\\nline2 \\"quoted\\"" .\n'
        graph = parse_ntriples(text)
        literal = next(iter(graph)).object
        assert literal.lexical == 'line1\nline2 "quoted"'

    def test_round_trip(self):
        text = (
            '<http://ex.org/a> <http://ex.org/p> "hello" .\n'
            "<http://ex.org/a> <http://ex.org/q> <http://ex.org/b> .\n"
        )
        graph = parse_ntriples(text)
        round_tripped = parse_ntriples(serialize_ntriples(graph))
        assert set(round_tripped) == set(graph)


class TestTurtle:
    def test_prefixes_and_a_keyword(self):
        text = """
        @prefix ex: <http://ex.org/> .
        ex:alice a ex:Person ;
                 ex:knows ex:bob , ex:carol .
        """
        graph = parse_turtle(text)
        assert len(graph) == 3
        type_triples = list(
            graph.triples(IRI("http://ex.org/alice"), None, IRI("http://ex.org/Person"))
        )
        assert len(type_triples) == 1

    def test_numeric_and_boolean_shorthand(self):
        text = """
        @prefix ex: <http://ex.org/> .
        ex:a ex:age 42 ; ex:height 1.75 ; ex:active true .
        """
        graph = parse_turtle(text)
        values = {t.object.as_python() for t in graph}
        assert values == {42, 1.75, True}

    def test_language_and_typed_literals(self):
        text = """
        @prefix ex: <http://ex.org/> .
        @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
        ex:a ex:label "chat"@fr ; ex:count "5"^^xsd:integer .
        """
        graph = parse_turtle(text)
        objects = {t.object for t in graph}
        assert Literal("chat", language="fr") in objects
        assert Literal("5", XSD_INTEGER) in objects

    def test_blank_nodes(self):
        text = "@prefix ex: <http://ex.org/> .\n_:x ex:p _:y ."
        graph = parse_turtle(text)
        triple = next(iter(graph))
        assert isinstance(triple.subject, BlankNode)

    def test_comments(self):
        text = """
        @prefix ex: <http://ex.org/> . # prefix declaration
        ex:a ex:p ex:b . # a triple
        """
        assert len(parse_turtle(text)) == 1

    def test_unknown_prefix_raises(self):
        with pytest.raises((TurtleParseError, KeyError)):
            parse_turtle("foo:a foo:p foo:b .")

    def test_unterminated_block_raises(self):
        with pytest.raises(TurtleParseError):
            parse_turtle("@prefix ex: <http://ex.org/> .\nex:a ex:p ex:b")


class TestNamespaces:
    def test_namespace_attribute_and_item_access(self):
        ex = Namespace("http://ex.org/")
        assert ex.alice == IRI("http://ex.org/alice")
        assert ex["bob-smith"] == IRI("http://ex.org/bob-smith")
        assert ex.contains(IRI("http://ex.org/x"))
        assert not ex.contains(IRI("http://other.org/x"))

    def test_prefix_map_expand_and_compact(self):
        prefixes = PrefixMap({"ex": "http://ex.org/"})
        assert prefixes.expand("ex:alice") == IRI("http://ex.org/alice")
        assert prefixes.compact(IRI("http://ex.org/alice")) == "ex:alice"
        assert prefixes.compact(IRI("http://other.org/x")) == "<http://other.org/x>"

    def test_prefix_map_unknown_prefix(self):
        with pytest.raises(KeyError):
            PrefixMap().expand("nope:a")

    def test_prefix_map_copy_is_independent(self):
        original = PrefixMap({"ex": "http://ex.org/"})
        clone = original.copy()
        clone.bind("foo", "http://foo.org/")
        assert "foo" not in original


class TestLanguageTags:
    """BCP-47 language tags with digit subtags (regression)."""

    def test_ntriples_parses_digit_subtags(self):
        text = (
            '<http://e/a> <http://e/p> "hola"@es-419 .\n'
            '<http://e/a> <http://e/p> "gruezi"@de-CH-1901 .\n'
        )
        graph = parse_ntriples(text)
        objects = {t.object for t in graph}
        assert Literal("hola", language="es-419") in objects
        assert Literal("gruezi", language="de-CH-1901") in objects

    def test_ntriples_round_trips_digit_subtags(self):
        graph = parse_ntriples('<http://e/a> <http://e/p> "x"@zh-Hant-0a .\n')
        assert set(parse_ntriples(serialize_ntriples(graph))) == set(graph)

    def test_turtle_parses_digit_subtags(self):
        graph = parse_turtle(
            '@prefix ex: <http://ex.org/> .\nex:a ex:p "hola"@es-419 .\n'
        )
        assert next(iter(graph)).object == Literal("hola", language="es-419")

    def test_tag_must_start_alphabetic(self):
        # "@419" is not a valid language tag; the literal term must not
        # silently swallow the tag as part of the lexical form.
        with pytest.raises(NTriplesParseError):
            parse_ntriples('<http://e/a> <http://e/p> "x"@419 .\n')
