"""Tests for the experiment harness (timing, reporting, drivers)."""

import time

import pytest

from repro.compliance.compare import ComparisonOutcome
from repro.harness import experiments
from repro.harness.report import format_summary, format_table, format_timing_series
from repro.harness.timing import TimeoutError_, call_with_timeout, time_call


class TestTiming:
    def test_time_call(self):
        result, elapsed = time_call(lambda: sum(range(1000)))
        assert result == sum(range(1000))
        assert elapsed >= 0

    def test_timeout_interrupts_long_call(self):
        def busy():
            deadline = time.time() + 5
            while time.time() < deadline:
                pass
            return "done"

        with pytest.raises(TimeoutError_):
            call_with_timeout(busy, 0.2)

    def test_timeout_returns_fast_result(self):
        assert call_with_timeout(lambda: 42, 5) == 42


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", None]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(line.startswith("|") for line in lines)
        assert "—" in text

    def test_format_timing_series_marks_failures(self):
        text = format_timing_series(
            ["q1", "q2"],
            {"SparqLog": [0.5, None], "Native": [0.1, 0.2]},
        )
        assert "TIMEOUT/ERROR" in text
        assert "q1" in text and "q2" in text

    def test_format_summary(self):
        text = format_summary({"triples": 100, "time": 1.5}, title="stats")
        assert "stats" in text
        assert "triples" in text


class TestExperimentDrivers:
    CONFIG = experiments.ExperimentConfig(scale=0.04, query_limit=4, timeout_seconds=5)

    def test_table1(self):
        text = experiments.table1_feature_coverage()
        assert "OPTIONAL" in text and "ZeroOrMorePath" in text

    def test_table2(self):
        text = experiments.table2_benchmark_features(self.CONFIG)
        assert "SP2Bench" in text and "FEASIBLE" in text

    def test_table3_small(self):
        report, text = experiments.table3_beseppi_compliance(self.CONFIG)
        assert "Total" in text
        assert report.correct_count("SparqLog") == 4

    def test_table6(self):
        text = experiments.table6_benchmark_statistics(self.CONFIG)
        assert "gMark" in text

    def test_figure7_small(self):
        series = experiments.figure7_sp2bench_performance(self.CONFIG)
        assert len(series.query_ids) == 4
        assert set(series.times) == {"SparqLog", "Native", "VirtuosoLike"}
        assert series.completed("SparqLog") + series.failures("SparqLog") == 4

    def test_figure8_small(self):
        series = experiments.figure8_gmark_social(self.CONFIG)
        summary = experiments.table7_8_gmark_summary(series)
        assert "SparqLog" in summary
        assert len(series.query_ids) == 4

    def test_figure10_small(self):
        series = experiments.figure10_ontology(self.CONFIG)
        assert set(series.times) == {"SparqLog", "StardogLike"}
        assert series.render()

    def test_feasible_compliance_small(self):
        reports, text = experiments.feasible_sp2bench_compliance(self.CONFIG)
        assert "FEASIBLE" in text
        for report in reports.values():
            counts = report.outcome_counts("SparqLog")
            assert sum(counts.values()) == 4
