"""Tests for the SPARQL tokenizer and parser."""

import pytest

from repro.rdf.terms import IRI, Literal, Variable, XSD_INTEGER
from repro.sparql.algebra import (
    AskQuery,
    BGP,
    Bind,
    Filter,
    GraphGraphPattern,
    Join,
    LeftJoin,
    Minus,
    PathPattern,
    SelectQuery,
    TriplePatternNode,
    Union,
    ValuesPattern,
    pattern_features,
    walk,
)
from repro.sparql.expressions import Aggregate, Comparison, FunctionCall
from repro.sparql.parser import SparqlSyntaxError, parse_query
from repro.sparql.paths import (
    AlternativePath,
    InversePath,
    LinkPath,
    NegatedPropertySet,
    OneOrMorePath,
    RepeatPath,
    SequencePath,
    ZeroOrMorePath,
    ZeroOrOnePath,
)
from repro.sparql.tokenizer import tokenize

PREFIX = "PREFIX ex: <http://ex.org/>\n"


class TestTokenizer:
    def test_basic_tokens(self):
        tokens = tokenize('SELECT ?x WHERE { ?x <http://p> "v" }')
        kinds = [token.kind for token in tokens]
        assert kinds == ["keyword", "var", "keyword", "op", "var", "iri", "string", "op"]

    def test_string_with_language_tag(self):
        tokens = tokenize('"chat"@fr')
        assert tokens[0].kind == "string"
        assert tokens[0].value == '"chat"@fr'

    def test_string_with_datatype(self):
        tokens = tokenize('"5"^^xsd:integer')
        assert tokens[0].value == '"5"^^xsd:integer'

    def test_comments_ignored(self):
        tokens = tokenize("SELECT ?x # comment\nWHERE { }")
        assert all(token.kind != "comment" for token in tokens)

    def test_operators(self):
        tokens = tokenize("?a >= 3 && ?b != 4 || !?c")
        values = [token.value for token in tokens if token.kind == "op"]
        assert values == [">=", "&&", "!=", "||", "!"]


class TestSelectParsing:
    def test_simple_select(self):
        query = parse_query(PREFIX + "SELECT ?s WHERE { ?s ex:p ex:o }")
        assert isinstance(query, SelectQuery)
        assert query.projected_variables() == [Variable("s")]
        assert isinstance(query.pattern, TriplePatternNode)

    def test_select_star(self):
        query = parse_query(PREFIX + "SELECT * WHERE { ?s ex:p ?o }")
        assert query.select_all
        assert set(query.projected_variables()) == {Variable("s"), Variable("o")}

    def test_distinct_and_modifiers(self):
        query = parse_query(
            PREFIX
            + "SELECT DISTINCT ?s WHERE { ?s ex:p ?o } ORDER BY DESC(?o) LIMIT 5 OFFSET 2"
        )
        assert query.distinct
        assert query.limit == 5
        assert query.offset == 2
        assert len(query.order_by) == 1
        assert not query.order_by[0].ascending

    def test_predicate_object_lists(self):
        query = parse_query(PREFIX + "SELECT * WHERE { ?s ex:p ?a ; ex:q ?b , ?c . }")
        patterns = [n for n in walk(query.pattern) if isinstance(n, TriplePatternNode)]
        assert len(patterns) == 3

    def test_optional_becomes_leftjoin(self):
        query = parse_query(
            PREFIX + "SELECT * WHERE { ?s ex:p ?o OPTIONAL { ?s ex:q ?z } }"
        )
        assert isinstance(query.pattern, LeftJoin)

    def test_optional_with_filter_scopes_condition(self):
        query = parse_query(
            PREFIX
            + "SELECT * WHERE { ?s ex:p ?o OPTIONAL { ?s ex:q ?z FILTER (?z > 3) } }"
        )
        assert isinstance(query.pattern, LeftJoin)
        assert query.pattern.condition is not None

    def test_union(self):
        query = parse_query(
            PREFIX + "SELECT * WHERE { { ?s ex:p ?o } UNION { ?s ex:q ?o } }"
        )
        assert isinstance(query.pattern, Union)

    def test_minus(self):
        query = parse_query(
            PREFIX + "SELECT * WHERE { ?s ex:p ?o MINUS { ?s ex:q ?o } }"
        )
        assert isinstance(query.pattern, Minus)

    def test_filter_wraps_group(self):
        query = parse_query(
            PREFIX + "SELECT * WHERE { ?s ex:p ?o . FILTER (?o > 5) }"
        )
        assert isinstance(query.pattern, Filter)
        assert isinstance(query.pattern.condition, Comparison)

    def test_graph_pattern(self):
        query = parse_query(
            PREFIX + "SELECT * WHERE { GRAPH ?g { ?s ex:p ?o } }"
        )
        assert isinstance(query.pattern, GraphGraphPattern)
        assert query.pattern.graph == Variable("g")

    def test_bind_and_values(self):
        query = parse_query(
            PREFIX + 'SELECT * WHERE { ?s ex:p ?o BIND(STR(?o) AS ?str) }'
        )
        assert isinstance(query.pattern, Bind)
        query2 = parse_query(
            PREFIX + "SELECT * WHERE { VALUES ?x { ex:a ex:b } ?x ex:p ?o }"
        )
        assert any(isinstance(node, ValuesPattern) for node in walk(query2.pattern))

    def test_group_by_and_aggregate(self):
        query = parse_query(
            PREFIX
            + "SELECT ?s (COUNT(?o) AS ?n) WHERE { ?s ex:p ?o } GROUP BY ?s"
        )
        assert query.has_aggregates()
        aggregate = query.projection[1].expression
        assert isinstance(aggregate, Aggregate)
        assert aggregate.operation == "COUNT"

    def test_from_clauses(self):
        query = parse_query(
            PREFIX
            + "SELECT ?s FROM <http://g1> FROM NAMED <http://g2> WHERE { ?s ex:p ?o }"
        )
        assert len(query.dataset_clauses) == 2
        assert query.dataset_clauses[0].named is False
        assert query.dataset_clauses[1].named is True

    def test_ask_query(self):
        query = parse_query(PREFIX + "ASK WHERE { ?s ex:p ex:o }")
        assert isinstance(query, AskQuery)

    def test_order_by_complex_expression(self):
        query = parse_query(
            PREFIX
            + "SELECT ?s ?o WHERE { ?s ex:p ?o } ORDER BY DESC(BOUND(?o)) ?s"
        )
        assert len(query.order_by) == 2

    def test_typed_literal_in_query(self):
        query = parse_query(
            PREFIX
            + 'PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n'
            + 'SELECT ?s WHERE { ?s ex:age "42"^^xsd:integer }'
        )
        triple = query.pattern.triple
        assert triple.object == Literal("42", XSD_INTEGER)

    def test_syntax_errors(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT WHERE { ?s ?p ?o }")
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT ?s WHERE { ?s ?p ?o ")
        with pytest.raises(SparqlSyntaxError):
            parse_query("CONSTRUCT { ?s ?p ?o } WHERE { ?s ?p ?o }")


class TestPropertyPathParsing:
    def _path_of(self, path_text: str):
        query = parse_query(PREFIX + f"SELECT * WHERE {{ ?x {path_text} ?y }}")
        assert isinstance(query.pattern, PathPattern), path_text
        return query.pattern.path

    def test_plain_iri_is_triple_pattern(self):
        query = parse_query(PREFIX + "SELECT * WHERE { ?x ex:p ?y }")
        assert isinstance(query.pattern, TriplePatternNode)

    def test_inverse(self):
        assert isinstance(self._path_of("^ex:p"), InversePath)

    def test_sequence_and_alternative(self):
        assert isinstance(self._path_of("ex:p/ex:q"), SequencePath)
        assert isinstance(self._path_of("ex:p|ex:q"), AlternativePath)

    def test_closures(self):
        assert isinstance(self._path_of("ex:p+"), OneOrMorePath)
        assert isinstance(self._path_of("ex:p*"), ZeroOrMorePath)
        assert isinstance(self._path_of("ex:p?"), ZeroOrOnePath)

    def test_negated_property_set(self):
        path = self._path_of("!(ex:p|^ex:q)")
        assert isinstance(path, NegatedPropertySet)
        assert path.forward == (IRI("http://ex.org/p"),)
        assert path.inverse == (IRI("http://ex.org/q"),)

    def test_bounded_repetition(self):
        path = self._path_of("ex:p{2,4}")
        assert isinstance(path, RepeatPath)
        assert (path.minimum, path.maximum) == (2, 4)

    def test_nested_groups(self):
        path = self._path_of("(ex:p/(ex:q|^ex:r))+")
        assert isinstance(path, OneOrMorePath)
        assert isinstance(path.path, SequencePath)

    def test_a_keyword_in_path(self):
        path = self._path_of("a/ex:p")
        assert isinstance(path, SequencePath)
        assert isinstance(path.left, LinkPath)
        assert path.left.iri.value.endswith("#type")


class TestPatternFeatures:
    def test_feature_extraction(self):
        query = parse_query(
            PREFIX
            + """SELECT DISTINCT ?s WHERE {
                 { ?s ex:p ?o } UNION { ?s ex:q/ex:r+ ?o }
                 OPTIONAL { ?s ex:z ?w }
                 FILTER (REGEX(?o, "x"))
               } ORDER BY ?s LIMIT 3"""
        )
        features = pattern_features(query)
        assert {"SELECT", "DISTINCT", "UNION", "OPTIONAL", "FILTER", "REGEX",
                "ORDER BY", "LIMIT", "PropertyPath", "PathSequence",
                "PathOneOrMore"} <= features
