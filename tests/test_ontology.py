"""Tests for ontology axioms, their Datalog± translation and materialisation."""

from repro.core.engine import SparqLogEngine
from repro.core.ontology import Ontology, OntologyAxiom
from repro.datalog.wardedness import analyze_wardedness
from repro.rdf.graph import Dataset, Graph
from repro.rdf.terms import BlankNode, IRI, RDF, RDFS, Triple

from tests.helpers import EX

PREFIX = "PREFIX ex: <http://ex.org/>\nPREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"


def university_graph() -> Graph:
    graph = Graph()
    graph.add(Triple(EX.alice, RDF.type, EX.Professor))
    graph.add(Triple(EX.bob, RDF.type, EX.Student))
    graph.add(Triple(EX.alice, EX.teaches, EX.databases))
    graph.add(Triple(EX.bob, EX.attends, EX.databases))
    return graph


def university_ontology() -> Ontology:
    ontology = Ontology()
    ontology.add_subclass(EX.Professor, EX.Person)
    ontology.add_subclass(EX.Student, EX.Person)
    ontology.add_subproperty(EX.teaches, EX.involvedIn)
    ontology.add_subproperty(EX.attends, EX.involvedIn)
    ontology.add_domain(EX.teaches, EX.Teacher)
    ontology.add_range(EX.attends, EX.Course)
    return ontology


class TestOntologyTranslation:
    def test_rule_counts(self):
        program = university_ontology().to_rules()
        assert len(program.rules) == 6

    def test_rules_are_warded(self):
        ontology = university_ontology()
        ontology.add_existential(EX.Person, EX.hasParent, EX.Person)
        assert analyze_wardedness(ontology.to_rules()).warded

    def test_from_graph_extraction(self):
        graph = Graph()
        graph.add(Triple(EX.Professor, RDFS.subClassOf, EX.Person))
        graph.add(Triple(EX.teaches, RDFS.subPropertyOf, EX.involvedIn))
        graph.add(Triple(EX.teaches, RDFS.domain, EX.Teacher))
        graph.add(Triple(EX.teaches, RDFS.range, EX.Course))
        ontology = Ontology.from_graph(graph)
        kinds = sorted(axiom.kind for axiom in ontology.axioms)
        assert kinds == ["domain", "range", "subClassOf", "subPropertyOf"]


class TestReasoningThroughSparqLog:
    def _engine(self) -> SparqLogEngine:
        return SparqLogEngine(
            Dataset.from_graph(university_graph()), ontology=university_ontology()
        )

    def test_subclass_inference(self):
        result = self._engine().query(
            PREFIX + "SELECT ?x WHERE { ?x rdf:type ex:Person }"
        )
        assert {row[0] for row in result.rows()} == {EX.alice, EX.bob}

    def test_subproperty_inference(self):
        result = self._engine().query(
            PREFIX + "SELECT ?x ?y WHERE { ?x ex:involvedIn ?y }"
        )
        assert (EX.alice, EX.databases) in result.to_set()
        assert (EX.bob, EX.databases) in result.to_set()

    def test_domain_and_range_inference(self):
        engine = self._engine()
        teachers = engine.query(PREFIX + "SELECT ?x WHERE { ?x rdf:type ex:Teacher }")
        courses = engine.query(PREFIX + "SELECT ?x WHERE { ?x rdf:type ex:Course }")
        assert {row[0] for row in teachers.rows()} == {EX.alice}
        assert {row[0] for row in courses.rows()} == {EX.databases}

    def test_reasoning_combines_with_property_paths(self):
        result = self._engine().query(
            PREFIX + "SELECT DISTINCT ?x WHERE { ?x ex:involvedIn/^ex:involvedIn ?y }"
        )
        assert {row[0] for row in result.rows()} == {EX.alice, EX.bob}

    def test_existential_axiom_produces_labelled_null(self):
        ontology = university_ontology()
        ontology.add_existential(EX.Student, EX.hasAdvisor, EX.Professor)
        engine = SparqLogEngine(Dataset.from_graph(university_graph()), ontology=ontology)
        result = engine.query(PREFIX + "SELECT ?a WHERE { ex:bob ex:hasAdvisor ?a }")
        assert len(result) == 1
        (advisor,) = result.rows()[0]
        assert isinstance(advisor, BlankNode)

    def test_without_ontology_no_inference(self):
        engine = SparqLogEngine(Dataset.from_graph(university_graph()))
        result = engine.query(PREFIX + "SELECT ?x WHERE { ?x rdf:type ex:Person }")
        assert len(result) == 0


class TestMaterialization:
    def test_materialize_closure(self):
        graph = university_graph()
        materialised = university_ontology().materialize(graph)
        assert Triple(EX.alice, RDF.type, EX.Person) in materialised
        assert Triple(EX.alice, EX.involvedIn, EX.databases) in materialised
        # original graph untouched
        assert Triple(EX.alice, RDF.type, EX.Person) not in graph

    def test_materialize_is_idempotent(self):
        ontology = university_ontology()
        once = ontology.materialize(university_graph())
        twice = ontology.materialize(once)
        assert len(once) == len(twice)
