"""Setuptools entry point.

A classic ``setup.py`` (rather than a PEP 517 ``pyproject.toml`` build) is
used so that ``pip install -e .`` works in fully offline environments
where pip cannot download build-isolation requirements.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of SparqLog: efficient evaluation of SPARQL 1.1 "
        "queries via Warded Datalog±"
    ),
    long_description=open("README.md").read() if __import__("os").path.exists("README.md") else "",
    long_description_content_type="text/markdown",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=[
        "numpy",
        "networkx",
    ],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
)
