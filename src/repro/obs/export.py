"""Trace exporters: schema-validated JSON dumps and Chrome trace_event.

Two serialisations of one :class:`~repro.obs.tracer.Tracer`:

* :func:`trace_to_dict` — the structured dump, validated against the
  committed ``trace_schema.json`` with the same dependency-free
  validator subset the bench trajectory uses
  (:mod:`benchmarks.record_trajectory`), so traces are a stable,
  diffable artifact rather than ad-hoc prints.

* :func:`to_chrome_trace` — the Chrome ``trace_event`` JSON array
  format: save it with :func:`json.dump` and load the file in
  ``chrome://tracing`` or https://ui.perfetto.dev to see the span tree
  on a timeline.

Prometheus text exposition lives on the registry itself
(:meth:`repro.obs.metrics.MetricsRegistry.render_prometheus`).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.obs.tracer import Tracer

_SCHEMA_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "trace_schema.json")
_SCHEMA_CACHE: Optional[dict] = None


def trace_schema() -> dict:
    """The committed JSON schema for structured trace dumps (cached)."""
    global _SCHEMA_CACHE
    if _SCHEMA_CACHE is None:
        with open(_SCHEMA_PATH, "r", encoding="utf-8") as handle:
            _SCHEMA_CACHE = json.load(handle)
    return _SCHEMA_CACHE


# ----------------------------------------------------------------------
# structured JSON dump
# ----------------------------------------------------------------------
def trace_to_dict(tracer: Tracer, validate: bool = True) -> dict:
    """Serialise a tracer's finished spans to the committed schema.

    Spans are ordered by start time; ``parent`` entries are indexes into
    the resulting list (omitted for roots).  With ``validate=True`` the
    payload is checked against :func:`trace_schema` before being
    returned, so a drifting serialiser fails loudly at the source.
    """
    finished = sorted(
        (span for span in tracer.spans if span.end is not None),
        key=lambda span: (span.start, span.end),
    )
    index_of = {id(span): index for index, span in enumerate(finished)}
    spans: List[dict] = []
    for span in finished:
        entry: Dict[str, object] = {
            "name": span.name,
            "category": span.category,
            "start_us": int((span.start - tracer.epoch) * 1e6),
            "duration_us": max(0, int((span.end - span.start) * 1e6)),
        }
        if span.parent is not None:
            parent_index = index_of.get(id(span.parent))
            if parent_index is not None:
                entry["parent"] = parent_index
        if span.args:
            entry["args"] = dict(span.args)
        spans.append(entry)
    payload = {"name": tracer.name, "spans": spans}
    if validate:
        problems = validate_trace(payload)
        if problems:
            raise ValueError(
                "trace dump violates trace_schema.json: " + "; ".join(problems)
            )
    return payload


def validate_trace(payload: object, schema: Optional[dict] = None) -> List[str]:
    """Validate a trace dump; return human-readable problems (empty = valid).

    Implements exactly the subset ``trace_schema.json`` uses — object
    required/properties, array items, type / minimum / minLength,
    ``additionalProperties: false`` — mirroring the bench-trajectory
    validator so the gate needs no third-party dependency.
    """
    problems: List[str] = []
    _validate(payload, schema if schema is not None else trace_schema(), "$", problems)
    return problems


def _validate(value: object, schema: dict, path: str, problems: List[str]) -> None:
    expected = schema.get("type")
    if expected == "object":
        if not isinstance(value, dict):
            problems.append(f"{path}: must be an object")
            return
        properties = schema.get("properties", {})
        for key in schema.get("required", []):
            if key not in value:
                problems.append(f"{path}: missing required key {key!r}")
        if schema.get("additionalProperties") is False:
            for key in value:
                if key not in properties:
                    problems.append(f"{path}: unexpected key {key!r}")
        for key, spec in properties.items():
            if key in value:
                _validate(value[key], spec, f"{path}.{key}", problems)
        return
    if expected == "array":
        if not isinstance(value, list):
            problems.append(f"{path}: must be an array")
            return
        items = schema.get("items")
        if items:
            for position, element in enumerate(value):
                _validate(element, items, f"{path}[{position}]", problems)
        return
    if expected == "string":
        if not isinstance(value, str):
            problems.append(f"{path}: must be a string")
            return
    elif expected == "integer":
        if not isinstance(value, int) or isinstance(value, bool):
            problems.append(f"{path}: must be an integer")
            return
    elif expected == "number":
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            problems.append(f"{path}: must be a number")
            return
    if "minimum" in schema and value < schema["minimum"]:
        problems.append(f"{path}: below minimum {schema['minimum']}")
    if "minLength" in schema and len(value) < schema["minLength"]:
        problems.append(f"{path}: shorter than {schema['minLength']}")


# ----------------------------------------------------------------------
# Chrome trace_event format
# ----------------------------------------------------------------------
def to_chrome_trace(tracer: Tracer) -> dict:
    """Serialise a tracer to the Chrome ``trace_event`` JSON format.

    Every finished span becomes a complete ('X') event with microsecond
    timestamps; write the result with ``json.dump`` and open the file in
    ``chrome://tracing`` or Perfetto.  Zero-duration summary events
    (operator samples) stay visible as zero-width slices with their
    counters in ``args``.
    """
    events: List[dict] = []
    for span in tracer.spans:
        if span.end is None:
            continue
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": max(0, int((span.start - tracer.epoch) * 1e6)),
                "dur": max(0, int((span.end - span.start) * 1e6)),
                "pid": 1,
                "tid": 1,
                "args": dict(span.args),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}
