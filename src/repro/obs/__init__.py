"""Zero-dependency observability: span tracing, metrics, trace exporters.

The subsystem has three parts, all plain-Python and import-cheap:

* :mod:`repro.obs.tracer` — a ``perf_counter``-based span tracer.  The
  evaluator opens ``plan`` / ``lower`` / ``execute`` phase spans (plus
  ``parse`` where it parses) and samples per-operator summaries from the
  physical layer's batched-counter flush points.  A disabled tracer (or
  ``tracer=None``, the default) costs a single ``None`` check per phase.

* :mod:`repro.obs.metrics` — a metrics registry with counters, gauges
  and fixed-bucket histograms, plus Prometheus-style text exposition.
  :meth:`repro.sparql.evaluator.SparqlEvaluator.metrics` snapshots the
  evaluator's registry; :func:`bind_store_metrics` attaches the encoded
  store's index-probe / dictionary / sorted-run counters.

* :mod:`repro.obs.export` — structured JSON trace dumps validated
  against ``trace_schema.json`` (the same dependency-free validator
  subset the bench trajectory uses) and Chrome ``trace_event`` output
  loadable in ``about:tracing`` / Perfetto.
"""

from repro.obs.tracer import NULL_SPAN, Span, Tracer, trace_iterator
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bind_store_metrics,
)
from repro.obs.export import (
    to_chrome_trace,
    trace_schema,
    trace_to_dict,
    validate_trace,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "bind_store_metrics",
    "to_chrome_trace",
    "trace_iterator",
    "trace_schema",
    "trace_to_dict",
    "validate_trace",
]
