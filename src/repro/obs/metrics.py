"""Metrics registry: counters, gauges, fixed-bucket histograms, exposition.

The registry is deliberately small: three instrument kinds, get-or-create
by name, a :meth:`MetricsRegistry.snapshot` dict for tests and APIs, and
Prometheus-style text exposition for scraping.  Hot paths never go
through the registry — they increment plain ``int`` fields on slotted
instrument objects (``counter.inc()`` is one attribute add), and
instruments that mirror live state (cache sizes, store counters) are
registered with a ``callback`` read only at collection time, so keeping
a metric costs nothing between scrapes.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence

#: Default histogram boundaries (seconds): spans query latencies from
#: sub-millisecond index probes to multi-second closure workloads.
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)

_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ValueError(f"invalid metric name {name!r}")
    return name


class Counter:
    """Monotonically increasing count (or a callback reading one)."""

    kind = "counter"
    __slots__ = ("name", "help", "value", "callback")

    def __init__(
        self, name: str, help: str = "", callback: Optional[Callable[[], float]] = None
    ) -> None:
        self.name = name
        self.help = help
        self.value = 0
        self.callback = callback

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def collect(self) -> float:
        return self.callback() if self.callback is not None else self.value


class Gauge:
    """A value that can go up and down (or a callback reading one)."""

    kind = "gauge"
    __slots__ = ("name", "help", "value", "callback")

    def __init__(
        self, name: str, help: str = "", callback: Optional[Callable[[], float]] = None
    ) -> None:
        self.name = name
        self.help = help
        self.value = 0.0
        self.callback = callback

    def set(self, value: float) -> None:
        self.value = value

    def collect(self) -> float:
        return self.callback() if self.callback is not None else self.value


class Histogram:
    """Fixed-boundary histogram with cumulative-bucket exposition."""

    kind = "histogram"
    __slots__ = ("name", "help", "buckets", "counts", "sum", "count")

    def __init__(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        boundaries = tuple(sorted(buckets))
        if not boundaries:
            raise ValueError("histogram needs at least one bucket boundary")
        self.name = name
        self.help = help
        self.buckets = boundaries
        #: Per-bucket observation counts; the extra final slot is +Inf.
        self.counts = [0] * (len(boundaries) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def collect(self) -> Dict[str, object]:
        cumulative: Dict[str, int] = {}
        running = 0
        for boundary, bucket_count in zip(self.buckets, self.counts):
            running += bucket_count
            cumulative[f"{boundary:g}"] = running
        cumulative["+Inf"] = running + self.counts[-1]
        return {"buckets": cumulative, "sum": self.sum, "count": self.count}


class MetricsRegistry:
    """Named instruments with get-or-create semantics and text exposition."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # instrument creation
    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(_check_name(name), **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", callback: Optional[Callable[[], float]] = None
    ) -> Counter:
        return self._get_or_create(Counter, name, help=help, callback=callback)

    def gauge(
        self, name: str, help: str = "", callback: Optional[Callable[[], float]] = None
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help=help, callback=callback)

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help=help, buckets=buckets)

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Collect every instrument into a plain dict (stable name order)."""
        return {
            name: self._metrics[name].collect() for name in sorted(self._metrics)
        }

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                collected = metric.collect()
                for boundary, running in collected["buckets"].items():
                    lines.append(f'{name}_bucket{{le="{boundary}"}} {running}')
                lines.append(f"{name}_sum {collected['sum']:g}")
                lines.append(f"{name}_count {collected['count']}")
            else:
                lines.append(f"{name} {metric.collect():g}")
        return "\n".join(lines) + "\n"

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics


def bind_store_metrics(
    registry: MetricsRegistry, graph, prefix: str = "store"
) -> None:
    """Expose an encoded store's counters through ``registry``.

    Enables the graph's optional counters (``graph.enable_counters()``)
    and registers callback instruments reading them at collection time,
    so the store's hot paths stay a ``None``-checked ``int +=``.  Also
    covers the term dictionary's encode/decode counters.  Duck-typed:
    any object with the :class:`repro.store.encoded.EncodedGraph`
    counter surface works.
    """
    counters = graph.enable_counters()
    registry.counter(
        f"{prefix}_index_probes_total",
        "Triple-index probes (match_triple_ids calls)",
        callback=lambda: counters.index_probes,
    )
    registry.counter(
        f"{prefix}_sorted_run_builds_total",
        "Sorted id runs materialised for the leapfrog operator",
        callback=lambda: counters.sorted_run_builds,
    )
    registry.counter(
        f"{prefix}_sorted_run_invalidations_total",
        "Sorted-run cache invalidations (mutation bumped the version stamp)",
        callback=lambda: counters.sorted_run_invalidations,
    )
    dictionary_counters = graph.dictionary.enable_counters()
    registry.counter(
        f"{prefix}_dictionary_encodes_total",
        "Term-to-id interning operations",
        callback=lambda: dictionary_counters.encodes,
    )
    registry.counter(
        f"{prefix}_dictionary_decodes_total",
        "Id-to-term decode operations",
        callback=lambda: dictionary_counters.decodes,
    )
