"""Span tracer: a ``perf_counter``-based tree of timed phases.

A :class:`Tracer` hands out context-manager spans.  Entering a span
pushes it on the active stack (its parent is whatever span was active),
exiting stamps the end time and appends it to :attr:`Tracer.spans` in
completion order.  The evaluator opens one span per query phase
(``parse`` → ``plan`` → ``lower`` → ``execute``) and samples
per-operator summaries as zero-cost :meth:`Tracer.event` records from
the physical layer's batched-counter flush points, so a trace of one
query is a handful of spans, not one per row.

Disabled tracing compiles to no-ops: ``Tracer(enabled=False).span(...)``
returns the shared :data:`NULL_SPAN` without touching the clock, and the
evaluator's hot paths guard on ``tracer is None`` before even that.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Iterator, List, Optional


class Span:
    """One timed region of work (or a pre-measured summary event)."""

    __slots__ = ("name", "category", "start", "end", "parent", "args")

    def __init__(
        self,
        name: str,
        category: str,
        start: float,
        parent: Optional["Span"] = None,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        self.name = name
        self.category = category
        self.start = start
        self.end: Optional[float] = None
        self.parent = parent
        self.args: Dict[str, object] = args if args is not None else {}

    @property
    def duration(self) -> Optional[float]:
        """Elapsed seconds, or ``None`` while the span is still open."""
        return None if self.end is None else self.end - self.start

    def __repr__(self) -> str:
        timing = f"{self.duration * 1e3:.3f}ms" if self.end is not None else "open"
        return f"Span({self.name!r}, {self.category!r}, {timing})"


class _NullSpan:
    """The do-nothing span handed out by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **args) -> "_NullSpan":
        return self


#: Shared no-op span: entering, exiting and annotating all do nothing.
NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager for one open span of an enabled tracer."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> "_ActiveSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._finish(self.span)
        return False

    def annotate(self, **args) -> "_ActiveSpan":
        """Attach key/value details to the span (shown in trace args)."""
        self.span.args.update(args)
        return self


class Tracer:
    """Collects spans for one logical trace (typically one workload run).

    ``enabled=False`` turns every operation into a no-op so callers can
    keep one unconditional code shape; ``tracer=None`` at the call sites
    that matter avoids even the method call.
    """

    def __init__(self, name: str = "trace", enabled: bool = True) -> None:
        self.name = name
        self.enabled = enabled
        self.epoch = perf_counter()
        #: Finished spans in completion order.
        self.spans: List[Span] = []
        self._stack: List[Span] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def span(self, name: str, category: str = "phase", **args):
        """Open a span; use as ``with tracer.span("plan"): ...``."""
        if not self.enabled:
            return NULL_SPAN
        parent = self._stack[-1] if self._stack else None
        span = Span(name, category, perf_counter(), parent, args or None)
        self._stack.append(span)
        return _ActiveSpan(self, span)

    def _finish(self, span: Span) -> None:
        span.end = perf_counter()
        stack = self._stack
        # The common case is strict nesting; tolerate out-of-order exits
        # (two lazily-consumed execution streams interleaved) by removing
        # the span wherever it sits.
        if stack and stack[-1] is span:
            stack.pop()
        else:
            for index in range(len(stack) - 1, -1, -1):
                if stack[index] is span:
                    del stack[index]
                    break
        self.spans.append(span)

    def event(self, name: str, category: str = "event", duration: float = 0.0, **args) -> None:
        """Record an already-measured (or instant) span without entering it.

        Used for post-hoc summaries — e.g. per-operator counters sampled
        once at stream exhaustion — where only the duration (possibly
        zero) is known, not the original start time.
        """
        if not self.enabled:
            return
        end = perf_counter()
        parent = self._stack[-1] if self._stack else None
        span = Span(name, category, end - duration, parent, args or None)
        span.end = end
        self.spans.append(span)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop every finished span (open spans keep recording)."""
        self.spans.clear()
        self.epoch = perf_counter()

    def phase_totals(self, category: str = "phase") -> Dict[str, float]:
        """Total seconds per span name within one category.

        The per-phase breakdown the bench trajectory records: summing
        repeated spans (one per query of a workload loop) gives the
        share of wall time spent parsing / planning / lowering /
        executing.
        """
        totals: Dict[str, float] = {}
        for span in self.spans:
            if span.category != category or span.end is None:
                continue
            totals[span.name] = totals.get(span.name, 0.0) + (span.end - span.start)
        return totals

    def __len__(self) -> int:
        return len(self.spans)


def trace_iterator(
    tracer: Optional[Tracer],
    name: str,
    iterator: Iterator,
    category: str = "phase",
) -> Iterator:
    """Wrap an iterator in a span covering first ``next()`` to exhaustion.

    The span opens lazily (a never-consumed stream records nothing) and
    closes when the stream is exhausted or explicitly closed, with the
    consumed row count annotated.  With ``tracer`` ``None`` or disabled
    the items stream through untouched.
    """
    if tracer is None or not tracer.enabled:
        yield from iterator
        return
    with tracer.span(name, category) as span:
        rows = 0
        try:
            for item in iterator:
                rows += 1
                yield item
        finally:
            span.annotate(rows=rows)
