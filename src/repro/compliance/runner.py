"""Compliance test runner: execute query suites across engines.

The runner follows the experimental protocol of the paper: each query is
run on every engine (optionally with a timeout), the expected answer comes
either from the benchmark itself (BeSEPPI) or from majority voting across
the engines (FEASIBLE, SP2Bench), and each answer is classified into the
Table 3 error taxonomy.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.baselines.interface import EngineError
from repro.compliance.compare import (
    ComparisonOutcome,
    ResultLike,
    classify_result,
    majority_vote,
)
from repro.harness.timing import TimeoutError_, call_with_timeout
from repro.workloads.beseppi import BeSEPPIQuery
from repro.workloads.sp2bench import BenchmarkQuery


@dataclass
class QueryRecord:
    """The outcome of one (engine, query) pair."""

    engine: str
    query_id: str
    category: str
    outcome: ComparisonOutcome
    elapsed_seconds: float = 0.0
    error: Optional[str] = None


@dataclass
class ComplianceReport:
    """All records of a compliance run, with aggregation helpers."""

    benchmark: str
    records: List[QueryRecord] = field(default_factory=list)

    def by_engine(self) -> Dict[str, List[QueryRecord]]:
        grouped: Dict[str, List[QueryRecord]] = defaultdict(list)
        for record in self.records:
            grouped[record.engine].append(record)
        return dict(grouped)

    def outcome_counts(self, engine: str) -> Counter:
        return Counter(
            record.outcome for record in self.records if record.engine == engine
        )

    def outcome_counts_by_category(self, engine: str) -> Dict[str, Counter]:
        grouped: Dict[str, Counter] = defaultdict(Counter)
        for record in self.records:
            if record.engine == engine:
                grouped[record.category][record.outcome] += 1
        return dict(grouped)

    def correct_count(self, engine: str) -> int:
        return self.outcome_counts(engine)[ComparisonOutcome.CORRECT]

    def total_queries(self) -> int:
        engines = {record.engine for record in self.records}
        if not engines:
            return 0
        return len(self.records) // len(engines)


class ComplianceRunner:
    """Run a query suite over a set of engines and classify the answers."""

    def __init__(self, engines: Sequence, timeout_seconds: Optional[float] = None) -> None:
        self.engines = list(engines)
        self.timeout_seconds = timeout_seconds

    # ------------------------------------------------------------------
    # execution helpers
    # ------------------------------------------------------------------
    def _run_single(self, engine, query_text: str):
        """Run one query; returns (result_or_None, error_message_or_None)."""
        try:
            if self.timeout_seconds is not None:
                result = call_with_timeout(
                    lambda: engine.query(query_text), self.timeout_seconds
                )
            else:
                result = engine.query(query_text)
            return result, None
        except (EngineError, TimeoutError_) as error:
            return None, str(error)
        except NotImplementedError as error:
            return None, f"unsupported: {error}"
        except Exception as error:  # noqa: BLE001 - engines may fail arbitrarily
            return None, f"{type(error).__name__}: {error}"

    # ------------------------------------------------------------------
    # benchmark-specific entry points
    # ------------------------------------------------------------------
    def run_with_expected(
        self, benchmark_name: str, queries: Sequence[BeSEPPIQuery]
    ) -> ComplianceReport:
        """Run a suite whose queries carry their expected answer (BeSEPPI)."""
        report = ComplianceReport(benchmark=benchmark_name)
        for query in queries:
            expected: ResultLike
            if query.expected_boolean is not None:
                expected = query.expected_boolean
            else:
                expected = query.expected_rows
            for engine in self.engines:
                result, error = self._run_single(engine, query.text)
                outcome = classify_result(result, expected, errored=error is not None)
                report.records.append(
                    QueryRecord(
                        engine=engine.name,
                        query_id=query.query_id,
                        category=query.category,
                        outcome=outcome,
                        error=error,
                    )
                )
        return report

    def run_with_majority_vote(
        self, benchmark_name: str, queries: Sequence[BenchmarkQuery]
    ) -> ComplianceReport:
        """Run a suite without expected answers (FEASIBLE / SP2Bench)."""
        report = ComplianceReport(benchmark=benchmark_name)
        for query in queries:
            results: Dict[str, ResultLike] = {}
            errors: Dict[str, Optional[str]] = {}
            for engine in self.engines:
                result, error = self._run_single(engine, query.text)
                results[engine.name] = result
                errors[engine.name] = error
            expected = majority_vote(list(results.values()))
            category = query.features[0] if query.features else "general"
            for engine in self.engines:
                outcome = classify_result(
                    results[engine.name],
                    expected,
                    errored=errors[engine.name] is not None,
                )
                report.records.append(
                    QueryRecord(
                        engine=engine.name,
                        query_id=query.query_id,
                        category=category,
                        outcome=outcome,
                        error=errors[engine.name],
                    )
                )
        return report
