"""Compliance framework: result comparison, metrics and test runners.

Implements the methodology of Appendix D.2 of the paper: results of
different engines are compared as multisets of solution mappings (blank
node labels are not distinguished), queries are classified into the error
taxonomy of Table 3 (correct/complete, incomplete-but-correct,
complete-but-incorrect, incomplete-and-incorrect, error), and the
correctness / completeness ratios of BeSEPPI are computed.  For benchmarks
without published expected answers the expected result is determined by
majority voting across the tested engines, exactly as the paper does.
"""

from repro.compliance.compare import (
    ComparisonOutcome,
    canonical_rows,
    classify_result,
    completeness,
    correctness,
    majority_vote,
    results_equal,
)
from repro.compliance.runner import ComplianceReport, ComplianceRunner, QueryRecord

__all__ = [
    "ComparisonOutcome",
    "ComplianceReport",
    "ComplianceRunner",
    "QueryRecord",
    "canonical_rows",
    "classify_result",
    "completeness",
    "correctness",
    "majority_vote",
    "results_equal",
]
