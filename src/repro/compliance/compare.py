"""Result comparison and the correctness / completeness metrics.

Definitions follow Appendix D.2.3 of the paper (which in turn follows the
BeSEPPI methodology):

* ``correctness``  = |expected ∩ actual| / |actual|   (1 when actual empty),
* ``completeness`` = |expected ∩ actual| / |expected| (1 when expected empty),

with both computed over *multisets* of result rows.  A result is then
classified as one of: ``correct`` (correct and complete),
``incomplete_correct``, ``complete_incorrect``, ``incomplete_incorrect``
or ``error``.
"""

from __future__ import annotations

from collections import Counter
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.rdf.terms import BlankNode, Term
from repro.sparql.solutions import SolutionSequence

#: A comparable result: an engine answer (solution sequence or boolean), a
#: pre-computed multiset of rows (benchmark-supplied expected answers), or
#: ``None`` for an errored evaluation.
ResultLike = Union[SolutionSequence, bool, Counter, None]


class ComparisonOutcome(str, Enum):
    """The Table 3 error taxonomy."""

    CORRECT = "correct"
    INCOMPLETE_CORRECT = "incomplete_correct"
    COMPLETE_INCORRECT = "complete_incorrect"
    INCOMPLETE_INCORRECT = "incomplete_incorrect"
    ERROR = "error"


def _canonical_term(term: Optional[Term]) -> Optional[Term]:
    """Blank node labels are engine-specific, so all blank nodes compare equal."""
    if isinstance(term, BlankNode):
        return BlankNode("_")
    return term


def canonical_rows(result: SolutionSequence) -> Counter:
    """Return the multiset of rows with blank nodes canonicalised."""
    return Counter(
        tuple(_canonical_term(value) for value in row) for row in result.rows()
    )


def _as_multiset(result: ResultLike) -> Optional[Counter]:
    if isinstance(result, SolutionSequence):
        return canonical_rows(result)
    if isinstance(result, Counter):
        return Counter(
            {
                tuple(_canonical_term(value) for value in row): count
                for row, count in result.items()
            }
        )
    if isinstance(result, bool):
        return Counter([(result,)])
    return None


def correctness(actual: ResultLike, expected: ResultLike) -> float:
    """Fraction of returned rows that are expected."""
    actual_rows = _as_multiset(actual)
    expected_rows = _as_multiset(expected)
    if actual_rows is None or expected_rows is None:
        return 0.0
    total = sum(actual_rows.values())
    if total == 0:
        return 1.0
    overlap = sum((actual_rows & expected_rows).values())
    return overlap / total


def completeness(actual: ResultLike, expected: ResultLike) -> float:
    """Fraction of expected rows that were returned."""
    actual_rows = _as_multiset(actual)
    expected_rows = _as_multiset(expected)
    if actual_rows is None or expected_rows is None:
        return 0.0
    total = sum(expected_rows.values())
    if total == 0:
        return 1.0
    overlap = sum((actual_rows & expected_rows).values())
    return overlap / total


def results_equal(left: ResultLike, right: ResultLike) -> bool:
    """Multiset equality of two results (blank-node insensitive)."""
    if isinstance(left, bool) or isinstance(right, bool):
        return left == right
    left_rows = _as_multiset(left)
    right_rows = _as_multiset(right)
    if left_rows is None or right_rows is None:
        return False
    return left_rows == right_rows


def classify_result(
    actual: ResultLike,
    expected: ResultLike,
    errored: bool = False,
) -> ComparisonOutcome:
    """Classify one engine's answer against the expected answer."""
    if errored or actual is None:
        return ComparisonOutcome.ERROR
    if isinstance(expected, bool) or isinstance(actual, bool):
        return (
            ComparisonOutcome.CORRECT
            if actual == expected
            else ComparisonOutcome.INCOMPLETE_INCORRECT
        )
    is_correct = correctness(actual, expected) >= 1.0
    is_complete = completeness(actual, expected) >= 1.0
    if is_correct and is_complete:
        return ComparisonOutcome.CORRECT
    if is_correct and not is_complete:
        return ComparisonOutcome.INCOMPLETE_CORRECT
    if is_complete and not is_correct:
        return ComparisonOutcome.COMPLETE_INCORRECT
    return ComparisonOutcome.INCOMPLETE_INCORRECT


def majority_vote(results: Sequence[ResultLike]) -> Optional[ResultLike]:
    """Determine the expected answer by majority voting across engines.

    A result is accepted when at least two of the given results agree
    (the paper's strategy for FEASIBLE and SP2Bench, which ship no
    expected answers).  ``None`` entries (errors) never vote.
    """
    candidates = [result for result in results if result is not None]
    for index, candidate in enumerate(candidates):
        agreement = sum(
            1 for other in candidates if results_equal(candidate, other)
        )
        if agreement >= 2:
            return candidate
    return candidates[0] if candidates else None
