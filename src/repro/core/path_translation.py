"""Property-path translation τ_PP (Figure 6 / Definitions A.12–A.20).

Every property path expression is translated into rules for a predicate
``pathN(Id, X, Y, D)`` holding the (start, end) pairs of the path in graph
``D``.  Link, inverse, alternative, sequence and negated paths carry fresh
Skolem tuple IDs under bag semantics; the zero-or-one, one-or-more and
zero-or-more paths force the ID to the shared constant because the SPARQL
standard prescribes set semantics for them (the ``Id = []`` body literal of
the paper).

Zero-length paths are produced for every term occurring as a subject or
object of the active graph, and additionally for a bound endpoint of the
top-level property path pattern even when that term does not occur in the
graph — the case previous translations missed, which the paper fixes
(Section 5.2).
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.core.data_translation import (
    PRED_NAMED,
    PRED_SUBJECT_OR_OBJECT,
    PRED_TRIPLE,
)
from repro.core.skolem import SET_ID, SkolemFunctionGenerator
from repro.datalog.rules import Assignment, Atom, Comparison, Program, Rule
from repro.datalog.terms import Const, Term as DatalogTerm, Var
from repro.rdf.terms import Term as RdfTerm, Variable
from repro.sparql.paths import (
    AlternativePath,
    InversePath,
    LinkPath,
    NegatedPropertySet,
    OneOrMorePath,
    PropertyPath,
    SequencePath,
    ZeroOrMorePath,
    ZeroOrOnePath,
    normalize_path,
)


class PathTranslator:
    """Translate property path expressions into Datalog± rules."""

    def __init__(self, skolem: SkolemFunctionGenerator, namer) -> None:
        self._skolem = skolem
        self._next_name = namer  # callable returning fresh predicate names

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def translate(
        self,
        path: PropertyPath,
        distinct: bool,
        subject: Union[RdfTerm, Variable],
        obj: Union[RdfTerm, Variable],
        graph_spec: DatalogTerm,
        program: Program,
    ) -> str:
        """Translate ``path`` and return the name of its answer predicate."""
        path = normalize_path(path)
        return self._translate(path, distinct, subject, obj, graph_spec, program)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _head(
        self, name: str, distinct: bool, id_var: Var, x: DatalogTerm, y: DatalogTerm,
        graph_spec: DatalogTerm,
    ) -> Atom:
        if distinct:
            return Atom(name, (x, y, graph_spec))
        return Atom(name, (id_var, x, y, graph_spec))

    def _child_atom(
        self, name: str, distinct: bool, id_var: Var, x: DatalogTerm, y: DatalogTerm,
        graph_spec: DatalogTerm,
    ) -> Atom:
        if distinct:
            return Atom(name, (x, y, graph_spec))
        return Atom(name, (id_var, x, y, graph_spec))

    def _id_assignment(self, distinct: bool, id_var: Var, body_vars, label: str):
        if distinct:
            return None
        return self._skolem.tuple_id_assignment(id_var, body_vars, label)

    def _set_id_assignment(self, distinct: bool, id_var: Var):
        if distinct:
            return None
        return SkolemFunctionGenerator.set_semantics_assignment(id_var)

    @staticmethod
    def _collect_vars(atoms: List[Atom]) -> List[Var]:
        variables: List[Var] = []
        for atom in atoms:
            for argument in atom.arguments:
                if isinstance(argument, Var) and argument not in variables:
                    variables.append(argument)
        return variables

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _translate(
        self,
        path: PropertyPath,
        distinct: bool,
        subject,
        obj,
        graph_spec: DatalogTerm,
        program: Program,
    ) -> str:
        if isinstance(path, LinkPath):
            return self._translate_link(path, distinct, graph_spec, program)
        if isinstance(path, InversePath):
            return self._translate_inverse(path, distinct, subject, obj, graph_spec, program)
        if isinstance(path, AlternativePath):
            return self._translate_alternative(path, distinct, subject, obj, graph_spec, program)
        if isinstance(path, SequencePath):
            return self._translate_sequence(path, distinct, subject, obj, graph_spec, program)
        if isinstance(path, NegatedPropertySet):
            return self._translate_negated(path, distinct, graph_spec, program)
        if isinstance(path, OneOrMorePath):
            return self._translate_one_or_more(path, distinct, subject, obj, graph_spec, program)
        if isinstance(path, ZeroOrOnePath):
            return self._translate_zero_or_one(path, distinct, subject, obj, graph_spec, program)
        if isinstance(path, ZeroOrMorePath):
            return self._translate_zero_or_more(path, distinct, subject, obj, graph_spec, program)
        raise TypeError(f"unknown property path node {path!r}")

    # ------------------------------------------------------------------
    # base and structural cases
    # ------------------------------------------------------------------
    def _translate_link(
        self, path: LinkPath, distinct: bool, graph_spec, program: Program
    ) -> str:
        name = self._next_name("path")
        id_var, x, y = Var("Id"), Var("X"), Var("Y")
        body: List = [Atom(PRED_TRIPLE, (x, Const(path.iri), y, graph_spec))]
        assignment = self._id_assignment(distinct, id_var, [x, y], f"link:{path.iri.value}")
        if assignment is not None:
            body.append(assignment)
        program.add_rule(
            Rule(self._head(name, distinct, id_var, x, y, graph_spec), tuple(body), label=name)
        )
        return name

    def _translate_inverse(
        self, path: InversePath, distinct, subject, obj, graph_spec, program: Program
    ) -> str:
        child = self._translate(path.path, distinct, subject, obj, graph_spec, program)
        name = self._next_name("path")
        id_var, id1, x, y = Var("Id"), Var("Id1"), Var("X"), Var("Y")
        body: List = [self._child_atom(child, distinct, id1, y, x, graph_spec)]
        assignment = self._id_assignment(
            distinct, id_var, self._collect_vars([body[0]]), "inverse"
        )
        if assignment is not None:
            body.append(assignment)
        program.add_rule(
            Rule(self._head(name, distinct, id_var, x, y, graph_spec), tuple(body), label=name)
        )
        return name

    def _translate_alternative(
        self, path: AlternativePath, distinct, subject, obj, graph_spec, program: Program
    ) -> str:
        left = self._translate(path.left, distinct, subject, obj, graph_spec, program)
        right = self._translate(path.right, distinct, subject, obj, graph_spec, program)
        name = self._next_name("path")
        for branch_index, child in enumerate((left, right)):
            id_var, id1, x, y = Var("Id"), Var("Id1"), Var("X"), Var("Y")
            body: List = [self._child_atom(child, distinct, id1, x, y, graph_spec)]
            assignment = self._id_assignment(
                distinct, id_var, self._collect_vars([body[0]]), f"alt{branch_index}"
            )
            if assignment is not None:
                body.append(assignment)
            program.add_rule(
                Rule(self._head(name, distinct, id_var, x, y, graph_spec), tuple(body), label=name)
            )
        return name

    def _translate_sequence(
        self, path: SequencePath, distinct, subject, obj, graph_spec, program: Program
    ) -> str:
        left = self._translate(path.left, distinct, subject, obj, graph_spec, program)
        right = self._translate(path.right, distinct, subject, obj, graph_spec, program)
        name = self._next_name("path")
        id_var, id1, id2 = Var("Id"), Var("Id1"), Var("Id2")
        x, y, z = Var("X"), Var("Y"), Var("Z")
        body: List = [
            self._child_atom(left, distinct, id1, x, y, graph_spec),
            self._child_atom(right, distinct, id2, y, z, graph_spec),
        ]
        assignment = self._id_assignment(
            distinct, id_var, self._collect_vars(body), "sequence"
        )
        if assignment is not None:
            body.append(assignment)
        program.add_rule(
            Rule(self._head(name, distinct, id_var, x, z, graph_spec), tuple(body), label=name)
        )
        return name

    def _translate_negated(
        self, path: NegatedPropertySet, distinct, graph_spec, program: Program
    ) -> str:
        name = self._next_name("path")
        if path.forward or not path.inverse:
            id_var, x, y, p = Var("Id"), Var("X"), Var("Y"), Var("P")
            body: List = [Atom(PRED_TRIPLE, (x, p, y, graph_spec))]
            for forbidden in path.forward:
                body.append(Comparison("!=", p, Const(forbidden)))
            assignment = self._id_assignment(distinct, id_var, [x, y, p], "negated-forward")
            if assignment is not None:
                body.append(assignment)
            program.add_rule(
                Rule(self._head(name, distinct, id_var, x, y, graph_spec), tuple(body), label=name)
            )
        if path.inverse:
            id_var, x, y, p = Var("Id"), Var("X"), Var("Y"), Var("P")
            body = [Atom(PRED_TRIPLE, (x, p, y, graph_spec))]
            for forbidden in path.inverse:
                body.append(Comparison("!=", p, Const(forbidden)))
            assignment = self._id_assignment(distinct, id_var, [x, y, p], "negated-inverse")
            if assignment is not None:
                body.append(assignment)
            program.add_rule(
                Rule(self._head(name, distinct, id_var, y, x, graph_spec), tuple(body), label=name)
            )
        return name

    # ------------------------------------------------------------------
    # closure cases (always set semantics)
    # ------------------------------------------------------------------
    def _translate_one_or_more(
        self, path: OneOrMorePath, distinct, subject, obj, graph_spec, program: Program
    ) -> str:
        child = self._translate(path.path, distinct, subject, obj, graph_spec, program)
        name = self._next_name("path")
        self._add_transitive_rules(name, child, distinct, graph_spec, program)
        return name

    def _translate_zero_or_one(
        self, path: ZeroOrOnePath, distinct, subject, obj, graph_spec, program: Program
    ) -> str:
        child = self._translate(path.path, distinct, subject, obj, graph_spec, program)
        name = self._next_name("path")
        self._add_zero_rules(name, distinct, subject, obj, graph_spec, program)
        # Single traversal, forced to the shared ID.
        id_var, id1, x, y = Var("Id"), Var("Id1"), Var("X"), Var("Y")
        body: List = [self._child_atom(child, distinct, id1, x, y, graph_spec)]
        assignment = self._set_id_assignment(distinct, id_var)
        if assignment is not None:
            body.append(assignment)
        program.add_rule(
            Rule(self._head(name, distinct, id_var, x, y, graph_spec), tuple(body), label=name)
        )
        return name

    def _translate_zero_or_more(
        self, path: ZeroOrMorePath, distinct, subject, obj, graph_spec, program: Program
    ) -> str:
        child = self._translate(path.path, distinct, subject, obj, graph_spec, program)
        name = self._next_name("path")
        self._add_zero_rules(name, distinct, subject, obj, graph_spec, program)
        self._add_transitive_rules(name, child, distinct, graph_spec, program)
        return name

    def _add_transitive_rules(
        self, name: str, child: str, distinct: bool, graph_spec, program: Program
    ) -> None:
        """Base and recursive rules of the transitive closure (Definition A.16)."""
        id_var, id1, x, y = Var("Id"), Var("Id1"), Var("X"), Var("Y")
        body: List = [self._child_atom(child, distinct, id1, x, y, graph_spec)]
        assignment = self._set_id_assignment(distinct, id_var)
        if assignment is not None:
            body.append(assignment)
        program.add_rule(
            Rule(self._head(name, distinct, id_var, x, y, graph_spec), tuple(body), label=name)
        )

        id_var, id1, id2 = Var("Id"), Var("Id1"), Var("Id2")
        x, y, z = Var("X"), Var("Y"), Var("Z")
        body = [
            self._child_atom(child, distinct, id1, x, y, graph_spec),
            self._child_atom(name, distinct, id2, y, z, graph_spec),
        ]
        assignment = self._set_id_assignment(distinct, id_var)
        if assignment is not None:
            body.append(assignment)
        program.add_rule(
            Rule(self._head(name, distinct, id_var, x, z, graph_spec), tuple(body), label=name)
        )

    def _add_zero_rules(
        self, name: str, distinct: bool, subject, obj, graph_spec, program: Program
    ) -> None:
        """Zero-length path rules (Definitions A.17–A.19)."""
        id_var, x = Var("Id"), Var("X")
        body: List = [Atom(PRED_SUBJECT_OR_OBJECT, (x, graph_spec))]
        assignment = self._set_id_assignment(distinct, id_var)
        if assignment is not None:
            body.append(assignment)
        program.add_rule(
            Rule(self._head(name, distinct, id_var, x, x, graph_spec), tuple(body), label=name)
        )

        # Zero-length path for a bound endpoint, even when the term does not
        # occur in the graph (the correction over earlier translations).
        endpoint = self._bound_endpoint(subject, obj)
        if endpoint is None:
            return
        constant = Const(endpoint)
        if isinstance(graph_spec, Const):
            if distinct:
                program.add_fact(Atom(name, (constant, constant, graph_spec)))
            else:
                program.add_fact(Atom(name, (SET_ID, constant, constant, graph_spec)))
        else:
            # Inside GRAPH ?g the rule must range over the named graphs.
            body = [Atom(PRED_NAMED, (graph_spec,))]
            assignment = self._set_id_assignment(distinct, id_var)
            if assignment is not None:
                body.append(assignment)
            program.add_rule(
                Rule(
                    self._head(name, distinct, id_var, constant, constant, graph_spec),
                    tuple(body),
                    label=name,
                )
            )

    @staticmethod
    def _bound_endpoint(subject, obj) -> Optional[RdfTerm]:
        """Return the endpoint term needing an extra zero-length pair, if any."""
        subject_is_var = isinstance(subject, Variable)
        object_is_var = isinstance(obj, Variable)
        if not subject_is_var and object_is_var:
            return subject
        if subject_is_var and not object_is_var:
            return obj
        if not subject_is_var and not object_is_var and subject == obj:
            return subject
        return None
