"""Query translation T_Q: SPARQL algebra → Warded Datalog± rules.

The translator walks the algebra tree produced by the SPARQL parser and
emits, for every subpattern, the rules of Figure 5 / Appendix A of the
paper.  Every subpattern ``P_i`` is represented by an answer predicate
whose argument list is ``(Id?, var(P_i) sorted lexicographically, D)``
where ``Id`` is the Skolem tuple ID (bag semantics only) and ``D`` the
active graph.

Two practical refinements over the literal paper rules are applied — both
mirror what building on a real Datalog engine allows (Section 5.1):

* shared join variables are renamed apart and joined through the ``comp``
  predicate only when one of the operands may actually bind the variable
  to ``null`` (i.e. it contains an OPTIONAL or a UNION with unequal
  variable sets below it); otherwise a plain natural join is emitted,
* the zero-length property-path rules take the active graph into account
  (see :mod:`repro.core.path_translation`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.data_translation import (
    NULL,
    PRED_NAMED,
    PRED_NULL,
    PRED_COMP,
    PRED_TRIPLE,
)
from repro.core.path_translation import PathTranslator
from repro.core.skolem import SET_ID, SkolemFunctionGenerator
from repro.datalog.rules import (
    AggregateRule,
    AggregateSpec,
    Assignment,
    Atom,
    FilterCondition,
    Negation,
    Program,
    Rule,
)
from repro.datalog.terms import Const, Term as DatalogTerm, Var
from repro.rdf.terms import IRI, Literal, Term as RdfTerm, Variable, XSD_BOOLEAN
from repro.sparql.algebra import (
    AskQuery,
    BGP,
    Bind,
    EmptyPattern,
    Filter,
    GraphGraphPattern,
    GraphPatternNode,
    Join,
    LeftJoin,
    Minus,
    PathPattern,
    Query,
    SelectQuery,
    TriplePatternNode,
    Union as UnionNode,
    ValuesPattern,
)
from repro.sparql.expressions import Aggregate, Expression, VariableExpr

TRUE = Const(Literal("true", XSD_BOOLEAN))
FALSE = Const(Literal("false", XSD_BOOLEAN))


class UnsupportedFeatureError(NotImplementedError):
    """Raised when a query uses a SPARQL feature SparqLog does not cover."""


@dataclass
class PatternInfo:
    """Metadata about the answer predicate of one translated subpattern."""

    predicate: str
    variables: Tuple[Variable, ...]  # lexicographically sorted
    nullable: Set[Variable] = field(default_factory=set)


@dataclass
class TranslationResult:
    """The outcome of translating one SPARQL query."""

    program: Program
    answer_predicate: str
    answer_variables: Tuple[Variable, ...]
    has_id_column: bool
    has_graph_column: bool
    query: Query
    form: str  # "SELECT" or "ASK"


def datalog_variable(variable: Variable, prefix: str = "V") -> Var:
    """Map a SPARQL variable to its Datalog counterpart."""
    return Var(f"{prefix}_{variable.name}")


def term_to_datalog(term: Union[RdfTerm, Variable], prefix: str = "V") -> DatalogTerm:
    """Map a SPARQL term-or-variable to a Datalog term."""
    if isinstance(term, Variable):
        return datalog_variable(term, prefix)
    return Const(term)


class QueryTranslator:
    """Translate parsed SPARQL queries into Datalog± programs."""

    def __init__(self) -> None:
        self._skolem = SkolemFunctionGenerator()
        self._counter = 0
        self._path_translator = PathTranslator(self._skolem, self._fresh_predicate)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def translate(self, query: Query) -> TranslationResult:
        """Translate a SELECT or ASK query into a Datalog± program."""
        if isinstance(query, SelectQuery):
            return self._translate_select(query)
        if isinstance(query, AskQuery):
            return self._translate_ask(query)
        raise UnsupportedFeatureError(
            f"query form {type(query).__name__} is not supported by SparqLog"
        )

    # ------------------------------------------------------------------
    # naming helpers
    # ------------------------------------------------------------------
    def _fresh_predicate(self, kind: str = "ans") -> str:
        self._counter += 1
        return f"{kind}{self._counter}"

    # ------------------------------------------------------------------
    # query forms
    # ------------------------------------------------------------------
    def _translate_select(self, query: SelectQuery) -> TranslationResult:
        distinct = query.distinct or query.reduced
        program = Program()
        inner = self._translate_pattern(
            query.pattern, distinct, Const("default"), program
        )
        if query.has_aggregates():
            return self._translate_aggregation(query, inner, program, distinct)

        for item in query.projection:
            if item.expression is not None:
                raise UnsupportedFeatureError(
                    "SELECT expressions (expr AS ?var) without GROUP BY are not supported"
                )

        projected = tuple(sorted(query.projected_variables(), key=lambda v: v.name))
        name = self._fresh_predicate("select")
        graph_var = Var("D")
        id_var, child_id = Var("Id"), Var("Id1")
        child_atom = self._pattern_atom(inner, child_id, distinct, graph_var)
        body: List = [child_atom]
        # Projected variables that the pattern cannot bind stay unbound (null).
        for variable in projected:
            if variable not in inner.variables:
                body.append(Atom(PRED_NULL, (datalog_variable(variable),)))
        head_args: List[DatalogTerm] = []
        if not distinct:
            head_args.append(id_var)
            body.append(
                self._skolem.tuple_id_assignment(
                    id_var, self._positive_body_vars(body), "select"
                )
            )
        head_args += [datalog_variable(variable) for variable in projected]
        head_args.append(graph_var)
        program.add_rule(Rule(Atom(name, tuple(head_args)), tuple(body), label=name))
        program.add_directive("output", name)
        self._add_post_directives(program, name, query)
        return TranslationResult(
            program=program,
            answer_predicate=name,
            answer_variables=projected,
            has_id_column=not distinct,
            has_graph_column=True,
            query=query,
            form="SELECT",
        )

    def _translate_aggregation(
        self,
        query: SelectQuery,
        inner: PatternInfo,
        program: Program,
        distinct: bool,
    ) -> TranslationResult:
        group_variables: List[Variable] = []
        for key in query.group_by:
            if not isinstance(key, VariableExpr):
                raise UnsupportedFeatureError("GROUP BY only supports plain variables")
            group_variables.append(key.variable)

        aggregate_specs: List[AggregateSpec] = []
        output_variables: List[Variable] = []
        for item in query.projection:
            if item.expression is None:
                if item.variable not in group_variables:
                    raise UnsupportedFeatureError(
                        f"projected variable {item.variable} must appear in GROUP BY"
                    )
                output_variables.append(item.variable)
                continue
            if not isinstance(item.expression, Aggregate):
                raise UnsupportedFeatureError(
                    "only aggregate expressions are supported in grouped SELECT clauses"
                )
            aggregate = item.expression
            if aggregate.argument is not None and not isinstance(
                aggregate.argument, VariableExpr
            ):
                raise UnsupportedFeatureError(
                    "aggregates over complex expressions are not supported"
                )
            argument_var = (
                datalog_variable(aggregate.argument.variable)
                if aggregate.argument is not None
                else None
            )
            aggregate_specs.append(
                AggregateSpec(
                    operation=aggregate.operation,
                    argument=argument_var,
                    target=datalog_variable(item.variable),
                    distinct=aggregate.distinct,
                )
            )
            output_variables.append(item.variable)
        if query.having is not None:
            raise UnsupportedFeatureError("HAVING is not supported")

        name = self._fresh_predicate("select")
        graph_var = Var("D")
        child_id = Var("Id1")
        body = (self._pattern_atom(inner, child_id, distinct, graph_var),)
        head_args = tuple(datalog_variable(variable) for variable in output_variables)
        program.aggregate_rules.append(
            AggregateRule(
                head=Atom(name, head_args),
                body=body,
                group_variables=tuple(datalog_variable(v) for v in group_variables),
                aggregates=tuple(aggregate_specs),
                label=name,
            )
        )
        program.add_directive("output", name)
        self._add_post_directives(program, name, query)
        return TranslationResult(
            program=program,
            answer_predicate=name,
            answer_variables=tuple(output_variables),
            has_id_column=False,
            has_graph_column=False,
            query=query,
            form="SELECT",
        )

    def _translate_ask(self, query: AskQuery) -> TranslationResult:
        program = Program()
        inner = self._translate_pattern(query.pattern, True, Const("default"), program)
        aux = self._fresh_predicate("ask_aux")
        name = self._fresh_predicate("ask")
        graph_var = Var("D")
        result_var = Var("HasResult")
        child_atom = self._pattern_atom(inner, Var("Id1"), True, graph_var)
        program.add_rule(
            Rule(
                Atom(aux, (result_var,)),
                (child_atom, Assignment(result_var, TRUE)),
                label=aux,
            )
        )
        program.add_rule(
            Rule(Atom(name, (result_var,)), (Atom(aux, (result_var,)),), label=name)
        )
        program.add_rule(
            Rule(
                Atom(name, (result_var,)),
                (Negation(Atom(aux, (TRUE,))), Assignment(result_var, FALSE)),
                label=name,
            )
        )
        program.add_directive("output", name)
        return TranslationResult(
            program=program,
            answer_predicate=name,
            answer_variables=(),
            has_id_column=False,
            has_graph_column=False,
            query=query,
            form="ASK",
        )

    def _add_post_directives(self, program: Program, name: str, query: SelectQuery) -> None:
        """Record the solution modifiers as Vadalog-style @post directives."""
        if query.order_by:
            program.add_directive("post", name, "orderby")
        if query.limit is not None:
            program.add_directive("post", name, f"limit({query.limit})")
        if query.offset is not None:
            program.add_directive("post", name, f"offset({query.offset})")
        if query.distinct:
            program.add_directive("post", name, "distinct")

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _pattern_atom(
        self,
        info: PatternInfo,
        id_var: Var,
        distinct: bool,
        graph_term: DatalogTerm,
        rename: Optional[Dict[Variable, Var]] = None,
    ) -> Atom:
        """Build a body atom referencing the answer predicate of a subpattern."""
        args: List[DatalogTerm] = []
        if not distinct:
            args.append(id_var)
        for variable in info.variables:
            if rename and variable in rename:
                args.append(rename[variable])
            else:
                args.append(datalog_variable(variable))
        args.append(graph_term)
        return Atom(info.predicate, tuple(args))

    @staticmethod
    def _positive_body_vars(body: Sequence) -> List[Var]:
        variables: List[Var] = []
        for element in body:
            if isinstance(element, Atom):
                for argument in element.arguments:
                    if isinstance(argument, Var) and argument not in variables:
                        variables.append(argument)
        return variables

    def _head_atom(
        self,
        name: str,
        distinct: bool,
        id_var: Var,
        variables: Sequence[Variable],
        graph_term: DatalogTerm,
        overrides: Optional[Dict[Variable, DatalogTerm]] = None,
    ) -> Atom:
        args: List[DatalogTerm] = []
        if not distinct:
            args.append(id_var)
        for variable in variables:
            if overrides and variable in overrides:
                args.append(overrides[variable])
            else:
                args.append(datalog_variable(variable))
        args.append(graph_term)
        return Atom(name, tuple(args))

    # ------------------------------------------------------------------
    # graph patterns
    # ------------------------------------------------------------------
    def _translate_pattern(
        self,
        node: GraphPatternNode,
        distinct: bool,
        graph_spec: DatalogTerm,
        program: Program,
    ) -> PatternInfo:
        if isinstance(node, TriplePatternNode):
            return self._translate_triple(node, distinct, graph_spec, program)
        if isinstance(node, PathPattern):
            return self._translate_path_pattern(node, distinct, graph_spec, program)
        if isinstance(node, BGP):
            return self._translate_bgp(node, distinct, graph_spec, program)
        if isinstance(node, Join):
            left = self._translate_pattern(node.left, distinct, graph_spec, program)
            right = self._translate_pattern(node.right, distinct, graph_spec, program)
            return self._translate_join(left, right, distinct, graph_spec, program)
        if isinstance(node, LeftJoin):
            return self._translate_optional(node, distinct, graph_spec, program)
        if isinstance(node, UnionNode):
            return self._translate_union(node, distinct, graph_spec, program)
        if isinstance(node, Minus):
            return self._translate_minus(node, distinct, graph_spec, program)
        if isinstance(node, Filter):
            return self._translate_filter(node, distinct, graph_spec, program)
        if isinstance(node, GraphGraphPattern):
            return self._translate_graph(node, distinct, graph_spec, program)
        if isinstance(node, EmptyPattern):
            return self._translate_empty(distinct, graph_spec, program)
        if isinstance(node, (Bind, ValuesPattern)):
            raise UnsupportedFeatureError(
                f"{type(node).__name__} is not supported by the SparqLog translation"
            )
        raise UnsupportedFeatureError(f"unsupported pattern {type(node).__name__}")

    def _translate_triple(
        self,
        node: TriplePatternNode,
        distinct: bool,
        graph_spec: DatalogTerm,
        program: Program,
    ) -> PatternInfo:
        name = self._fresh_predicate()
        variables = tuple(sorted(node.triple.variables(), key=lambda v: v.name))
        id_var = Var("Id")
        triple_atom = Atom(
            PRED_TRIPLE,
            (
                term_to_datalog(node.triple.subject),
                term_to_datalog(node.triple.predicate),
                term_to_datalog(node.triple.object),
                graph_spec,
            ),
        )
        body: List = [triple_atom]
        if not distinct:
            body.append(
                self._skolem.tuple_id_assignment(
                    id_var, self._positive_body_vars(body), "triple"
                )
            )
        program.add_rule(
            Rule(
                self._head_atom(name, distinct, id_var, variables, graph_spec),
                tuple(body),
                label=name,
            )
        )
        return PatternInfo(name, variables)

    def _translate_path_pattern(
        self,
        node: PathPattern,
        distinct: bool,
        graph_spec: DatalogTerm,
        program: Program,
    ) -> PatternInfo:
        path_predicate = self._path_translator.translate(
            node.path, distinct, node.subject, node.object, graph_spec, program
        )
        name = self._fresh_predicate()
        variables = tuple(
            sorted(
                {part for part in (node.subject, node.object) if isinstance(part, Variable)},
                key=lambda v: v.name,
            )
        )
        id_var, child_id = Var("Id"), Var("Id1")
        child_args: List[DatalogTerm] = []
        if not distinct:
            child_args.append(child_id)
        child_args.append(term_to_datalog(node.subject))
        child_args.append(term_to_datalog(node.object))
        child_args.append(graph_spec)
        body: List = [Atom(path_predicate, tuple(child_args))]
        if not distinct:
            body.append(
                self._skolem.tuple_id_assignment(
                    id_var, self._positive_body_vars(body), "path-pattern"
                )
            )
        program.add_rule(
            Rule(
                self._head_atom(name, distinct, id_var, variables, graph_spec),
                tuple(body),
                label=name,
            )
        )
        return PatternInfo(name, variables)

    def _translate_bgp(
        self, node: BGP, distinct: bool, graph_spec: DatalogTerm, program: Program
    ) -> PatternInfo:
        infos = [
            self._translate_pattern(pattern, distinct, graph_spec, program)
            for pattern in node.patterns
        ]
        if not infos:
            return self._translate_empty(distinct, graph_spec, program)
        current = infos[0]
        for info in infos[1:]:
            current = self._translate_join(current, info, distinct, graph_spec, program)
        return current

    def _translate_join(
        self,
        left: PatternInfo,
        right: PatternInfo,
        distinct: bool,
        graph_spec: DatalogTerm,
        program: Program,
    ) -> PatternInfo:
        name = self._fresh_predicate()
        shared = [v for v in left.variables if v in right.variables]
        nullable_shared = {
            variable
            for variable in shared
            if variable in left.nullable or variable in right.nullable
        }
        all_variables = tuple(
            sorted(set(left.variables) | set(right.variables), key=lambda v: v.name)
        )
        id_var, left_id, right_id = Var("Id"), Var("Id1"), Var("Id2")

        left_rename = {
            variable: Var(f"VL_{variable.name}") for variable in nullable_shared
        }
        right_rename = {
            variable: Var(f"VR_{variable.name}") for variable in nullable_shared
        }
        body: List = [
            self._pattern_atom(left, left_id, distinct, graph_spec, left_rename),
            self._pattern_atom(right, right_id, distinct, graph_spec, right_rename),
        ]
        for variable in nullable_shared:
            body.append(
                Atom(
                    PRED_COMP,
                    (left_rename[variable], right_rename[variable], datalog_variable(variable)),
                )
            )
        if not distinct:
            body.append(
                self._skolem.tuple_id_assignment(
                    id_var, self._positive_body_vars(body), "join"
                )
            )
        program.add_rule(
            Rule(
                self._head_atom(name, distinct, id_var, all_variables, graph_spec),
                tuple(body),
                label=name,
            )
        )
        nullable = (left.nullable | right.nullable) - set(shared) | nullable_shared
        return PatternInfo(name, all_variables, nullable)

    def _translate_optional(
        self,
        node: LeftJoin,
        distinct: bool,
        graph_spec: DatalogTerm,
        program: Program,
    ) -> PatternInfo:
        left = self._translate_pattern(node.left, distinct, graph_spec, program)
        right = self._translate_pattern(node.right, distinct, graph_spec, program)
        name = self._fresh_predicate()
        opt_name = self._fresh_predicate("ans_opt")

        shared = [v for v in left.variables if v in right.variables]
        nullable_shared = {
            variable
            for variable in shared
            if variable in left.nullable or variable in right.nullable
        }
        right_only = [v for v in right.variables if v not in left.variables]
        all_variables = tuple(
            sorted(set(left.variables) | set(right.variables), key=lambda v: v.name)
        )
        left_id, right_id, id_var = Var("Id1"), Var("Id2"), Var("Id")
        condition_variables = (
            node.condition.variables() if node.condition is not None else set()
        )

        def build_join_body(
            rename_left: bool, merge_targets: Dict[Variable, Var]
        ) -> List:
            left_rename = (
                {v: Var(f"VL_{v.name}") for v in nullable_shared} if rename_left else {}
            )
            right_rename = {v: Var(f"VR_{v.name}") for v in nullable_shared}
            body: List = [
                self._pattern_atom(left, left_id, distinct, graph_spec, left_rename),
                self._pattern_atom(right, right_id, distinct, graph_spec, right_rename),
            ]
            for variable in nullable_shared:
                left_term = left_rename.get(variable, datalog_variable(variable))
                body.append(
                    Atom(
                        PRED_COMP,
                        (left_term, right_rename[variable], merge_targets[variable]),
                    )
                )
            return body

        def condition_filter(merge_targets: Dict[Variable, Var]) -> FilterCondition:
            mapping: List[Tuple[Variable, Var]] = []
            for variable in sorted(condition_variables, key=lambda v: v.name):
                if variable in merge_targets:
                    mapping.append((variable, merge_targets[variable]))
                elif variable in left.variables or variable in right.variables:
                    mapping.append((variable, datalog_variable(variable)))
            return FilterCondition(node.condition, tuple(mapping))

        # Rule 1: ans_opt(var(P1), D) — left mappings extendable to the right.
        merge_targets = {v: Var(f"VM_{v.name}") for v in nullable_shared}
        opt_body = build_join_body(False, merge_targets)
        if node.condition is not None:
            opt_body.append(condition_filter(merge_targets))
        program.add_rule(
            Rule(
                self._head_atom(opt_name, True, Var("unused"), left.variables, graph_spec),
                tuple(opt_body),
                label=opt_name,
            )
        )

        # Rule 2: the extended mappings (join, with the optional filter).
        merge_targets = {v: datalog_variable(v) for v in nullable_shared}
        join_body = build_join_body(True, merge_targets)
        if node.condition is not None:
            join_body.append(condition_filter(merge_targets))
        if not distinct:
            join_body.append(
                self._skolem.tuple_id_assignment(
                    id_var, self._positive_body_vars(join_body), "optional-join"
                )
            )
        program.add_rule(
            Rule(
                self._head_atom(name, distinct, id_var, all_variables, graph_spec),
                tuple(join_body),
                label=name,
            )
        )

        # Rule 3: left mappings with no admissible extension; right-only
        # variables are set to null.
        keep_body: List = [
            self._pattern_atom(left, left_id, distinct, graph_spec),
            Negation(
                self._head_atom(opt_name, True, Var("unused"), left.variables, graph_spec)
            ),
        ]
        for variable in right_only:
            keep_body.append(Atom(PRED_NULL, (datalog_variable(variable),)))
        if not distinct:
            keep_body.append(
                self._skolem.tuple_id_assignment(
                    id_var, self._positive_body_vars(keep_body), "optional-keep"
                )
            )
        program.add_rule(
            Rule(
                self._head_atom(name, distinct, id_var, all_variables, graph_spec),
                tuple(keep_body),
                label=name,
            )
        )
        nullable = left.nullable | right.nullable | set(right_only) | nullable_shared
        return PatternInfo(name, all_variables, nullable)

    def _translate_union(
        self,
        node: UnionNode,
        distinct: bool,
        graph_spec: DatalogTerm,
        program: Program,
    ) -> PatternInfo:
        left = self._translate_pattern(node.left, distinct, graph_spec, program)
        right = self._translate_pattern(node.right, distinct, graph_spec, program)
        name = self._fresh_predicate()
        all_variables = tuple(
            sorted(set(left.variables) | set(right.variables), key=lambda v: v.name)
        )
        for branch, label in ((left, "union-left"), (right, "union-right")):
            id_var, child_id = Var("Id"), Var("Id1")
            body: List = [self._pattern_atom(branch, child_id, distinct, graph_spec)]
            for variable in all_variables:
                if variable not in branch.variables:
                    body.append(Atom(PRED_NULL, (datalog_variable(variable),)))
            if not distinct:
                body.append(
                    self._skolem.tuple_id_assignment(
                        id_var, self._positive_body_vars(body), label
                    )
                )
            program.add_rule(
                Rule(
                    self._head_atom(name, distinct, id_var, all_variables, graph_spec),
                    tuple(body),
                    label=name,
                )
            )
        nullable = (
            left.nullable
            | right.nullable
            | (set(left.variables) ^ set(right.variables))
        )
        return PatternInfo(name, all_variables, nullable)

    def _translate_minus(
        self,
        node: Minus,
        distinct: bool,
        graph_spec: DatalogTerm,
        program: Program,
    ) -> PatternInfo:
        left = self._translate_pattern(node.left, distinct, graph_spec, program)
        right = self._translate_pattern(node.right, distinct, graph_spec, program)
        shared = [v for v in left.variables if v in right.variables]
        name = self._fresh_predicate()
        id_var, left_id, right_id = Var("Id"), Var("Id1"), Var("Id2")

        if not shared:
            # Disjoint domains: MINUS removes nothing (Table 4 semantics).
            body: List = [self._pattern_atom(left, left_id, distinct, graph_spec)]
            if not distinct:
                body.append(
                    self._skolem.tuple_id_assignment(
                        id_var, self._positive_body_vars(body), "minus-copy"
                    )
                )
            program.add_rule(
                Rule(
                    self._head_atom(name, distinct, id_var, left.variables, graph_spec),
                    tuple(body),
                    label=name,
                )
            )
            return PatternInfo(name, left.variables, set(left.nullable))

        join_name = self._fresh_predicate("ans_join")
        equal_name = self._fresh_predicate("ans_equal")
        right_rename = {v: Var(f"VR_{v.name}") for v in shared}

        # ans_join: compatible combinations of left and right mappings.
        join_head_args = (
            tuple(datalog_variable(v) for v in left.variables)
            + tuple(right_rename[v] for v in shared)
            + (graph_spec,)
        )
        join_body: List = [
            self._pattern_atom(left, left_id, distinct, graph_spec),
            self._pattern_atom(right, right_id, distinct, graph_spec, right_rename),
        ]
        for variable in shared:
            join_body.append(
                Atom(
                    PRED_COMP,
                    (
                        datalog_variable(variable),
                        right_rename[variable],
                        Var(f"VM_{variable.name}"),
                    ),
                )
            )
        program.add_rule(
            Rule(Atom(join_name, join_head_args), tuple(join_body), label=join_name)
        )

        # ans_equal: the "forbidden" left mappings — compatible with a right
        # mapping and agreeing on at least one non-null shared variable.
        for variable in shared:
            equal_body = (
                Atom(join_name, join_head_args),
                Atom(PRED_COMP, (datalog_variable(variable), right_rename[variable],
                                 Var(f"VM_{variable.name}"))),
                Negation(Atom(PRED_NULL, (datalog_variable(variable),))),
                Negation(Atom(PRED_NULL, (right_rename[variable],))),
            )
            program.add_rule(
                Rule(
                    self._head_atom(equal_name, True, Var("unused"), left.variables, graph_spec),
                    equal_body,
                    label=equal_name,
                )
            )

        # ans: left mappings that are not forbidden.
        body = [
            self._pattern_atom(left, left_id, distinct, graph_spec),
            Negation(
                self._head_atom(equal_name, True, Var("unused"), left.variables, graph_spec)
            ),
        ]
        if not distinct:
            body.append(
                self._skolem.tuple_id_assignment(
                    id_var, self._positive_body_vars(body), "minus"
                )
            )
        program.add_rule(
            Rule(
                self._head_atom(name, distinct, id_var, left.variables, graph_spec),
                tuple(body),
                label=name,
            )
        )
        return PatternInfo(name, left.variables, set(left.nullable))

    def _translate_filter(
        self,
        node: Filter,
        distinct: bool,
        graph_spec: DatalogTerm,
        program: Program,
    ) -> PatternInfo:
        inner = self._translate_pattern(node.pattern, distinct, graph_spec, program)
        name = self._fresh_predicate()
        id_var, child_id = Var("Id"), Var("Id1")
        body: List = [self._pattern_atom(inner, child_id, distinct, graph_spec)]
        body.append(
            FilterCondition(
                node.condition,
                self._filter_variable_map(node.condition, set(inner.variables)),
            )
        )
        if not distinct:
            body.append(
                self._skolem.tuple_id_assignment(
                    id_var, self._positive_body_vars(body), "filter"
                )
            )
        program.add_rule(
            Rule(
                self._head_atom(name, distinct, id_var, inner.variables, graph_spec),
                tuple(body),
                label=name,
            )
        )
        return PatternInfo(name, inner.variables, set(inner.nullable))

    def _translate_graph(
        self,
        node: GraphGraphPattern,
        distinct: bool,
        graph_spec: DatalogTerm,
        program: Program,
    ) -> PatternInfo:
        name = self._fresh_predicate()
        id_var, child_id = Var("Id"), Var("Id1")
        if isinstance(node.graph, Variable):
            inner_graph: DatalogTerm = datalog_variable(node.graph)
            inner = self._translate_pattern(node.pattern, distinct, inner_graph, program)
            variables = tuple(
                sorted(set(inner.variables) | {node.graph}, key=lambda v: v.name)
            )
        else:
            inner_graph = Const(node.graph)
            inner = self._translate_pattern(node.pattern, distinct, inner_graph, program)
            variables = inner.variables
        body: List = [
            self._pattern_atom(inner, child_id, distinct, inner_graph),
            Atom(PRED_NAMED, (inner_graph,)),
        ]
        if not distinct:
            body.append(
                self._skolem.tuple_id_assignment(
                    id_var, self._positive_body_vars(body), "graph"
                )
            )
        program.add_rule(
            Rule(
                self._head_atom(name, distinct, id_var, variables, graph_spec),
                tuple(body),
                label=name,
            )
        )
        return PatternInfo(name, variables, set(inner.nullable))

    def _translate_empty(
        self, distinct: bool, graph_spec: DatalogTerm, program: Program
    ) -> PatternInfo:
        name = self._fresh_predicate()
        if isinstance(graph_spec, Const):
            if distinct:
                program.add_fact(Atom(name, (graph_spec,)))
            else:
                program.add_fact(Atom(name, (SET_ID, graph_spec)))
        else:
            id_var = Var("Id")
            body: List = [Atom(PRED_NAMED, (graph_spec,))]
            if not distinct:
                body.append(SkolemFunctionGenerator.set_semantics_assignment(id_var))
            program.add_rule(
                Rule(self._head_atom(name, distinct, id_var, (), graph_spec), tuple(body), label=name)
            )
        return PatternInfo(name, ())

    # ------------------------------------------------------------------
    # filters
    # ------------------------------------------------------------------
    @staticmethod
    def _filter_variable_map(
        condition: Expression, available: Set[Variable]
    ) -> Tuple[Tuple[Variable, Var], ...]:
        """Map the SPARQL variables of a filter to their Datalog carriers."""
        mapping: List[Tuple[Variable, Var]] = []
        for variable in sorted(condition.variables(), key=lambda v: v.name):
            if variable in available:
                mapping.append((variable, datalog_variable(variable)))
        return tuple(mapping)
