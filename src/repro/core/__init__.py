"""SparqLog core: translation of SPARQL 1.1 to Warded Datalog±.

The package implements the three translation methods of the paper
(Section 4):

* :mod:`repro.core.data_translation` — T_D, RDF dataset → Datalog facts;
* :mod:`repro.core.query_translation` — T_Q, SPARQL algebra → Datalog±
  rules (graph patterns, property paths, query forms, bag and set
  semantics, Skolem-generated tuple IDs);
* :mod:`repro.core.solution_translation` — T_S, Datalog± answers →
  SPARQL solution sequences (solution modifiers applied here, as in the
  paper's use of Vadalog ``@post`` directives).

:class:`repro.core.engine.SparqLogEngine` glues the three together with
the Datalog engine and adds ontological reasoning (:mod:`repro.core.ontology`).
"""

from repro.core.capabilities import FEATURE_TABLE, FeatureStatus, supported_features
from repro.core.data_translation import DataTranslator
from repro.core.engine import SparqLogEngine
from repro.core.ontology import Ontology, OntologyAxiom
from repro.core.query_translation import (
    QueryTranslator,
    TranslationResult,
    UnsupportedFeatureError,
)
from repro.core.skolem import SkolemFunctionGenerator
from repro.core.solution_translation import SolutionTranslator

__all__ = [
    "DataTranslator",
    "FEATURE_TABLE",
    "FeatureStatus",
    "Ontology",
    "OntologyAxiom",
    "QueryTranslator",
    "SkolemFunctionGenerator",
    "SolutionTranslator",
    "SparqLogEngine",
    "TranslationResult",
    "UnsupportedFeatureError",
    "supported_features",
]
