"""SPARQL feature coverage of SparqLog (Table 1 of the paper).

The registry records, for every SPARQL 1.1 feature the paper discusses,
its general feature group, the real-world usage figure reported by
Bonifati et al. (as cited in the paper) and whether this implementation
supports it.  The table-1 benchmark regenerates the paper's table from
this registry, and the query translator consults it to reject unsupported
features with a clear error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set


@dataclass(frozen=True)
class FeatureStatus:
    """One row of Table 1."""

    general_feature: str
    specific_feature: str
    usage: Optional[str]
    supported: bool


#: The rows of Table 1, in the paper's order.  ``usage`` is the
#: percentage string from Bonifati et al., "Basic Feature" or "Unknown".
FEATURE_TABLE: List[FeatureStatus] = [
    FeatureStatus("Terms", "IRIs, Literals, Blank nodes", "Basic Feature", True),
    FeatureStatus("Semantics", "Sets, Bags", "Basic Feature", True),
    FeatureStatus("Graph patterns", "Triple pattern", "Basic Feature", True),
    FeatureStatus("Graph patterns", "AND / JOIN", "28.25%", True),
    FeatureStatus("Graph patterns", "OPTIONAL", "16.21%", True),
    FeatureStatus("Graph patterns", "UNION", "18.63%", True),
    FeatureStatus("Graph patterns", "GROUP Graph Pattern", "< 1%", False),
    FeatureStatus("Filter constraints", "Equality / Inequality", "40.15%", True),
    FeatureStatus("Filter constraints", "Arithmetic Comparison", "40.15%", True),
    FeatureStatus("Filter constraints", "bound, isIRI, isBlank, isLiteral", "40.15%", True),
    FeatureStatus("Filter constraints", "Regex", "40.15%", True),
    FeatureStatus("Filter constraints", "AND, OR, NOT", "40.15%", True),
    FeatureStatus("Query forms", "SELECT", "87.97%", True),
    FeatureStatus("Query forms", "ASK", "4.97%", True),
    FeatureStatus("Query forms", "CONSTRUCT", "4.49%", False),
    FeatureStatus("Query forms", "DESCRIBE", "2.47%", False),
    FeatureStatus("Solution modifiers", "ORDER BY", "2.06%", True),
    FeatureStatus("Solution modifiers", "DISTINCT", "21.72%", True),
    FeatureStatus("Solution modifiers", "LIMIT", "17.00%", True),
    FeatureStatus("Solution modifiers", "OFFSET", "6.15%", True),
    FeatureStatus("RDF datasets", "GRAPH ?x { ... }", "2.71%", True),
    FeatureStatus("RDF datasets", "FROM (NAMED)", "Unknown", True),
    FeatureStatus("Negation", "MINUS", "1.36%", True),
    FeatureStatus("Negation", "FILTER NOT EXISTS", "1.65%", False),
    FeatureStatus("Property paths", "LinkPath (X exp Y)", "< 1%", True),
    FeatureStatus("Property paths", "InversePath (^exp)", "< 1%", True),
    FeatureStatus("Property paths", "SequencePath (exp1 / exp2)", "< 1%", True),
    FeatureStatus("Property paths", "AlternativePath (exp1 | exp2)", "< 1%", True),
    FeatureStatus("Property paths", "ZeroOrMorePath (exp*)", "< 1%", True),
    FeatureStatus("Property paths", "OneOrMorePath (exp+)", "< 1%", True),
    FeatureStatus("Property paths", "ZeroOrOnePath (expr?)", "< 1%", True),
    FeatureStatus("Property paths", "NegatedPropertySet (!expr)", "< 1%", True),
    FeatureStatus("Assignment", "BIND", "< 1%", False),
    FeatureStatus("Assignment", "VALUES", "< 1%", False),
    FeatureStatus("Aggregates", "GROUP BY", "< 1%", True),
    FeatureStatus("Aggregates", "HAVING", "< 1%", False),
    FeatureStatus("Sub-Queries", "Sub-Select Graph Pattern", "< 1%", False),
    FeatureStatus("Sub-Queries", "FILTER EXISTS", "< 1%", False),
    FeatureStatus("Filter functions", "Coalesce", "Unknown", True),
    FeatureStatus("Filter functions", "IN / NOT IN", "Unknown", True),
]


def supported_features() -> Set[str]:
    """Return the names of the specific features marked as supported."""
    return {row.specific_feature for row in FEATURE_TABLE if row.supported}


def feature_rows_by_group() -> Dict[str, List[FeatureStatus]]:
    """Group the table rows by general feature (for report rendering)."""
    grouped: Dict[str, List[FeatureStatus]] = {}
    for row in FEATURE_TABLE:
        grouped.setdefault(row.general_feature, []).append(row)
    return grouped
