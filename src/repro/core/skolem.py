"""Skolem function generation for the duplicate-preservation model.

Appendix C of the paper describes how SparqLog preserves SPARQL bag
semantics inside the set-semantics Datalog± engine: every rule that may
produce duplicates assigns a *tuple ID* to its head, computed by a Skolem
function over (a) a rule identifier and (b) the list of variables bound by
the positive body atoms.  Two derivations of the same tuple through
different groundings therefore receive different IDs and survive as
distinguishable duplicates, while the provenance stays inspectable.

The zero-or-one / zero-or-more / one-or-more property paths instead force
the ID to a fixed constant (the empty list in the paper, ``SET_ID`` here)
because the SPARQL standard mandates set semantics for them.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.datalog.rules import Assignment, SkolemExpr
from repro.datalog.terms import Const, Var

#: The constant tuple ID shared by all set-semantics derivations
#: (the ``Id = []`` literal of the paper).
SET_ID = Const("[]")


class SkolemFunctionGenerator:
    """Factory of tuple-ID assignments (``ID = ["f<rule>", vars..., label]``)."""

    def __init__(self) -> None:
        self._rule_counter = 0

    def next_rule_id(self) -> int:
        """Return a fresh rule identifier."""
        self._rule_counter += 1
        return self._rule_counter

    def tuple_id_assignment(
        self,
        id_variable: Var,
        body_variables: Iterable[Var],
        label: str = "",
    ) -> Assignment:
        """Build the assignment that computes a fresh tuple ID.

        ``body_variables`` should be the variables occurring in positive
        body atoms of the rule (the paper's ``bodyVars``); they are sorted
        by name so the ID is independent of atom order.
        """
        rule_id = self.next_rule_id()
        sorted_variables: List[Var] = sorted(set(body_variables), key=lambda v: v.name)
        functor = f"f{rule_id}" + (f":{label}" if label else "")
        return Assignment(id_variable, SkolemExpr(functor, tuple(sorted_variables)))

    @staticmethod
    def set_semantics_assignment(id_variable: Var) -> Assignment:
        """Force the tuple ID to the shared constant (set semantics)."""
        return Assignment(id_variable, SET_ID)
