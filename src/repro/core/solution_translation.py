"""Solution translation T_S: Datalog± answers → SPARQL solution sequences.

The Datalog engine returns the extension of the answer predicate as a set
of ground tuples.  The solution translation drops the tuple-ID column
(whose only purpose is duplicate preservation), maps the ``"null"``
constant back to an unbound variable, converts labelled nulls (Skolem
terms produced by existential ontology rules) to blank nodes, and applies
the solution modifiers recorded as ``@post`` directives: ORDER BY,
DISTINCT, LIMIT and OFFSET.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.core.query_translation import TranslationResult
from repro.datalog.terms import SkolemTerm
from repro.rdf.terms import BlankNode, Literal, Term as RdfTerm, Variable
from repro.sparql.algebra import AskQuery, OrderCondition, SelectQuery
from repro.sparql.evaluator import apply_order_by
from repro.sparql.solutions import Binding, SolutionSequence


class SolutionTranslator:
    """Convert Datalog answer relations into SPARQL results."""

    def translate(
        self,
        relations: Dict[str, Set[Tuple]],
        translation: TranslationResult,
    ) -> Union[SolutionSequence, bool]:
        """Translate the answer relation according to the query form."""
        rows = relations.get(translation.answer_predicate, set())
        if translation.form == "ASK":
            return self._translate_ask(rows)
        return self._translate_select(rows, translation)

    # ------------------------------------------------------------------
    # ASK
    # ------------------------------------------------------------------
    @staticmethod
    def _translate_ask(rows: Iterable[Tuple]) -> bool:
        for row in rows:
            value = row[0]
            if isinstance(value, Literal) and value.lexical == "true":
                return True
        return False

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------
    def _translate_select(
        self, rows: Iterable[Tuple], translation: TranslationResult
    ) -> SolutionSequence:
        query = translation.query
        assert isinstance(query, SelectQuery)
        offset = 1 if translation.has_id_column else 0
        variables = translation.answer_variables
        bindings: List[Binding] = []
        for row in rows:
            mapping: Dict[Variable, RdfTerm] = {}
            for position, variable in enumerate(variables):
                value = row[offset + position]
                term = self._to_rdf_term(value)
                if term is not None:
                    mapping[variable] = term
            bindings.append(Binding(mapping))

        if query.order_by:
            bindings = self._order(bindings, query.order_by)
        if query.distinct or query.reduced:
            seen = set()
            unique: List[Binding] = []
            for binding in bindings:
                if binding not in seen:
                    seen.add(binding)
                    unique.append(binding)
            bindings = unique
        if query.offset:
            bindings = bindings[query.offset:]
        if query.limit is not None:
            bindings = bindings[: query.limit]

        output_variables = query.projected_variables()
        return SolutionSequence(output_variables, bindings)

    @staticmethod
    def _to_rdf_term(value: object) -> Optional[RdfTerm]:
        """Convert a Datalog ground value back to an RDF term (or None)."""
        if isinstance(value, RdfTerm):
            return value
        if isinstance(value, SkolemTerm):
            # Labelled nulls from existential rules behave like blank nodes.
            return BlankNode(f"null{abs(hash(value)) % 10_000_000}")
        if value == "null" or value is None:
            return None
        if isinstance(value, str):
            return Literal(value)
        if isinstance(value, (int, float, bool)):
            return Literal.from_python(value)
        return None

    @staticmethod
    def _order(
        bindings: List[Binding], conditions: Sequence[OrderCondition]
    ) -> List[Binding]:
        """Sort the rows by the ORDER BY keys.

        Delegates to the reference evaluator's shared helper so both
        engines use the identical comparator (unbound / errored keys sort
        strictly first under ASC and strictly last under DESC, the
        reference-engine placement).
        """
        return apply_order_by(conditions, bindings)
