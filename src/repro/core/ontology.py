"""Ontological reasoning support (OWL 2 QL subset → Datalog± rules).

One of the requirements the paper sets (RQ3) is ontological reasoning:
SparqLog inherits it "for free" from the Datalog± substrate because
ontology axioms become additional rules over the ``triple`` predicate and
are evaluated together with the translated query.

The supported axiom vocabulary covers what the paper's ontology benchmark
uses (``rdfs:subClassOf``, ``rdfs:subPropertyOf``) plus domain, range and
existential ("every instance of C has an R-successor of type D") axioms so
that the Warded Datalog± machinery — labelled nulls via Skolem terms — is
actually exercised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.core.data_translation import PRED_TRIPLE
from repro.datalog.rules import Atom, Program, Rule
from repro.datalog.terms import Const, Var
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, RDF, RDFS


@dataclass(frozen=True)
class OntologyAxiom:
    """A single ontology axiom.

    ``kind`` is one of ``subClassOf``, ``subPropertyOf``, ``domain``,
    ``range`` and ``existential``.  For ``existential`` axioms the meaning
    is: every instance of ``subject`` has a ``via`` successor that is an
    instance of ``object`` (the successor is a fresh labelled null).
    """

    kind: str
    subject: IRI
    object: IRI
    via: Optional[IRI] = None


class Ontology:
    """A set of ontology axioms translatable to Datalog± rules."""

    def __init__(self, axioms: Optional[Iterable[OntologyAxiom]] = None) -> None:
        self.axioms: List[OntologyAxiom] = list(axioms or [])

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def add_subclass(self, subclass: IRI, superclass: IRI) -> None:
        self.axioms.append(OntologyAxiom("subClassOf", subclass, superclass))

    def add_subproperty(self, subproperty: IRI, superproperty: IRI) -> None:
        self.axioms.append(OntologyAxiom("subPropertyOf", subproperty, superproperty))

    def add_domain(self, property_iri: IRI, class_iri: IRI) -> None:
        self.axioms.append(OntologyAxiom("domain", property_iri, class_iri))

    def add_range(self, property_iri: IRI, class_iri: IRI) -> None:
        self.axioms.append(OntologyAxiom("range", property_iri, class_iri))

    def add_existential(self, class_iri: IRI, property_iri: IRI, target_class: IRI) -> None:
        self.axioms.append(
            OntologyAxiom("existential", class_iri, target_class, via=property_iri)
        )

    def __len__(self) -> int:
        return len(self.axioms)

    def __repr__(self) -> str:
        return f"Ontology({len(self.axioms)} axioms)"

    @staticmethod
    def from_graph(graph: Graph) -> "Ontology":
        """Extract subclass / subproperty / domain / range axioms from RDF."""
        ontology = Ontology()
        for triple in graph.triples(None, RDFS.subClassOf, None):
            if isinstance(triple.subject, IRI) and isinstance(triple.object, IRI):
                ontology.add_subclass(triple.subject, triple.object)
        for triple in graph.triples(None, RDFS.subPropertyOf, None):
            if isinstance(triple.subject, IRI) and isinstance(triple.object, IRI):
                ontology.add_subproperty(triple.subject, triple.object)
        for triple in graph.triples(None, RDFS.domain, None):
            if isinstance(triple.subject, IRI) and isinstance(triple.object, IRI):
                ontology.add_domain(triple.subject, triple.object)
        for triple in graph.triples(None, RDFS.range, None):
            if isinstance(triple.subject, IRI) and isinstance(triple.object, IRI):
                ontology.add_range(triple.subject, triple.object)
        return ontology

    # ------------------------------------------------------------------
    # translation
    # ------------------------------------------------------------------
    def to_rules(self) -> Program:
        """Translate the axioms to Datalog± rules over ``triple``."""
        program = Program()
        rdf_type = Const(RDF.type)
        for index, axiom in enumerate(self.axioms):
            x, y, z, d = Var("X"), Var("Y"), Var("Z"), Var("D")
            label = f"ontology{index}:{axiom.kind}"
            if axiom.kind == "subClassOf":
                head = Atom(PRED_TRIPLE, (x, rdf_type, Const(axiom.object), d))
                body = (Atom(PRED_TRIPLE, (x, rdf_type, Const(axiom.subject), d)),)
                program.add_rule(Rule(head, body, label=label))
            elif axiom.kind == "subPropertyOf":
                head = Atom(PRED_TRIPLE, (x, Const(axiom.object), y, d))
                body = (Atom(PRED_TRIPLE, (x, Const(axiom.subject), y, d)),)
                program.add_rule(Rule(head, body, label=label))
            elif axiom.kind == "domain":
                head = Atom(PRED_TRIPLE, (x, rdf_type, Const(axiom.object), d))
                body = (Atom(PRED_TRIPLE, (x, Const(axiom.subject), y, d)),)
                program.add_rule(Rule(head, body, label=label))
            elif axiom.kind == "range":
                head = Atom(PRED_TRIPLE, (y, rdf_type, Const(axiom.object), d))
                body = (Atom(PRED_TRIPLE, (x, Const(axiom.subject), y, d)),)
                program.add_rule(Rule(head, body, label=label))
            elif axiom.kind == "existential":
                # ∃Z triple(X, via, Z, D) :- triple(X, rdf:type, subject, D).
                # The fresh Z is a labelled null (a Skolem term over X).
                body = (Atom(PRED_TRIPLE, (x, rdf_type, Const(axiom.subject), d)),)
                head = Atom(PRED_TRIPLE, (x, Const(axiom.via), z, d))
                program.add_rule(
                    Rule(head, body, existential_variables=(z,), label=label)
                )
            else:
                raise ValueError(f"unknown ontology axiom kind {axiom.kind!r}")
        return program

    def materialize(self, graph: Graph, max_rounds: int = 32) -> Graph:
        """Forward-chain the non-existential axioms over a graph.

        This is the materialisation strategy of the Stardog-like baseline:
        the closure under subclass / subproperty / domain / range axioms is
        computed up front and the query is then answered over the enlarged
        graph.
        """
        result = graph.copy()
        for _ in range(max_rounds):
            additions = []
            for axiom in self.axioms:
                if axiom.kind == "subClassOf":
                    for triple in result.triples(None, RDF.type, axiom.subject):
                        candidate = (triple.subject, RDF.type, axiom.object)
                        additions.append(candidate)
                elif axiom.kind == "subPropertyOf":
                    for triple in result.triples(None, axiom.subject, None):
                        additions.append((triple.subject, axiom.object, triple.object))
                elif axiom.kind == "domain":
                    for triple in result.triples(None, axiom.subject, None):
                        additions.append((triple.subject, RDF.type, axiom.object))
                elif axiom.kind == "range":
                    for triple in result.triples(None, axiom.subject, None):
                        additions.append((triple.object, RDF.type, axiom.object))
            new_count = 0
            for subject, predicate, obj in additions:
                from repro.rdf.terms import Triple

                triple = Triple(subject, predicate, obj)
                if triple not in result:
                    result.add(triple)
                    new_count += 1
            if new_count == 0:
                break
        return result
