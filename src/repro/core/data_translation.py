"""Data translation T_D: RDF datasets → Datalog facts and auxiliary rules.

Following Appendix A.1 of the paper:

* every RDF term of the dataset yields a fact ``iri(t)``, ``literal(t)``
  or ``bnode(t)``, and the rules defining ``term`` union them;
* every triple ``(s, p, o)`` of a graph ``g`` yields a fact
  ``triple(s, p, o, g)`` where ``g`` is the constant ``"default"`` for the
  default graph or the graph IRI for named graphs, which additionally
  produce ``named(g)``;
* the compatibility predicate ``comp`` and the ``null`` marker used by the
  join/OPTIONAL translation (Definition A.2);
* the ``subjectOrObject`` predicate used by zero-length property paths
  (Definition A.17).  We keep the graph as an extra argument so that
  zero-length paths stay scoped to the active graph — a small refinement
  over the paper's single-argument definition that does not change results
  on single-graph datasets.
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.datalog.rules import Atom, Program, Rule
from repro.datalog.terms import Const, Var
from repro.rdf.graph import Dataset, Graph
from repro.rdf.terms import BlankNode, IRI, Literal, Term

#: The constant naming the default graph in ``triple`` facts.
DEFAULT_GRAPH = Const("default")

#: The constant standing for an unbound value ("null" in the paper).
NULL = Const("null")

# Predicate names used throughout the translation.
PRED_TRIPLE = "triple"
PRED_IRI = "iri"
PRED_LITERAL = "literal"
PRED_BNODE = "bnode"
PRED_TERM = "term"
PRED_NAMED = "named"
PRED_NULL = "null"
PRED_COMP = "comp"
PRED_SUBJECT_OR_OBJECT = "subjectOrObject"


class DataTranslator:
    """Translate an RDF dataset into the Datalog fact base."""

    def translate(self, dataset: Dataset) -> Program:
        """Return the program containing the facts and auxiliary rules."""
        program = Program()
        self._add_auxiliary_rules(program)
        terms: Set[Term] = set()
        self._translate_graph(program, dataset.default_graph, DEFAULT_GRAPH, terms)
        for name, graph in dataset.named_graphs.items():
            graph_constant = Const(name)
            program.add_fact(Atom(PRED_NAMED, (graph_constant,)))
            self._translate_graph(program, graph, graph_constant, terms)
        for term in terms:
            program.add_fact(Atom(self._term_predicate(term), (Const(term),)))
        return program

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _term_predicate(term: Term) -> str:
        if isinstance(term, IRI):
            return PRED_IRI
        if isinstance(term, Literal):
            return PRED_LITERAL
        if isinstance(term, BlankNode):
            return PRED_BNODE
        raise TypeError(f"not an RDF term: {term!r}")

    def _translate_graph(
        self,
        program: Program,
        graph: Graph,
        graph_constant: Const,
        terms: Set[Term],
    ) -> None:
        for triple in graph:
            program.add_fact(
                Atom(
                    PRED_TRIPLE,
                    (
                        Const(triple.subject),
                        Const(triple.predicate),
                        Const(triple.object),
                        graph_constant,
                    ),
                )
            )
            terms.update(triple)

    def _add_auxiliary_rules(self, program: Program) -> None:
        x, y, z, p, d = Var("X"), Var("Y"), Var("Z"), Var("P"), Var("D")

        # term(X) :- iri(X) | literal(X) | bnode(X).
        for source in (PRED_IRI, PRED_LITERAL, PRED_BNODE):
            program.add_rule(
                Rule(Atom(PRED_TERM, (x,)), (Atom(source, (x,)),), label=f"term-{source}")
            )

        # null("null").
        program.add_fact(Atom(PRED_NULL, (NULL,)))

        # Compatibility of two values (Definition A.2).
        program.add_rule(
            Rule(Atom(PRED_COMP, (x, x, x)), (Atom(PRED_TERM, (x,)),), label="comp-eq")
        )
        program.add_rule(
            Rule(
                Atom(PRED_COMP, (x, z, x)),
                (Atom(PRED_TERM, (x,)), Atom(PRED_NULL, (z,))),
                label="comp-right-null",
            )
        )
        program.add_rule(
            Rule(
                Atom(PRED_COMP, (z, x, x)),
                (Atom(PRED_TERM, (x,)), Atom(PRED_NULL, (z,))),
                label="comp-left-null",
            )
        )
        program.add_rule(
            Rule(Atom(PRED_COMP, (z, z, z)), (Atom(PRED_NULL, (z,)),), label="comp-null")
        )

        # subjectOrObject(X, D): terms usable as zero-length path endpoints.
        program.add_rule(
            Rule(
                Atom(PRED_SUBJECT_OR_OBJECT, (x, d)),
                (Atom(PRED_TRIPLE, (x, p, y, d)),),
                label="subjectOrObject-subject",
            )
        )
        program.add_rule(
            Rule(
                Atom(PRED_SUBJECT_OR_OBJECT, (y, d)),
                (Atom(PRED_TRIPLE, (x, p, y, d)),),
                label="subjectOrObject-object",
            )
        )
