"""Unified engine/session facade.

Historically the public surface was a loose collection of pieces — build
a graph, wrap it in a :class:`~repro.rdf.graph.Dataset`, construct a
:class:`~repro.sparql.evaluator.SparqlEvaluator` with the right knobs,
parse queries yourself.  :func:`create_engine` assembles all of it into
one :class:`Engine` handle:

* ``engine.query(...)`` — parse + evaluate (SELECT → solution sequence,
  ASK → bool),
* ``engine.materialize(...)`` — a live :class:`~repro.ivm.views.MaterializedView`
  maintained through change capture (see :mod:`repro.ivm`),
* ``engine.explain(...)`` / ``engine.explain_analyze(...)`` — plan
  inspection,
* ``engine.metrics()`` — the evaluator's metric snapshot (plan caches,
  WCOJ fallbacks, IVM counters),
* ``engine.close()`` — detaches every live view; the engine is a context
  manager.

Execution is configured with an
:class:`~repro.sparql.profile.ExecutionProfile` (presets ``FULL``,
``ID_NATIVE``, ``BASELINE``) instead of the deprecated boolean knobs.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.rdf.graph import Dataset, Graph
from repro.sparql.algebra import Query
from repro.sparql.evaluator import ExplainAnalyzeReport, SparqlEvaluator
from repro.sparql.parser import parse_query
from repro.sparql.profile import ExecutionProfile
from repro.sparql.solutions import SolutionSequence
from repro.ivm.views import MaterializedView, ViewRegistry
from repro.obs.tracer import Tracer


class Engine:
    """One session over a dataset: evaluator, plan caches, live views."""

    def __init__(
        self,
        dataset: Dataset,
        profile: Optional[ExecutionProfile] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.dataset = dataset
        self.evaluator = SparqlEvaluator(dataset, profile=profile, tracer=tracer)
        self.views = ViewRegistry(self.evaluator, tracer)
        self._closed = False

    # -- introspection -------------------------------------------------
    @property
    def graph(self):
        """The dataset's default graph (what views watch by default)."""
        return self.dataset.default_graph

    @property
    def profile(self) -> ExecutionProfile:
        return self.evaluator.profile

    @property
    def tracer(self) -> Optional[Tracer]:
        return self.evaluator.tracer

    def __repr__(self) -> str:
        return (
            f"Engine(profile={self.profile}, "
            f"graph={type(self.graph).__name__}({len(self.graph)} triples), "
            f"views={len(self.views.views)})"
        )

    # -- querying ------------------------------------------------------
    def query(self, query: Union[str, Query]) -> Union[SolutionSequence, bool]:
        """Parse (if needed) and evaluate a SPARQL query."""
        if isinstance(query, str):
            query = parse_query(query)
        return self.evaluator.evaluate(query)

    def explain(self, query: Union[str, Query]) -> str:
        """Render the physical plan the query would execute."""
        if isinstance(query, str):
            query = parse_query(query)
        return self.evaluator.explain(query)

    def explain_analyze(self, query: Union[str, Query]) -> ExplainAnalyzeReport:
        """Execute the query and render the plan with measured counters."""
        return self.evaluator.explain_analyze(query)

    def metrics(self):
        """Snapshot every engine metric (plan caches, IVM, store)."""
        return self.evaluator.metrics()

    # -- live views ----------------------------------------------------
    def materialize(
        self, query: Union[str, Query], graph=None
    ) -> MaterializedView:
        """Materialize a SELECT query as a continuously-maintained view.

        The view stays consistent with every mutation of the watched
        graph (``graph`` defaults to the engine's default graph) —
        differentiated plans update in O(|change|), other shapes fall
        back to scoped re-evaluation.  See :mod:`repro.ivm.views`.
        """
        if self._closed:
            raise RuntimeError("engine is closed")
        return self.views.materialize(query, graph=graph)

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Close every live view and detach the change-capture listeners."""
        if not self._closed:
            self._closed = True
            self.views.close()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()


def create_engine(
    data=None,
    profile: Optional[ExecutionProfile] = None,
    tracer: Optional[Tracer] = None,
) -> Engine:
    """Build an :class:`Engine` over a graph or dataset.

    ``data`` may be a graph of either backend (it becomes the default
    graph), a full :class:`~repro.rdf.graph.Dataset`, or ``None`` for an
    empty dataset.  ``profile`` selects the execution configuration
    (default :attr:`ExecutionProfile.FULL
    <repro.sparql.profile.ExecutionProfile.FULL>`); ``tracer`` attaches
    phase/operator tracing to everything the engine runs.
    """
    if data is None:
        dataset = Dataset()
    elif isinstance(data, Dataset):
        dataset = data
    elif isinstance(data, Graph) or hasattr(data, "triples"):
        dataset = Dataset.from_graph(data)
    else:
        raise TypeError(
            f"cannot build an engine over {type(data).__name__}; "
            "pass a Graph, EncodedGraph or Dataset"
        )
    return Engine(dataset, profile=profile, tracer=tracer)
