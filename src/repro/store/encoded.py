"""Dictionary-encoded triple store implementing the full ``Graph`` surface.

:class:`EncodedGraph` is a drop-in replacement for
:class:`repro.rdf.graph.Graph`: the SPARQL evaluator, the BGP planner and
the Datalog translation run unchanged on top of it.  Internally every term
is interned to an integer id by a :class:`~repro.store.dictionary.TermDictionary`
and the three pattern-matching indexes (SPO / POS / OSP) are nested dicts
over those ids, so the per-triple footprint is a few machine words instead
of boxed ``Term`` / ``Triple`` objects.  Terms are decoded lazily at the
API boundary — ``triples()`` yields ordinary :class:`Triple` values.

Index representation
--------------------
The innermost level of each index is a *hybrid* entry: a bare ``int`` id
while the fan-out is exactly one (by far the common case in RDF data) that
is upgraded to a ``set`` of ids on the second element.  This halves the
resident size of the store compared to always-``set`` inner levels —
a singleton Python set costs >200 bytes.

The same exact, incrementally-maintained statistics as the seed graph are
kept (per-position occurrence counts, per-predicate distinct subjects), so
:meth:`pattern_cardinality` stays O(1) and the cost-based planner works
identically on both backends.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.rdf.terms import Term, Triple, Variable
from repro.store.dictionary import TermDictionary

#: A change-capture batch, mirroring :data:`repro.rdf.graph.DeltaBatch`:
#: ``(triple, ±1)`` pairs describing effective insert/delete transitions.
DeltaBatch = Sequence[Tuple[Triple, int]]

#: A hybrid innermost index entry: one id, or a set of ids.
Entry = Union[int, Set[int]]
#: A two-level id index: first component -> second component -> Entry.
IdIndex = Dict[int, Dict[int, Entry]]

#: Shared empty inner level for miss-free two-level probes.
_EMPTY: Dict[int, Entry] = {}


# ----------------------------------------------------------------------
# hybrid entry helpers
# ----------------------------------------------------------------------
def _entry_add(inner: Dict[int, Entry], key: int, value: int) -> bool:
    """Add ``value`` under ``key``; return True when it was not present."""
    current = inner.get(key)
    if current is None:
        inner[key] = value
        return True
    if type(current) is set:
        if value in current:
            return False
        current.add(value)
        return True
    if current == value:
        return False
    inner[key] = {current, value}
    return True


def _entry_discard(inner: Dict[int, Entry], key: int, value: int) -> None:
    """Remove ``value`` from ``inner[key]``, pruning emptied entries."""
    current = inner.get(key)
    if current is None:
        return
    if type(current) is set:
        current.discard(value)
        if len(current) == 1:
            inner[key] = next(iter(current))
        elif not current:
            del inner[key]
    elif current == value:
        del inner[key]


def _entry_contains(entry: Optional[Entry], value: int) -> bool:
    if entry is None:
        return False
    if type(entry) is set:
        return value in entry
    return entry == value


def _entry_len(entry: Optional[Entry]) -> int:
    if entry is None:
        return 0
    if type(entry) is set:
        return len(entry)
    return 1


def _entry_iter(entry: Entry) -> Iterator[int]:
    if type(entry) is set:
        return iter(entry)
    return iter((entry,))


class StoreCounters:
    """Optional store-level observability counters.

    Created by :meth:`EncodedGraph.enable_counters`; until then the store
    pays nothing for them.  Plain ints, incremented in place — the
    metrics registry reads them through callbacks at collection time
    (:func:`repro.obs.metrics.bind_store_metrics`).
    """

    __slots__ = ("index_probes", "sorted_run_builds", "sorted_run_invalidations")

    def __init__(self) -> None:
        #: match_triple_ids calls (one per index probe of the id executor).
        self.index_probes = 0
        #: Sorted id runs materialised for the leapfrog operator.
        self.sorted_run_builds = 0
        #: Sorted-run cache flushes forced by a version-stamp change.
        self.sorted_run_invalidations = 0


class EncodedGraph:
    """A set of RDF triples stored as dictionary-encoded integer ids.

    Implements the same collection protocol, pattern matching and
    statistics API as :class:`repro.rdf.graph.Graph`; see that class for
    the semantics of every method.
    """

    def __init__(
        self,
        triples: Optional[Iterable[Triple]] = None,
        dictionary: Optional[TermDictionary] = None,
    ) -> None:
        self._dict = dictionary if dictionary is not None else TermDictionary()
        self._spo: IdIndex = {}
        self._pos: IdIndex = {}
        self._osp: IdIndex = {}
        self._len = 0
        self._version = 0
        # Exact incremental statistics over ids, mirroring the seed graph's.
        self._subject_counts: Dict[int, int] = {}
        self._predicate_counts: Dict[int, int] = {}
        self._object_counts: Dict[int, int] = {}
        self._pred_subject_counts: Dict[int, Dict[int, int]] = {}
        # Sorted id runs for the leapfrog-triejoin operator, keyed by
        # (kind, ids...) and valid for exactly one version stamp; any
        # mutation invalidates the whole cache lazily on next access.
        self._sorted_runs: Dict[Tuple, List[int]] = {}
        self._sorted_runs_version = -1
        # Observability counters, absent until enable_counters(): the
        # sorted-run sites below guard on None, match_triple_ids counting
        # happens in an instance-attribute wrapper installed on demand.
        self._counters: Optional[StoreCounters] = None
        # Change-capture listeners (see Graph._delta_listeners): notified
        # with decoded (triple, ±1) batches after every effective
        # mutation, including the stats-deferred bulk-load inserts, so a
        # materialized view can never miss a loader path.  copy() clones
        # start with no listeners.
        self._delta_listeners: List[Callable[[DeltaBatch], None]] = []
        if triples:
            for triple in triples:
                self.add(triple)

    @property
    def dictionary(self) -> TermDictionary:
        """The term dictionary backing this graph (shared by copies)."""
        return self._dict

    def enable_counters(self) -> StoreCounters:
        """Switch on store-level counters (idempotent) and return them.

        A disabled store pays nothing: the counting wrapper over
        :meth:`match_triple_ids` is installed here as an instance
        attribute (shadowing the class method — generator construction
        defers the body, so the call-time increment is all the wrapper
        adds), and the sorted-run sites are a ``None``-checked ``+=``.
        Counters are per instance; ``copy()`` clones start disabled.
        """
        if self._counters is None:
            counters = self._counters = StoreCounters()
            unwrapped = type(self).match_triple_ids

            def counting_match_triple_ids(
                sid: Optional[int] = None,
                pid: Optional[int] = None,
                oid: Optional[int] = None,
            ) -> Iterator[Tuple[int, int, int]]:
                counters.index_probes += 1
                return unwrapped(self, sid, pid, oid)

            self.match_triple_ids = counting_match_triple_ids
        return self._counters

    @property
    def version(self) -> int:
        """Monotonically increasing mutation stamp (see ``Graph.version``)."""
        return self._version

    # ------------------------------------------------------------------
    # change capture
    # ------------------------------------------------------------------
    def add_change_listener(self, listener: Callable[[DeltaBatch], None]) -> None:
        """Register ``listener`` for post-mutation ``(triple, ±1)`` batches.

        Fires on every effective mutation path — ``add`` / ``add_triple``
        / ``remove``, the streaming Turtle sink, and the bulk/snapshot
        loaders' direct ``_add_ids`` inserts (statistics deferral does not
        defer change capture).
        """
        if listener not in self._delta_listeners:
            self._delta_listeners.append(listener)

    def remove_change_listener(self, listener: Callable[[DeltaBatch], None]) -> None:
        """Unregister a change listener (missing listeners are ignored)."""
        try:
            self._delta_listeners.remove(listener)
        except ValueError:
            pass

    def _notify_delta(self, batch: DeltaBatch) -> None:
        for listener in list(self._delta_listeners):
            listener(batch)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, triple: Triple) -> None:
        """Add a ground triple to the graph (idempotent)."""
        if not triple.is_ground():
            raise ValueError(f"cannot add non-ground triple: {triple!r}")
        encode = self._dict.encode
        self._add_ids(
            encode(triple.subject), encode(triple.predicate), encode(triple.object)
        )

    def add_triple(self, subject: Term, predicate: Term, obj: Term) -> None:
        """Add a triple from its components without building a ``Triple``."""
        if (
            isinstance(subject, Variable)
            or isinstance(predicate, Variable)
            or isinstance(obj, Variable)
        ):
            raise ValueError(
                f"cannot add non-ground triple: ({subject!r} {predicate!r} {obj!r})"
            )
        encode = self._dict.encode
        self._add_ids(encode(subject), encode(predicate), encode(obj))

    def update(self, triples: Iterable[Triple]) -> None:
        """Add every triple from ``triples``."""
        for triple in triples:
            self.add(triple)

    def _add_ids(self, sid: int, pid: int, oid: int, stats: bool = True) -> bool:
        """Insert an id triple into the indexes; return True when new.

        With ``stats=False`` the incremental counters are left untouched —
        the bulk loader and snapshot loader use this and rebuild the
        statistics in one pass at the end (:meth:`_rebuild_statistics`).
        """
        by_predicate = self._spo.get(sid)
        if by_predicate is None:
            by_predicate = self._spo[sid] = {}
        if not _entry_add(by_predicate, pid, oid):
            return False
        by_object = self._pos.get(pid)
        if by_object is None:
            by_object = self._pos[pid] = {}
        _entry_add(by_object, oid, sid)
        by_subject = self._osp.get(oid)
        if by_subject is None:
            by_subject = self._osp[oid] = {}
        _entry_add(by_subject, sid, pid)
        self._len += 1
        if stats:
            self._subject_counts[sid] = self._subject_counts.get(sid, 0) + 1
            self._predicate_counts[pid] = self._predicate_counts.get(pid, 0) + 1
            self._object_counts[oid] = self._object_counts.get(oid, 0) + 1
            per_subject = self._pred_subject_counts.get(pid)
            if per_subject is None:
                per_subject = self._pred_subject_counts[pid] = {}
            per_subject[sid] = per_subject.get(sid, 0) + 1
            self._version += 1
        if self._delta_listeners:
            decode = self._dict.term
            self._notify_delta(
                ((Triple(decode(sid), decode(pid), decode(oid)), 1),)
            )
        return True

    def _bulk_insert_ids(self, ids) -> None:
        """Insert a flat ``[s, p, o, s, p, o, ...]`` id stream (no stats).

        The snapshot loader's hot path: one tight loop with the three
        index roots and the entry-add helper hoisted to locals, instead
        of a :meth:`_add_ids` call per triple.  Statistics are rebuilt
        by the caller (:meth:`_rebuild_statistics`); duplicates collapse
        exactly as in :meth:`_add_ids` (the caller detects them through
        ``len(self)``).  Never notifies change listeners — it only runs
        on freshly constructed graphs that cannot have any.
        """
        spo, pos, osp = self._spo, self._pos, self._osp
        entry_add = _entry_add
        added = 0
        stream = iter(ids)
        for sid, pid, oid in zip(stream, stream, stream):
            by_predicate = spo.get(sid)
            if by_predicate is None:
                by_predicate = spo[sid] = {}
            if not entry_add(by_predicate, pid, oid):
                continue
            by_object = pos.get(pid)
            if by_object is None:
                by_object = pos[pid] = {}
            entry_add(by_object, oid, sid)
            by_subject = osp.get(oid)
            if by_subject is None:
                by_subject = osp[oid] = {}
            entry_add(by_subject, sid, pid)
            added += 1
        self._len += added

    def _rebuild_statistics(self) -> None:
        """Recompute every counter from the indexes (post bulk/snapshot load)."""
        subject_counts: Dict[int, int] = {}
        pred_subject_counts: Dict[int, Dict[int, int]] = {}
        for sid, by_predicate in self._spo.items():
            total = 0
            for pid, entry in by_predicate.items():
                fan = _entry_len(entry)
                total += fan
                per_subject = pred_subject_counts.get(pid)
                if per_subject is None:
                    per_subject = pred_subject_counts[pid] = {}
                per_subject[sid] = fan
            subject_counts[sid] = total
        self._subject_counts = subject_counts
        self._pred_subject_counts = pred_subject_counts
        self._predicate_counts = {
            pid: sum(_entry_len(entry) for entry in by_object.values())
            for pid, by_object in self._pos.items()
        }
        self._object_counts = {
            oid: sum(_entry_len(entry) for entry in by_subject.values())
            for oid, by_subject in self._osp.items()
        }

    def remove(self, triple: Triple) -> None:
        """Remove a triple; missing triples are ignored."""
        lookup = self._dict.id_for
        sid = lookup(triple.subject)
        pid = lookup(triple.predicate)
        oid = lookup(triple.object)
        if sid is None or pid is None or oid is None:
            return
        by_predicate = self._spo.get(sid)
        if by_predicate is None or not _entry_contains(by_predicate.get(pid), oid):
            return
        _entry_discard(by_predicate, pid, oid)
        if not by_predicate:
            del self._spo[sid]
        by_object = self._pos[pid]
        _entry_discard(by_object, oid, sid)
        if not by_object:
            del self._pos[pid]
        by_subject = self._osp[oid]
        _entry_discard(by_subject, sid, pid)
        if not by_subject:
            del self._osp[oid]
        self._len -= 1
        self._version += 1
        self._decrement(self._subject_counts, sid)
        self._decrement(self._predicate_counts, pid)
        self._decrement(self._object_counts, oid)
        per_subject = self._pred_subject_counts.get(pid)
        if per_subject is not None:
            self._decrement(per_subject, sid)
            if not per_subject:
                del self._pred_subject_counts[pid]
        if self._delta_listeners:
            decode = self._dict.term
            self._notify_delta(
                ((Triple(decode(sid), decode(pid), decode(oid)), -1),)
            )

    @staticmethod
    def _decrement(counts: Dict[int, int], key: int) -> None:
        remaining = counts.get(key, 0) - 1
        if remaining <= 0:
            counts.pop(key, None)
        else:
            counts[key] = remaining

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._len

    def __iter__(self) -> Iterator[Triple]:
        decode = self._dict.term
        for sid, by_predicate in self._spo.items():
            subject = decode(sid)
            for pid, entry in by_predicate.items():
                predicate = decode(pid)
                for oid in _entry_iter(entry):
                    yield Triple(subject, predicate, decode(oid))

    def __contains__(self, triple: Triple) -> bool:
        lookup = self._dict.id_for
        sid = lookup(triple.subject)
        pid = lookup(triple.predicate)
        oid = lookup(triple.object)
        if sid is None or pid is None or oid is None:
            return False
        by_predicate = self._spo.get(sid)
        return by_predicate is not None and _entry_contains(by_predicate.get(pid), oid)

    def __repr__(self) -> str:
        return f"EncodedGraph({self._len} triples, {len(self._dict)} dictionary terms)"

    def copy(self) -> "EncodedGraph":
        """Return a new graph with the same triples, sharing the dictionary."""
        clone = EncodedGraph(dictionary=self._dict)
        clone._spo = self._copy_index(self._spo)
        clone._pos = self._copy_index(self._pos)
        clone._osp = self._copy_index(self._osp)
        clone._len = self._len
        clone._subject_counts = dict(self._subject_counts)
        clone._predicate_counts = dict(self._predicate_counts)
        clone._object_counts = dict(self._object_counts)
        clone._pred_subject_counts = {
            pid: dict(per_subject)
            for pid, per_subject in self._pred_subject_counts.items()
        }
        return clone

    @staticmethod
    def _copy_index(index: IdIndex) -> IdIndex:
        return {
            first: {
                second: (set(entry) if type(entry) is set else entry)
                for second, entry in inner.items()
            }
            for first, inner in index.items()
        }

    # ------------------------------------------------------------------
    # pattern matching
    # ------------------------------------------------------------------
    def triples(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        obj: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Yield all triples matching the pattern (``None`` = wildcard).

        Delegates the per-shape index walk to :meth:`match_triple_ids`
        (the single copy of the SPO/POS/OSP dispatch) and decodes at the
        boundary; decoding is a memoised list lookup, and bound pattern
        components decode back to terms equal to the ones passed in.
        """
        lookup = self._dict.id_for
        sid = pid = oid = None
        if subject is not None:
            sid = lookup(subject)
            if sid is None:
                return
        if predicate is not None:
            pid = lookup(predicate)
            if pid is None:
                return
        if obj is not None:
            oid = lookup(obj)
            if oid is None:
                return
        decode = self._dict.term
        for matched_sid, matched_pid, matched_oid in self.match_triple_ids(
            sid, pid, oid
        ):
            yield Triple(decode(matched_sid), decode(matched_pid), decode(matched_oid))

    def subjects(self) -> Set[Term]:
        """Return the set of all subjects."""
        decode = self._dict.term
        return {decode(sid) for sid in self._spo}

    def predicates(self) -> Set[Term]:
        """Return the set of all predicates."""
        decode = self._dict.term
        return {decode(pid) for pid in self._pos}

    def objects(self) -> Set[Term]:
        """Return the set of all objects."""
        decode = self._dict.term
        return {decode(oid) for oid in self._osp}

    def terms(self) -> Set[Term]:
        """Return every term occurring anywhere in the graph."""
        decode = self._dict.term
        return {decode(tid) for tid in set(self._spo) | set(self._pos) | set(self._osp)}

    def nodes(self) -> Set[Term]:
        """Return every term occurring in subject or object position."""
        decode = self._dict.term
        return {decode(tid) for tid in set(self._spo) | set(self._osp)}

    # ------------------------------------------------------------------
    # statistics (incremental, exact)
    # ------------------------------------------------------------------
    def subject_cardinality(self, subject: Term) -> int:
        sid = self._dict.id_for(subject)
        return self._subject_counts.get(sid, 0) if sid is not None else 0

    def predicate_cardinality(self, predicate: Term) -> int:
        pid = self._dict.id_for(predicate)
        return self._predicate_counts.get(pid, 0) if pid is not None else 0

    def object_cardinality(self, obj: Term) -> int:
        oid = self._dict.id_for(obj)
        return self._object_counts.get(oid, 0) if oid is not None else 0

    def distinct_subjects(self, predicate: Optional[Term] = None) -> int:
        if predicate is None:
            return len(self._spo)
        pid = self._dict.id_for(predicate)
        if pid is None:
            return 0
        return len(self._pred_subject_counts.get(pid, ()))

    def distinct_predicates(self) -> int:
        return len(self._pos)

    def distinct_objects(self, predicate: Optional[Term] = None) -> int:
        if predicate is None:
            return len(self._osp)
        pid = self._dict.id_for(predicate)
        if pid is None:
            return 0
        return len(self._pos.get(pid, ()))

    def pattern_cardinality(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        obj: Optional[Term] = None,
    ) -> int:
        """Exact number of triples matching the pattern (``None`` = wildcard)."""
        lookup = self._dict.id_for
        sid = pid = oid = None
        if subject is not None:
            sid = lookup(subject)
            if sid is None:
                return 0
        if predicate is not None:
            pid = lookup(predicate)
            if pid is None:
                return 0
        if obj is not None:
            oid = lookup(obj)
            if oid is None:
                return 0
        return self.pattern_cardinality_ids(sid, pid, oid)

    def objects_for(self, subject: Term, predicate: Term) -> Set[Term]:
        """Return the set of objects for a fixed subject and predicate."""
        lookup = self._dict.id_for
        sid = lookup(subject)
        pid = lookup(predicate)
        if sid is None or pid is None:
            return set()
        entry = self._spo.get(sid, {}).get(pid)
        if entry is None:
            return set()
        decode = self._dict.term
        return {decode(oid) for oid in _entry_iter(entry)}

    def subjects_for(self, predicate: Term, obj: Term) -> Set[Term]:
        """Return the set of subjects for a fixed predicate and object."""
        lookup = self._dict.id_for
        pid = lookup(predicate)
        oid = lookup(obj)
        if pid is None or oid is None:
            return set()
        entry = self._pos.get(pid, {}).get(oid)
        if entry is None:
            return set()
        decode = self._dict.term
        return {decode(sid) for sid in _entry_iter(entry)}

    # ------------------------------------------------------------------
    # id-level pattern matching (used by the id-native BGP executor)
    # ------------------------------------------------------------------
    def match_triple_ids(
        self,
        sid: Optional[int] = None,
        pid: Optional[int] = None,
        oid: Optional[int] = None,
    ) -> Iterator[Tuple[int, int, int]]:
        """Yield matching triples as ``(sid, pid, oid)`` id tuples.

        The id-space counterpart of :meth:`triples`: ``None`` components
        are wildcards, the most selective index for the probe shape is
        used, and no term is ever decoded — this is the surface the
        id-native join pipeline (:mod:`repro.sparql.idexec`) runs on.
        """
        if sid is not None:
            if pid is not None:
                if oid is not None:  # S P O — membership probe
                    by_predicate = self._spo.get(sid)
                    if by_predicate is not None and _entry_contains(
                        by_predicate.get(pid), oid
                    ):
                        yield sid, pid, oid
                    return
                entry = self._spo.get(sid, {}).get(pid)  # S P ?
                if entry is not None:
                    for matched_oid in _entry_iter(entry):
                        yield sid, pid, matched_oid
                return
            if oid is not None:  # S ? O — probe OSP directly
                entry = self._osp.get(oid, {}).get(sid)
                if entry is not None:
                    for matched_pid in _entry_iter(entry):
                        yield sid, matched_pid, oid
                return
            by_predicate = self._spo.get(sid)  # S ? ?
            if by_predicate is not None:
                for matched_pid, entry in by_predicate.items():
                    for matched_oid in _entry_iter(entry):
                        yield sid, matched_pid, matched_oid
            return
        if pid is not None:
            by_object = self._pos.get(pid)
            if by_object is None:
                return
            if oid is not None:  # ? P O
                entry = by_object.get(oid)
                if entry is not None:
                    for matched_sid in _entry_iter(entry):
                        yield matched_sid, pid, oid
                return
            for matched_oid, entry in by_object.items():  # ? P ?
                for matched_sid in _entry_iter(entry):
                    yield matched_sid, pid, matched_oid
            return
        if oid is not None:  # ? ? O
            by_subject = self._osp.get(oid)
            if by_subject is not None:
                for matched_sid, entry in by_subject.items():
                    for matched_pid in _entry_iter(entry):
                        yield matched_sid, matched_pid, oid
            return
        yield from self.id_triples()  # ? ? ?

    def pattern_cardinality_ids(
        self,
        sid: Optional[int] = None,
        pid: Optional[int] = None,
        oid: Optional[int] = None,
    ) -> int:
        """Exact number of triples matching an id pattern (``None`` = wildcard)."""
        if sid is not None and pid is not None and oid is not None:
            by_predicate = self._spo.get(sid)
            if by_predicate is None:
                return 0
            return 1 if _entry_contains(by_predicate.get(pid), oid) else 0
        if sid is not None:
            if pid is not None:
                return _entry_len(self._spo.get(sid, {}).get(pid))
            if oid is not None:
                return _entry_len(self._osp.get(oid, {}).get(sid))
            return self._subject_counts.get(sid, 0)
        if pid is not None:
            if oid is not None:
                return _entry_len(self._pos.get(pid, {}).get(oid))
            return self._predicate_counts.get(pid, 0)
        if oid is not None:
            return self._object_counts.get(oid, 0)
        return self._len

    # ------------------------------------------------------------------
    # id-level navigation (used by the id-native path engine)
    # ------------------------------------------------------------------
    def node_ids(self) -> Set[int]:
        """Ids of every term in subject or object position (graph nodes)."""
        return set(self._spo) | set(self._osp)

    def predicate_ids(self) -> Iterator[int]:
        """Ids of every predicate with at least one triple."""
        return iter(self._pos)

    def objects_for_ids(self, sid: int, pid: int) -> Iterator[int]:
        """Yield object ids of triples ``(sid, pid, ?)`` — forward step."""
        entry = self._spo.get(sid, _EMPTY).get(pid)
        if entry is not None:
            return _entry_iter(entry)
        return iter(())

    def subjects_for_ids(self, pid: int, oid: int) -> Iterator[int]:
        """Yield subject ids of triples ``(?, pid, oid)`` — backward step."""
        entry = self._pos.get(pid, _EMPTY).get(oid)
        if entry is not None:
            return _entry_iter(entry)
        return iter(())

    def out_edges_ids(self, sid: int) -> Iterator[Tuple[int, int]]:
        """Yield ``(pid, oid)`` for every triple with subject ``sid``."""
        by_predicate = self._spo.get(sid)
        if by_predicate is not None:
            for pid, entry in by_predicate.items():
                for oid in _entry_iter(entry):
                    yield pid, oid

    def in_edges_ids(self, oid: int) -> Iterator[Tuple[int, int]]:
        """Yield ``(pid, sid)`` for every triple with object ``oid``."""
        by_subject = self._osp.get(oid)
        if by_subject is not None:
            for sid, entry in by_subject.items():
                for pid in _entry_iter(entry):
                    yield pid, sid

    def distinct_subjects_ids(self, pid: int) -> int:
        """Distinct subject count of a predicate id (O(1), no decode)."""
        return len(self._pred_subject_counts.get(pid, ()))

    def distinct_objects_ids(self, pid: int) -> int:
        """Distinct object count of a predicate id (O(1), no decode)."""
        return len(self._pos.get(pid, ()))

    # ------------------------------------------------------------------
    # sorted-run surface (used by the leapfrog-triejoin operator)
    # ------------------------------------------------------------------
    def _sorted_run(self, key: Tuple, source: Iterable[int]) -> List[int]:
        """Return (caching per version stamp) ``sorted(source)``.

        ``copy()`` clones never share this cache — each clone starts with
        the empty one from ``__init__`` — so runs can alias index
        internals without outliving a mutation.
        """
        counters = self._counters
        if self._sorted_runs_version != self._version:
            if counters is not None and self._sorted_runs:
                # Version sync on a still-empty cache is not an invalidation.
                counters.sorted_run_invalidations += 1
            self._sorted_runs.clear()
            self._sorted_runs_version = self._version
        run = self._sorted_runs.get(key)
        if run is None:
            if counters is not None:
                counters.sorted_run_builds += 1
            run = self._sorted_runs[key] = sorted(source)
        return run

    def sorted_subjects_for_predicate(self, pid: int) -> List[int]:
        """Sorted distinct subject ids of predicate ``pid`` (exact π_s)."""
        return self._sorted_run(("ps", pid), self._pred_subject_counts.get(pid, ()))

    def sorted_objects_for_predicate(self, pid: int) -> List[int]:
        """Sorted distinct object ids of predicate ``pid`` (exact π_o)."""
        return self._sorted_run(("po", pid), self._pos.get(pid, ()))

    def sorted_objects_for_subject_predicate(self, sid: int, pid: int) -> List[int]:
        """Sorted object ids of triples ``(sid, pid, ?)`` — forward run."""
        entry = self._spo.get(sid, _EMPTY).get(pid)
        if entry is None:
            return []
        if type(entry) is not set:
            return [entry]
        return self._sorted_run(("spo", sid, pid), entry)

    def sorted_subjects_for_predicate_object(self, pid: int, oid: int) -> List[int]:
        """Sorted subject ids of triples ``(?, pid, oid)`` — backward run."""
        entry = self._pos.get(pid, _EMPTY).get(oid)
        if entry is None:
            return []
        if type(entry) is not set:
            return [entry]
        return self._sorted_run(("pos", pid, oid), entry)

    # ------------------------------------------------------------------
    # id-level access (used by the bulk loader and snapshots)
    # ------------------------------------------------------------------
    def id_triples(self) -> Iterator[Tuple[int, int, int]]:
        """Yield every triple as an (sid, pid, oid) id tuple."""
        for sid, by_predicate in self._spo.items():
            for pid, entry in by_predicate.items():
                for oid in _entry_iter(entry):
                    yield sid, pid, oid
