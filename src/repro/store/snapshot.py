"""Binary snapshots of an :class:`EncodedGraph` for instant warm starts.

A snapshot persists the term dictionary and the id-encoded triples of a
graph in a compact struct/array-packed binary format.  Loading rebuilds
the SPO / POS / OSP indexes directly from integer ids — no text parsing,
no ``Term`` materialisation (decoding stays lazy) — so a large workload
graph restarts in a fraction of the original load time.

Format (all integers little-endian)::

    8 bytes   magic  b"RSPSNAP1"
    u32       number of dictionary entries
    per entry u8 kind tag, then
                kind 0 (IRI):      u32 length + utf-8 value
                kind 1 (bnode):    u32 length + utf-8 label
                kind 2 (literal):  u8 flags (1 = datatype, 2 = language),
                                   u32+utf-8 lexical,
                                   [u32+utf-8 datatype], [u32+utf-8 language]
    u64       number of triples
    u64 * 3n  flat (sid, pid, oid) id stream

The dictionary section preserves ids for *every* interned term, including
terms no longer used by any triple, so ids stay stable across a
save/load round trip.
"""

from __future__ import annotations

import os
import struct
import sys
from array import array
from typing import BinaryIO, Union

from repro.store.dictionary import (
    KIND_BLANK,
    KIND_IRI,
    KIND_LITERAL,
    TermDictionary,
    _KIND_MASK,
    _KIND_SHIFT,
    _literal_key,
)
from repro.store.encoded import EncodedGraph

MAGIC = b"RSPSNAP1"

_U8 = struct.Struct("<B")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

_FLAG_DATATYPE = 1
_FLAG_LANGUAGE = 2


class SnapshotError(ValueError):
    """Raised when a snapshot stream is malformed or truncated."""


def _write_string(buffer: bytearray, text: str) -> None:
    data = text.encode("utf-8")
    buffer += _U32.pack(len(data))
    buffer += data


def _dump_dictionary(dictionary: TermDictionary, buffer: bytearray) -> None:
    keys = dictionary._keys
    kinds = dictionary._kinds
    buffer += _U32.pack(len(keys))
    for key, kind in zip(keys, kinds):
        buffer += _U8.pack(kind)
        if kind == KIND_LITERAL:
            lexical, datatype_value, language = key
            flags = (_FLAG_DATATYPE if datatype_value is not None else 0) | (
                _FLAG_LANGUAGE if language is not None else 0
            )
            buffer += _U8.pack(flags)
            _write_string(buffer, lexical)
            if datatype_value is not None:
                _write_string(buffer, datatype_value)
            if language is not None:
                _write_string(buffer, language)
        else:
            _write_string(buffer, key)


#: Triples per chunk when streaming the id section of a snapshot.
_SNAPSHOT_CHUNK = 65536


def save_snapshot(
    graph: EncodedGraph, target: Union[str, os.PathLike, BinaryIO]
) -> int:
    """Serialise ``graph`` to ``target`` (path or binary stream).

    The id stream is written in bounded chunks so saving never
    materialises a second full-graph-sized buffer.  Returns the number of
    bytes written.
    """
    if not hasattr(target, "write"):
        with open(target, "wb") as handle:
            return save_snapshot(graph, handle)
    buffer = bytearray(MAGIC)
    _dump_dictionary(graph.dictionary, buffer)
    buffer += _U64.pack(len(graph))
    target.write(buffer)
    written = len(buffer)
    ids = array("q")
    if ids.itemsize != 8:  # pragma: no cover - 'q' is 8 bytes on CPython
        raise SnapshotError(f"unexpected id width {ids.itemsize}")

    def flush() -> int:
        if sys.byteorder == "big":  # pragma: no cover - little-endian hosts
            ids.byteswap()
        chunk = ids.tobytes()
        target.write(chunk)
        del ids[:]
        return len(chunk)

    for sid, pid, oid in graph.id_triples():
        ids.append(sid)
        ids.append(pid)
        ids.append(oid)
        if len(ids) >= 3 * _SNAPSHOT_CHUNK:
            written += flush()
    written += flush()
    return written


class _Reader:
    """Cursor over the snapshot byte stream with bounds checking."""

    __slots__ = ("data", "offset")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def take(self, count: int) -> bytes:
        end = self.offset + count
        if end > len(self.data):
            raise SnapshotError("truncated snapshot")
        chunk = self.data[self.offset:end]
        self.offset = end
        return chunk

    def u8(self) -> int:
        return _U8.unpack(self.take(1))[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def u64(self) -> int:
        return _U64.unpack(self.take(8))[0]

    def string(self) -> str:
        return self.take(self.u32()).decode("utf-8")


def _load_dictionary(reader: _Reader) -> TermDictionary:
    """Decode the term table into a fresh dictionary.

    This is roughly half of a warm start, so the loop works on the raw
    byte buffer with local offset arithmetic and fills the dictionary's
    internal tables directly — ids are assigned densely in stream order,
    exactly what the per-term ``encode_*`` calls would produce, without
    a :class:`_Reader` method call per field.
    """
    dictionary = TermDictionary()
    count = reader.u32()
    data = reader.data
    offset = reader.offset
    unpack_u32 = _U32.unpack_from
    keys = dictionary._keys
    kinds = dictionary._kinds
    cache = dictionary._cache
    iri_ids = dictionary._iri_ids
    bnode_ids = dictionary._bnode_ids
    literal_ids = dictionary._literal_ids
    try:
        for index in range(count):
            kind = data[offset]
            offset += 1
            if kind == KIND_IRI:
                (length,) = unpack_u32(data, offset)
                offset += 4
                key = data[offset:offset + length].decode("utf-8")
                offset += length
                iri_ids[key] = (index << _KIND_SHIFT) | KIND_IRI
            elif kind == KIND_BLANK:
                (length,) = unpack_u32(data, offset)
                offset += 4
                key = data[offset:offset + length].decode("utf-8")
                offset += length
                bnode_ids[key] = (index << _KIND_SHIFT) | KIND_BLANK
            elif kind == KIND_LITERAL:
                flags = data[offset]
                offset += 1
                (length,) = unpack_u32(data, offset)
                offset += 4
                lexical = data[offset:offset + length].decode("utf-8")
                offset += length
                datatype_value = None
                if flags & _FLAG_DATATYPE:
                    (length,) = unpack_u32(data, offset)
                    offset += 4
                    datatype_value = data[offset:offset + length].decode("utf-8")
                    offset += length
                language = None
                if flags & _FLAG_LANGUAGE:
                    (length,) = unpack_u32(data, offset)
                    offset += 4
                    language = data[offset:offset + length].decode("utf-8")
                    offset += length
                key = _literal_key(lexical, datatype_value, language)
                literal_ids[key] = (index << _KIND_SHIFT) | KIND_LITERAL
            else:
                raise SnapshotError(f"unknown term kind tag {kind}")
            keys.append(key)
            kinds.append(kind)
            cache.append(None)
    except (IndexError, struct.error):
        raise SnapshotError("truncated snapshot") from None
    # A slice past the buffer end silently truncates; the final cursor
    # position exposes it (field decoding above would also have tripped).
    if offset > len(data):
        raise SnapshotError("truncated snapshot")
    reader.offset = offset
    if len(iri_ids) + len(bnode_ids) + len(literal_ids) != count:
        raise SnapshotError("duplicate dictionary entries in snapshot")
    return dictionary


def load_snapshot(source: Union[str, os.PathLike, BinaryIO]) -> EncodedGraph:
    """Load a snapshot written by :func:`save_snapshot`."""
    if hasattr(source, "read"):
        data = source.read()
    else:
        with open(source, "rb") as handle:
            data = handle.read()
    reader = _Reader(data)
    if reader.take(len(MAGIC)) != MAGIC:
        raise SnapshotError("not a store snapshot (bad magic)")
    dictionary = _load_dictionary(reader)
    n_triples = reader.u64()
    ids = array("q")
    ids.frombytes(reader.take(n_triples * 3 * 8))
    if sys.byteorder == "big":  # pragma: no cover - little-endian on x86/arm
        ids.byteswap()
    if reader.offset != len(data):
        raise SnapshotError("trailing bytes after the id stream")
    if ids and not (
        0 <= min(ids) and max(ids) < len(dictionary) << _KIND_SHIFT
    ):
        raise SnapshotError("triple id outside dictionary range")
    kinds = dictionary._kinds
    for term_id in set(ids):
        if term_id & _KIND_MASK != kinds[term_id >> _KIND_SHIFT]:
            raise SnapshotError("triple id kind tag disagrees with dictionary")
    graph = EncodedGraph(dictionary=dictionary)
    graph._bulk_insert_ids(ids)
    if len(graph) != n_triples:
        raise SnapshotError("duplicate triple records in snapshot")
    graph._rebuild_statistics()
    if n_triples:
        # The freshly built graph differs from an empty one: stamp the
        # content change so version-keyed consumers (plan caches, the
        # materialized-view registry) never read a populated graph as
        # "version 0 == pristine".
        graph._version += 1
    return graph
