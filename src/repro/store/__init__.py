"""Dictionary-encoded storage subsystem.

The store package provides a second storage backend beneath the ``Graph``
API: terms are interned to integer ids (:mod:`repro.store.dictionary`) and
triples live in id-encoded SPO / POS / OSP indexes
(:mod:`repro.store.encoded`), cutting the per-triple footprint to a
fraction of the boxed-object seed graph.  A streaming bulk loader
(:mod:`repro.store.bulk`) ingests N-Triples / Turtle in one pass, and
binary snapshots (:mod:`repro.store.snapshot`) give instant warm starts.

Backend selection
-----------------
:func:`create_graph` builds a graph for a named backend:

* ``"hash"`` — the seed :class:`repro.rdf.graph.Graph` (boxed terms),
* ``"encoded"`` — :class:`EncodedGraph` (dictionary-encoded ids).

The workload generators and the experiment harness accept a ``backend=``
switch that is routed here; the ``REPRO_STORE_BACKEND`` environment
variable sets the default for a whole process.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional

from repro.rdf.graph import Graph
from repro.rdf.terms import Triple
from repro.store.bulk import bulk_load_ntriples, bulk_load_path, bulk_load_turtle
from repro.store.dictionary import TermDictionary
from repro.store.encoded import EncodedGraph
from repro.store.snapshot import SnapshotError, load_snapshot, save_snapshot

#: Registered graph backends, by name.
GRAPH_BACKENDS = {
    "hash": Graph,
    "encoded": EncodedGraph,
}

#: Environment variable naming the process-wide default backend.
BACKEND_ENV_VAR = "REPRO_STORE_BACKEND"

DEFAULT_BACKEND = "hash"


def default_backend() -> str:
    """Return the process-wide default backend name."""
    return os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND


def _infer_format(path, format: Optional[str]) -> str:
    if format is not None:
        return format
    suffix = os.path.splitext(os.fspath(path))[1].lower()
    if suffix in (".nt", ".ntriples"):
        return "ntriples"
    if suffix in (".ttl", ".turtle"):
        return "turtle"
    raise ValueError(f"cannot infer RDF format from {path!r}")


def open_graph(
    path=None,
    backend: Optional[str] = None,
    snapshot=None,
    format: Optional[str] = None,
):
    """One entry point for every way of opening a graph.

    * ``open_graph()`` — an empty graph of the default backend,
    * ``open_graph("data.nt")`` — load a file (format inferred from the
      extension, or forced with ``format=``); the encoded backend takes
      the streaming bulk-load path, the hash backend the seed parsers,
    * ``open_graph("data.nt", snapshot="data.snap")`` — warm start: load
      the binary snapshot when it exists, otherwise parse the source and
      write the snapshot for next time,
    * ``open_graph(snapshot="data.snap")`` — snapshot only (must exist
      unless you want an empty graph persisted there).

    ``snapshot=`` implies (and requires) the encoded backend; otherwise
    ``backend=None`` falls back to ``REPRO_STORE_BACKEND`` then ``"hash"``.
    """
    if snapshot is not None:
        if backend is None:
            backend = "encoded"
        elif backend != "encoded":
            raise ValueError(
                f"snapshots require the encoded backend, not {backend!r}"
            )
        if os.path.exists(snapshot):
            return load_snapshot(snapshot)
    if backend is None:
        backend = default_backend()
    if backend not in GRAPH_BACKENDS:
        raise ValueError(
            f"unknown graph backend {backend!r}; available: {sorted(GRAPH_BACKENDS)}"
        )
    if path is None:
        graph = create_graph(backend)
    elif backend == "encoded":
        graph = bulk_load_path(path, format=format)
    else:
        from repro.rdf.ntriples import parse_ntriples
        from repro.rdf.turtle import parse_turtle

        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        if _infer_format(path, format) == "ntriples":
            graph = parse_ntriples(text)
        else:
            graph = parse_turtle(text)
    if snapshot is not None:
        save_snapshot(graph, snapshot)
    return graph


def create_graph(
    backend: Optional[str] = None, triples: Optional[Iterable[Triple]] = None
):
    """Build an empty (or pre-filled) graph for the named backend.

    ``backend=None`` falls back to ``REPRO_STORE_BACKEND`` and then to
    ``"hash"``, so existing callers keep the seed behaviour untouched.
    """
    name = backend if backend is not None else default_backend()
    try:
        factory = GRAPH_BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown graph backend {name!r}; available: {sorted(GRAPH_BACKENDS)}"
        ) from None
    return factory(triples)


__all__ = [
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "EncodedGraph",
    "GRAPH_BACKENDS",
    "SnapshotError",
    "TermDictionary",
    "bulk_load_ntriples",
    "bulk_load_path",
    "bulk_load_turtle",
    "create_graph",
    "default_backend",
    "load_snapshot",
    "open_graph",
    "save_snapshot",
]
