"""Bidirectional Term <-> integer-id interning with per-kind tagging.

The dictionary is the heart of the encoded store: every distinct RDF term
is assigned a stable integer id on first sight, and the id-encoded
indexes of :class:`repro.store.encoded.EncodedGraph` join over those ids
instead of boxed :class:`~repro.rdf.terms.Term` objects.

Ids are tagged with the term kind in their two low bits
(``id & _KIND_MASK``), so kind checks — "is this id a literal?" — never
require decoding, and the id stream of a snapshot is self-describing.
The id sequence is append-only: ids are never reused, and a term keeps
its id for the lifetime of the dictionary even when every triple using
it has been removed.

Interning is keyed by the *structural* identity of a term (IRI value,
blank-node label, literal lexical/datatype/language), not by ``Term``
object identity, so the bulk loader can intern raw token strings without
materialising a ``Term`` per occurrence.  Decoding is lazy: the ``Term``
object for an id is only constructed on first request and memoised.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.rdf.terms import BlankNode, IRI, Literal, RDF_LANGSTRING, Term

#: Kind tags stored in the two low bits of every id.
KIND_IRI = 0
KIND_BLANK = 1
KIND_LITERAL = 2

_KIND_SHIFT = 2
_KIND_MASK = 0b11

#: Structural key of a literal: (lexical, datatype-IRI-value or None, language
#: or None).  A language-tagged literal's implied ``rdf:langString`` datatype
#: is canonicalised away so token-level and Term-level interning agree.
LiteralKey = Tuple[str, Optional[str], Optional[str]]


def _literal_key(
    lexical: str, datatype_value: Optional[str], language: Optional[str]
) -> LiteralKey:
    if language is not None and datatype_value == RDF_LANGSTRING.value:
        datatype_value = None
    return (lexical, datatype_value, language)


class DictionaryCounters:
    """Optional encode/decode counters (see ``TermDictionary.enable_counters``)."""

    __slots__ = ("encodes", "decodes")

    def __init__(self) -> None:
        #: Interning operations (term/token -> id), hits and fresh ids alike.
        self.encodes = 0
        #: Decode operations (id -> Term), memoised hits included.
        self.decodes = 0


class TermDictionary:
    """Append-only bidirectional mapping between terms and tagged int ids."""

    __slots__ = (
        "_iri_ids",
        "_bnode_ids",
        "_literal_ids",
        "_keys",
        "_kinds",
        "_cache",
        "_counters",
    )

    def __init__(self) -> None:
        self._iri_ids: Dict[str, int] = {}
        self._bnode_ids: Dict[str, int] = {}
        self._literal_ids: Dict[LiteralKey, int] = {}
        #: Per-id structural key (str for IRIs / blank nodes, LiteralKey tuple).
        self._keys: List[Union[str, LiteralKey]] = []
        self._kinds = bytearray()
        #: Per-id memoised Term; ``None`` until first decoded.
        self._cache: List[Optional[Term]] = []
        #: Observability counters; ``None`` (a bare identity check on the
        #: encode/decode paths) until enable_counters().
        self._counters: Optional[DictionaryCounters] = None

    def enable_counters(self) -> DictionaryCounters:
        """Switch on encode/decode counting (idempotent) and return it."""
        if self._counters is None:
            self._counters = DictionaryCounters()
        return self._counters

    # ------------------------------------------------------------------
    # interning (encode)
    # ------------------------------------------------------------------
    def _new_id(self, kind: int, key, term: Optional[Term]) -> int:
        term_id = (len(self._keys) << _KIND_SHIFT) | kind
        self._keys.append(key)
        self._kinds.append(kind)
        self._cache.append(term)
        return term_id

    def encode_iri(self, value: str) -> int:
        """Intern an IRI by its string value."""
        if self._counters is not None:
            self._counters.encodes += 1
        term_id = self._iri_ids.get(value)
        if term_id is None:
            term_id = self._iri_ids[value] = self._new_id(KIND_IRI, value, None)
        return term_id

    def encode_bnode(self, label: str) -> int:
        """Intern a blank node by its label."""
        if self._counters is not None:
            self._counters.encodes += 1
        term_id = self._bnode_ids.get(label)
        if term_id is None:
            term_id = self._bnode_ids[label] = self._new_id(KIND_BLANK, label, None)
        return term_id

    def encode_literal(
        self,
        lexical: str,
        datatype_value: Optional[str] = None,
        language: Optional[str] = None,
    ) -> int:
        """Intern a literal by its structural (lexical, datatype, language) key."""
        if self._counters is not None:
            self._counters.encodes += 1
        key = _literal_key(lexical, datatype_value, language)
        term_id = self._literal_ids.get(key)
        if term_id is None:
            term_id = self._literal_ids[key] = self._new_id(KIND_LITERAL, key, None)
        return term_id

    def encode(self, term: Term) -> int:
        """Intern a ``Term`` object, returning its (possibly new) id."""
        if self._counters is not None:
            self._counters.encodes += 1
        if isinstance(term, IRI):
            term_id = self._iri_ids.get(term.value)
            if term_id is None:
                term_id = self._iri_ids[term.value] = self._new_id(
                    KIND_IRI, term.value, term
                )
            return term_id
        if isinstance(term, Literal):
            key = _literal_key(
                term.lexical,
                term.datatype.value if term.datatype is not None else None,
                term.language,
            )
            term_id = self._literal_ids.get(key)
            if term_id is None:
                term_id = self._literal_ids[key] = self._new_id(
                    KIND_LITERAL, key, term
                )
            return term_id
        if isinstance(term, BlankNode):
            term_id = self._bnode_ids.get(term.label)
            if term_id is None:
                term_id = self._bnode_ids[term.label] = self._new_id(
                    KIND_BLANK, term.label, term
                )
            return term_id
        raise TypeError(f"cannot intern {term!r} as an RDF term")

    # ------------------------------------------------------------------
    # lookup without interning
    # ------------------------------------------------------------------
    def id_for(self, term: Term) -> Optional[int]:
        """Return the id of ``term`` or ``None`` when it was never interned."""
        if isinstance(term, IRI):
            return self._iri_ids.get(term.value)
        if isinstance(term, Literal):
            return self._literal_ids.get(
                _literal_key(
                    term.lexical,
                    term.datatype.value if term.datatype is not None else None,
                    term.language,
                )
            )
        if isinstance(term, BlankNode):
            return self._bnode_ids.get(term.label)
        return None

    def __contains__(self, term: Term) -> bool:
        return self.id_for(term) is not None

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def term(self, term_id: int) -> Term:
        """Decode an id back to its ``Term``, memoising the result."""
        if self._counters is not None:
            self._counters.decodes += 1
        index = term_id >> _KIND_SHIFT
        term = self._cache[index]
        if term is None:
            kind = self._kinds[index]
            key = self._keys[index]
            if kind == KIND_IRI:
                term = IRI(key)
            elif kind == KIND_BLANK:
                term = BlankNode(key)
            else:
                lexical, datatype_value, language = key
                datatype = IRI(datatype_value) if datatype_value is not None else None
                term = Literal(lexical, datatype, language)
            self._cache[index] = term
        return term

    @staticmethod
    def kind(term_id: int) -> int:
        """Return the kind tag (KIND_IRI / KIND_BLANK / KIND_LITERAL) of an id."""
        return term_id & _KIND_MASK

    @staticmethod
    def is_literal(term_id: int) -> bool:
        """True when the id denotes a literal — no decode needed.

        The id-native FILTER fast path uses this to decide whether two
        distinct ids may still be ``=``-equal (only literals compare by
        value; IRIs and blank nodes compare by identity).
        """
        return term_id & _KIND_MASK == KIND_LITERAL

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._keys)

    def ids(self) -> Iterator[int]:
        """Yield every assigned id in assignment order."""
        for index, kind in enumerate(self._kinds):
            yield (index << _KIND_SHIFT) | kind

    def items(self) -> Iterator[Tuple[int, Term]]:
        """Yield (id, term) pairs, decoding lazily."""
        for term_id in self.ids():
            yield term_id, self.term(term_id)

    def __repr__(self) -> str:
        return f"TermDictionary({len(self)} terms)"
