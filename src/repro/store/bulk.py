"""Streaming bulk loaders for the dictionary-encoded store.

The seed ingestion path (``parse_ntriples`` into a hash-indexed ``Graph``)
materialises three fresh ``Term`` objects and a ``Triple`` per input line
and updates four counters per insert.  The bulk loader here cuts all of
that out:

* one combined regular expression splits each N-Triples line into its
  three raw tokens,
* a token -> id cache interns each *distinct* token string directly into
  the :class:`~repro.store.dictionary.TermDictionary` — a ``Term`` object
  is only built on a cache miss, never per line,
* id triples are appended straight into the
  :class:`~repro.store.encoded.EncodedGraph` indexes with statistics
  maintenance deferred to a single pass at the end.

Turtle input is streamed through the existing tokenizing parser with the
encoded graph as the sink, so prefixed names and literals land in the
dictionary without an intermediate hash graph or per-statement ``Triple``.
"""

from __future__ import annotations

import io
import os
import re
from typing import Iterable, Iterator, Optional, Union

from repro.rdf.ntriples import (
    BNODE_TOKEN_PATTERN,
    IRI_TOKEN_PATTERN,
    LITERAL_TOKEN_PATTERN,
    _LITERAL_RE,
    _unescape,
    parse_statement,
)
from repro.store.encoded import EncodedGraph

#: Sources a bulk loader accepts: a document string, an open text file, or
#: any iterable of lines.
Source = Union[str, io.TextIOBase, Iterable[str]]

#: One N-Triples statement: subject / predicate / object tokens and the
#: terminating dot, with optional trailing comment.  Composed from the
#: token fragments shared with :mod:`repro.rdf.ntriples`, and the
#: predicate group only admits IRIs, so predicate validation comes free
#: with the match.
_STATEMENT_RE = re.compile(
    r"\s*"
    f"({IRI_TOKEN_PATTERN}|{BNODE_TOKEN_PATTERN})"
    r"\s+"
    f"({IRI_TOKEN_PATTERN})"
    r"\s+"
    f"({IRI_TOKEN_PATTERN}|{BNODE_TOKEN_PATTERN}|{LITERAL_TOKEN_PATTERN})"
    r"\s*\.\s*(?:#.*)?$"
)


def _iter_lines(source: Source) -> Iterator[str]:
    if isinstance(source, str):
        return iter(source.splitlines())
    return iter(source)


def _read_text(source: Source) -> str:
    if isinstance(source, str):
        return source
    if hasattr(source, "read"):
        return source.read()
    return "\n".join(source)


def bulk_load_ntriples(
    source: Source, graph: Optional[EncodedGraph] = None
) -> EncodedGraph:
    """Load an N-Triples document into an :class:`EncodedGraph` in one pass.

    ``source`` may be the document text, an open text file, or an iterable
    of lines.  Accepts exactly the dialect of
    :func:`repro.rdf.ntriples.iter_ntriples` (strict term syntax, ``#``
    comment lines, tolerant surrounding whitespace) and raises
    :class:`NTriplesParseError` with the offending line number otherwise.
    """
    if graph is None:
        graph = EncodedGraph()
    dictionary = graph.dictionary
    encode_iri = dictionary.encode_iri
    encode_bnode = dictionary.encode_bnode
    encode_literal = dictionary.encode_literal
    add_ids = graph._add_ids
    match_statement = _STATEMENT_RE.match
    token_ids = {}
    # Fresh target: defer statistics to one rebuild pass at the end.
    # Pre-populated target: maintain them incrementally, so chunked loads
    # into one graph do not pay an O(whole-graph) rebuild per chunk.
    incremental = len(graph) > 0

    def encode_token(token: str) -> int:
        head = token[0]
        if head == "<":
            term_id = encode_iri(token[1:-1])
        elif head == "_":
            term_id = encode_bnode(token[2:])
        else:
            literal_match = _LITERAL_RE.match(token)
            lexical = literal_match.group(1)
            if "\\" in lexical:
                lexical = _unescape(lexical)
            datatype = literal_match.group(3)
            term_id = encode_literal(lexical, datatype, literal_match.group(2))
        token_ids[token] = term_id
        return term_id

    mutated = False

    def load_strict(line: str, line_number: int) -> bool:
        """Load one line through the strict per-term parser (seed dialect)."""
        encode = dictionary.encode
        subject, predicate, obj = parse_statement(line, line_number)
        return add_ids(
            encode(subject), encode(predicate), encode(obj), stats=incremental
        )

    try:
        for line_number, line in enumerate(_iter_lines(source), start=1):
            if not line or line.isspace():
                continue
            statement = match_statement(line)
            if statement is None:
                stripped = line.lstrip()
                if stripped.startswith("#"):
                    continue
                # The strict parser accepts a few shapes the fast regex
                # rejects (e.g. trailing text after the dot) and fails
                # with the seed path's diagnostics.
                mutated |= load_strict(line, line_number)
                continue
            subject_token, predicate_token, object_token = statement.groups()
            if object_token[0] == "_" and line[statement.end(3)] == ".":
                # A blank-node object directly followed by the dot: the
                # strict parser's greedy label regex consumes that dot
                # into the label, so defer to it rather than silently
                # accepting a statement the seed path rejects.
                mutated |= load_strict(line, line_number)
                continue
            sid = token_ids.get(subject_token)
            if sid is None:
                sid = encode_token(subject_token)
            pid = token_ids.get(predicate_token)
            if pid is None:
                pid = encode_token(predicate_token)
            oid = token_ids.get(object_token)
            if oid is None:
                oid = encode_token(object_token)
            mutated |= add_ids(sid, pid, oid, stats=incremental)
    finally:
        # Keep the graph observably consistent even when a parse error
        # aborts the load part-way: statistics must cover every triple
        # already inserted, and the version stamp must record the change.
        # Change-capture listeners need no handling here: _add_ids
        # notifies them per effective insert even with stats deferred, so
        # materialized views stay consistent through bulk loads too.
        if not incremental:
            graph._rebuild_statistics()
            if mutated:
                graph._version += 1
    return graph


def bulk_load_turtle(
    source: Source, graph: Optional[EncodedGraph] = None
) -> EncodedGraph:
    """Stream a Turtle document into an :class:`EncodedGraph` in one pass."""
    from repro.rdf.turtle import parse_turtle

    if graph is None:
        graph = EncodedGraph()
    parse_turtle(_read_text(source), graph=graph)
    return graph


def bulk_load_path(
    path: Union[str, os.PathLike],
    format: Optional[str] = None,
    graph: Optional[EncodedGraph] = None,
) -> EncodedGraph:
    """Bulk-load an RDF file, inferring the format from its extension.

    ``format`` may be ``"ntriples"`` or ``"turtle"``; when omitted,
    ``.nt`` / ``.ntriples`` select N-Triples and ``.ttl`` / ``.turtle``
    select Turtle.
    """
    if format is None:
        suffix = os.path.splitext(os.fspath(path))[1].lower()
        if suffix in (".nt", ".ntriples"):
            format = "ntriples"
        elif suffix in (".ttl", ".turtle"):
            format = "turtle"
        else:
            raise ValueError(f"cannot infer RDF format from {path!r}")
    with open(path, "r", encoding="utf-8") as handle:
        if format == "ntriples":
            return bulk_load_ntriples(handle, graph)
        if format == "turtle":
            return bulk_load_turtle(handle, graph)
    raise ValueError(f"unknown RDF format {format!r}")
