"""Wardedness analysis for Datalog± programs.

Warded Datalog± (Arenas, Gottlob, Pieris 2018) restricts how labelled
nulls introduced by existential rule heads can propagate:

* a *position* ``p[i]`` is **affected** when the chase may place a null
  there — i.e. it carries an existential variable in some rule head, or a
  head variable whose body occurrences are all at affected positions;
* a variable is **dangerous** in a rule when it occurs in the head and all
  of its body occurrences are at affected positions;
* the program is **warded** when, in every rule, either there is no
  dangerous variable, or all dangerous variables occur in one body atom
  (the *ward*) and every variable shared between the ward and the rest of
  the body occurs somewhere at a non-affected position.

The SparqLog translation produces programs that are warded by
construction (Section 2.2 / 3.2 of the paper); the analysis below lets the
test suite verify that property for every generated program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.datalog.rules import Atom, Negation, Program, Rule
from repro.datalog.terms import Var

Position = Tuple[str, int]


@dataclass
class WardednessReport:
    """Result of the wardedness analysis."""

    warded: bool
    affected_positions: Set[Position] = field(default_factory=set)
    violations: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.warded


def _body_atoms(rule: Rule) -> List[Atom]:
    atoms: List[Atom] = []
    for element in rule.body:
        if isinstance(element, Atom):
            atoms.append(element)
        elif isinstance(element, Negation):
            atoms.append(element.atom)
    return atoms


def affected_positions(program: Program) -> Set[Position]:
    """Compute the set of affected positions by fixpoint iteration."""
    affected: Set[Position] = set()
    # Base case: positions of existential head variables.
    for rule in program.rules:
        existential = set(rule.existential_variables)
        for index, argument in enumerate(rule.head.arguments):
            if isinstance(argument, Var) and argument in existential:
                affected.add((rule.head.predicate, index))

    changed = True
    while changed:
        changed = False
        for rule in program.rules:
            body_atoms = _body_atoms(rule)
            # Positions at which each body variable occurs.
            occurrences: Dict[Var, List[Position]] = {}
            for atom in body_atoms:
                for index, argument in enumerate(atom.arguments):
                    if isinstance(argument, Var):
                        occurrences.setdefault(argument, []).append(
                            (atom.predicate, index)
                        )
            for index, argument in enumerate(rule.head.arguments):
                if not isinstance(argument, Var):
                    continue
                if argument in set(rule.existential_variables):
                    continue
                positions = occurrences.get(argument)
                if not positions:
                    continue
                if all(position in affected for position in positions):
                    position = (rule.head.predicate, index)
                    if position not in affected:
                        affected.add(position)
                        changed = True
    return affected


def dangerous_variables(rule: Rule, affected: Set[Position]) -> Set[Var]:
    """Return the dangerous variables of a rule w.r.t. affected positions."""
    body_atoms = _body_atoms(rule)
    occurrences: Dict[Var, List[Position]] = {}
    for atom in body_atoms:
        for index, argument in enumerate(atom.arguments):
            if isinstance(argument, Var):
                occurrences.setdefault(argument, []).append((atom.predicate, index))
    dangerous: Set[Var] = set()
    for variable in rule.head.variables():
        if variable in set(rule.existential_variables):
            continue
        positions = occurrences.get(variable)
        if positions and all(position in affected for position in positions):
            dangerous.add(variable)
    return dangerous


def analyze_wardedness(program: Program) -> WardednessReport:
    """Check the warded condition for every rule of the program."""
    affected = affected_positions(program)
    report = WardednessReport(warded=True, affected_positions=affected)
    for rule in program.rules:
        dangerous = dangerous_variables(rule, affected)
        if not dangerous:
            continue
        body_atoms = _body_atoms(rule)
        # Find candidate wards: body atoms containing every dangerous variable.
        wards = [
            atom for atom in body_atoms if dangerous <= atom.variables()
        ]
        if not wards:
            report.warded = False
            report.violations.append(
                f"rule {rule!r}: dangerous variables {sorted(v.name for v in dangerous)} "
                "not confined to a single body atom"
            )
            continue
        ward_ok = False
        for ward in wards:
            shared_ok = True
            other_atoms = [atom for atom in body_atoms if atom is not ward]
            other_variables: Set[Var] = set()
            for atom in other_atoms:
                other_variables |= atom.variables()
            shared = ward.variables() & other_variables
            for variable in shared:
                harmless = False
                for atom in body_atoms:
                    for index, argument in enumerate(atom.arguments):
                        if argument == variable and (atom.predicate, index) not in affected:
                            harmless = True
                if not harmless:
                    shared_ok = False
                    break
            if shared_ok:
                ward_ok = True
                break
        if not ward_ok:
            report.warded = False
            report.violations.append(
                f"rule {rule!r}: ward shares a possibly-null variable with the rest of the body"
            )
    return report
