"""Datalog terms: constants, variables and Skolem function terms.

Constants wrap arbitrary hashable Python values.  In the SparqLog
translation the wrapped values are RDF terms (:class:`repro.rdf.IRI`,
:class:`repro.rdf.Literal`, :class:`repro.rdf.BlankNode`) plus a few plain
strings such as ``"default"`` and ``"null"``; keeping the RDF objects
intact avoids lossy string round-trips between the two layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Tuple, Union


@dataclass(frozen=True)
class Var:
    """A Datalog variable."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A Datalog constant wrapping an arbitrary hashable value."""

    value: Hashable

    def __repr__(self) -> str:
        return f"«{self.value!r}»"


@dataclass(frozen=True)
class SkolemTerm:
    """A ground functional term ``f(a1, ..., an)``.

    Skolem terms serve two purposes in the reproduction, both taken from
    the paper: they implement the tuple IDs of the duplicate-preservation
    model (Appendix C), and they stand in for the labelled nulls that
    existential rule heads introduce during the chase.
    """

    functor: str
    arguments: Tuple[Hashable, ...]

    def __repr__(self) -> str:
        inner = ", ".join(repr(argument) for argument in self.arguments)
        return f"{self.functor}({inner})"


#: Ground values that may appear inside relations.
GroundValue = Union[Const, SkolemTerm]

#: Any term allowed in atoms.
Term = Union[Var, Const, SkolemTerm]


def is_ground(term: Term) -> bool:
    """Return True when the term contains no variable."""
    return not isinstance(term, Var)


def substitute(term: Term, substitution: dict) -> Term:
    """Apply a variable substitution to a term."""
    if isinstance(term, Var):
        return substitution.get(term, term)
    return term
