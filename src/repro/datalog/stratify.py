"""Stratification of Datalog programs with negation and aggregation.

A program is stratifiable when no predicate depends on itself through
negation (or through an aggregate).  The stratification assigns every
predicate to a stratum such that positive dependencies stay within or
below the stratum and negative/aggregate dependencies point strictly
below.  Evaluation then proceeds stratum by stratum.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import networkx as nx

from repro.datalog.rules import AggregateRule, Negation, Program, Rule


class StratificationError(ValueError):
    """Raised when a program uses negation/aggregation through recursion."""


def dependency_graph(program: Program) -> nx.DiGraph:
    """Build the predicate dependency graph.

    Edges go from a body predicate to the head predicate.  Edges that stem
    from negated body atoms or from aggregate rules are marked with
    ``negative=True``.
    """
    graph = nx.DiGraph()
    for predicate in program.predicates():
        graph.add_node(predicate)
    for rule in program.rules:
        head = rule.head.predicate
        for element in rule.body:
            if isinstance(element, Negation):
                _add_edge(graph, element.atom.predicate, head, negative=True)
            elif hasattr(element, "predicate"):
                _add_edge(graph, element.predicate, head, negative=False)
    for aggregate_rule in program.aggregate_rules:
        head = aggregate_rule.head.predicate
        for predicate in aggregate_rule.body_predicates():
            _add_edge(graph, predicate, head, negative=True)
    return graph


def _add_edge(graph: nx.DiGraph, source: str, target: str, negative: bool) -> None:
    if graph.has_edge(source, target):
        if negative:
            graph[source][target]["negative"] = True
    else:
        graph.add_edge(source, target, negative=negative)


def stratify(program: Program) -> List[Set[str]]:
    """Compute a stratification of the program's predicates.

    Returns a list of predicate sets, lowest stratum first.  Raises
    :class:`StratificationError` when a negative edge occurs inside a
    strongly connected component (negation through recursion).
    """
    graph = dependency_graph(program)
    condensation = nx.condensation(graph)
    # Check: no negative edge within a strongly connected component.
    for component in nx.strongly_connected_components(graph):
        for source in component:
            for target in graph.successors(source):
                if target in component and graph[source][target].get("negative"):
                    raise StratificationError(
                        f"negation through recursion between {source!r} and {target!r}"
                    )

    # Assign stratum numbers: longest chain of negative edges below a node.
    component_of: Dict[str, int] = {}
    for component_id, data in condensation.nodes(data=True):
        for predicate in data["members"]:
            component_of[predicate] = component_id

    stratum_of_component: Dict[int, int] = {}
    for component_id in nx.topological_sort(condensation):
        stratum = 0
        members = condensation.nodes[component_id]["members"]
        for predecessor_id in condensation.predecessors(component_id):
            predecessor_members = condensation.nodes[predecessor_id]["members"]
            negative = any(
                graph[source][target].get("negative")
                for source in predecessor_members
                for target in members
                if graph.has_edge(source, target)
            )
            candidate = stratum_of_component[predecessor_id] + (1 if negative else 0)
            stratum = max(stratum, candidate)
        stratum_of_component[component_id] = stratum

    max_stratum = max(stratum_of_component.values(), default=0)
    strata: List[Set[str]] = [set() for _ in range(max_stratum + 1)]
    for predicate, component_id in component_of.items():
        strata[stratum_of_component[component_id]].add(predicate)
    return strata


def recursive_predicates(program: Program) -> Set[str]:
    """Return the predicates involved in a dependency cycle."""
    graph = dependency_graph(program)
    recursive: Set[str] = set()
    for component in nx.strongly_connected_components(graph):
        if len(component) > 1:
            recursive |= component
        else:
            (predicate,) = component
            if graph.has_edge(predicate, predicate):
                recursive.add(predicate)
    return recursive
