"""Warded Datalog± engine — the "Vadalog substrate" of the reproduction.

The engine supports the language fragment SparqLog's translation targets:

* plain Datalog rules with full recursion,
* stratified negation,
* comparison and assignment built-ins in rule bodies (including Skolem
  function terms used as tuple IDs for bag semantics),
* embedded SPARQL filter conditions (the paper lets Vadalog evaluate the
  filter constraint verbatim; we do the same by attaching the expression),
* existential variables in rule heads (evaluated by skolemisation, which
  is how the paper's duplicate-preservation model abstracts labelled
  nulls),
* aggregation rules (GROUP BY with COUNT / SUM / MIN / MAX / AVG),
* `@output` / `@post` directives recorded on the program.

Evaluation is bottom-up semi-naive per stratum.  A wardedness analysis
(:mod:`repro.datalog.wardedness`) checks the syntactic Warded Datalog±
condition of the generated programs.
"""

from repro.datalog.terms import Const, SkolemTerm, Var
from repro.datalog.rules import (
    AggregateRule,
    AggregateSpec,
    Assignment,
    Atom,
    Comparison,
    FilterCondition,
    Negation,
    Program,
    Rule,
)
from repro.datalog.engine import DatalogEngine, EvaluationLimitExceeded
from repro.datalog.stratify import StratificationError, stratify
from repro.datalog.wardedness import WardednessReport, analyze_wardedness

__all__ = [
    "AggregateRule",
    "AggregateSpec",
    "Assignment",
    "Atom",
    "Comparison",
    "Const",
    "DatalogEngine",
    "EvaluationLimitExceeded",
    "FilterCondition",
    "Negation",
    "Program",
    "Rule",
    "SkolemTerm",
    "StratificationError",
    "Var",
    "WardednessReport",
    "analyze_wardedness",
    "stratify",
]
