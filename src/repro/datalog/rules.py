"""Datalog± rules, atoms, body elements and programs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple, Union

from repro.datalog.terms import Const, SkolemTerm, Term, Var


@dataclass(frozen=True)
class Atom:
    """A predicate applied to a tuple of terms."""

    predicate: str
    arguments: Tuple[Term, ...]

    def __repr__(self) -> str:
        inner = ", ".join(repr(argument) for argument in self.arguments)
        return f"{self.predicate}({inner})"

    @property
    def arity(self) -> int:
        return len(self.arguments)

    def variables(self) -> Set[Var]:
        """Return the set of variables in the atom."""
        return {argument for argument in self.arguments if isinstance(argument, Var)}

    def is_ground(self) -> bool:
        return not self.variables()

    def substitute(self, substitution: Dict[Var, Term]) -> "Atom":
        """Apply a substitution to all arguments."""
        return Atom(
            self.predicate,
            tuple(
                substitution.get(argument, argument)
                if isinstance(argument, Var)
                else argument
                for argument in self.arguments
            ),
        )


@dataclass(frozen=True)
class Negation:
    """A negated body atom (``not p(...)``), evaluated under stratification."""

    atom: Atom

    def variables(self) -> Set[Var]:
        return self.atom.variables()

    def __repr__(self) -> str:
        return f"not {self.atom!r}"


@dataclass(frozen=True)
class Comparison:
    """A built-in comparison between two terms (``X = Y``, ``X != c``, ...).

    Operators: ``=``, ``!=``, ``<``, ``<=``, ``>``, ``>=``.  RDF literals
    are compared with the SPARQL operator mapping; other values fall back
    to Python comparison.
    """

    operator: str
    left: Term
    right: Term

    def variables(self) -> Set[Var]:
        return {term for term in (self.left, self.right) if isinstance(term, Var)}

    def __repr__(self) -> str:
        return f"{self.left!r} {self.operator} {self.right!r}"


@dataclass(frozen=True)
class SkolemExpr:
    """A Skolem function application ``functor(args...)`` used in assignments."""

    functor: str
    arguments: Tuple[Term, ...]

    def variables(self) -> Set[Var]:
        return {argument for argument in self.arguments if isinstance(argument, Var)}

    def __repr__(self) -> str:
        inner = ", ".join(repr(argument) for argument in self.arguments)
        return f"#{self.functor}[{inner}]"


@dataclass(frozen=True)
class Assignment:
    """A built-in assignment ``Var = expression``.

    The expression is either a constant, another variable, or a
    :class:`SkolemExpr`; the latter is how the translation generates tuple
    IDs (``ID = ["f1", X, Y, ...]`` in the paper's notation).
    """

    variable: Var
    expression: Union[Const, Var, SkolemExpr, SkolemTerm]

    def variables(self) -> Set[Var]:
        result = {self.variable}
        if isinstance(self.expression, Var):
            result.add(self.expression)
        elif isinstance(self.expression, SkolemExpr):
            result |= self.expression.variables()
        return result

    def input_variables(self) -> Set[Var]:
        """Variables that must be bound before the assignment can fire."""
        if isinstance(self.expression, Var):
            return {self.expression}
        if isinstance(self.expression, SkolemExpr):
            return self.expression.variables()
        return set()

    def __repr__(self) -> str:
        return f"{self.variable!r} := {self.expression!r}"


@dataclass(frozen=True)
class FilterCondition:
    """A SPARQL filter expression embedded in a rule body.

    The paper's translation copies filter constraints verbatim into the
    rule body and lets Vadalog evaluate them; we do the same by attaching
    the parsed SPARQL expression together with a mapping from SPARQL
    variables to the Datalog variables carrying their values.
    """

    expression: object  # repro.sparql.expressions.Expression
    variable_map: Tuple[Tuple[object, Var], ...]  # (sparql Variable, datalog Var)

    def variables(self) -> Set[Var]:
        return {datalog_var for _, datalog_var in self.variable_map}

    def __repr__(self) -> str:
        return f"filter[{self.expression!r}]"


BodyElement = Union[Atom, Negation, Comparison, Assignment, FilterCondition]


@dataclass(frozen=True)
class Rule:
    """A Datalog± rule ``head :- body`` with optional existential head variables."""

    head: Atom
    body: Tuple[BodyElement, ...]
    existential_variables: Tuple[Var, ...] = ()
    label: str = ""

    def __repr__(self) -> str:
        body = ", ".join(repr(element) for element in self.body)
        prefix = ""
        if self.existential_variables:
            quantified = ", ".join(repr(var) for var in self.existential_variables)
            prefix = f"∃{quantified} "
        return f"{prefix}{self.head!r} :- {body}."

    def positive_atoms(self) -> List[Atom]:
        return [element for element in self.body if isinstance(element, Atom)]

    def negated_atoms(self) -> List[Atom]:
        return [element.atom for element in self.body if isinstance(element, Negation)]

    def body_predicates(self) -> Set[str]:
        predicates = {atom.predicate for atom in self.positive_atoms()}
        predicates |= {atom.predicate for atom in self.negated_atoms()}
        return predicates

    def head_variables(self) -> Set[Var]:
        return self.head.variables()

    def frontier_variables(self) -> Set[Var]:
        """Head variables that also occur in the body (non-existential)."""
        body_vars: Set[Var] = set()
        for element in self.body:
            body_vars |= element.variables()
        return self.head_variables() & body_vars

    def is_safe(self) -> bool:
        """Safety: every head / negated / builtin variable is bound positively.

        Variables introduced by assignments count as bound, and existential
        head variables are exempt.
        """
        bound: Set[Var] = set()
        for atom in self.positive_atoms():
            bound |= atom.variables()
        for element in self.body:
            if isinstance(element, Assignment):
                bound.add(element.variable)
        existential = set(self.existential_variables)
        for variable in self.head.variables():
            if variable not in bound and variable not in existential:
                return False
        for element in self.body:
            if isinstance(element, Negation) and not element.variables() <= bound:
                return False
            if isinstance(element, Comparison):
                free = {
                    term
                    for term in (element.left, element.right)
                    if isinstance(term, Var)
                }
                if not free <= bound:
                    return False
        return True


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate computed by an :class:`AggregateRule`.

    ``operation`` is COUNT / SUM / MIN / MAX / AVG; ``argument`` is the
    body variable aggregated over (``None`` means COUNT(*)); ``target`` is
    the head variable receiving the value.
    """

    operation: str
    argument: Optional[Var]
    target: Var
    distinct: bool = False


@dataclass(frozen=True)
class AggregateRule:
    """A grouping rule: evaluate the body, group by ``group_variables``.

    The head receives the group variables plus one value per
    :class:`AggregateSpec`.  Aggregate rules are evaluated after the
    fixpoint of the stratum containing their body predicates, mirroring
    Vadalog's (stratified) aggregation support.
    """

    head: Atom
    body: Tuple[BodyElement, ...]
    group_variables: Tuple[Var, ...]
    aggregates: Tuple[AggregateSpec, ...]
    label: str = ""

    def body_predicates(self) -> Set[str]:
        predicates: Set[str] = set()
        for element in self.body:
            if isinstance(element, Atom):
                predicates.add(element.predicate)
            elif isinstance(element, Negation):
                predicates.add(element.atom.predicate)
        return predicates


@dataclass
class Directive:
    """A system instruction attached to the program (``@output``, ``@post``)."""

    name: str
    arguments: Tuple[str, ...]

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.arguments)
        return f"@{self.name}({inner})."


@dataclass
class Program:
    """A Datalog± program: facts, rules, aggregate rules and directives."""

    rules: List[Rule] = field(default_factory=list)
    facts: List[Atom] = field(default_factory=list)
    aggregate_rules: List[AggregateRule] = field(default_factory=list)
    directives: List[Directive] = field(default_factory=list)

    def add_rule(self, rule: Rule) -> None:
        self.rules.append(rule)

    def add_fact(self, atom: Atom) -> None:
        if not atom.is_ground():
            raise ValueError(f"facts must be ground: {atom!r}")
        self.facts.append(atom)

    def add_directive(self, name: str, *arguments: str) -> None:
        self.directives.append(Directive(name, tuple(arguments)))

    def output_predicates(self) -> List[str]:
        """Predicates marked with ``@output``."""
        return [
            directive.arguments[0]
            for directive in self.directives
            if directive.name == "output"
        ]

    def post_directives(self, predicate: str) -> List[str]:
        """Return the ``@post`` instructions attached to ``predicate``."""
        return [
            directive.arguments[1]
            for directive in self.directives
            if directive.name == "post" and directive.arguments[0] == predicate
        ]

    def predicates(self) -> Set[str]:
        """Every predicate mentioned anywhere in the program."""
        result: Set[str] = set()
        for fact in self.facts:
            result.add(fact.predicate)
        for rule in self.rules:
            result.add(rule.head.predicate)
            result |= rule.body_predicates()
        for aggregate_rule in self.aggregate_rules:
            result.add(aggregate_rule.head.predicate)
            result |= aggregate_rule.body_predicates()
        return result

    def extend(self, other: "Program") -> None:
        """Merge another program into this one (used to combine T_D and T_Q)."""
        self.rules.extend(other.rules)
        self.facts.extend(other.facts)
        self.aggregate_rules.extend(other.aggregate_rules)
        self.directives.extend(other.directives)

    def __repr__(self) -> str:
        return (
            f"Program({len(self.facts)} facts, {len(self.rules)} rules, "
            f"{len(self.aggregate_rules)} aggregate rules)"
        )

    def pretty(self) -> str:
        """Render the program as Vadalog-style text (for docs and debugging)."""
        lines: List[str] = []
        for fact in self.facts:
            lines.append(f"{fact!r}.")
        for rule in self.rules:
            lines.append(repr(rule))
        for aggregate_rule in self.aggregate_rules:
            lines.append(
                f"{aggregate_rule.head!r} :- group_by{aggregate_rule.group_variables!r} "
                f"{', '.join(repr(e) for e in aggregate_rule.body)}."
            )
        for directive in self.directives:
            lines.append(repr(directive))
        return "\n".join(lines)
