"""Bottom-up semi-naive evaluation of Datalog± programs.

The engine materialises the extension of every predicate, stratum by
stratum.  Within a stratum, recursion is evaluated with the semi-naive
(delta) technique; negated atoms, comparisons, assignments and embedded
filter conditions are evaluated as soon as their variables are bound.

Existential head variables are instantiated with Skolem terms over the
frontier variables, which is exactly the abstraction the paper adopts for
its duplicate-preservation model (labelled nulls represented as Skolem
terms, Appendix C).
"""

from __future__ import annotations

import time
from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.datalog.rules import (
    AggregateRule,
    Assignment,
    Atom,
    BodyElement,
    Comparison,
    FilterCondition,
    Negation,
    Program,
    Rule,
    SkolemExpr,
)
from repro.datalog.stratify import stratify
from repro.datalog.terms import Const, SkolemTerm, Term, Var
from repro.rdf.terms import Literal, Term as RdfTerm
from repro.sparql.functions import ExpressionError, term_compare
from repro.sparql.physical import select_cheapest
from repro.sparql.solutions import Binding


class EvaluationLimitExceeded(RuntimeError):
    """Raised when the fact limit or the wall-clock timeout is exceeded."""


GroundTuple = Tuple[object, ...]
Substitution = Dict[Var, object]


class Relation:
    """The extension of one predicate: a set of ground tuples plus indexes."""

    __slots__ = ("tuples", "_indexes", "_distinct_cache")

    def __init__(self) -> None:
        self.tuples: Set[GroundTuple] = set()
        self._indexes: Dict[Tuple[int, ...], Dict[Tuple, List[GroundTuple]]] = {}
        # position -> (relation size when computed, distinct count)
        self._distinct_cache: Dict[int, Tuple[int, int]] = {}

    def add(self, row: GroundTuple) -> bool:
        """Insert a row; returns True when the row is new."""
        if row in self.tuples:
            return False
        self.tuples.add(row)
        for positions, index in self._indexes.items():
            key = tuple(row[position] for position in positions)
            index.setdefault(key, []).append(row)
        return True

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[GroundTuple]:
        return iter(self.tuples)

    def index(self, positions: Tuple[int, ...]) -> Dict[Tuple, List[GroundTuple]]:
        """Return (building lazily) a hash index on the given positions."""
        existing = self._indexes.get(positions)
        if existing is not None:
            return existing
        index: Dict[Tuple, List[GroundTuple]] = defaultdict(list)
        for row in self.tuples:
            key = tuple(row[position] for position in positions)
            index[key].append(row)
        self._indexes[positions] = index
        return index

    def distinct_count(self, position: int) -> int:
        """Number of distinct values at ``position`` (cached per size).

        Used by the body-ordering cost model; the cache is invalidated by
        growth so estimates stay honest without rescanning on every call.
        """
        cached = self._distinct_cache.get(position)
        size = len(self.tuples)
        if cached is not None and cached[0] == size:
            return cached[1]
        count = len({row[position] for row in self.tuples if position < len(row)})
        self._distinct_cache[position] = (size, count)
        return count

    def lookup(self, bound: Dict[int, object]) -> Iterable[GroundTuple]:
        """Return candidate rows matching the bound positions."""
        if not bound:
            return self.tuples
        positions = tuple(sorted(bound))
        index = self.index(positions)
        key = tuple(bound[position] for position in positions)
        return index.get(key, [])


class DatalogEngine:
    """Evaluator producing the full materialisation of a program."""

    def __init__(
        self,
        max_facts: int = 5_000_000,
        timeout_seconds: Optional[float] = None,
    ) -> None:
        self.max_facts = max_facts
        self.timeout_seconds = timeout_seconds
        self._deadline: Optional[float] = None
        self._fact_count = 0
        #: Semi-naive delta rounds executed across every stratum of the
        #: last :meth:`evaluate` call — an observability counter (the
        #: metrics registry reads it through a callback), not a limit.
        self.fixpoint_iterations = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def evaluate(self, program: Program) -> Dict[str, Set[GroundTuple]]:
        """Evaluate the program and return predicate -> set of ground tuples."""
        self._deadline = (
            time.monotonic() + self.timeout_seconds if self.timeout_seconds else None
        )
        self._fact_count = 0
        self.fixpoint_iterations = 0
        relations: Dict[str, Relation] = defaultdict(Relation)
        for fact in program.facts:
            values = tuple(self._ground_value(argument) for argument in fact.arguments)
            if relations[fact.predicate].add(values):
                self._count_fact()

        strata = stratify(program)
        rules_by_head: Dict[str, List[Rule]] = defaultdict(list)
        for rule in program.rules:
            rules_by_head[rule.head.predicate].append(rule)
        aggregates_by_head: Dict[str, List[AggregateRule]] = defaultdict(list)
        for aggregate_rule in program.aggregate_rules:
            aggregates_by_head[aggregate_rule.head.predicate].append(aggregate_rule)

        for stratum in strata:
            # Aggregate rules first: their bodies live strictly below.
            for predicate in sorted(stratum):
                for aggregate_rule in aggregates_by_head.get(predicate, []):
                    self._evaluate_aggregate_rule(aggregate_rule, relations)
            stratum_rules = [
                rule
                for predicate in stratum
                for rule in rules_by_head.get(predicate, [])
            ]
            if stratum_rules:
                self._fixpoint(stratum_rules, stratum, relations)
        return {predicate: relation.tuples for predicate, relation in relations.items()}

    # ------------------------------------------------------------------
    # fixpoint computation
    # ------------------------------------------------------------------
    def _fixpoint(
        self,
        rules: Sequence[Rule],
        stratum: Set[str],
        relations: Dict[str, Relation],
    ) -> None:
        ordered_bodies = {
            id(rule): self._order_body(rule, relations, stratum) for rule in rules
        }
        deltas: Dict[str, Set[GroundTuple]] = defaultdict(set)

        # Initial round: evaluate every rule against the full relations.
        for rule in rules:
            for row in self._evaluate_rule(rule, ordered_bodies[id(rule)], relations):
                if relations[rule.head.predicate].add(row):
                    self._count_fact()
                    deltas[rule.head.predicate].add(row)

        recursive_rules = [
            rule for rule in rules if rule.body_predicates() & stratum
        ]
        while any(deltas.values()):
            self.fixpoint_iterations += 1
            self._check_limits()
            new_deltas: Dict[str, Set[GroundTuple]] = defaultdict(set)
            for rule in recursive_rules:
                body = ordered_bodies[id(rule)]
                delta_positions = [
                    index
                    for index, element in enumerate(body)
                    if isinstance(element, Atom)
                    and element.predicate in stratum
                    and deltas.get(element.predicate)
                ]
                for delta_position in delta_positions:
                    for row in self._evaluate_rule(
                        rule, body, relations, delta_position, deltas
                    ):
                        if relations[rule.head.predicate].add(row):
                            self._count_fact()
                            new_deltas[rule.head.predicate].add(row)
            deltas = new_deltas

    def _order_body(
        self,
        rule: Rule,
        relations: Optional[Dict[str, Relation]] = None,
        volatile: Iterable[str] = (),
    ) -> List[BodyElement]:
        """Greedy sideways-information-passing order for body evaluation.

        Positive atoms are ordered by estimated candidate count — the same
        cardinality/selectivity model the SPARQL BGP planner uses: relation
        size divided by the distinct counts of bound positions.  Predicates
        in ``volatile`` (the current stratum, whose extensions grow during
        the fixpoint) are priced pessimistically so stable EDB atoms bind
        variables first.  Negations, comparisons, assignments and filters
        are still scheduled as soon as their input variables are bound.
        When ``relations`` is omitted the estimates tie and atoms keep
        source order (ties are broken by position, keeping ordering
        deterministic).
        """
        volatile_set = set(volatile)
        pending = list(rule.body)
        ordered: List[BodyElement] = []
        bound: Set[Var] = set()
        while pending:
            progressed = False
            for element in list(pending):
                if isinstance(element, Atom):
                    # Atom choice goes through the shared greedy-ordering
                    # helper of the physical layer — the same cost-first,
                    # source-position-tie rule the BGP planner lowers with.
                    atoms = [e for e in pending if isinstance(e, Atom)]
                    best = select_cheapest(
                        atoms,
                        lambda atom: self._estimate_atom(
                            atom, bound, relations, volatile_set
                        ),
                        pending.index,
                    )
                    ordered.append(best)
                    bound |= best.variables()
                    pending.remove(best)
                    progressed = True
                    break
                required: Set[Var]
                if isinstance(element, Negation):
                    required = element.variables()
                elif isinstance(element, Comparison):
                    required = element.variables()
                elif isinstance(element, Assignment):
                    required = element.input_variables()
                elif isinstance(element, FilterCondition):
                    required = element.variables()
                else:  # pragma: no cover - defensive
                    required = set()
                if required <= bound:
                    ordered.append(element)
                    if isinstance(element, Assignment):
                        bound.add(element.variable)
                    pending.remove(element)
                    progressed = True
                    break
            if not progressed:
                # Schedule remaining non-atom elements anyway (they will be
                # evaluated with whatever bindings exist; unbound comparisons
                # fail, matching safe-rule expectations).
                ordered.extend(pending)
                break
        return ordered

    @staticmethod
    def _estimate_atom(
        atom: Atom,
        bound: Set[Var],
        relations: Optional[Dict[str, Relation]],
        volatile: Set[str],
    ) -> float:
        """Estimate candidate rows for matching ``atom`` given bound vars."""
        if relations is None:
            return 1.0
        if atom.predicate in volatile:
            # Recursive predicate: its extension grows during the fixpoint,
            # so price it above every stable relation.
            total = sum(len(relation) for relation in relations.values())
            return float(total) + 1.0
        relation = relations.get(atom.predicate)
        if relation is None or not len(relation):
            return 0.0
        estimate = float(len(relation))
        for position, argument in enumerate(atom.arguments):
            if isinstance(argument, Var) and argument not in bound:
                continue
            estimate /= max(1, relation.distinct_count(position))
        return estimate

    def _evaluate_rule(
        self,
        rule: Rule,
        body: Sequence[BodyElement],
        relations: Dict[str, Relation],
        delta_position: Optional[int] = None,
        deltas: Optional[Dict[str, Set[GroundTuple]]] = None,
    ) -> Iterator[GroundTuple]:
        substitutions: Iterable[Substitution] = [dict()]
        for index, element in enumerate(body):
            use_delta = delta_position is not None and index == delta_position
            substitutions = self._apply_element(
                element, substitutions, relations, use_delta, deltas
            )
        for substitution in substitutions:
            yield self._instantiate_head(rule, substitution)

    def _apply_element(
        self,
        element: BodyElement,
        substitutions: Iterable[Substitution],
        relations: Dict[str, Relation],
        use_delta: bool,
        deltas: Optional[Dict[str, Set[GroundTuple]]],
    ) -> Iterator[Substitution]:
        if isinstance(element, Atom):
            yield from self._match_atom(element, substitutions, relations, use_delta, deltas)
            return
        if isinstance(element, Negation):
            for substitution in substitutions:
                if not self._atom_holds(element.atom, substitution, relations):
                    yield substitution
            return
        if isinstance(element, Comparison):
            for substitution in substitutions:
                if self._comparison_holds(element, substitution):
                    yield substitution
            return
        if isinstance(element, Assignment):
            for substitution in substitutions:
                value = self._evaluate_assignment(element, substitution)
                existing = substitution.get(element.variable)
                if existing is None:
                    extended = dict(substitution)
                    extended[element.variable] = value
                    yield extended
                elif existing == value:
                    yield substitution
            return
        if isinstance(element, FilterCondition):
            for substitution in substitutions:
                if self._filter_holds(element, substitution):
                    yield substitution
            return
        raise TypeError(f"unsupported body element {element!r}")

    def _match_atom(
        self,
        atom: Atom,
        substitutions: Iterable[Substitution],
        relations: Dict[str, Relation],
        use_delta: bool,
        deltas: Optional[Dict[str, Set[GroundTuple]]],
    ) -> Iterator[Substitution]:
        relation = relations.get(atom.predicate)
        delta_rows = deltas.get(atom.predicate, set()) if (use_delta and deltas) else None
        if relation is None and delta_rows is None:
            return
        for substitution in substitutions:
            self._check_limits()
            bound_positions: Dict[int, object] = {}
            for position, argument in enumerate(atom.arguments):
                if isinstance(argument, Var):
                    value = substitution.get(argument)
                    if value is not None:
                        bound_positions[position] = value
                else:
                    bound_positions[position] = self._ground_value(argument)
            if use_delta and delta_rows is not None:
                candidates: Iterable[GroundTuple] = delta_rows
            elif relation is not None:
                candidates = relation.lookup(bound_positions)
            else:
                candidates = ()
            for row in candidates:
                extended = self._unify(atom, row, substitution, bound_positions)
                if extended is not None:
                    yield extended

    def _unify(
        self,
        atom: Atom,
        row: GroundTuple,
        substitution: Substitution,
        bound_positions: Dict[int, object],
    ) -> Optional[Substitution]:
        for position, value in bound_positions.items():
            if row[position] != value:
                return None
        extended = dict(substitution)
        for position, argument in enumerate(atom.arguments):
            if isinstance(argument, Var):
                existing = extended.get(argument)
                if existing is None:
                    extended[argument] = row[position]
                elif existing != row[position]:
                    return None
        return extended

    def _atom_holds(
        self, atom: Atom, substitution: Substitution, relations: Dict[str, Relation]
    ) -> bool:
        relation = relations.get(atom.predicate)
        if relation is None:
            return False
        bound: Dict[int, object] = {}
        for position, argument in enumerate(atom.arguments):
            if isinstance(argument, Var):
                value = substitution.get(argument)
                if value is None:
                    # Unbound variable under negation: existential check.
                    continue
                bound[position] = value
            else:
                bound[position] = self._ground_value(argument)
        for _ in relation.lookup(bound):
            return True
        return False

    # ------------------------------------------------------------------
    # built-ins
    # ------------------------------------------------------------------
    def _comparison_holds(self, comparison: Comparison, substitution: Substitution) -> bool:
        left = self._resolve(comparison.left, substitution)
        right = self._resolve(comparison.right, substitution)
        if left is None or right is None:
            return False
        return compare_values(comparison.operator, left, right)

    def _evaluate_assignment(self, assignment: Assignment, substitution: Substitution):
        expression = assignment.expression
        if isinstance(expression, SkolemExpr):
            values = tuple(
                self._resolve(argument, substitution) for argument in expression.arguments
            )
            return SkolemTerm(expression.functor, values)
        return self._resolve(expression, substitution)

    def _filter_holds(self, condition: FilterCondition, substitution: Substitution) -> bool:
        from repro.sparql.expressions import satisfies

        mapping = {}
        for sparql_variable, datalog_variable in condition.variable_map:
            value = substitution.get(datalog_variable)
            if isinstance(value, RdfTerm):
                mapping[sparql_variable] = value
        return satisfies(condition.expression, Binding(mapping))

    def _resolve(self, term: Term, substitution: Substitution):
        if isinstance(term, Var):
            return substitution.get(term)
        return self._ground_value(term)

    @staticmethod
    def _ground_value(term):
        if isinstance(term, Const):
            return term.value
        return term

    # ------------------------------------------------------------------
    # head instantiation
    # ------------------------------------------------------------------
    def _instantiate_head(self, rule: Rule, substitution: Substitution) -> GroundTuple:
        existential = set(rule.existential_variables)
        values: List[object] = []
        frontier = tuple(
            substitution[variable]
            for variable in sorted(rule.frontier_variables(), key=lambda v: v.name)
            if variable in substitution
        )
        for argument in rule.head.arguments:
            if isinstance(argument, Var):
                if argument in substitution:
                    values.append(substitution[argument])
                elif argument in existential:
                    values.append(
                        SkolemTerm(f"∃{rule.label or rule.head.predicate}:{argument.name}", frontier)
                    )
                else:
                    raise ValueError(
                        f"unbound head variable {argument!r} in rule {rule!r}"
                    )
            else:
                values.append(self._ground_value(argument))
        return tuple(values)

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def _evaluate_aggregate_rule(
        self, aggregate_rule: AggregateRule, relations: Dict[str, Relation]
    ) -> None:
        body = self._order_body(
            Rule(aggregate_rule.head, aggregate_rule.body, label=aggregate_rule.label),
            relations,
        )
        substitutions: Iterable[Substitution] = [dict()]
        for element in body:
            substitutions = self._apply_element(element, substitutions, relations, False, None)
        groups: Dict[Tuple, List[Substitution]] = defaultdict(list)
        for substitution in substitutions:
            key = tuple(substitution.get(variable) for variable in aggregate_rule.group_variables)
            groups[key].append(substitution)
        for key, members in groups.items():
            values_by_target: Dict[Var, object] = {}
            for spec in aggregate_rule.aggregates:
                values_by_target[spec.target] = _aggregate(spec, members)
            row: List[object] = []
            for argument in aggregate_rule.head.arguments:
                if isinstance(argument, Var):
                    if argument in aggregate_rule.group_variables:
                        index = aggregate_rule.group_variables.index(argument)
                        row.append(key[index])
                    elif argument in values_by_target:
                        row.append(values_by_target[argument])
                    else:
                        row.append(members[0].get(argument))
                else:
                    row.append(self._ground_value(argument))
            if relations[aggregate_rule.head.predicate].add(tuple(row)):
                self._count_fact()

    # ------------------------------------------------------------------
    # limits
    # ------------------------------------------------------------------
    def _count_fact(self) -> None:
        self._fact_count += 1
        if self._fact_count > self.max_facts:
            raise EvaluationLimitExceeded(
                f"derived more than {self.max_facts} facts"
            )
        if self._fact_count % 4096 == 0:
            self._check_limits()

    def _check_limits(self) -> None:
        if self._deadline is not None and time.monotonic() > self._deadline:
            raise EvaluationLimitExceeded("evaluation timeout exceeded")


def compare_values(operator: str, left: object, right: object) -> bool:
    """Compare two ground Datalog values with SPARQL-aware semantics."""
    if isinstance(left, RdfTerm) and isinstance(right, RdfTerm):
        try:
            return term_compare(operator, left, right)
        except ExpressionError:
            return False
    if operator == "=":
        return left == right
    if operator == "!=":
        return left != right
    try:
        if operator == "<":
            return left < right
        if operator == "<=":
            return left <= right
        if operator == ">":
            return left > right
        if operator == ">=":
            return left >= right
    except TypeError:
        return False
    raise ValueError(f"unknown comparison operator {operator!r}")


def _aggregate(spec, members: List[Substitution]):
    """Compute one aggregate value over the substitutions of a group."""
    operation = spec.operation.upper()
    if spec.argument is None:
        raw_values: List[object] = [1] * len(members)
    else:
        raw_values = [member.get(spec.argument) for member in members]
        raw_values = [value for value in raw_values if value is not None]
    if spec.distinct:
        seen = set()
        unique = []
        for value in raw_values:
            if value not in seen:
                seen.add(value)
                unique.append(value)
        raw_values = unique
    if operation == "COUNT":
        return Literal.from_python(len(raw_values))

    numeric: List[float] = []
    comparable: List[object] = []
    for value in raw_values:
        if isinstance(value, Literal):
            as_python = value.as_python()
            if isinstance(as_python, (int, float)) and not isinstance(as_python, bool):
                numeric.append(as_python)
            comparable.append(value)
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            numeric.append(value)
            comparable.append(value)
        else:
            comparable.append(value)
    if operation in ("MIN", "MAX"):
        if not comparable:
            return None
        from repro.rdf.terms import term_sort_key

        ordered = sorted(
            comparable,
            key=lambda value: term_sort_key(value) if isinstance(value, RdfTerm) else (0, str(value)),
        )
        return ordered[0] if operation == "MIN" else ordered[-1]
    if not numeric:
        return None
    if operation == "SUM":
        total = sum(numeric)
        return Literal.from_python(int(total) if float(total).is_integer() else total)
    if operation == "AVG":
        return Literal.from_python(sum(numeric) / len(numeric))
    raise ValueError(f"unsupported aggregate operation {operation!r}")
