"""SPARQL 1.1 front-end: tokenizer, parser, algebra and reference evaluator.

The parser turns a SPARQL query string into an algebra tree
(:mod:`repro.sparql.algebra`).  The same tree is consumed by two engines:

* the reference bag-semantics evaluator (:mod:`repro.sparql.evaluator`),
  which directly implements the W3C semantics and doubles as the
  "Fuseki-like" baseline, and
* the SparqLog translator (:mod:`repro.core`), which compiles the tree into
  a Warded Datalog± program.

Query planning
--------------

Basic graph patterns are *not* executed in textual order.  The planner in
:mod:`repro.sparql.plan` prices every triple / path pattern against the
exact incremental statistics kept by :class:`repro.rdf.Graph`
(per-predicate cardinalities, distinct subject/object counts), greedily
orders the patterns by estimated cardinality with bound-variable
propagation, and materialises the result as a :class:`~repro.sparql.plan.BGPPlan`
— an explicit, inspectable plan object.  Execution is a streaming
index-nested-loop pipeline: each partial solution substitutes its bound
variables into the next pattern before probing the SPO/POS/OSP indexes,
and solutions are yielded lazily so ASK and plain-LIMIT queries
short-circuit instead of materialising full intermediate multisets.  The
same cardinality model drives body-atom ordering in
:class:`repro.datalog.engine.DatalogEngine`.  ``SparqlEvaluator(dataset,
use_planner=False)`` recovers the naive textual-order evaluation, which
the property-based tests use as the differential baseline.

The ordered plan is then *lowered* to a physical operator DAG
(:mod:`repro.sparql.physical`): the lowering pass picks term-space or
id-space operators per backend capability, attaches FILTER conjuncts as
``Filter`` operators, and selects the leapfrog-triejoin
:class:`~repro.sparql.physical.LeapfrogJoin` operator — worst-case
optimal over the encoded store's sorted id runs — when statistics detect
a cyclic join graph.  ``SparqlEvaluator.explain()`` renders the lowered
DAG, and executed plans expose per-operator row/probe counters.
"""

from repro.sparql.algebra import (
    AskQuery,
    BGP,
    Filter,
    GraphGraphPattern,
    Join,
    LeftJoin,
    Minus,
    PathPattern,
    Query,
    SelectQuery,
    TriplePatternNode,
    Union,
)
from repro.sparql.parser import parse_query, SparqlSyntaxError
from repro.sparql.paths import (
    AlternativePath,
    InversePath,
    LinkPath,
    NegatedPropertySet,
    OneOrMorePath,
    PropertyPath,
    RepeatPath,
    SequencePath,
    ZeroOrMorePath,
    ZeroOrOnePath,
)
from repro.sparql.evaluator import SparqlEvaluator
from repro.sparql.profile import ExecutionProfile
from repro.sparql.idpaths import IdPathEngine, supports_id_paths
from repro.sparql.physical import (
    IndexNestedLoopJoin,
    LeapfrogJoin,
    LoweringOptions,
    PhysicalPlan,
    lower_bgp,
    lower_plan,
    supports_leapfrog,
)
from repro.sparql.plan import BGPPlan, PlanStep, evaluate_bgp, plan_bgp
from repro.sparql.solutions import Binding, SolutionSequence

__all__ = [
    "AlternativePath",
    "AskQuery",
    "BGP",
    "BGPPlan",
    "Binding",
    "ExecutionProfile",
    "Filter",
    "GraphGraphPattern",
    "IdPathEngine",
    "IndexNestedLoopJoin",
    "InversePath",
    "Join",
    "LeapfrogJoin",
    "LeftJoin",
    "LinkPath",
    "LoweringOptions",
    "Minus",
    "NegatedPropertySet",
    "OneOrMorePath",
    "PathPattern",
    "PhysicalPlan",
    "PlanStep",
    "PropertyPath",
    "Query",
    "RepeatPath",
    "SelectQuery",
    "SequencePath",
    "SolutionSequence",
    "SparqlEvaluator",
    "SparqlSyntaxError",
    "TriplePatternNode",
    "Union",
    "ZeroOrMorePath",
    "ZeroOrOnePath",
    "evaluate_bgp",
    "lower_bgp",
    "lower_plan",
    "parse_query",
    "plan_bgp",
    "supports_id_paths",
    "supports_leapfrog",
]
