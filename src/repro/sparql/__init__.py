"""SPARQL 1.1 front-end: tokenizer, parser, algebra and reference evaluator.

The parser turns a SPARQL query string into an algebra tree
(:mod:`repro.sparql.algebra`).  The same tree is consumed by two engines:

* the reference bag-semantics evaluator (:mod:`repro.sparql.evaluator`),
  which directly implements the W3C semantics and doubles as the
  "Fuseki-like" baseline, and
* the SparqLog translator (:mod:`repro.core`), which compiles the tree into
  a Warded Datalog± program.
"""

from repro.sparql.algebra import (
    AskQuery,
    BGP,
    Filter,
    GraphGraphPattern,
    Join,
    LeftJoin,
    Minus,
    PathPattern,
    Query,
    SelectQuery,
    TriplePatternNode,
    Union,
)
from repro.sparql.parser import parse_query, SparqlSyntaxError
from repro.sparql.paths import (
    AlternativePath,
    InversePath,
    LinkPath,
    NegatedPropertySet,
    OneOrMorePath,
    PropertyPath,
    RepeatPath,
    SequencePath,
    ZeroOrMorePath,
    ZeroOrOnePath,
)
from repro.sparql.evaluator import SparqlEvaluator
from repro.sparql.solutions import Binding, SolutionSequence

__all__ = [
    "AlternativePath",
    "AskQuery",
    "BGP",
    "Binding",
    "Filter",
    "GraphGraphPattern",
    "InversePath",
    "Join",
    "LeftJoin",
    "LinkPath",
    "Minus",
    "NegatedPropertySet",
    "OneOrMorePath",
    "PathPattern",
    "PropertyPath",
    "Query",
    "RepeatPath",
    "SelectQuery",
    "SequencePath",
    "SolutionSequence",
    "SparqlEvaluator",
    "SparqlSyntaxError",
    "TriplePatternNode",
    "Union",
    "ZeroOrMorePath",
    "ZeroOrOnePath",
    "parse_query",
]
