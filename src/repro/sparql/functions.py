"""SPARQL built-in functions, comparison and effective boolean value.

These routines implement the operator mapping of SPARQL 1.1 (Section 17)
for the functions SparqLog supports (Table 1 of the paper plus the
FEASIBLE-driven additions: UCASE, DATATYPE, CONTAINS, ...).  They operate
on :class:`repro.rdf.terms.Term` values and raise :class:`ExpressionError`
where the standard prescribes a type error.
"""

from __future__ import annotations

import re
from typing import List, Union

from repro.rdf.terms import (
    BlankNode,
    IRI,
    Literal,
    Term,
    XSD_BOOLEAN,
    XSD_STRING,
)


class ExpressionError(Exception):
    """A SPARQL expression evaluation error (type error, unbound var, ...)."""


Number = Union[int, float]


def effective_boolean_value(term: Term) -> bool:
    """Compute the SPARQL Effective Boolean Value (EBV) of a term."""
    if isinstance(term, Literal):
        datatype = term.effective_datatype
        if datatype == XSD_BOOLEAN:
            return term.lexical.strip().lower() in ("true", "1")
        if term.is_numeric():
            try:
                return float(term.lexical) != 0.0
            except ValueError:
                return False
        if datatype == XSD_STRING or term.language is not None:
            return len(term.lexical) > 0
        raise ExpressionError(f"no EBV for literal {term!r}")
    raise ExpressionError(f"no EBV for {term!r}")


def numeric_value(term: Term) -> Number:
    """Return the numeric value of a literal or raise an error."""
    if isinstance(term, Literal):
        value = term.as_python()
        if isinstance(value, bool):
            raise ExpressionError(f"not a number: {term!r}")
        if isinstance(value, (int, float)):
            return value
        # Plain literals holding digits are accepted (common in benchmark data).
        try:
            if "." in term.lexical or "e" in term.lexical.lower():
                return float(term.lexical)
            return int(term.lexical)
        except ValueError as error:
            raise ExpressionError(f"not a number: {term!r}") from error
    raise ExpressionError(f"not a number: {term!r}")


def string_value(term: Term) -> str:
    """Return the string value (STR) of a literal or IRI."""
    if isinstance(term, Literal):
        return term.lexical
    if isinstance(term, IRI):
        return term.value
    raise ExpressionError(f"no string value for {term!r}")


def term_compare(operator: str, left: Term, right: Term) -> bool:
    """Evaluate a SPARQL comparison operator over two RDF terms.

    Equality covers IRIs, blank nodes and literals; ordering comparisons
    require both operands to be numeric literals, both strings, or both
    comparable by lexical form (dateTime strings order correctly this way).
    """
    if operator in ("=", "!="):
        equal = _terms_equal(left, right)
        return equal if operator == "=" else not equal

    left_key, right_key = _ordering_values(left, right)
    if operator == "<":
        return left_key < right_key
    if operator == "<=":
        return left_key <= right_key
    if operator == ">":
        return left_key > right_key
    if operator == ">=":
        return left_key >= right_key
    raise ExpressionError(f"unknown comparison operator {operator!r}")


def _terms_equal(left: Term, right: Term) -> bool:
    if isinstance(left, Literal) and isinstance(right, Literal):
        if left == right:
            return True
        if left.is_numeric() and right.is_numeric():
            try:
                return float(left.lexical) == float(right.lexical)
            except ValueError:
                return False
        # Simple literals and xsd:string literals compare by lexical form.
        left_simple = left.language is None and left.effective_datatype == XSD_STRING
        right_simple = right.language is None and right.effective_datatype == XSD_STRING
        if left_simple and right_simple:
            return left.lexical == right.lexical
        return False
    return left == right


def _ordering_values(left: Term, right: Term):
    if isinstance(left, Literal) and isinstance(right, Literal):
        if left.is_numeric() and right.is_numeric():
            try:
                return float(left.lexical), float(right.lexical)
            except ValueError as error:
                raise ExpressionError("malformed numeric literal") from error
        return left.lexical, right.lexical
    if isinstance(left, IRI) and isinstance(right, IRI):
        return left.value, right.value
    raise ExpressionError(f"terms not order-comparable: {left!r} vs {right!r}")


def _as_regex_flags(flag_string: str) -> int:
    flags = 0
    if "i" in flag_string:
        flags |= re.IGNORECASE
    if "s" in flag_string:
        flags |= re.DOTALL
    if "m" in flag_string:
        flags |= re.MULTILINE
    if "x" in flag_string:
        flags |= re.VERBOSE
    return flags


def _boolean_literal(value: bool) -> Literal:
    return Literal("true" if value else "false", XSD_BOOLEAN)


def apply_function(name: str, arguments: List[Term]) -> Term:
    """Dispatch a SPARQL built-in function over already-evaluated arguments."""
    name = name.upper()

    # -- term tests ------------------------------------------------------
    if name in ("ISIRI", "ISURI"):
        return _boolean_literal(isinstance(arguments[0], IRI))
    if name == "ISBLANK":
        return _boolean_literal(isinstance(arguments[0], BlankNode))
    if name == "ISLITERAL":
        return _boolean_literal(isinstance(arguments[0], Literal))
    if name == "ISNUMERIC":
        term = arguments[0]
        return _boolean_literal(isinstance(term, Literal) and term.is_numeric())
    if name == "SAMETERM":
        return _boolean_literal(arguments[0] == arguments[1])

    # -- accessors -------------------------------------------------------
    if name == "STR":
        return Literal(string_value(arguments[0]))
    if name == "LANG":
        term = arguments[0]
        if not isinstance(term, Literal):
            raise ExpressionError("LANG expects a literal")
        return Literal(term.language or "")
    if name == "DATATYPE":
        term = arguments[0]
        if not isinstance(term, Literal):
            raise ExpressionError("DATATYPE expects a literal")
        return term.effective_datatype
    if name == "IRI" or name == "URI":
        return IRI(string_value(arguments[0]))
    if name == "LANGMATCHES":
        tag = string_value(arguments[0]).lower()
        pattern = string_value(arguments[1]).lower()
        if pattern == "*":
            return _boolean_literal(bool(tag))
        return _boolean_literal(tag == pattern or tag.startswith(pattern + "-"))

    # -- strings ---------------------------------------------------------
    if name == "REGEX":
        text = string_value(arguments[0])
        pattern = string_value(arguments[1])
        flags = _as_regex_flags(string_value(arguments[2])) if len(arguments) > 2 else 0
        try:
            return _boolean_literal(re.search(pattern, text, flags) is not None)
        except re.error as error:
            raise ExpressionError(f"malformed regex {pattern!r}") from error
    if name == "UCASE":
        return _string_result(arguments[0], string_value(arguments[0]).upper())
    if name == "LCASE":
        return _string_result(arguments[0], string_value(arguments[0]).lower())
    if name == "STRLEN":
        return Literal.from_python(len(string_value(arguments[0])))
    if name == "CONTAINS":
        return _boolean_literal(string_value(arguments[1]) in string_value(arguments[0]))
    if name == "STRSTARTS":
        return _boolean_literal(
            string_value(arguments[0]).startswith(string_value(arguments[1]))
        )
    if name == "STRENDS":
        return _boolean_literal(
            string_value(arguments[0]).endswith(string_value(arguments[1]))
        )
    if name == "STRBEFORE":
        haystack, needle = string_value(arguments[0]), string_value(arguments[1])
        index = haystack.find(needle)
        return Literal(haystack[:index] if index >= 0 else "")
    if name == "STRAFTER":
        haystack, needle = string_value(arguments[0]), string_value(arguments[1])
        index = haystack.find(needle)
        return Literal(haystack[index + len(needle):] if index >= 0 else "")
    if name == "SUBSTR":
        text = string_value(arguments[0])
        start = int(numeric_value(arguments[1]))
        if len(arguments) > 2:
            length = int(numeric_value(arguments[2]))
            return Literal(text[start - 1:start - 1 + length])
        return Literal(text[start - 1:])
    if name == "CONCAT":
        return Literal("".join(string_value(argument) for argument in arguments))
    if name == "REPLACE":
        text = string_value(arguments[0])
        pattern = string_value(arguments[1])
        replacement = string_value(arguments[2])
        try:
            return Literal(re.sub(pattern, replacement, text))
        except re.error as error:
            raise ExpressionError(f"malformed regex {pattern!r}") from error
    if name == "ENCODE_FOR_URI":
        text = string_value(arguments[0])
        return Literal(re.sub(r"[^A-Za-z0-9_.~-]", lambda m: f"%{ord(m.group()):02X}", text))

    # -- numerics ----------------------------------------------------------
    if name == "ABS":
        return Literal.from_python(abs(numeric_value(arguments[0])))
    if name == "CEIL":
        import math

        return Literal.from_python(int(math.ceil(numeric_value(arguments[0]))))
    if name == "FLOOR":
        import math

        return Literal.from_python(int(math.floor(numeric_value(arguments[0]))))
    if name == "ROUND":
        return Literal.from_python(round(numeric_value(arguments[0])))

    raise ExpressionError(f"unsupported function {name}")


def _string_result(source: Term, new_value: str) -> Literal:
    """Preserve the language tag / datatype of the source string argument."""
    if isinstance(source, Literal):
        return Literal(new_value, source.datatype, source.language)
    return Literal(new_value)
