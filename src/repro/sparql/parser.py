"""Recursive-descent parser for SPARQL 1.1 queries.

The parser covers the feature set SparqLog targets (Table 1 of the paper
plus the benchmark-driven additions): SELECT / ASK query forms, basic
graph patterns, property paths (all eight constructors plus bounded
repetition), OPTIONAL, UNION, MINUS, FILTER, GRAPH, BIND, VALUES,
GROUP BY with aggregates, HAVING, ORDER BY (including complex key
expressions), DISTINCT / REDUCED, LIMIT and OFFSET, and FROM /
FROM NAMED dataset clauses.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple, Union

from repro.rdf.namespace import DEFAULT_PREFIXES, PrefixMap
from repro.rdf.terms import (
    BlankNode,
    IRI,
    Literal,
    RDF,
    Term,
    Triple,
    Variable,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
)
from repro.sparql.algebra import (
    AskQuery,
    BGP,
    Bind,
    DatasetClause,
    EmptyPattern,
    Filter,
    GraphGraphPattern,
    GraphPatternNode,
    Join,
    LeftJoin,
    Minus,
    OrderCondition,
    PathPattern,
    ProjectionItem,
    Query,
    SelectQuery,
    TriplePatternNode,
    Union as UnionNode,
    ValuesPattern,
)
from repro.sparql.expressions import (
    Aggregate,
    And,
    Arithmetic,
    Comparison,
    Expression,
    FunctionCall,
    InExpr,
    Not,
    Or,
    TermExpr,
    UnaryMinus,
    VariableExpr,
)
from repro.sparql.paths import (
    AlternativePath,
    InversePath,
    LinkPath,
    NegatedPropertySet,
    OneOrMorePath,
    PropertyPath,
    RepeatPath,
    SequencePath,
    ZeroOrMorePath,
    ZeroOrOnePath,
)
from repro.sparql.tokenizer import SparqlSyntaxError, Token, tokenize

#: Built-in function names accepted in expressions.
BUILTIN_FUNCTIONS = {
    "BOUND", "ISIRI", "ISURI", "ISBLANK", "ISLITERAL", "ISNUMERIC", "STR",
    "LANG", "DATATYPE", "IRI", "URI", "REGEX", "UCASE", "LCASE", "STRLEN",
    "CONTAINS", "STRSTARTS", "STRENDS", "STRBEFORE", "STRAFTER", "SUBSTR",
    "CONCAT", "REPLACE", "ABS", "CEIL", "FLOOR", "ROUND", "COALESCE", "IF",
    "LANGMATCHES", "SAMETERM", "ENCODE_FOR_URI",
}

_AGGREGATES = {"COUNT", "SUM", "MIN", "MAX", "AVG", "SAMPLE"}


class _Parser:
    """Token-stream consumer producing algebra trees."""

    def __init__(self, text: str) -> None:
        self.tokens = tokenize(text)
        self.position = 0
        self.prefixes = PrefixMap(DEFAULT_PREFIXES)
        self.base = ""
        self._bnode_counter = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Optional[Token]:
        index = self.position + offset
        if index < len(self.tokens):
            return self.tokens[index]
        return None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise SparqlSyntaxError("unexpected end of query")
        self.position += 1
        return token

    def _accept_keyword(self, *keywords: str) -> Optional[str]:
        token = self._peek()
        if token is not None and token.kind == "keyword" and token.value in keywords:
            self.position += 1
            return token.value
        return None

    def _expect_keyword(self, keyword: str) -> None:
        if not self._accept_keyword(keyword):
            token = self._peek()
            raise SparqlSyntaxError(f"expected {keyword}, found {token}")

    def _accept_op(self, *symbols: str) -> Optional[str]:
        token = self._peek()
        if token is not None and token.kind == "op" and token.value in symbols:
            self.position += 1
            return token.value
        return None

    def _expect_op(self, symbol: str) -> None:
        if not self._accept_op(symbol):
            token = self._peek()
            raise SparqlSyntaxError(f"expected {symbol!r}, found {token}")

    def _at_keyword(self, *keywords: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "keyword" and token.value in keywords

    def _at_op(self, *symbols: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "op" and token.value in symbols

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def parse(self) -> Query:
        self._parse_prologue()
        if self._at_keyword("SELECT"):
            query = self._parse_select()
        elif self._at_keyword("ASK"):
            query = self._parse_ask()
        else:
            token = self._peek()
            raise SparqlSyntaxError(
                f"unsupported query form (expected SELECT or ASK), found {token}"
            )
        if self._peek() is not None:
            raise SparqlSyntaxError(f"trailing tokens after query: {self._peek()}")
        return query

    def _parse_prologue(self) -> None:
        while True:
            if self._accept_keyword("PREFIX"):
                pname_token = self._next()
                name = pname_token.value
                if not name.endswith(":") and ":" in name:
                    # Tokenizer may attach an empty local part.
                    name = name.split(":")[0] + ":"
                iri_token = self._next()
                if iri_token.kind != "iri":
                    raise SparqlSyntaxError("PREFIX requires an IRI")
                self.prefixes.bind(name[:-1], iri_token.value[1:-1])
                continue
            if self._accept_keyword("BASE"):
                iri_token = self._next()
                if iri_token.kind != "iri":
                    raise SparqlSyntaxError("BASE requires an IRI")
                self.base = iri_token.value[1:-1]
                continue
            break

    # ------------------------------------------------------------------
    # query forms
    # ------------------------------------------------------------------
    def _parse_select(self) -> SelectQuery:
        self._expect_keyword("SELECT")
        distinct = bool(self._accept_keyword("DISTINCT"))
        reduced = bool(self._accept_keyword("REDUCED"))
        projection: List[ProjectionItem] = []
        select_all = False
        if self._accept_op("*"):
            select_all = True
        else:
            while True:
                token = self._peek()
                if token is None:
                    raise SparqlSyntaxError("unexpected end of SELECT clause")
                if token.kind == "var":
                    self._next()
                    projection.append(ProjectionItem(Variable(token.value[1:])))
                    continue
                if token.kind == "op" and token.value == "(":
                    self._next()
                    expression = self._parse_expression()
                    self._expect_keyword("AS")
                    var_token = self._next()
                    if var_token.kind != "var":
                        raise SparqlSyntaxError("expected variable after AS")
                    self._expect_op(")")
                    projection.append(
                        ProjectionItem(Variable(var_token.value[1:]), expression)
                    )
                    continue
                break
            if not projection:
                raise SparqlSyntaxError("SELECT clause requires at least one variable")
        dataset_clauses = self._parse_dataset_clauses()
        self._accept_keyword("WHERE")
        pattern = self._parse_group_graph_pattern()
        group_by, having, order_by, limit, offset = self._parse_solution_modifiers()
        return SelectQuery(
            projection=tuple(projection),
            pattern=pattern,
            distinct=distinct,
            reduced=reduced,
            select_all=select_all,
            dataset_clauses=dataset_clauses,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
        )

    def _parse_ask(self) -> AskQuery:
        self._expect_keyword("ASK")
        dataset_clauses = self._parse_dataset_clauses()
        self._accept_keyword("WHERE")
        pattern = self._parse_group_graph_pattern()
        return AskQuery(pattern=pattern, dataset_clauses=dataset_clauses)

    def _parse_dataset_clauses(self) -> Tuple[DatasetClause, ...]:
        clauses: List[DatasetClause] = []
        while self._accept_keyword("FROM"):
            named = bool(self._accept_keyword("NAMED"))
            iri = self._parse_iri()
            clauses.append(DatasetClause(iri, named))
        return tuple(clauses)

    def _parse_solution_modifiers(self):
        group_by: Tuple[Expression, ...] = ()
        having: Optional[Expression] = None
        order_by: List[OrderCondition] = []
        limit: Optional[int] = None
        offset: Optional[int] = None
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            keys: List[Expression] = []
            while True:
                token = self._peek()
                if token is None:
                    break
                if token.kind == "var":
                    self._next()
                    keys.append(VariableExpr(Variable(token.value[1:])))
                    continue
                if token.kind == "op" and token.value == "(":
                    self._next()
                    keys.append(self._parse_expression())
                    self._expect_op(")")
                    continue
                break
            group_by = tuple(keys)
        if self._accept_keyword("HAVING"):
            self._expect_op("(")
            having = self._parse_expression()
            self._expect_op(")")
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by = self._parse_order_conditions()
        # LIMIT and OFFSET may appear in either order.
        for _ in range(2):
            if self._accept_keyword("LIMIT"):
                limit = self._parse_integer()
            elif self._accept_keyword("OFFSET"):
                offset = self._parse_integer()
        return group_by, having, tuple(order_by), limit, offset

    def _parse_order_conditions(self) -> List[OrderCondition]:
        conditions: List[OrderCondition] = []
        while True:
            token = self._peek()
            if token is None:
                break
            if token.kind == "keyword" and token.value in ("ASC", "DESC"):
                self._next()
                ascending = token.value == "ASC"
                self._expect_op("(")
                expression = self._parse_expression()
                self._expect_op(")")
                conditions.append(OrderCondition(expression, ascending))
                continue
            if token.kind == "var":
                self._next()
                conditions.append(OrderCondition(VariableExpr(Variable(token.value[1:]))))
                continue
            if token.kind == "op" and token.value == "(":
                self._next()
                expression = self._parse_expression()
                self._expect_op(")")
                conditions.append(OrderCondition(expression))
                continue
            if token.kind == "funcname" or (
                token.kind == "keyword" and token.value in _AGGREGATES
            ):
                conditions.append(OrderCondition(self._parse_primary_expression()))
                continue
            break
        if not conditions:
            raise SparqlSyntaxError("ORDER BY requires at least one condition")
        return conditions

    def _parse_integer(self) -> int:
        token = self._next()
        if token.kind != "number":
            raise SparqlSyntaxError(f"expected integer, found {token}")
        return int(token.value)

    # ------------------------------------------------------------------
    # group graph pattern
    # ------------------------------------------------------------------
    def _parse_group_graph_pattern(self) -> GraphPatternNode:
        self._expect_op("{")
        elements: List[GraphPatternNode] = []
        filters: List[Expression] = []
        while not self._at_op("}"):
            token = self._peek()
            if token is None:
                raise SparqlSyntaxError("unterminated group graph pattern")
            if token.kind == "keyword" and token.value == "OPTIONAL":
                self._next()
                optional_pattern, optional_filter = self._parse_optional_body()
                current = self._combine(elements)
                elements = [LeftJoin(current, optional_pattern, optional_filter)]
                self._accept_op(".")
                continue
            if token.kind == "keyword" and token.value == "MINUS":
                self._next()
                right = self._parse_group_graph_pattern()
                current = self._combine(elements)
                elements = [Minus(current, right)]
                self._accept_op(".")
                continue
            if token.kind == "keyword" and token.value == "FILTER":
                self._next()
                filters.append(self._parse_constraint())
                self._accept_op(".")
                continue
            if token.kind == "keyword" and token.value == "BIND":
                self._next()
                self._expect_op("(")
                expression = self._parse_expression()
                self._expect_keyword("AS")
                var_token = self._next()
                if var_token.kind != "var":
                    raise SparqlSyntaxError("expected variable after AS in BIND")
                self._expect_op(")")
                current = self._combine(elements)
                elements = [Bind(current, Variable(var_token.value[1:]), expression)]
                self._accept_op(".")
                continue
            if token.kind == "keyword" and token.value == "VALUES":
                self._next()
                elements.append(self._parse_values())
                self._accept_op(".")
                continue
            if token.kind == "keyword" and token.value == "GRAPH":
                self._next()
                graph_term = self._parse_var_or_iri()
                inner = self._parse_group_graph_pattern()
                elements.append(GraphGraphPattern(graph_term, inner))
                self._accept_op(".")
                continue
            if token.kind == "op" and token.value == "{":
                # Nested group or union of groups.
                group = self._parse_group_or_union()
                elements.append(group)
                self._accept_op(".")
                continue
            # Otherwise: a triples block.
            triples = self._parse_triples_block()
            elements.extend(triples)
        self._expect_op("}")
        pattern = self._combine(elements)
        for condition in filters:
            pattern = Filter(pattern, condition)
        return pattern

    def _parse_optional_body(self):
        """Parse the body of OPTIONAL, extracting a top-level filter.

        The SPARQL algebra scopes a filter that appears directly in the
        OPTIONAL group to the left join (Definition A.9 in the paper), so
        we return ``(pattern, condition_or_None)``.
        """
        pattern = self._parse_group_graph_pattern()
        if isinstance(pattern, Filter):
            return pattern.pattern, pattern.condition
        return pattern, None

    def _parse_group_or_union(self) -> GraphPatternNode:
        left = self._parse_group_graph_pattern()
        while self._accept_keyword("UNION"):
            right = self._parse_group_graph_pattern()
            left = UnionNode(left, right)
        return left

    def _combine(self, elements: List[GraphPatternNode]) -> GraphPatternNode:
        if not elements:
            return EmptyPattern()
        basic: List[GraphPatternNode] = []
        result: Optional[GraphPatternNode] = None

        def flush_basic(current: Optional[GraphPatternNode]) -> Optional[GraphPatternNode]:
            nonlocal basic
            if not basic:
                return current
            bgp = BGP(tuple(basic)) if len(basic) > 1 else basic[0]
            basic = []
            if current is None:
                return bgp
            return Join(current, bgp)

        for element in elements:
            if isinstance(element, (TriplePatternNode, PathPattern)):
                basic.append(element)
            else:
                result = flush_basic(result)
                result = element if result is None else Join(result, element)
        result = flush_basic(result)
        return result if result is not None else EmptyPattern()

    def _parse_values(self) -> ValuesPattern:
        variables: List[Variable] = []
        rows: List[Tuple[Optional[Term], ...]] = []
        if self._accept_op("("):
            while not self._at_op(")"):
                token = self._next()
                if token.kind != "var":
                    raise SparqlSyntaxError("VALUES expects variables")
                variables.append(Variable(token.value[1:]))
            self._expect_op(")")
            self._expect_op("{")
            while not self._at_op("}"):
                self._expect_op("(")
                row: List[Optional[Term]] = []
                while not self._at_op(")"):
                    if self._accept_keyword("UNDEF"):
                        row.append(None)
                    else:
                        row.append(self._parse_graph_term())
                self._expect_op(")")
                rows.append(tuple(row))
            self._expect_op("}")
        else:
            token = self._next()
            if token.kind != "var":
                raise SparqlSyntaxError("VALUES expects a variable")
            variables.append(Variable(token.value[1:]))
            self._expect_op("{")
            while not self._at_op("}"):
                if self._accept_keyword("UNDEF"):
                    rows.append((None,))
                else:
                    rows.append((self._parse_graph_term(),))
            self._expect_op("}")
        return ValuesPattern(tuple(variables), tuple(rows))

    # ------------------------------------------------------------------
    # triples blocks
    # ------------------------------------------------------------------
    def _parse_triples_block(self) -> List[GraphPatternNode]:
        patterns: List[GraphPatternNode] = []
        while True:
            subject = self._parse_var_or_term()
            self._parse_property_list(subject, patterns)
            if self._accept_op("."):
                token = self._peek()
                if token is None or (token.kind == "op" and token.value == "}"):
                    break
                if token.kind == "keyword" and token.value in (
                    "OPTIONAL", "MINUS", "FILTER", "BIND", "VALUES", "GRAPH", "UNION",
                ):
                    break
                if token.kind == "op" and token.value == "{":
                    break
                continue
            break
        return patterns

    def _parse_property_list(
        self, subject, patterns: List[GraphPatternNode]
    ) -> None:
        while True:
            verb_is_var = self._peek() is not None and self._peek().kind == "var"
            if verb_is_var:
                verb_token = self._next()
                predicate: Union[Variable, PropertyPath] = Variable(verb_token.value[1:])
            else:
                predicate = self._parse_path()
            while True:
                obj = self._parse_var_or_term()
                patterns.append(self._make_pattern(subject, predicate, obj))
                if not self._accept_op(","):
                    break
            if not self._accept_op(";"):
                break
            token = self._peek()
            if token is None or (token.kind == "op" and token.value in (".", "}")):
                break

    def _make_pattern(self, subject, predicate, obj) -> GraphPatternNode:
        if isinstance(predicate, Variable):
            return TriplePatternNode(Triple(subject, predicate, obj))
        if isinstance(predicate, LinkPath):
            return TriplePatternNode(Triple(subject, predicate.iri, obj))
        return PathPattern(subject, predicate, obj)

    # ------------------------------------------------------------------
    # property paths
    # ------------------------------------------------------------------
    def _parse_path(self) -> PropertyPath:
        return self._parse_path_alternative()

    def _parse_path_alternative(self) -> PropertyPath:
        left = self._parse_path_sequence()
        while self._accept_op("|"):
            right = self._parse_path_sequence()
            left = AlternativePath(left, right)
        return left

    def _parse_path_sequence(self) -> PropertyPath:
        left = self._parse_path_elt_or_inverse()
        while self._accept_op("/"):
            right = self._parse_path_elt_or_inverse()
            left = SequencePath(left, right)
        return left

    def _parse_path_elt_or_inverse(self) -> PropertyPath:
        if self._accept_op("^"):
            return InversePath(self._parse_path_elt())
        return self._parse_path_elt()

    def _parse_path_elt(self) -> PropertyPath:
        primary = self._parse_path_primary()
        return self._parse_path_mod(primary)

    def _parse_path_mod(self, path: PropertyPath) -> PropertyPath:
        if self._accept_op("?"):
            return ZeroOrOnePath(path)
        if self._accept_op("*"):
            return ZeroOrMorePath(path)
        if self._accept_op("+"):
            return OneOrMorePath(path)
        if self._at_op("{"):
            # Bounded repetition {n}, {n,}, {n,m}.
            self._next()
            minimum = self._parse_integer()
            maximum: Optional[int] = minimum
            if self._accept_op(","):
                if self._at_op("}"):
                    maximum = None
                else:
                    maximum = self._parse_integer()
            self._expect_op("}")
            return RepeatPath(path, minimum, maximum)
        return path

    def _parse_path_primary(self) -> PropertyPath:
        token = self._peek()
        if token is None:
            raise SparqlSyntaxError("unexpected end of property path")
        if token.kind == "op" and token.value == "(":
            self._next()
            inner = self._parse_path()
            self._expect_op(")")
            return inner
        if token.kind == "op" and token.value == "!":
            self._next()
            return self._parse_negated_property_set()
        if token.kind == "keyword" and token.value == "A":
            self._next()
            return LinkPath(RDF.type)
        if token.kind in ("iri", "pname"):
            return LinkPath(self._parse_iri())
        raise SparqlSyntaxError(f"unexpected token in property path: {token}")

    def _parse_negated_property_set(self) -> NegatedPropertySet:
        forward: List[IRI] = []
        inverse: List[IRI] = []

        def parse_one() -> None:
            if self._accept_op("^"):
                inverse.append(self._parse_iri_or_a())
            else:
                forward.append(self._parse_iri_or_a())

        if self._accept_op("("):
            parse_one()
            while self._accept_op("|"):
                parse_one()
            self._expect_op(")")
        else:
            parse_one()
        return NegatedPropertySet(tuple(forward), tuple(inverse))

    def _parse_iri_or_a(self) -> IRI:
        if self._accept_keyword("A"):
            return RDF.type
        return self._parse_iri()

    # ------------------------------------------------------------------
    # terms
    # ------------------------------------------------------------------
    def _parse_iri(self) -> IRI:
        token = self._next()
        if token.kind == "iri":
            return IRI(token.value[1:-1])
        if token.kind == "pname":
            return self.prefixes.expand(token.value)
        raise SparqlSyntaxError(f"expected IRI, found {token}")

    def _parse_var_or_iri(self) -> Union[Variable, IRI]:
        token = self._peek()
        if token is not None and token.kind == "var":
            self._next()
            return Variable(token.value[1:])
        return self._parse_iri()

    def _parse_var_or_term(self):
        token = self._peek()
        if token is None:
            raise SparqlSyntaxError("unexpected end of triples block")
        if token.kind == "var":
            self._next()
            return Variable(token.value[1:])
        return self._parse_graph_term()

    def _parse_graph_term(self) -> Term:
        token = self._next()
        if token.kind == "iri":
            return IRI(token.value[1:-1])
        if token.kind == "pname":
            return self.prefixes.expand(token.value)
        if token.kind == "bnode":
            return BlankNode(token.value[2:])
        if token.kind == "op" and token.value == "[":
            self._expect_op("]")
            self._bnode_counter += 1
            return BlankNode(f"anon{self._bnode_counter}")
        if token.kind == "string":
            return self._make_literal(token.value)
        if token.kind == "number":
            return self._make_numeric_literal(token.value)
        if token.kind == "keyword" and token.value in ("TRUE", "FALSE"):
            return Literal(token.value.lower(), XSD_BOOLEAN)
        raise SparqlSyntaxError(f"expected RDF term, found {token}")

    def _make_literal(self, raw: str) -> Literal:
        match = re.match(
            r'^(?P<quote>"""|\'\'\'|"|\')(?P<body>.*?)(?P=quote)'
            r"(?:@(?P<lang>[a-zA-Z][a-zA-Z0-9\-]*)|\^\^(?P<dt>\S+))?$",
            raw,
            re.DOTALL,
        )
        if match is None:
            raise SparqlSyntaxError(f"malformed literal {raw!r}")
        body = (
            match.group("body")
            .replace('\\"', '"')
            .replace("\\'", "'")
            .replace("\\n", "\n")
            .replace("\\t", "\t")
            .replace("\\\\", "\\")
        )
        language = match.group("lang")
        datatype_token = match.group("dt")
        datatype: Optional[IRI] = None
        if datatype_token:
            if datatype_token.startswith("<"):
                datatype = IRI(datatype_token[1:-1])
            else:
                datatype = self.prefixes.expand(datatype_token)
        return Literal(body, datatype, language)

    def _make_numeric_literal(self, raw: str) -> Literal:
        if "." in raw or "e" in raw.lower():
            datatype = XSD_DOUBLE if "e" in raw.lower() else XSD_DECIMAL
            return Literal(raw, datatype)
        return Literal(raw, XSD_INTEGER)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _parse_constraint(self) -> Expression:
        token = self._peek()
        if token is not None and token.kind == "op" and token.value == "(":
            self._next()
            expression = self._parse_expression()
            self._expect_op(")")
            return expression
        # Built-in call without parentheses around the whole constraint,
        # e.g. FILTER regex(?x, "foo").
        return self._parse_primary_expression()

    def _parse_expression(self) -> Expression:
        return self._parse_or_expression()

    def _parse_or_expression(self) -> Expression:
        left = self._parse_and_expression()
        while self._accept_op("||"):
            right = self._parse_and_expression()
            left = Or(left, right)
        return left

    def _parse_and_expression(self) -> Expression:
        left = self._parse_relational_expression()
        while self._accept_op("&&"):
            right = self._parse_relational_expression()
            left = And(left, right)
        return left

    def _parse_relational_expression(self) -> Expression:
        left = self._parse_additive_expression()
        token = self._peek()
        if token is not None and token.kind == "op" and token.value in (
            "=", "!=", "<", "<=", ">", ">=",
        ):
            operator = self._next().value
            right = self._parse_additive_expression()
            return Comparison(operator, left, right)
        if self._at_keyword("IN"):
            self._next()
            options = self._parse_expression_list()
            return InExpr(left, options, negated=False)
        if self._at_keyword("NOT"):
            self._next()
            self._expect_keyword("IN")
            options = self._parse_expression_list()
            return InExpr(left, options, negated=True)
        return left

    def _parse_expression_list(self) -> Tuple[Expression, ...]:
        self._expect_op("(")
        options: List[Expression] = []
        if not self._at_op(")"):
            options.append(self._parse_expression())
            while self._accept_op(","):
                options.append(self._parse_expression())
        self._expect_op(")")
        return tuple(options)

    def _parse_additive_expression(self) -> Expression:
        left = self._parse_multiplicative_expression()
        while True:
            if self._accept_op("+"):
                left = Arithmetic("+", left, self._parse_multiplicative_expression())
            elif self._accept_op("-"):
                left = Arithmetic("-", left, self._parse_multiplicative_expression())
            else:
                break
        return left

    def _parse_multiplicative_expression(self) -> Expression:
        left = self._parse_unary_expression()
        while True:
            if self._accept_op("*"):
                left = Arithmetic("*", left, self._parse_unary_expression())
            elif self._accept_op("/"):
                left = Arithmetic("/", left, self._parse_unary_expression())
            else:
                break
        return left

    def _parse_unary_expression(self) -> Expression:
        if self._accept_op("!"):
            return Not(self._parse_unary_expression())
        if self._accept_op("-"):
            return UnaryMinus(self._parse_unary_expression())
        if self._accept_op("+"):
            return self._parse_unary_expression()
        return self._parse_primary_expression()

    def _parse_primary_expression(self) -> Expression:
        token = self._peek()
        if token is None:
            raise SparqlSyntaxError("unexpected end of expression")
        if token.kind == "op" and token.value == "(":
            self._next()
            expression = self._parse_expression()
            self._expect_op(")")
            return expression
        if token.kind == "var":
            self._next()
            return VariableExpr(Variable(token.value[1:]))
        if token.kind == "funcname" and token.value in BUILTIN_FUNCTIONS:
            self._next()
            arguments = self._parse_call_arguments()
            return FunctionCall(token.value, arguments)
        if token.kind == "keyword" and token.value in _AGGREGATES:
            self._next()
            return self._parse_aggregate(token.value)
        if token.kind == "keyword" and token.value in ("TRUE", "FALSE"):
            self._next()
            return TermExpr(Literal(token.value.lower(), XSD_BOOLEAN))
        if token.kind in ("iri", "pname", "string", "number", "bnode"):
            return TermExpr(self._parse_graph_term())
        if token.kind == "funcname":
            # Unknown function name: treat as an error to surface typos early.
            raise SparqlSyntaxError(f"unknown function {token.value}")
        raise SparqlSyntaxError(f"unexpected token in expression: {token}")

    def _parse_call_arguments(self) -> Tuple[Expression, ...]:
        self._expect_op("(")
        arguments: List[Expression] = []
        if not self._at_op(")"):
            arguments.append(self._parse_expression())
            while self._accept_op(","):
                arguments.append(self._parse_expression())
        self._expect_op(")")
        return tuple(arguments)

    def _parse_aggregate(self, operation: str) -> Aggregate:
        self._expect_op("(")
        distinct = bool(self._accept_keyword("DISTINCT"))
        if self._accept_op("*"):
            argument = None
        else:
            argument = self._parse_expression()
        self._expect_op(")")
        return Aggregate(operation, argument, distinct)


def parse_query(text: str) -> Query:
    """Parse a SPARQL query string into an algebra :class:`Query` tree."""
    return _Parser(text).parse()
