"""Named execution profiles for the SPARQL evaluator.

Historically every optimisation of the evaluation stack grew its own
boolean constructor knob on :class:`~repro.sparql.evaluator.SparqlEvaluator`
(``use_planner``, ``use_id_execution``, ``use_filter_pushdown``,
``use_id_paths``, ``use_wcoj``).  The knobs exist for differential testing
and ablation benchmarks, but five independent booleans make 32 nominal
configurations of which only a handful are meaningful.
:class:`ExecutionProfile` packages the knobs into one immutable value with
three named presets:

``FULL``
    Everything on — the production configuration (cost-based planning,
    id-native joins, streaming filter pushdown, id-native paths, and the
    leapfrog-triejoin operator for cyclic BGPs).

``ID_NATIVE``
    The id-native binary-join pipeline with the WCOJ operator pinned off.
    Any divergence between ``FULL`` and ``ID_NATIVE`` isolates the
    leapfrog operator.

``BASELINE``
    Planned, decoded, post-filtered term-level evaluation — the
    differential-testing oracle.  Joins run over boxed terms, FILTERs
    apply after the join, property paths use the spec's term-level ALP
    procedure.

Profiles are plain frozen dataclasses: ablations needing an unnamed
configuration use :meth:`ExecutionProfile.with_options`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import ClassVar


@dataclass(frozen=True)
class ExecutionProfile:
    """An immutable bundle of the evaluator's execution knobs."""

    name: str = "custom"
    #: Cost-based BGP planning (off recovers textual-order evaluation).
    use_planner: bool = True
    #: Execute planned BGPs over integer term ids on encoded backends.
    use_id_execution: bool = True
    #: Push FILTER conjuncts into the streaming join pipeline.
    use_filter_pushdown: bool = True
    #: Evaluate property paths through the id-native engine.
    use_id_paths: bool = True
    #: Allow the leapfrog-triejoin operator for cyclic all-triple BGPs.
    use_wcoj: bool = True

    BASELINE: ClassVar["ExecutionProfile"]
    ID_NATIVE: ClassVar["ExecutionProfile"]
    FULL: ClassVar["ExecutionProfile"]

    def with_options(self, **overrides) -> "ExecutionProfile":
        """Return a copy with the given knobs overridden.

        The derived profile is renamed ``custom`` unless an explicit
        ``name=`` override is part of ``overrides``.
        """
        overrides.setdefault("name", "custom")
        return replace(self, **overrides)

    def __str__(self) -> str:
        return self.name


ExecutionProfile.FULL = ExecutionProfile(name="full")
ExecutionProfile.ID_NATIVE = ExecutionProfile(name="id_native", use_wcoj=False)
ExecutionProfile.BASELINE = ExecutionProfile(
    name="baseline",
    use_id_execution=False,
    use_filter_pushdown=False,
    use_id_paths=False,
    use_wcoj=False,
)
