"""SPARQL algebra: graph pattern nodes and query forms.

The parser produces a tree of these nodes; both the reference evaluator and
the SparqLog translator walk the same tree.  The node set follows the
structure used in the paper (Section 5 / Appendix A): triple patterns,
property path patterns, joins, OPTIONAL (left join), UNION, MINUS, FILTER,
GRAPH, BIND, VALUES, grouping, and the SELECT / ASK query forms with their
solution modifiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.rdf.terms import IRI, Term, Triple, Variable
from repro.sparql.expressions import Aggregate, Expression
from repro.sparql.paths import PropertyPath


class GraphPatternNode:
    """Base class for graph pattern algebra nodes."""

    __slots__ = ()

    def variables(self) -> set:
        """Return the set of variables that may be bound by this pattern."""
        raise NotImplementedError

    def children(self) -> Sequence["GraphPatternNode"]:
        """Return sub-patterns (for generic tree traversals)."""
        return ()


@dataclass(frozen=True)
class TriplePatternNode(GraphPatternNode):
    """A single triple pattern."""

    triple: Triple

    def variables(self) -> set:
        return self.triple.variables()

    def __repr__(self) -> str:
        return f"TP{self.triple!r}"


@dataclass(frozen=True)
class PathPattern(GraphPatternNode):
    """A property path pattern ``subject path object``."""

    subject: Union[Term, Variable]
    path: PropertyPath
    object: Union[Term, Variable]

    def variables(self) -> set:
        return {part for part in (self.subject, self.object) if isinstance(part, Variable)}

    def __repr__(self) -> str:
        return f"Path({self.subject!r} {self.path!r} {self.object!r})"


@dataclass(frozen=True)
class BGP(GraphPatternNode):
    """A basic graph pattern: a conjunction of triple / path patterns."""

    patterns: Tuple[GraphPatternNode, ...]

    def variables(self) -> set:
        result = set()
        for pattern in self.patterns:
            result |= pattern.variables()
        return result

    def children(self) -> Sequence[GraphPatternNode]:
        return self.patterns

    def __repr__(self) -> str:
        return f"BGP({', '.join(map(repr, self.patterns))})"


@dataclass(frozen=True)
class Join(GraphPatternNode):
    """Join of two graph patterns (``P1 . P2`` at group level)."""

    left: GraphPatternNode
    right: GraphPatternNode

    def variables(self) -> set:
        return self.left.variables() | self.right.variables()

    def children(self) -> Sequence[GraphPatternNode]:
        return (self.left, self.right)


@dataclass(frozen=True)
class LeftJoin(GraphPatternNode):
    """OPTIONAL: ``left OPTIONAL { right FILTER condition }``.

    ``condition`` is ``None`` when the optional part has no embedded filter
    that must be scoped to the left join (the "Optional Filter" special
    case of Definition A.9).
    """

    left: GraphPatternNode
    right: GraphPatternNode
    condition: Optional[Expression] = None

    def variables(self) -> set:
        return self.left.variables() | self.right.variables()

    def children(self) -> Sequence[GraphPatternNode]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Union(GraphPatternNode):
    """UNION of two graph patterns (bag union)."""

    left: GraphPatternNode
    right: GraphPatternNode

    def variables(self) -> set:
        return self.left.variables() | self.right.variables()

    def children(self) -> Sequence[GraphPatternNode]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Minus(GraphPatternNode):
    """MINUS: remove mappings compatible (and domain-overlapping) with right."""

    left: GraphPatternNode
    right: GraphPatternNode

    def variables(self) -> set:
        return self.left.variables()

    def children(self) -> Sequence[GraphPatternNode]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Filter(GraphPatternNode):
    """FILTER: keep only mappings satisfying the constraint."""

    pattern: GraphPatternNode
    condition: Expression

    def variables(self) -> set:
        return self.pattern.variables()

    def children(self) -> Sequence[GraphPatternNode]:
        return (self.pattern,)


@dataclass(frozen=True)
class GraphGraphPattern(GraphPatternNode):
    """GRAPH g { P }: evaluate P against a named graph (IRI or variable)."""

    graph: Union[IRI, Variable]
    pattern: GraphPatternNode

    def variables(self) -> set:
        result = set(self.pattern.variables())
        if isinstance(self.graph, Variable):
            result.add(self.graph)
        return result

    def children(self) -> Sequence[GraphPatternNode]:
        return (self.pattern,)


@dataclass(frozen=True)
class Bind(GraphPatternNode):
    """BIND(expr AS ?var) appended to a group."""

    pattern: GraphPatternNode
    variable: Variable
    expression: Expression

    def variables(self) -> set:
        return self.pattern.variables() | {self.variable}

    def children(self) -> Sequence[GraphPatternNode]:
        return (self.pattern,)


@dataclass(frozen=True)
class ValuesPattern(GraphPatternNode):
    """Inline VALUES data block."""

    variables_list: Tuple[Variable, ...]
    rows: Tuple[Tuple[Optional[Term], ...], ...]

    def variables(self) -> set:
        return set(self.variables_list)


@dataclass(frozen=True)
class EmptyPattern(GraphPatternNode):
    """The empty group pattern ``{}`` (yields the single empty mapping)."""

    def variables(self) -> set:
        return set()


# ----------------------------------------------------------------------
# query forms
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OrderCondition:
    """One ORDER BY key: an expression plus sort direction."""

    expression: Expression
    ascending: bool = True


@dataclass(frozen=True)
class ProjectionItem:
    """One SELECT item: a plain variable or ``(expr AS ?var)``."""

    variable: Variable
    expression: Optional[Expression] = None


@dataclass(frozen=True)
class DatasetClause:
    """A FROM or FROM NAMED clause."""

    graph: IRI
    named: bool = False


class Query:
    """Base class for parsed queries."""

    __slots__ = ()


@dataclass(frozen=True)
class SelectQuery(Query):
    """A SELECT query with its solution modifiers."""

    projection: Tuple[ProjectionItem, ...]
    pattern: GraphPatternNode
    distinct: bool = False
    reduced: bool = False
    select_all: bool = False
    dataset_clauses: Tuple[DatasetClause, ...] = ()
    group_by: Tuple[Expression, ...] = ()
    having: Optional[Expression] = None
    order_by: Tuple[OrderCondition, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None

    def projected_variables(self) -> List[Variable]:
        """Return the output variables in projection order."""
        if self.select_all:
            return sorted(self.pattern.variables(), key=lambda v: v.name)
        return [item.variable for item in self.projection]

    def has_aggregates(self) -> bool:
        """Return True when the query groups or aggregates."""
        if self.group_by:
            return True
        return any(
            isinstance(item.expression, Aggregate)
            for item in self.projection
            if item.expression is not None
        )


@dataclass(frozen=True)
class AskQuery(Query):
    """An ASK query: does the pattern have at least one solution?"""

    pattern: GraphPatternNode
    dataset_clauses: Tuple[DatasetClause, ...] = ()


def walk(node: GraphPatternNode):
    """Yield every node of a graph pattern tree (pre-order)."""
    yield node
    for child in node.children():
        yield from walk(child)


def pattern_features(query: Query) -> set:
    """Return the set of SPARQL feature names used by a parsed query.

    Used by the benchmark feature analysis (Table 2) and the capability
    checks of the engines.
    """
    features = set()
    if isinstance(query, SelectQuery):
        features.add("SELECT")
        if query.distinct:
            features.add("DISTINCT")
        if query.order_by:
            features.add("ORDER BY")
        if query.limit is not None:
            features.add("LIMIT")
        if query.offset is not None:
            features.add("OFFSET")
        if query.group_by or query.has_aggregates():
            features.add("GROUP BY")
        if query.having is not None:
            features.add("HAVING")
        pattern = query.pattern
    elif isinstance(query, AskQuery):
        features.add("ASK")
        pattern = query.pattern
    else:
        return features

    from repro.sparql.paths import (
        AlternativePath,
        InversePath,
        NegatedPropertySet,
        OneOrMorePath,
        SequencePath,
        ZeroOrMorePath,
        ZeroOrOnePath,
    )

    def path_features(path) -> set:
        result = set()
        stack = [path]
        while stack:
            current = stack.pop()
            if isinstance(current, SequencePath):
                result.add("PathSequence")
                stack += [current.left, current.right]
            elif isinstance(current, AlternativePath):
                result.add("PathAlternative")
                stack += [current.left, current.right]
            elif isinstance(current, InversePath):
                result.add("PathInverse")
                stack.append(current.path)
            elif isinstance(current, OneOrMorePath):
                result.add("PathOneOrMore")
                stack.append(current.path)
            elif isinstance(current, ZeroOrMorePath):
                result.add("PathZeroOrMore")
                stack.append(current.path)
            elif isinstance(current, ZeroOrOnePath):
                result.add("PathZeroOrOne")
                stack.append(current.path)
            elif isinstance(current, NegatedPropertySet):
                result.add("PathNegated")
        return result

    for node in walk(pattern):
        if isinstance(node, LeftJoin):
            features.add("OPTIONAL")
        elif isinstance(node, Union):
            features.add("UNION")
        elif isinstance(node, Minus):
            features.add("MINUS")
        elif isinstance(node, Filter):
            features.add("FILTER")
            for subexpr in _walk_expression(node.condition):
                from repro.sparql.expressions import FunctionCall

                if isinstance(subexpr, FunctionCall) and subexpr.name.upper() == "REGEX":
                    features.add("REGEX")
        elif isinstance(node, GraphGraphPattern):
            features.add("GRAPH")
        elif isinstance(node, Bind):
            features.add("BIND")
        elif isinstance(node, ValuesPattern):
            features.add("VALUES")
        elif isinstance(node, PathPattern):
            features.add("PropertyPath")
            features |= path_features(node.path)
        elif isinstance(node, (TriplePatternNode, BGP, Join)):
            features.add("BGP")
    return features


def _walk_expression(expression: Expression):
    """Yield every sub-expression of an expression tree."""
    from repro.sparql.expressions import (
        And,
        Arithmetic,
        Comparison,
        FunctionCall,
        InExpr,
        Not,
        Or,
        UnaryMinus,
    )

    yield expression
    if isinstance(expression, (And, Or, Comparison, Arithmetic)):
        yield from _walk_expression(expression.left)
        yield from _walk_expression(expression.right)
    elif isinstance(expression, (Not, UnaryMinus)):
        yield from _walk_expression(expression.operand)
    elif isinstance(expression, FunctionCall):
        for argument in expression.arguments:
            yield from _walk_expression(argument)
    elif isinstance(expression, InExpr):
        yield from _walk_expression(expression.operand)
        for option in expression.options:
            yield from _walk_expression(option)
