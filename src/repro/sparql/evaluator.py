"""Reference SPARQL 1.1 evaluator with bag semantics.

The evaluator implements the W3C SPARQL algebra directly over a
:class:`repro.rdf.Dataset`.  It serves two roles in the reproduction:

* it is the standard-compliant "Jena Fuseki"-style baseline used in the
  compliance and performance experiments, and
* it provides the ground truth against which the SparqLog translation is
  differentially tested.

Property-path evaluation follows the spec's ALP procedure: closure
operators (``?``, ``*``, ``+``) are evaluated per start node with set
semantics, all other path operators preserve duplicates.  Like Jena's ARQ
engine, a recursive path with two unbound endpoints is evaluated by
running the per-node expansion from every node of the active graph — this
is what makes the native engine slow on the gMark workloads, matching the
performance shape reported in the paper.

Basic graph patterns are evaluated through the cost-based planner in
:mod:`repro.sparql.plan` and the physical operator layer in
:mod:`repro.sparql.physical`: triple and path patterns are greedily
reordered by estimated cardinality, lowered to a physical operator DAG
(term- or id-space per backend capability, with a leapfrog-triejoin
operator for cyclic BGPs) and executed as a streaming pipeline, so ASK
and plain LIMIT queries short-circuit instead of materialising the full
join.  The execution knobs are configured through
:class:`repro.sparql.profile.ExecutionProfile` (``profile=`` — presets
``FULL`` / ``ID_NATIVE`` / ``BASELINE``); ``use_planner=False`` recovers
the naive textual-order evaluation (used as the differential-testing
baseline and by the planner benchmarks) and the remaining knobs map onto
:class:`repro.sparql.physical.LoweringOptions`.  The historical boolean
constructor kwargs still work but emit a ``DeprecationWarning``.
"""

from __future__ import annotations

import warnings
import weakref
from collections import OrderedDict, defaultdict, deque
from dataclasses import dataclass, field
from itertools import islice
from time import perf_counter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.rdf.graph import Dataset, Graph
from repro.rdf.terms import IRI, Literal, Term, Triple, Variable, term_sort_key
from repro.sparql.algebra import (
    AskQuery,
    BGP,
    Bind,
    DatasetClause,
    EmptyPattern,
    Filter,
    GraphGraphPattern,
    GraphPatternNode,
    Join,
    LeftJoin,
    Minus,
    OrderCondition,
    PathPattern,
    ProjectionItem,
    Query,
    SelectQuery,
    TriplePatternNode,
    Union as UnionNode,
    ValuesPattern,
)
from repro.sparql.expressions import (
    Aggregate,
    Expression,
    conjuncts,
    evaluate as evaluate_expression,
    satisfies,
)
from repro.sparql.functions import ExpressionError
from repro.sparql import physical
from repro.sparql.idpaths import IdPathEngine, supports_id_paths
from repro.sparql.plan import (
    BGPPlan,
    match_triple,
    plan_bgp,
)
from repro.sparql.paths import (
    AlternativePath,
    InversePath,
    LinkPath,
    NegatedPropertySet,
    OneOrMorePath,
    PropertyPath,
    SequencePath,
    ZeroOrMorePath,
    ZeroOrOnePath,
    matches_zero_length,
    normalize_path,
)
from repro.sparql.profile import ExecutionProfile
from repro.sparql.solutions import Binding, EMPTY_BINDING, SolutionSequence
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


class EvaluationError(RuntimeError):
    """Raised when a query cannot be evaluated (unsupported construct)."""


#: Sentinel distinguishing "knob not passed" from an explicit value, so
#: the deprecation shim only fires for callers actually using the old
#: boolean-kwarg surface.
_UNSET = object()


@dataclass
class ExplainAnalyzeReport:
    """Result of :meth:`SparqlEvaluator.explain_analyze`.

    ``text`` is the rendered operator tree (what ``str(report)`` gives);
    ``plan`` keeps the executed :class:`~repro.sparql.physical.PhysicalPlan`
    so callers can inspect :meth:`~repro.sparql.physical.PhysicalPlan.analysis`
    programmatically.
    """

    text: str
    plan: "physical.PhysicalPlan" = field(repr=False)
    total_seconds: float = 0.0
    rows: int = 0

    def __str__(self) -> str:
        return self.text


class SparqlEvaluator:
    """Direct algebra evaluator over an RDF dataset."""

    #: Upper bound on cached BGP plans (LRU-evicted beyond this).
    PLAN_CACHE_SIZE = 256

    def __init__(
        self,
        dataset: Dataset,
        use_planner: bool = _UNSET,
        use_id_execution: bool = _UNSET,
        use_filter_pushdown: bool = _UNSET,
        use_id_paths: bool = _UNSET,
        use_wcoj: bool = _UNSET,
        tracer: Optional[Tracer] = None,
        profile: Optional[ExecutionProfile] = None,
    ) -> None:
        self.dataset = dataset
        # The boolean knobs are a deprecated spelling of ExecutionProfile:
        # explicit values are folded into a custom profile (with a
        # DeprecationWarning); new code passes profile= directly.
        legacy = {
            name: value
            for name, value in (
                ("use_planner", use_planner),
                ("use_id_execution", use_id_execution),
                ("use_filter_pushdown", use_filter_pushdown),
                ("use_id_paths", use_id_paths),
                ("use_wcoj", use_wcoj),
            )
            if value is not _UNSET
        }
        if legacy:
            warnings.warn(
                "SparqlEvaluator's boolean knobs (use_planner, "
                "use_id_execution, use_filter_pushdown, use_id_paths, "
                "use_wcoj) are deprecated; pass "
                "profile=ExecutionProfile(...) instead "
                "(see docs/MIGRATION.md)",
                DeprecationWarning,
                stacklevel=2,
            )
            if profile is not None:
                raise ValueError(
                    "pass either profile= or the legacy use_* knobs, not both"
                )
            profile = ExecutionProfile.FULL.with_options(**legacy)
        elif profile is None:
            profile = ExecutionProfile.FULL
        #: The resolved execution profile; the knob attributes below are
        #: read-only views of it kept for the internal call sites.
        self.profile = profile
        self.use_planner = profile.use_planner
        # Execute planned BGPs entirely over integer term ids when the
        # active graph is an encoded store (decode only at the result
        # boundary); off recovers the decoded-Term join pipeline.
        self.use_id_execution = profile.use_id_execution
        # Push FILTER conjuncts over planned BGPs into the streaming
        # pipeline (earliest step binding their variables); off recovers
        # the evaluate-then-post-filter baseline.
        self.use_filter_pushdown = profile.use_filter_pushdown
        # Evaluate property paths through the id-native engine
        # (repro.sparql.idpaths) when the active graph exposes the id
        # navigation surface; off recovers the term-level ALP procedure
        # on every backend (the differential baseline).
        self.use_id_paths = profile.use_id_paths
        # Allow the lowering pass to pick the leapfrog-triejoin operator
        # for cyclic all-triple BGPs over a sorted-id-capable graph; off
        # pins every planned BGP to the binary index-nested-loop join.
        self.use_wcoj = profile.use_wcoj
        # The most recent physical plan produced by lowering — inspection
        # hook for tests, benchmarks and explain()-style tooling.
        self.last_physical_plan: Optional[physical.PhysicalPlan] = None
        # Small LRU of IdPathEngine per graph so repeated path steps —
        # including ones alternating across GRAPH clauses — share each
        # graph's node-set cache instead of rebuilding it per pattern.
        # Strong references on purpose: the engine itself holds the
        # graph, so an entry pins exactly the graphs recently queried
        # (usually ones the dataset owns anyway), bounded by the LRU
        # size; id() keys stay valid precisely because the values keep
        # their graphs alive.
        self._path_engine_cache: "OrderedDict[int, IdPathEngine]" = OrderedDict()
        # BGP plans keyed by (graph identity, graph version, pattern tuple):
        # repeated workload queries skip re-planning, and any mutation of
        # the graph bumps its version stamp, invalidating stale entries.
        # Values pair the plan with a weakref to the graph that produced
        # it, guarding against id() reuse after garbage collection.
        self._plan_cache: "OrderedDict[Tuple, Tuple[weakref.ref, BGPPlan]]" = (
            OrderedDict()
        )
        # Lowered physical plans, keyed like the plan cache plus the
        # FILTER conjuncts and the lowering options, so repeated queries
        # skip operator construction and eligibility analysis too.
        self._physical_cache: "OrderedDict[Tuple, Tuple[weakref.ref, physical.PhysicalPlan]]" = (
            OrderedDict()
        )
        # Optional span tracer: when attached (and enabled) the evaluator
        # opens plan / lower / execute phase spans and samples per-operator
        # summaries at stream exhaustion.  ``None`` keeps the hot paths on
        # a single identity check.
        self.tracer = tracer
        # Metrics registry: cache traffic counts as plain slotted-counter
        # increments, live sizes as collection-time callbacks.  Exposed
        # for store binding (bind_store_metrics) and Prometheus rendering;
        # :meth:`metrics` snapshots it.
        self.metrics_registry = MetricsRegistry()
        registry = self.metrics_registry
        self._logical_plan_hits = registry.counter(
            "sparql_plan_cache_hits_total", "Logical BGP plan cache hits"
        )
        self._logical_plan_misses = registry.counter(
            "sparql_plan_cache_misses_total",
            "Logical BGP plans built fresh (cache misses)",
        )
        self._physical_plan_hits = registry.counter(
            "sparql_physical_cache_hits_total", "Lowered physical plan cache hits"
        )
        self._physical_plan_misses = registry.counter(
            "sparql_physical_cache_misses_total",
            "Physical plans lowered fresh (cache misses)",
        )
        self._cache_evictions = registry.counter(
            "sparql_plan_cache_evictions_total",
            "Plan/physical cache entries evicted (LRU overflow or dead graph)",
        )
        self._wcoj_fallbacks = registry.counter(
            "sparql_wcoj_fallback_total",
            "GYO-cyclic BGPs where WCOJ selection was structurally rejected",
        )
        registry.gauge(
            "sparql_plan_cache_size",
            "Live logical plan cache entries",
            callback=lambda: len(self._plan_cache),
        )
        registry.gauge(
            "sparql_physical_cache_size",
            "Live physical plan cache entries",
            callback=lambda: len(self._physical_cache),
        )

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def plan_cache_hits(self) -> int:
        """Deprecated alias for the cache-hit counters (combined).

        A physical-cache hit subsumes the logical lookup, so this keeps
        the historical meaning — "evaluations that skipped planning" —
        as logical plus physical hits.  Prefer :meth:`metrics` for the
        split counters.
        """
        return self._logical_plan_hits.value + self._physical_plan_hits.value

    @property
    def plan_cache_misses(self) -> int:
        """Deprecated alias for logical plans built fresh.

        Prefer :meth:`metrics`, which also exposes the physical-cache
        miss count this alias never covered.
        """
        return self._logical_plan_misses.value

    def metrics(self) -> Dict[str, object]:
        """Snapshot every registered metric (cache traffic, sizes, ...).

        Plain dict keyed by metric name; store-level counters appear here
        too once bound via
        :func:`repro.obs.metrics.bind_store_metrics`.
        """
        return self.metrics_registry.snapshot()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def evaluate(self, query: Query) -> Union[SolutionSequence, bool]:
        """Evaluate a parsed query.

        SELECT queries return a :class:`SolutionSequence`; ASK queries
        return a boolean.  With a :attr:`tracer` attached, the whole
        evaluation runs inside a ``query``-category span; the plan /
        lower / execute phase spans nest under it.
        """
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            with tracer.span("evaluate", category="query", form=type(query).__name__):
                return self._dispatch(query)
        return self._dispatch(query)

    def _dispatch(self, query: Query) -> Union[SolutionSequence, bool]:
        if isinstance(query, SelectQuery):
            return self._evaluate_select(query)
        if isinstance(query, AskQuery):
            return self._evaluate_ask(query)
        raise EvaluationError(f"unsupported query form {type(query).__name__}")

    # ------------------------------------------------------------------
    # dataset handling
    # ------------------------------------------------------------------
    def _active_dataset(self, clauses: Sequence[DatasetClause]) -> Dataset:
        """Build the dataset the query runs against from FROM clauses."""
        if not clauses:
            return self.dataset
        default = Graph()
        named: Dict[IRI, Graph] = {}
        for clause in clauses:
            graph = self.dataset.named_graphs.get(clause.graph)
            if graph is None and clause.graph not in self.dataset.named_graphs:
                # FROM over the conventional "default" IRI maps to the default graph.
                graph = self.dataset.default_graph
            if graph is None:
                graph = Graph()
            if clause.named:
                named[clause.graph] = graph
            else:
                default.update(graph)
        return Dataset(default, named)

    # ------------------------------------------------------------------
    # query forms
    # ------------------------------------------------------------------
    def _evaluate_select(self, query: SelectQuery) -> SolutionSequence:
        dataset = self._active_dataset(query.dataset_clauses)
        bindings = self._eval_select_pattern(query, dataset)
        if query.has_aggregates():
            bindings = self._apply_grouping(query, bindings)
        else:
            bindings = self._apply_projection_expressions(query, bindings)
        if query.having is not None and not query.group_by and not query.has_aggregates():
            bindings = [b for b in bindings if satisfies(query.having, b)]
        if query.order_by:
            bindings = self._apply_order_by(query.order_by, bindings)
        variables = query.projected_variables()
        projected = [binding.project(variables) for binding in bindings]
        if query.distinct or query.reduced:
            seen = set()
            unique: List[Binding] = []
            for binding in projected:
                if binding not in seen:
                    seen.add(binding)
                    unique.append(binding)
            projected = unique
        if query.offset:
            projected = projected[query.offset:]
        if query.limit is not None:
            projected = projected[: query.limit]
        return SolutionSequence(variables, projected)

    def _eval_select_pattern(
        self, query: SelectQuery, dataset: Dataset
    ) -> List[Binding]:
        """Evaluate a SELECT query's pattern, short-circuiting when safe.

        A query whose only solution modifiers are LIMIT/OFFSET consumes
        exactly ``offset + limit`` solutions from the streaming pipeline;
        anything involving ordering, grouping or DISTINCT needs the full
        multiset.
        """
        stream = self._eval_pattern_stream(
            query.pattern, dataset.default_graph, dataset
        )
        can_short_circuit = (
            query.limit is not None
            and not query.order_by
            and not query.distinct
            and not query.reduced
            and not query.has_aggregates()
            and query.having is None
        )
        if can_short_circuit:
            results = list(islice(stream, (query.offset or 0) + query.limit))
            # Close the abandoned tail deterministically: the pipeline's
            # finally blocks flush their batched counters (and any open
            # trace span finishes) now, not at garbage collection.
            close = getattr(stream, "close", None)
            if close is not None:
                close()
            return results
        return list(stream)

    def _evaluate_ask(self, query: AskQuery) -> bool:
        dataset = self._active_dataset(query.dataset_clauses)
        stream = self._eval_pattern_stream(
            query.pattern, dataset.default_graph, dataset
        )
        try:
            return next(iter(stream), None) is not None
        finally:
            # As in the LIMIT short-circuit: flush the pipeline's batched
            # counters by closing the stream instead of waiting for GC.
            close = getattr(stream, "close", None)
            if close is not None:
                close()

    # ------------------------------------------------------------------
    # graph pattern evaluation
    # ------------------------------------------------------------------
    def _eval_pattern(
        self,
        node: GraphPatternNode,
        active_graph: Graph,
        dataset: Dataset,
    ) -> List[Binding]:
        if isinstance(node, EmptyPattern):
            return [EMPTY_BINDING]
        if isinstance(node, TriplePatternNode):
            return self._eval_triple_pattern(node.triple, active_graph)
        if isinstance(node, PathPattern):
            return self._eval_path_pattern(node, active_graph)
        if isinstance(node, BGP):
            if self._plannable_bgp(node):
                return list(self._eval_bgp_stream(node, active_graph))
            results = [EMPTY_BINDING]
            for pattern in node.patterns:
                partial = self._eval_pattern(pattern, active_graph, dataset)
                results = self._join(results, partial)
                if not results:
                    return []
            return results
        if isinstance(node, Join):
            left = self._eval_pattern(node.left, active_graph, dataset)
            if not left:
                return []
            right = self._eval_pattern(node.right, active_graph, dataset)
            return self._join(left, right)
        if isinstance(node, LeftJoin):
            return self._eval_left_join(node, active_graph, dataset)
        if isinstance(node, UnionNode):
            left = self._eval_pattern(node.left, active_graph, dataset)
            right = self._eval_pattern(node.right, active_graph, dataset)
            return left + right
        if isinstance(node, Minus):
            return self._eval_minus(node, active_graph, dataset)
        if isinstance(node, Filter):
            pushed = self._try_filter_pushdown(node, active_graph, dataset)
            if pushed is not None:
                return list(pushed)
            inner = self._eval_pattern(node.pattern, active_graph, dataset)
            return [binding for binding in inner if satisfies(node.condition, binding)]
        if isinstance(node, GraphGraphPattern):
            return self._eval_graph(node, dataset)
        if isinstance(node, Bind):
            return self._eval_bind(node, active_graph, dataset)
        if isinstance(node, ValuesPattern):
            return self._eval_values(node)
        raise EvaluationError(f"unsupported pattern node {type(node).__name__}")

    def _plannable_bgp(self, node: BGP) -> bool:
        """A BGP is planned when enabled and built only of triple/path patterns."""
        return self.use_planner and all(
            isinstance(pattern, (TriplePatternNode, PathPattern))
            for pattern in node.patterns
        )

    @staticmethod
    def _as_bgp(node: GraphPatternNode) -> GraphPatternNode:
        """Promote a lone triple/path pattern to a singleton BGP.

        The parser emits bare pattern nodes for one-pattern groups; the
        pushdown helpers work on BGPs, so wrapping lets single-pattern
        OPTIONAL and MINUS sides join the streaming pipeline too.
        """
        if isinstance(node, (TriplePatternNode, PathPattern)):
            return BGP((node,))
        return node

    def _try_filter_pushdown(
        self, node: Filter, active_graph: Graph, dataset: Dataset
    ) -> Optional[Iterator[Binding]]:
        """Stream a FILTER stack with conditions pushed into the pipeline.

        Peels nested FILTER wrappers down to the pattern they scope over.
        When that is a plannable BGP, the conjuncts are attached to the
        earliest physical operator binding their variables and the whole
        stack evaluates in one streaming pass.  When it is a MINUS whose
        *left* side is (a FILTER stack over) a plannable BGP, the
        conjuncts push into that left pipeline — sound because MINUS is a
        per-row selection on the left multiset that leaves bindings
        untouched, so ``FILTER(MINUS(L, R), c)`` ≡ ``MINUS(FILTER(L, c),
        R)``.  Returns ``None`` when pushdown does not apply (disabled,
        or no eligible shape).
        """
        if not self.use_filter_pushdown:
            return None
        conditions: List[Expression] = []
        current: GraphPatternNode = node
        while isinstance(current, Filter):
            conditions.extend(conjuncts(current.condition))
            current = current.pattern
        if isinstance(current, BGP) and self._plannable_bgp(current):
            return self._eval_bgp_stream(current, active_graph, tuple(conditions))
        if isinstance(current, Minus):
            left: GraphPatternNode = current.left
            while isinstance(left, Filter):
                conditions.extend(conjuncts(left.condition))
                left = left.pattern
            left = self._as_bgp(left)
            if isinstance(left, BGP) and self._plannable_bgp(left):
                return self._minus_stream(
                    left, tuple(conditions), current.right, active_graph, dataset
                )
        return None

    def _minus_stream(
        self,
        left_bgp: BGP,
        conditions: Tuple[Expression, ...],
        right_node: GraphPatternNode,
        active_graph: Graph,
        dataset: Dataset,
    ) -> Iterator[Binding]:
        """Stream MINUS over a filtered left BGP pipeline.

        The right side is evaluated lazily, on the first surviving left
        row, so an empty (or fully filtered) left side never pays for the
        right pattern — mirroring the materialising evaluator's
        short-circuit.
        """
        right: Optional[List[Binding]] = None
        for left_binding in self._eval_bgp_stream(left_bgp, active_graph, conditions):
            if right is None:
                right = self._eval_pattern(right_node, active_graph, dataset)
            excluded = False
            for right_binding in right:
                shared = left_binding.variables() & right_binding.variables()
                if shared and left_binding.is_compatible(right_binding):
                    excluded = True
                    break
            if not excluded:
                yield left_binding

    def _lowering_options(self) -> physical.LoweringOptions:
        """Map the evaluator's compatibility knobs onto lowering options."""
        return physical.LoweringOptions(
            id_execution=self.use_id_execution,
            filter_pushdown=self.use_filter_pushdown,
            id_paths=self.use_id_paths,
            wcoj=self.use_wcoj,
        )

    def _lower_bgp(
        self,
        node: BGP,
        active_graph: Graph,
        conditions: Tuple[Expression, ...] = (),
    ) -> physical.PhysicalPlan:
        """Plan + lower a BGP to a physical operator DAG, caching both.

        Lowering (operator construction, WCOJ eligibility analysis) is
        pure in the pattern tuple, the FILTER conjuncts, the lowering
        options and the graph statistics, so lowered plans are cached
        under the same version-stamp discipline as logical plans.  A hit
        here counts as a plan-cache hit: it subsumes the logical lookup.
        Cached plans share their ``OperatorStats`` objects, but the
        executor resets them at the start of every execution, so each run
        reports its own counters (``execute(..., reset_stats=False)``
        opts back into accumulation).
        """
        version = getattr(active_graph, "version", None)
        key = None
        if version is not None:
            cache = self._physical_cache
            knobs = (
                self.use_id_execution,
                self.use_filter_pushdown,
                self.use_id_paths,
                self.use_wcoj,
            )
            try:
                key = (id(active_graph), version, node.patterns, conditions, knobs)
                cached = cache.get(key)
            except TypeError:  # unhashable pattern or condition component
                key = None
                cached = None
            if cached is not None:
                graph_ref, physical_plan = cached
                # Same id()-reuse guard as the logical plan cache.  No
                # move_to_end here: recency upkeep would re-hash the whole
                # key on the hot path, so eviction is insertion-ordered —
                # fine for a cache that exists to amortise repeat queries.
                if graph_ref() is active_graph:
                    self._physical_plan_hits.inc()
                    self.last_physical_plan = physical_plan
                    return physical_plan
        self._physical_plan_misses.inc()
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            with tracer.span("plan"):
                plan = self._bgp_plan(node, active_graph)
            with tracer.span("lower") as span:
                physical_plan = physical.lower_plan(
                    plan,
                    active_graph,
                    conditions=conditions,
                    options=self._lowering_options(),
                )
                span.annotate(space=physical_plan.space)
                if physical_plan.wcoj_fallback is not None:
                    span.annotate(wcoj_fallback=physical_plan.wcoj_fallback)
        else:
            plan = self._bgp_plan(node, active_graph)
            physical_plan = physical.lower_plan(
                plan,
                active_graph,
                conditions=conditions,
                options=self._lowering_options(),
            )
        if physical_plan.wcoj_fallback is not None:
            # Counted per fresh lowering, not per execution: the physical
            # cache replays the same decision without re-analysing it.
            self._wcoj_fallbacks.inc()
        if key is not None:
            cache = self._physical_cache
            dead = [
                stale_key
                for stale_key, (graph_ref, _) in cache.items()
                if graph_ref() is None
            ]
            for stale_key in dead:
                del cache[stale_key]
            self._cache_evictions.inc(len(dead))
            cache[key] = (weakref.ref(active_graph), physical_plan)
            if len(cache) > self.PLAN_CACHE_SIZE:
                cache.popitem(last=False)
                self._cache_evictions.inc()
        self.last_physical_plan = physical_plan
        return physical_plan

    def _eval_bgp_stream(
        self,
        node: BGP,
        active_graph: Graph,
        conditions: Tuple[Expression, ...] = (),
    ) -> Iterator[Binding]:
        """Plan, lower and stream a BGP through the physical executor.

        ``conditions`` are FILTER conjuncts scoped over the BGP; the
        lowering pass attaches each to the earliest operator binding its
        variables so non-qualifying rows die before later joins multiply
        them.  The choice of term-space vs id-space operators — and of
        the leapfrog-triejoin operator for cyclic BGPs — is made by the
        lowering pass per backend capability, shaped by the evaluator's
        compatibility knobs.
        """
        physical_plan = self._lower_bgp(node, active_graph, conditions)
        engine = (
            self._id_path_engine(active_graph)
            if physical_plan.space == "id" and self.use_id_paths
            else None
        )
        stream = physical.execute(
            physical_plan,
            active_graph,
            path_evaluator=self._eval_path_pattern,
            path_engine=engine,
        )
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            return self._traced_execution(physical_plan, stream, tracer)
        return stream

    def _traced_execution(
        self,
        physical_plan: physical.PhysicalPlan,
        stream: Iterator[Binding],
        tracer: Tracer,
    ) -> Iterator[Binding]:
        """Wrap a BGP execution stream in an ``execute`` span.

        The span covers first ``next()`` to exhaustion (or close: LIMIT /
        ASK short-circuits still finish it, via ``GeneratorExit``), and
        per-operator summaries are sampled once at stream exit as
        zero-duration events from the counters the batched flush points
        just populated — a handful of span records per query, never one
        per row.
        """
        with tracer.span("execute", space=physical_plan.space) as span:
            rows = 0
            try:
                for binding in stream:
                    rows += 1
                    yield binding
            finally:
                span.annotate(rows=rows)
                if physical_plan.wcoj_fallback is not None:
                    span.annotate(wcoj_fallback=physical_plan.wcoj_fallback)
                # Sample raw stats directly — describe() renders pattern
                # strings, far too costly for a per-execution hook.
                for operator in physical_plan.operators():
                    stats = operator.stats
                    tracer.event(
                        type(operator).__name__,
                        category="operator",
                        duration=stats.seconds,
                        rows=stats.rows,
                        probes=stats.probes,
                    )

    def explain(self, query: Query) -> str:
        """Render the physical operator plan for a query's pattern.

        Supports queries whose pattern is a planned BGP, optionally
        wrapped in FILTER nodes (the conjuncts show up as ``Filter``
        operators or leapfrog level filters).  The lowered plan is also
        left in :attr:`last_physical_plan` so callers can execute-then-
        inspect per-operator counters.
        """
        conditions: List[Expression] = []
        pattern: GraphPatternNode = query.pattern
        while isinstance(pattern, Filter):
            conditions.extend(conjuncts(pattern.condition))
            pattern = pattern.pattern
        if not isinstance(pattern, BGP) or not self._plannable_bgp(pattern):
            raise EvaluationError(
                "explain() supports planned BGPs (optionally FILTER-wrapped); "
                f"got {type(pattern).__name__}"
            )
        dataset = self._active_dataset(query.dataset_clauses)
        physical_plan = self._lower_bgp(
            pattern, dataset.default_graph, tuple(conditions)
        )
        return physical_plan.explain()

    def explain_analyze(self, query: Union[str, Query]) -> ExplainAnalyzeReport:
        """Execute a query's planned BGP and render the measured plan.

        Accepts a query string (parsed here, under a ``parse`` span when
        a tracer is attached) or a parsed query; supports the same shapes
        as :meth:`explain` — a planned BGP, optionally FILTER-wrapped.
        The plan executes with per-operator timing enabled
        (``execute(..., timed=True)``) and the stream is drained fully,
        so the report shows wall time, actual rows/probes, and the
        estimated-vs-actual cardinality error per operator — errors
        beyond 10x in either direction are flagged ``!``.  ``str()`` of
        the report is the rendered tree; the executed plan rides along
        for programmatic inspection.
        """
        if isinstance(query, str):
            from repro.sparql.parser import parse_query

            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                with tracer.span("parse"):
                    query = parse_query(query)
            else:
                query = parse_query(query)
        conditions: List[Expression] = []
        pattern: GraphPatternNode = query.pattern
        while isinstance(pattern, Filter):
            conditions.extend(conjuncts(pattern.condition))
            pattern = pattern.pattern
        pattern = self._as_bgp(pattern)
        if not isinstance(pattern, BGP) or not self._plannable_bgp(pattern):
            raise EvaluationError(
                "explain_analyze() supports planned BGPs (optionally "
                f"FILTER-wrapped); got {type(pattern).__name__}"
            )
        dataset = self._active_dataset(query.dataset_clauses)
        active_graph = dataset.default_graph
        physical_plan = self._lower_bgp(pattern, active_graph, tuple(conditions))
        engine = (
            self._id_path_engine(active_graph)
            if physical_plan.space == "id" and self.use_id_paths
            else None
        )
        stream = physical.execute(
            physical_plan,
            active_graph,
            path_evaluator=self._eval_path_pattern,
            path_engine=engine,
            timed=True,
        )
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            stream = self._traced_execution(physical_plan, stream, tracer)
        started = perf_counter()
        rows = sum(1 for _ in stream)
        total_seconds = perf_counter() - started
        return ExplainAnalyzeReport(
            text=physical_plan.explain_analyze(total_seconds=total_seconds),
            plan=physical_plan,
            total_seconds=total_seconds,
            rows=rows,
        )

    def _bgp_plan(self, node: BGP, active_graph: Graph) -> BGPPlan:
        """Return a (possibly cached) join plan for the BGP.

        Plans are pure functions of the pattern tuple and the graph
        statistics, so a cached plan is valid exactly while the graph's
        ``version`` stamp is unchanged.  Graphs without a version stamp,
        and patterns that are not hashable (exotic path operators), are
        planned afresh every time.
        """
        version = getattr(active_graph, "version", None)
        if version is None:
            return plan_bgp(active_graph, node.patterns)
        key = (id(active_graph), version, node.patterns)
        cache = self._plan_cache
        try:
            cached = cache.get(key)
        except TypeError:  # unhashable pattern component
            return plan_bgp(active_graph, node.patterns)
        if cached is not None:
            graph_ref, plan = cached
            # id() values can be reused after garbage collection, so the
            # entry only counts as a hit while the weakly-held graph that
            # produced it is still the graph being queried.
            if graph_ref() is active_graph:
                self._logical_plan_hits.inc()
                cache.move_to_end(key)
                return plan
        self._logical_plan_misses.inc()
        # A miss is the cheap moment to drop entries whose graph has been
        # collected: they can never hit again (the weakref is dead) yet
        # would otherwise squat in the LRU until SIZE evictions push them
        # out, crowding out plans for live graphs.
        dead = [
            stale_key
            for stale_key, (graph_ref, _) in cache.items()
            if graph_ref() is None
        ]
        for stale_key in dead:
            del cache[stale_key]
        self._cache_evictions.inc(len(dead))
        plan = plan_bgp(active_graph, node.patterns)
        cache[key] = (weakref.ref(active_graph), plan)
        if len(cache) > self.PLAN_CACHE_SIZE:
            cache.popitem(last=False)
            self._cache_evictions.inc()
        return plan

    def _eval_pattern_stream(
        self,
        node: GraphPatternNode,
        active_graph: Graph,
        dataset: Dataset,
    ) -> Iterator[Binding]:
        """Lazily evaluate a pattern where streaming helps.

        Planned BGPs and FILTERs over them stream; every other node falls
        back to the materialising :meth:`_eval_pattern`.  Used by ASK and by
        LIMIT-only SELECTs so they stop as soon as enough solutions exist.
        """
        if isinstance(node, BGP) and self._plannable_bgp(node):
            return self._eval_bgp_stream(node, active_graph)
        if isinstance(node, Filter):
            pushed = self._try_filter_pushdown(node, active_graph, dataset)
            if pushed is not None:
                return pushed
            inner = self._eval_pattern_stream(node.pattern, active_graph, dataset)
            return (
                binding for binding in inner if satisfies(node.condition, binding)
            )
        return iter(self._eval_pattern(node, active_graph, dataset))

    def _eval_triple_pattern(self, pattern: Triple, graph: Graph) -> List[Binding]:
        return list(match_triple(graph, pattern, EMPTY_BINDING))

    def _join(self, left: List[Binding], right: List[Binding]) -> List[Binding]:
        """Bag join of two solution multisets on compatible mappings.

        A hash join on the shared variables that are bound on both sides is
        used when possible; mappings where a shared variable is unbound
        fall back to the nested-loop compatibility check.
        """
        if not left or not right:
            return []
        left_vars = set()
        for binding in left:
            left_vars |= binding.variables()
        right_vars = set()
        for binding in right:
            right_vars |= binding.variables()
        shared = tuple(sorted(left_vars & right_vars, key=lambda v: v.name))
        results: List[Binding] = []
        if shared:
            index: Dict[Tuple, List[Binding]] = defaultdict(list)
            loose_right: List[Binding] = []
            for binding in right:
                key = tuple(binding.get(var) for var in shared)
                if any(value is None for value in key):
                    loose_right.append(binding)
                else:
                    index[key].append(binding)
            for left_binding in left:
                key = tuple(left_binding.get(var) for var in shared)
                if any(value is None for value in key):
                    # Some shared variable is unbound on the left: fall back
                    # to the compatibility check against the full right side.
                    for right_binding in right:
                        if left_binding.is_compatible(right_binding):
                            results.append(left_binding.merge(right_binding))
                    continue
                # Both sides bind every shared variable with equal values,
                # and any variable common to the two bindings is shared —
                # the mappings are compatible by construction.
                for right_binding in index.get(key, ()):
                    results.append(left_binding.merge(right_binding))
                for right_binding in loose_right:
                    if left_binding.is_compatible(right_binding):
                        results.append(left_binding.merge(right_binding))
        else:
            for left_binding in left:
                for right_binding in right:
                    if left_binding.is_compatible(right_binding):
                        results.append(left_binding.merge(right_binding))
        return results

    def _eval_left_join(
        self, node: LeftJoin, active_graph: Graph, dataset: Dataset
    ) -> List[Binding]:
        left = self._eval_pattern(node.left, active_graph, dataset)
        if not left:
            return []
        right, residual = self._eval_optional_right(node, active_graph, dataset)
        results: List[Binding] = []
        for left_binding in left:
            extended: List[Binding] = []
            for right_binding in right:
                if left_binding.is_compatible(right_binding):
                    merged = left_binding.merge(right_binding)
                    if all(satisfies(c, merged) for c in residual):
                        extended.append(merged)
            if extended:
                results.extend(extended)
            else:
                results.append(left_binding)
        return results

    def _eval_optional_right(
        self, node: LeftJoin, active_graph: Graph, dataset: Dataset
    ) -> Tuple[List[Binding], Tuple[Expression, ...]]:
        """Evaluate an OPTIONAL's right side, pushing eligible conjuncts.

        A conjunct of the OPTIONAL condition whose variables are all
        bound by the right-side BGP has the same verdict on the bare
        right row as on any merged row: the BGP binds every one of its
        variables, and merge compatibility forces shared values equal.
        Such conjuncts are pushed into the right pipeline (composing
        with FILTER wrappers already inside the OPTIONAL); the rest stay
        as residual conditions applied per merged pair.  Per-conjunct
        application is faithful to the conjunction: an errored conjunct
        reads as unsatisfied either way.
        """
        condition_conjuncts: Tuple[Expression, ...] = (
            tuple(conjuncts(node.condition)) if node.condition is not None else ()
        )
        if condition_conjuncts and self.use_filter_pushdown:
            inner_conditions: List[Expression] = []
            core: GraphPatternNode = node.right
            while isinstance(core, Filter):
                inner_conditions.extend(conjuncts(core.condition))
                core = core.pattern
            core = self._as_bgp(core)
            if isinstance(core, BGP) and self._plannable_bgp(core):
                core_variables = core.variables()
                pushed: List[Expression] = []
                kept: List[Expression] = []
                for conjunct in condition_conjuncts:
                    variables = conjunct.variables()
                    if variables and variables <= core_variables:
                        pushed.append(conjunct)
                    else:
                        kept.append(conjunct)
                if pushed:
                    rows = list(
                        self._eval_bgp_stream(
                            core,
                            active_graph,
                            tuple(inner_conditions) + tuple(pushed),
                        )
                    )
                    return rows, tuple(kept)
        right = self._eval_pattern(node.right, active_graph, dataset)
        return right, condition_conjuncts

    def _eval_minus(
        self, node: Minus, active_graph: Graph, dataset: Dataset
    ) -> List[Binding]:
        left = self._eval_pattern(node.left, active_graph, dataset)
        if not left:
            return []
        right = self._eval_pattern(node.right, active_graph, dataset)
        results: List[Binding] = []
        for left_binding in left:
            excluded = False
            for right_binding in right:
                shared = left_binding.variables() & right_binding.variables()
                if shared and left_binding.is_compatible(right_binding):
                    excluded = True
                    break
            if not excluded:
                results.append(left_binding)
        return results

    def _eval_graph(self, node: GraphGraphPattern, dataset: Dataset) -> List[Binding]:
        if isinstance(node.graph, Variable):
            results: List[Binding] = []
            for name, graph in dataset.named_graphs.items():
                inner = self._eval_pattern(node.pattern, graph, dataset)
                name_binding = Binding({node.graph: name})
                for binding in inner:
                    if binding.is_compatible(name_binding):
                        results.append(binding.merge(name_binding))
            return results
        graph = dataset.named_graphs.get(node.graph)
        if graph is None:
            return []
        return self._eval_pattern(node.pattern, graph, dataset)

    def _eval_bind(
        self, node: Bind, active_graph: Graph, dataset: Dataset
    ) -> List[Binding]:
        inner = self._eval_pattern(node.pattern, active_graph, dataset)
        results: List[Binding] = []
        for binding in inner:
            try:
                value = evaluate_expression(node.expression, binding)
            except ExpressionError:
                results.append(binding)
                continue
            if node.variable in binding and binding[node.variable] != value:
                continue
            results.append(binding.extend(node.variable, value))
        return results

    def _eval_values(self, node: ValuesPattern) -> List[Binding]:
        results: List[Binding] = []
        for row in node.rows:
            mapping = {
                variable: value
                for variable, value in zip(node.variables_list, row)
                if value is not None
            }
            results.append(Binding(mapping))
        return results

    # ------------------------------------------------------------------
    # property paths
    # ------------------------------------------------------------------
    def _eval_path_pattern(self, node: PathPattern, graph: Graph) -> List[Binding]:
        """Evaluate a path pattern, preferring the id-native engine.

        On an id-capable graph (the encoded store) paths run through
        :class:`repro.sparql.idpaths.IdPathEngine` — integer frontier
        sets, statistics-driven expansion direction, decode only at the
        result boundary.  ``use_id_paths=False`` (or a term-only backend)
        recovers the spec's term-level ALP procedure.
        """
        if self.use_id_paths:
            engine = self._id_path_engine(graph)
            if engine is not None:
                return engine.evaluate(node)
        return self._eval_path_pattern_terms(node, graph)

    #: Upper bound on cached per-graph path engines.
    PATH_ENGINE_CACHE_SIZE = 8

    def _id_path_engine(self, graph: Graph) -> Optional[IdPathEngine]:
        """Return the (cached) id path engine for ``graph``, or ``None``."""
        cache = self._path_engine_cache
        engine = cache.get(id(graph))
        if engine is not None and engine.graph is graph:
            cache.move_to_end(id(graph))
            return engine
        if not supports_id_paths(graph):
            return None
        engine = IdPathEngine(graph)
        cache[id(graph)] = engine
        if len(cache) > self.PATH_ENGINE_CACHE_SIZE:
            cache.popitem(last=False)
        return engine

    def _eval_path_pattern_terms(
        self, node: PathPattern, graph: Graph
    ) -> List[Binding]:
        path = normalize_path(node.path)
        subject, obj = node.subject, node.object
        pairs = self._path_pairs(path, graph, subject, obj)
        results: List[Binding] = []
        for start, end in pairs:
            mapping: Dict[Variable, Term] = {}
            if isinstance(subject, Variable):
                mapping[subject] = start
            elif subject != start:
                continue
            if isinstance(obj, Variable):
                if obj in mapping and mapping[obj] != end:
                    continue
                mapping[obj] = end
            elif obj != end:
                continue
            results.append(Binding(mapping))
        return results

    def _path_pairs(
        self,
        path: PropertyPath,
        graph: Graph,
        subject: Union[Term, Variable],
        obj: Union[Term, Variable],
    ) -> List[Tuple[Term, Term]]:
        """Return the (start, end) pairs matched by a path expression.

        Non-closure operators preserve duplicates; the closure operators
        return distinct pairs, following the SPARQL property-path
        semantics.
        """
        if isinstance(path, LinkPath):
            return [
                (triple.subject, triple.object)
                for triple in graph.triples(None, path.iri, None)
            ]
        if isinstance(path, InversePath):
            return [
                (end, start)
                for start, end in self._path_pairs(path.path, graph, obj, subject)
            ]
        if isinstance(path, AlternativePath):
            return self._path_pairs(path.left, graph, subject, obj) + self._path_pairs(
                path.right, graph, subject, obj
            )
        if isinstance(path, SequencePath):
            left_pairs = self._path_pairs(path.left, graph, subject, None)
            right_pairs = self._path_pairs(path.right, graph, None, obj)
            by_start: Dict[Term, List[Term]] = defaultdict(list)
            for start, end in right_pairs:
                by_start[start].append(end)
            if matches_zero_length(path.left):
                # A bound endpoint outside the graph self-pairs through a
                # zero-length left half, but the left extension only
                # self-pairs graph nodes; graft the missing pair so the
                # join can reach it (mirrors the id engine's per-middle
                # evaluation, which gets this for free).  When the middle
                # *is* the bound subject, the left extension already
                # contains the self-pair (the bound-endpoint zero rule) —
                # grafting again would double the solution.
                for middle in list(by_start):
                    if self._is_ground(subject) and subject == middle:
                        continue
                    if not self._is_graph_node(graph, middle):
                        left_pairs.append((middle, middle))
            right_zero = matches_zero_length(path.right)
            results: List[Tuple[Term, Term]] = []
            for start, middle in left_pairs:
                ends = by_start.get(middle)
                if ends is None:
                    # Symmetric graft: a non-node middle (a zero-length
                    # self-pair of a bound subject) matches a zero-length
                    # right half even though the right extension never
                    # mentions it.
                    if right_zero and not self._is_graph_node(graph, middle):
                        ends = (middle,)
                    else:
                        continue
                for end in ends:  # bag semantics
                    results.append((start, end))
            return results
        if isinstance(path, NegatedPropertySet):
            return self._negated_pairs(path, graph)
        if isinstance(path, ZeroOrOnePath):
            return self._zero_or_one_pairs(path, graph, subject, obj)
        if isinstance(path, OneOrMorePath):
            return self._closure_pairs(path.path, graph, subject, obj, include_zero=False)
        if isinstance(path, ZeroOrMorePath):
            return self._closure_pairs(path.path, graph, subject, obj, include_zero=True)
        raise EvaluationError(f"unsupported property path {path!r}")

    def _negated_pairs(
        self, path: NegatedPropertySet, graph: Graph
    ) -> List[Tuple[Term, Term]]:
        forbidden_forward = set(path.forward)
        forbidden_inverse = set(path.inverse)
        results: List[Tuple[Term, Term]] = []
        if path.forward or not path.inverse:
            for triple in graph:
                if triple.predicate not in forbidden_forward:
                    results.append((triple.subject, triple.object))
        if path.inverse:
            for triple in graph:
                if triple.predicate not in forbidden_inverse:
                    results.append((triple.object, triple.subject))
        return results

    @staticmethod
    def _is_graph_node(graph: Graph, term: Term) -> bool:
        """True when ``term`` occurs in subject or object position."""
        return bool(
            graph.subject_cardinality(term) or graph.object_cardinality(term)
        )

    @staticmethod
    def _is_ground(part: Union[Term, Variable, None]) -> bool:
        """True for a bound term endpoint (``None`` marks a free position).

        ``_path_pairs`` threads endpoint *hints* down the operator tree;
        a sequence hands its halves ``None`` for the shared middle, which
        must read as "free", never as a bindable term.
        """
        return part is not None and not isinstance(part, Variable)

    def _zero_pairs(
        self,
        graph: Graph,
        subject: Union[Term, Variable, None],
        obj: Union[Term, Variable, None],
    ) -> Set[Tuple[Term, Term]]:
        """Zero-length path pairs, including bound endpoints not in the graph."""
        pairs: Set[Tuple[Term, Term]] = {(node, node) for node in graph.nodes()}
        subject_is_term = self._is_ground(subject)
        object_is_term = self._is_ground(obj)
        if subject_is_term and not object_is_term:
            pairs.add((subject, subject))
        if object_is_term and not subject_is_term:
            pairs.add((obj, obj))
        if subject_is_term and object_is_term and subject == obj:
            pairs.add((subject, subject))
        return pairs

    def _zero_or_one_pairs(
        self,
        path: ZeroOrOnePath,
        graph: Graph,
        subject: Union[Term, Variable],
        obj: Union[Term, Variable],
    ) -> List[Tuple[Term, Term]]:
        pairs = set(self._zero_pairs(graph, subject, obj))
        pairs.update(self._path_pairs(path.path, graph, subject, obj))
        return list(pairs)

    def _closure_pairs(
        self,
        inner: PropertyPath,
        graph: Graph,
        subject: Union[Term, Variable, None],
        obj: Union[Term, Variable, None],
        include_zero: bool,
    ) -> List[Tuple[Term, Term]]:
        """Evaluate ``inner+`` / ``inner*`` with set semantics.

        Per-node breadth-first expansion in the style of the spec's ALP
        procedure.  When the subject is bound we expand only from it —
        and when the object is *also* bound, the expansion stops at the
        first sighting of the target instead of materialising the full
        reachable set.  When only the object is bound we expand
        backwards; otherwise we expand from every node in the graph (the
        expensive two-variable case).  ``None`` endpoints (sequence
        middles) count as free, exactly like fresh variables.
        """
        successors = self._single_step_function(inner, graph)
        pairs: Set[Tuple[Term, Term]] = set()

        def expand(start: Term, target: Optional[Term] = None) -> Set[Term]:
            reached: Set[Term] = set()
            frontier = deque(successors(start))
            while frontier:
                current = frontier.popleft()
                if current in reached:
                    continue
                reached.add(current)
                if target is not None and current == target:
                    # The caller only asks whether ``target`` is
                    # reachable: the rest of the closure is never needed.
                    return reached
                frontier.extend(successors(current))
            return reached

        if self._is_ground(subject):
            if self._is_ground(obj):
                if include_zero and subject == obj:
                    return [(subject, obj)]
                reachable = expand(subject, target=obj)
                return [(subject, obj)] if obj in reachable else []
            reachable = expand(subject)
            if include_zero:
                reachable = reachable | {subject}
            return [(subject, end) for end in reachable]

        if self._is_ground(obj):
            inverse = InversePath(inner)
            inverted = self._closure_pairs(inverse, graph, obj, subject, include_zero)
            return [(end, start) for start, end in inverted]

        # Two unbound endpoints: expand from every node of the graph.
        start_nodes = graph.nodes()
        for start in start_nodes:
            reachable = expand(start)
            if include_zero:
                reachable = reachable | {start}
            for end in reachable:
                pairs.add((start, end))
        if include_zero:
            pairs.update(self._zero_pairs(graph, subject, obj))
        return list(pairs)

    def _single_step_function(self, path: PropertyPath, graph: Graph):
        """Return a function mapping a node to its one-step path successors."""
        if isinstance(path, LinkPath):
            predicate = path.iri

            def link_step(node: Term) -> List[Term]:
                return [t.object for t in graph.triples(node, predicate, None)]

            return link_step

        if isinstance(path, InversePath) and isinstance(path.path, LinkPath):
            predicate = path.path.iri

            def inverse_step(node: Term) -> List[Term]:
                return [t.subject for t in graph.triples(None, predicate, node)]

            return inverse_step

        def generic_step(node: Term) -> List[Term]:
            return [
                end
                for start, end in self._path_pairs(path, graph, node, None)
                if start == node
            ]

        return generic_step

    # ------------------------------------------------------------------
    # solution modifiers
    # ------------------------------------------------------------------
    def _apply_projection_expressions(
        self, query: SelectQuery, bindings: List[Binding]
    ) -> List[Binding]:
        """Evaluate (expr AS ?var) projection items for non-grouped queries."""
        expression_items = [
            item for item in query.projection if item.expression is not None
        ]
        if not expression_items:
            return bindings
        results: List[Binding] = []
        for binding in bindings:
            extended = binding
            for item in expression_items:
                try:
                    value = evaluate_expression(item.expression, binding)
                except ExpressionError:
                    continue
                extended = extended.extend(item.variable, value)
            results.append(extended)
        return results

    def _apply_grouping(
        self, query: SelectQuery, bindings: List[Binding]
    ) -> List[Binding]:
        group_keys = query.group_by
        groups: Dict[Tuple, List[Binding]] = defaultdict(list)
        for binding in bindings:
            key_parts = []
            for key_expression in group_keys:
                try:
                    key_parts.append(evaluate_expression(key_expression, binding))
                except ExpressionError:
                    key_parts.append(None)
            groups[tuple(key_parts)].append(binding)
        if not group_keys:
            groups = {(): bindings}

        results: List[Binding] = []
        for key_parts, group in groups.items():
            if not group and not bindings:
                continue
            mapping: Dict[Variable, Term] = {}
            for key_expression, value in zip(group_keys, key_parts):
                from repro.sparql.expressions import VariableExpr

                if isinstance(key_expression, VariableExpr) and value is not None:
                    mapping[key_expression.variable] = value
            for item in query.projection:
                if item.expression is None:
                    if group and item.variable in group[0]:
                        mapping[item.variable] = group[0][item.variable]
                    continue
                if isinstance(item.expression, Aggregate):
                    value = self._evaluate_aggregate(item.expression, group)
                else:
                    try:
                        value = evaluate_expression(item.expression, group[0]) if group else None
                    except ExpressionError:
                        value = None
                if value is not None:
                    mapping[item.variable] = value
            candidate = Binding(mapping)
            if query.having is not None and not satisfies(query.having, candidate):
                continue
            results.append(candidate)
        return results

    def _evaluate_aggregate(
        self, aggregate: Aggregate, group: List[Binding]
    ) -> Optional[Term]:
        values: List[Term] = []
        if aggregate.argument is None:
            values = [Literal.from_python(1) for _ in group]
        else:
            for binding in group:
                try:
                    values.append(evaluate_expression(aggregate.argument, binding))
                except ExpressionError:
                    continue
        if aggregate.distinct:
            seen = set()
            unique: List[Term] = []
            for value in values:
                if value not in seen:
                    seen.add(value)
                    unique.append(value)
            values = unique
        operation = aggregate.operation.upper()
        if operation == "COUNT":
            return Literal.from_python(len(values))
        if not values:
            return None
        if operation == "SAMPLE":
            return values[0]
        if operation in ("MIN", "MAX"):
            ordered = sorted(values, key=term_sort_key)
            return ordered[0] if operation == "MIN" else ordered[-1]
        numeric: List[float] = []
        for value in values:
            if isinstance(value, Literal):
                as_python = value.as_python()
                if isinstance(as_python, (int, float)) and not isinstance(as_python, bool):
                    numeric.append(as_python)
        if not numeric:
            return None
        if operation == "SUM":
            total = sum(numeric)
            return Literal.from_python(int(total) if float(total).is_integer() else total)
        if operation == "AVG":
            return Literal.from_python(sum(numeric) / len(numeric))
        raise EvaluationError(f"unsupported aggregate {operation}")

    def _apply_order_by(
        self, conditions: Sequence[OrderCondition], bindings: List[Binding]
    ) -> List[Binding]:
        return apply_order_by(conditions, bindings)


def apply_order_by(
    conditions: Sequence[OrderCondition], bindings: List[Binding]
) -> List[Binding]:
    """Sort bindings by the ORDER BY conditions.

    SPARQL ranks an unbound (or errored) key lowest, and DESC reverses
    the whole ordering — so unbound rows sort strictly *first* under ASC
    and strictly *last* under DESC, matching the reference engines (Jena
    ARQ, Virtuoso).  The bound/unbound flag therefore participates in the
    direction: ASC keeps ``(0, unbound) < (1, bound)`` while DESC flips
    the flag and wraps the bound part in the comparison inverter, giving
    ``(0, bound-descending) < (1, unbound)``.  Within one flag value the
    compared shapes are always identical (both unbound, or both wrapped
    the same way).  Shared by the reference evaluator and the
    translated-solution engine so both stay order-consistent.
    """

    def sort_key(binding: Binding):
        key = []
        for condition in conditions:
            try:
                value = evaluate_expression(condition.expression, binding)
            except ExpressionError:
                value = None
            if value is None:
                key.append((0, ()) if condition.ascending else (1, ()))
            else:
                part = term_sort_key(value)
                key.append(
                    (1, part) if condition.ascending else (0, _Reversed(part))
                )
        return key

    return sorted(bindings, key=sort_key)


class _Reversed:
    """Wrapper inverting comparison order for DESC sort keys."""

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def __lt__(self, other: "_Reversed"):
        if not isinstance(other, _Reversed):
            return NotImplemented
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.value == self.value
