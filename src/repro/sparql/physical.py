"""Physical-operator execution layer: plan IR, lowering pass, executors.

Logical planning (:mod:`repro.sparql.plan`) stops at an ordered
:class:`~repro.sparql.plan.BGPPlan`; this module turns that logical plan
into an explicit *physical* plan — a small DAG of operator dataclasses —
and executes it.  The split gives every execution strategy one home:

* **IR** — :class:`Scan`, :class:`IndexNestedLoopJoin`,
  :class:`LeapfrogJoin`, :class:`Filter`, :class:`PathExpand` and
  :class:`Project` describe *how* a BGP runs.  Operators carry the
  estimates the lowering pass used plus mutable :class:`OperatorStats`
  row/probe counters filled in during execution, and the whole tree
  renders through :meth:`PhysicalPlan.explain`.

* **Lowering** — :func:`lower_plan` chooses term-space vs. id-space
  operators per *backend capability* (duck-typed store surfaces) rather
  than per evaluator knob: an id-capable graph gets the id-native
  pipeline, everything else the term pipeline, and the knobs of
  :class:`~repro.sparql.evaluator.SparqlEvaluator` merely map onto
  :class:`LoweringOptions`.  FILTER conjuncts arrive here and become
  :class:`Filter` operators wrapped around the earliest input that binds
  their variables (:func:`repro.sparql.plan.attach_filters`).

* **Executors** — :func:`execute` walks the DAG with streaming
  iterators.  The index-nested-loop pipelines (term- and id-space) moved
  here verbatim from ``plan.execute_plan`` / ``idexec.execute_plan_ids``,
  which survive as thin compatibility shims.

* **Worst-case-optimal join** — :class:`LeapfrogJoin` implements the
  leapfrog-triejoin of Veldhuizen over the encoded store's sorted id
  runs.  Binary join plans are provably suboptimal on cyclic join graphs
  (triangles, k-cliques blow up the best binary order to Θ(N²) on skewed
  data — "Skew Strikes Back", Ngo/Ré/Rudra 2013); the lowering pass
  detects cyclicity with a GYO ear-removal reduction and switches those
  BGPs to the multiway intersection, which enumerates one global variable
  order and intersects, per variable, the sorted candidate runs of every
  pattern containing it.  Acyclic BGPs keep the binary pipeline.

The greedy ordering machinery (:func:`greedy_order`,
:func:`select_cheapest`) lives here too and serves both
:func:`repro.sparql.plan.plan_bgp` and the Datalog engine's body-atom
ordering, so join ordering is no longer forked per engine.
"""

from __future__ import annotations

import logging
from bisect import bisect_left
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.rdf.terms import Variable
from repro.sparql.algebra import PathPattern, TriplePatternNode
from repro.sparql.expressions import (
    Comparison,
    Expression,
    FunctionCall,
    TermExpr,
    VariableExpr,
    satisfies,
)
from repro.sparql.idexec import IdFilter, supports_id_execution
from repro.sparql.idpaths import _ABSENT, IdPathEngine, supports_id_paths
from repro.sparql.paths import matches_zero_length, normalize_path
from repro.sparql.plan import (
    BGPPlan,
    PathEvaluator,
    StepFilters,
    _match_path,
    attach_filters,
    match_triple,
)
from repro.sparql.solutions import Binding, EMPTY_BINDING

logger = logging.getLogger(__name__)


# ----------------------------------------------------------------------
# shared greedy ordering (BGP planning and Datalog body ordering)
# ----------------------------------------------------------------------
def select_cheapest(items: Sequence, estimate: Callable, tie_key: Callable):
    """Return the item minimising ``(estimate(item), tie_key(item))``.

    The single tie-break rule shared by the BGP planner and the Datalog
    engine's body ordering: cost first, source position second, keeping
    both orderings deterministic.
    """
    best_item = None
    best_key = None
    for item in items:
        key = (estimate(item), tie_key(item))
        if best_key is None or key < best_key:
            best_key, best_item = key, item
    return best_item


def greedy_order(
    items: Sequence,
    variables_of: Callable[[object], Set],
    estimate: Callable[[object, Set], float],
) -> List[Tuple[int, object, float]]:
    """Greedily order ``items`` by estimated cardinality given bound variables.

    At each step the cheapest item among those sharing a variable with
    the already-bound set is chosen (all items qualify at the first step
    or when nothing is bound yet); a disconnected item — a Cartesian
    product — is only chosen when no connected item remains.  Ties fall
    back to source order.  Returns ``(source_index, item, estimate)``
    triples in execution order.  This is the ordering loop behind
    :func:`repro.sparql.plan.plan_bgp` and (through
    :func:`select_cheapest`) the Datalog engine's atom ordering.
    """
    remaining: List[Tuple[int, object]] = list(enumerate(items))
    bound: Set = set()
    ordered: List[Tuple[int, object, float]] = []
    while remaining:
        candidates = [
            (index, item)
            for index, item in remaining
            if not bound or not variables_of(item) or variables_of(item) & bound
        ]
        if not candidates:
            candidates = remaining
        best_index, best_item, best_estimate = None, None, None
        for index, item in candidates:
            cost = estimate(item, bound)
            if best_estimate is None or cost < best_estimate:
                best_index, best_item, best_estimate = index, item, cost
        ordered.append((best_index, best_item, best_estimate))
        bound |= variables_of(best_item)
        remaining = [(i, it) for i, it in remaining if i != best_index]
    return ordered


# ----------------------------------------------------------------------
# join-graph cyclicity (GYO ear-removal reduction)
# ----------------------------------------------------------------------
def is_cyclic(variable_sets: Iterable[Iterable[Variable]]) -> bool:
    """True when the join hypergraph of ``variable_sets`` is alpha-cyclic.

    GYO reduction: repeatedly (a) drop *ear* variables occurring in
    exactly one hyperedge and (b) drop hyperedges contained in another
    edge.  An acyclic hypergraph reduces to at most one edge; getting
    stuck with two or more means a cycle — a triangle
    ``{x,y} {y,z} {z,x}`` is the minimal stuck state.
    """
    edges = [set(edge) for edge in variable_sets if edge]
    if len(edges) <= 1:
        return False
    changed = True
    while changed:
        changed = False
        counts: Dict[Variable, int] = {}
        for edge in edges:
            for variable in edge:
                counts[variable] = counts.get(variable, 0) + 1
        for edge in edges:
            ears = {variable for variable in edge if counts[variable] == 1}
            if ears:
                edge -= ears
                changed = True
        for index, edge in enumerate(edges):
            if any(
                other_index != index and edge <= other
                for other_index, other in enumerate(edges)
            ):
                # Only one edge per pass: duplicate edges are subsets of
                # each other, and removing both at once would be wrong.
                edges.pop(index)
                changed = True
                break
        if len(edges) <= 1:
            return False
    return True


# ----------------------------------------------------------------------
# operator IR
# ----------------------------------------------------------------------
@dataclass(slots=True)
class OperatorStats:
    """Mutable per-operator counters for the most recent execution.

    ``probes`` counts index/engine lookups issued by the operator (or
    rows tested, for filters); ``rows`` counts rows the operator passed
    downstream; ``seconds`` is wall time measured only under
    ``execute(..., timed=True)`` (self time for leaf and intersection
    operators, total pipeline time on the ``Project`` root).  Counters
    are reset at the start of every :func:`execute` call — cached plans
    therefore report the numbers of exactly one run, never an
    accumulation across reuses (pass ``reset_stats=False`` to opt back
    into accumulation).  Surfaced through :meth:`PhysicalPlan.counters`
    for the bench metrics hooks and ``explain(counters=True)``.
    """

    rows: int = 0
    probes: int = 0
    seconds: float = 0.0

    def reset(self) -> None:
        self.rows = 0
        self.probes = 0
        self.seconds = 0.0


class PhysicalOperator:
    """Base class of physical plan operators."""

    def children(self) -> Tuple["PhysicalOperator", ...]:
        return ()

    def describe(self) -> str:  # pragma: no cover - every subclass overrides
        raise NotImplementedError


def _condition_label(expression: Expression) -> str:
    """Compact, stable rendering of a FILTER conjunct for explain output."""
    if isinstance(expression, Comparison):
        return (
            f"({_condition_label(expression.left)} {expression.operator} "
            f"{_condition_label(expression.right)})"
        )
    if isinstance(expression, VariableExpr):
        return repr(expression.variable)
    if isinstance(expression, TermExpr):
        return repr(expression.term)
    if isinstance(expression, FunctionCall):
        arguments = ", ".join(_condition_label(a) for a in expression.arguments)
        return f"{expression.name}({arguments})"
    return repr(expression)


@dataclass(eq=False)
class Scan(PhysicalOperator):
    """Index probes of one triple pattern (bound components substituted)."""

    node: TriplePatternNode
    estimate: float
    source_index: int
    stats: OperatorStats = field(default_factory=OperatorStats, repr=False)

    def describe(self) -> str:
        return f"Scan {self.node!r} est={self.estimate:g}"


@dataclass(eq=False)
class PathExpand(PhysicalOperator):
    """Property-path expansion; ``mode`` records the chosen machinery.

    ``"id"`` runs the id-native :class:`~repro.sparql.idpaths.IdPathEngine`;
    ``"term"`` runs the evaluator's term-level ALP procedure (on a term
    backend, or as the decode/re-intern bridge inside an id pipeline).
    """

    node: PathPattern
    estimate: float
    source_index: int
    mode: str = "term"
    stats: OperatorStats = field(default_factory=OperatorStats, repr=False)

    def describe(self) -> str:
        return f"PathExpand[{self.mode}] {self.node!r} est={self.estimate:g}"


@dataclass(eq=False)
class Filter(PhysicalOperator):
    """FILTER conjuncts checked against each row of the wrapped input."""

    child: PhysicalOperator
    conditions: Tuple[Expression, ...]
    stats: OperatorStats = field(default_factory=OperatorStats, repr=False)

    def children(self) -> Tuple[PhysicalOperator, ...]:
        return (self.child,)

    def describe(self) -> str:
        rendered = " && ".join(_condition_label(c) for c in self.conditions)
        return f"Filter {rendered}"


@dataclass(eq=False)
class IndexNestedLoopJoin(PhysicalOperator):
    """Binary pipeline: each input extends the rows of the previous ones."""

    inputs: Tuple[PhysicalOperator, ...]
    stats: OperatorStats = field(default_factory=OperatorStats, repr=False)

    def children(self) -> Tuple[PhysicalOperator, ...]:
        return self.inputs

    def describe(self) -> str:
        return f"IndexNestedLoopJoin steps={len(self.inputs)}"


@dataclass(eq=False)
class LeapfrogJoin(PhysicalOperator):
    """Leapfrog-triejoin: multiway sorted intersection per variable level.

    ``var_order`` is the global variable elimination order;
    ``level_conditions`` holds the FILTER conjuncts checked as soon as
    the level binding their last variable completes (final slot: after
    all levels, matching a post-filter).
    """

    scans: Tuple[Scan, ...]
    var_order: Tuple[Variable, ...]
    level_conditions: Tuple[Tuple[Expression, ...], ...]
    stats: OperatorStats = field(default_factory=OperatorStats, repr=False)

    def children(self) -> Tuple[PhysicalOperator, ...]:
        return self.scans

    def describe(self) -> str:
        order = ", ".join(repr(v) for v in self.var_order)
        label = f"LeapfrogJoin order=[{order}]"
        attached = [
            f"{_condition_label(c)}@{self.var_order[level]!r}"
            if level < len(self.var_order)
            else f"{_condition_label(c)}@end"
            for level, slot in enumerate(self.level_conditions)
            for c in slot
        ]
        if attached:
            label += " filters=[" + ", ".join(attached) + "]"
        return label


@dataclass(eq=False)
class Project(PhysicalOperator):
    """Result boundary: decodes ids / fixes the output variable order."""

    child: PhysicalOperator
    variables: Tuple[Variable, ...]
    decode: str
    stats: OperatorStats = field(default_factory=OperatorStats, repr=False)

    def children(self) -> Tuple[PhysicalOperator, ...]:
        return (self.child,)

    def describe(self) -> str:
        rendered = ", ".join(repr(v) for v in self.variables)
        return f"Project [{rendered}] decode={self.decode}"


@dataclass(eq=False)
class PhysicalPlan:
    """A lowered BGP: the operator DAG plus the space it executes in."""

    root: Project
    space: str
    source: BGPPlan
    #: Why a GYO-cyclic BGP was *not* given the leapfrog operator (e.g.
    #: ``"variable predicate"``); ``None`` for acyclic plans and for
    #: cyclic plans that did get it.  Surfaced as a warning log, an
    #: evaluator counter and a trace annotation so WCOJ fallbacks are
    #: never silent.
    wcoj_fallback: Optional[str] = None
    _operator_cache: Optional[List[PhysicalOperator]] = field(
        default=None, repr=False
    )
    _step_cache: Optional[List[Tuple]] = field(default=None, repr=False)

    def operators(self) -> List[PhysicalOperator]:
        """Every operator of the DAG in depth-first pre-order.

        The DAG is immutable after lowering, so the walk is memoised —
        cached plans reset their counters on every reuse and must not
        pay a fresh traversal each time.
        """
        if self._operator_cache is None:
            result: List[PhysicalOperator] = []
            stack: List[PhysicalOperator] = [self.root]
            while stack:
                operator = stack.pop()
                result.append(operator)
                stack.extend(reversed(operator.children()))
            self._operator_cache = result
        return self._operator_cache

    def reset_stats(self) -> None:
        for operator in self.operators():
            operator.stats.reset()

    def counters(self) -> List[Dict[str, object]]:
        """Per-operator row/probe/time counters for the bench metrics hooks."""
        return [
            {
                "operator": type(operator).__name__,
                "describe": operator.describe(),
                "rows": operator.stats.rows,
                "probes": operator.stats.probes,
                "seconds": operator.stats.seconds,
            }
            for operator in self.operators()
        ]

    def explain(self, counters: bool = False) -> str:
        """Tree rendering of the physical plan (golden-testable).

        With ``counters=True`` each line carries the accumulated
        row/probe counts of its operator.
        """
        lines: List[str] = []

        def render(operator: PhysicalOperator, prefix: str, is_last: bool, top: bool):
            label = operator.describe()
            if counters:
                label += f" rows={operator.stats.rows} probes={operator.stats.probes}"
            if top:
                lines.append(label)
                child_prefix = ""
            else:
                lines.append(prefix + ("└─ " if is_last else "├─ ") + label)
                child_prefix = prefix + ("   " if is_last else "│  ")
            kids = operator.children()
            for index, kid in enumerate(kids):
                render(kid, child_prefix, index == len(kids) - 1, False)

        render(self.root, "", True, True)
        return "\n".join(lines)

    def analysis(self) -> List[Dict[str, object]]:
        """Structured per-operator analysis (pre-order, like ``counters``).

        Adds the planner's estimate and the estimation error to every
        operator that carries an estimate: ``actual`` is the mean rows
        produced per probe (the planner's estimates are per-probe
        expectations), ``est_error`` is ``estimate / actual`` and
        ``flagged`` marks errors beyond 10x in either direction.
        """
        entries = self.counters()
        for operator, entry in zip(self.operators(), entries):
            estimate = getattr(operator, "estimate", None)
            if estimate is None:
                continue
            entry["estimate"] = estimate
            rows, probes = entry["rows"], entry["probes"]
            if probes:
                actual = rows / probes
                entry["actual_per_probe"] = actual
                ratio = _estimation_error(estimate, actual)
                if ratio is not None:
                    entry["est_error"] = ratio
                    entry["flagged"] = not 0.1 <= ratio <= 10.0
        return entries

    def explain_analyze(self, total_seconds: Optional[float] = None) -> str:
        """Tree rendering annotated with wall time and estimation errors.

        Every line carries the measured time (self time for leaves and
        the leapfrog intersection, total pipeline time on ``Project``,
        zero for operators not separately measured), the actual
        row/probe counters, and — on estimate-carrying operators — the
        per-probe actual cardinality with the est/actual error, marked
        ``!`` beyond 10x either way.  Meaningful after
        ``execute(..., timed=True)``; :meth:`SparqlEvaluator.explain_analyze
        <repro.sparql.evaluator.SparqlEvaluator.explain_analyze>` wraps
        execution and rendering in one call.
        """
        analysis = {
            id(operator): entry
            for operator, entry in zip(self.operators(), self.analysis())
        }
        lines: List[str] = []
        if total_seconds is not None:
            lines.append(
                f"EXPLAIN ANALYZE ({self.space} space) "
                f"total={total_seconds * 1e3:.2f}ms"
            )

        def annotate(operator: PhysicalOperator) -> str:
            entry = analysis[id(operator)]
            label = (
                f"{operator.describe()}"
                f" | time={entry['seconds'] * 1e3:.2f}ms"
                f" rows={entry['rows']} probes={entry['probes']}"
            )
            if "estimate" in entry:
                if "actual_per_probe" in entry:
                    label += f" actual={entry['actual_per_probe']:g}/probe"
                    ratio = entry.get("est_error")
                    if ratio is None:
                        label += " err=n/a"
                    else:
                        rendered = "inf" if ratio == float("inf") else f"{ratio:.2g}"
                        label += f" err={rendered}x"
                        if entry["flagged"]:
                            label += " !"
                else:
                    label += " err=n/a"
            return label

        def render(operator: PhysicalOperator, prefix: str, is_last: bool, top: bool):
            label = annotate(operator)
            if top:
                lines.append(label)
                child_prefix = ""
            else:
                lines.append(prefix + ("└─ " if is_last else "├─ ") + label)
                child_prefix = prefix + ("   " if is_last else "│  ")
            kids = operator.children()
            for index, kid in enumerate(kids):
                render(kid, child_prefix, index == len(kids) - 1, False)

        render(self.root, "", True, not lines)
        if self.wcoj_fallback is not None:
            lines.append(f"-- wcoj fallback: {self.wcoj_fallback}")
        return "\n".join(lines)


def _estimation_error(estimate: float, actual: float) -> Optional[float]:
    """``estimate / actual`` with honest edge cases.

    ``actual == 0`` with a substantial estimate (>= 1 expected row) is
    an infinite overestimate; a sub-row estimate finding nothing is not
    an estimation error at all (``None`` — rendered ``n/a``).
    """
    if actual > 0:
        return estimate / actual
    return float("inf") if estimate >= 1.0 else None


# ----------------------------------------------------------------------
# lowering
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LoweringOptions:
    """Evaluator knobs mapped onto the lowering pass.

    The operators themselves are chosen per backend capability; these
    options only *disable* capabilities (to recover the differential
    oracle pipelines), never force an unsupported one.
    """

    id_execution: bool = True
    filter_pushdown: bool = True
    id_paths: bool = True
    wcoj: bool = True


#: The sorted-run/seek surface the leapfrog operator needs from a store.
LEAPFROG_SURFACE = (
    "sorted_subjects_for_predicate",
    "sorted_objects_for_predicate",
    "sorted_objects_for_subject_predicate",
    "sorted_subjects_for_predicate_object",
)


def supports_leapfrog(graph: object) -> bool:
    """True when ``graph`` exposes sorted id runs (duck-typed, like id exec)."""
    return all(hasattr(graph, name) for name in LEAPFROG_SURFACE)


def _leapfrog_assessment(plan: BGPPlan, graph) -> Tuple[bool, Optional[str]]:
    """Can (and should) this plan run as a leapfrog triejoin — and if a
    *cyclic* plan can't, why not?

    Eligibility requires the sorted-run surface, at least three pure
    triple patterns with constant predicates and no repeated variable
    inside one pattern, and — the actual trigger — a cyclic join
    hypergraph, where every binary join order is worst-case suboptimal.
    Acyclic plans stay on the binary pipeline, which GYO-reduces to the
    optimal shape anyway, so rejecting them is not a fallback and yields
    no reason.  For a cyclic plan a structural rejection *is* a genuine
    WCOJ fallback (the binary pipeline may be worst-case suboptimal
    there), so the second element names the first blocking reason.
    """
    if len(plan.steps) < 3:
        return False, None
    reason: Optional[str] = None
    if not supports_leapfrog(graph):
        reason = "store exposes no sorted id runs"
    edges = []
    for step in plan.steps:
        node = step.node
        if not isinstance(node, TriplePatternNode):
            reason = reason or "property-path pattern in BGP"
        else:
            triple = node.triple
            if isinstance(triple.predicate, Variable):
                reason = reason or "variable predicate"
            elif (
                isinstance(triple.subject, Variable)
                and isinstance(triple.object, Variable)
                and triple.subject == triple.object
            ):
                reason = reason or "repeated variable within one pattern"
        variables = node.variables()
        if variables:
            edges.append(frozenset(variables))
    if not is_cyclic(edges):
        return False, None
    return (True, None) if reason is None else (False, reason)


def _leapfrog_variable_order(plan: BGPPlan, graph) -> Tuple[Variable, ...]:
    """Global variable order: smallest candidate run first, stay connected.

    A variable's root-level candidate run is exact (the projection of a
    predicate's extension onto that position), so its size comes straight
    from the store statistics.  Connectivity preference mirrors the
    binary planner's Cartesian-product avoidance.
    """
    sizes: Dict[Variable, float] = {}
    adjacency: Dict[Variable, Set[Variable]] = {}
    for step in plan.steps:
        triple = step.node.triple
        subject, predicate, obj = triple.subject, triple.predicate, triple.object
        if isinstance(subject, Variable):
            size = (
                float(graph.distinct_subjects(predicate))
                if isinstance(obj, Variable)
                else float(graph.pattern_cardinality(None, predicate, obj))
            )
            sizes[subject] = min(sizes.get(subject, float("inf")), size)
            adjacency.setdefault(subject, set())
        if isinstance(obj, Variable):
            size = (
                float(graph.distinct_objects(predicate))
                if isinstance(subject, Variable)
                else float(graph.pattern_cardinality(subject, predicate, None))
            )
            sizes[obj] = min(sizes.get(obj, float("inf")), size)
            adjacency.setdefault(obj, set())
        if isinstance(subject, Variable) and isinstance(obj, Variable):
            adjacency[subject].add(obj)
            adjacency[obj].add(subject)
    order: List[Variable] = []
    chosen: Set[Variable] = set()
    while len(order) < len(sizes):
        candidates = [
            variable
            for variable in sizes
            if variable not in chosen
            and (not order or adjacency[variable] & chosen)
        ]
        if not candidates:
            candidates = [v for v in sizes if v not in chosen]
        best = min(candidates, key=lambda v: (sizes[v], v.name))
        order.append(best)
        chosen.add(best)
    return tuple(order)


def _attach_level_conditions(
    var_order: Tuple[Variable, ...], conditions: Sequence[Expression]
) -> Tuple[Tuple[Expression, ...], ...]:
    """Assign conjuncts to the earliest leapfrog level binding their variables.

    Slot ``l`` is checked right after ``var_order[l]`` binds; the final
    slot runs after all levels (conditions over never-bound variables
    evaluate there exactly as a post-filter: unbound → error → false).
    """
    slots: List[List[Expression]] = [[] for _ in range(len(var_order) + 1)]
    for condition in conditions:
        variables = condition.variables()
        target = len(var_order)
        bound: Set[Variable] = set()
        for level, variable in enumerate(var_order):
            bound.add(variable)
            if variables <= bound:
                target = level
                break
        slots[target].append(condition)
    return tuple(tuple(slot) for slot in slots)


def lower_plan(
    plan: BGPPlan,
    graph,
    conditions: Sequence[Expression] = (),
    options: Optional[LoweringOptions] = None,
    step_filters: Optional[StepFilters] = None,
) -> PhysicalPlan:
    """Lower a logical BGP plan to a physical operator DAG.

    Chooses the execution space from the backend's capabilities
    (``supports_id_execution`` → id pipeline) intersected with
    ``options``; picks :class:`LeapfrogJoin` for cyclic join graphs on a
    sorted-run-capable store, :class:`IndexNestedLoopJoin` otherwise.
    FILTER conjuncts (``conditions``, or a precomputed ``step_filters``
    attachment) become :class:`Filter` operators at the earliest input
    binding their variables; with ``filter_pushdown`` disabled they all
    run at the final slot, i.e. as a plain post-filter.
    """
    options = options if options is not None else LoweringOptions()
    id_space = options.id_execution and supports_id_execution(graph)
    space = "id" if id_space else "term"
    if step_filters is None and conditions:
        if options.filter_pushdown:
            step_filters = attach_filters(plan, tuple(conditions))
        else:
            slots: List[Tuple[Expression, ...]] = [()] * (len(plan.steps) + 1)
            slots[len(plan.steps)] = tuple(conditions)
            step_filters = tuple(slots)
    flat_conditions = (
        [c for slot in step_filters for c in slot] if step_filters is not None else []
    )
    prefilters = tuple(c for c in flat_conditions if not c.variables())
    join: PhysicalOperator
    use_leapfrog = False
    wcoj_fallback: Optional[str] = None
    if id_space and options.wcoj:
        use_leapfrog, wcoj_fallback = _leapfrog_assessment(plan, graph)
        if wcoj_fallback is not None:
            logger.warning(
                "WCOJ selection rejected for GYO-cyclic BGP (%s); "
                "falling back to binary index-nested-loop join",
                wcoj_fallback,
            )
    if use_leapfrog:
        var_order = _leapfrog_variable_order(plan, graph)
        level_conditions = _attach_level_conditions(
            var_order, [c for c in flat_conditions if c.variables()]
        )
        scans = tuple(
            Scan(step.node, step.estimate, step.source_index) for step in plan.steps
        )
        join = LeapfrogJoin(scans, var_order, level_conditions)
    else:
        path_mode = (
            "id" if id_space and options.id_paths and supports_id_paths(graph) else "term"
        )
        inputs: List[PhysicalOperator] = []
        for position, step in enumerate(plan.steps):
            leaf: PhysicalOperator
            if isinstance(step.node, TriplePatternNode):
                leaf = Scan(step.node, step.estimate, step.source_index)
            elif isinstance(step.node, PathPattern):
                leaf = PathExpand(step.node, step.estimate, step.source_index, path_mode)
            else:  # pragma: no cover - plan_bgp only admits the two kinds above
                raise TypeError(f"unsupported plan node {type(step.node).__name__}")
            slot = step_filters[position + 1] if step_filters is not None else ()
            inputs.append(Filter(leaf, tuple(slot)) if slot else leaf)
        join = IndexNestedLoopJoin(tuple(inputs))
        prefilters = tuple(step_filters[0]) if step_filters is not None else ()
    child = Filter(join, prefilters) if prefilters else join
    result_variables: Set[Variable] = set()
    for step in plan.steps:
        result_variables |= step.node.variables()
    ordered = tuple(sorted(result_variables, key=lambda v: v.name))
    return PhysicalPlan(
        root=Project(child, ordered, space),
        space=space,
        source=plan,
        wcoj_fallback=wcoj_fallback,
    )


def lower_bgp(
    graph,
    patterns: Sequence,
    conditions: Sequence[Expression] = (),
    options: Optional[LoweringOptions] = None,
) -> PhysicalPlan:
    """Plan and lower a BGP in one call (convenience for tests/tools)."""
    from repro.sparql.plan import plan_bgp

    return lower_plan(plan_bgp(graph, patterns), graph, conditions, options)


# ----------------------------------------------------------------------
# executor
# ----------------------------------------------------------------------
def _unwrap_root(plan: PhysicalPlan):
    """Split the root chain into (prefilter Filter or None, join operator)."""
    child = plan.root.child
    if isinstance(child, Filter):
        return child, child.child
    return None, child


def _unwrap_input(input_op: PhysicalOperator):
    """Split a join input into (leaf, conditions, Filter op or None)."""
    if isinstance(input_op, Filter):
        return input_op.child, input_op.conditions, input_op
    return input_op, (), None


def _timed_iter(iterator: Iterator, stats: OperatorStats) -> Iterator:
    """Accumulate an iterator's ``next()`` self-time into ``stats.seconds``.

    Wrapping a *producer* (a store match stream) measures that operator's
    own work; wrapping the *root* stream measures total pipeline time,
    since every downstream operator runs inside the root's ``next()``.
    """
    iterator = iter(iterator)
    while True:
        started = perf_counter()
        try:
            item = next(iterator)
        except StopIteration:
            stats.seconds += perf_counter() - started
            return
        stats.seconds += perf_counter() - started
        yield item


def execute(
    plan: PhysicalPlan,
    graph,
    path_evaluator: Optional[PathEvaluator] = None,
    path_engine: Optional[IdPathEngine] = None,
    initial: Binding = EMPTY_BINDING,
    reset_stats: bool = True,
    timed: bool = False,
) -> Iterator[Binding]:
    """Execute a physical plan, streaming bindings.

    ``path_evaluator`` backs term-mode :class:`PathExpand` operators (and
    the bridge inside id pipelines); ``path_engine`` is an optional
    pre-built :class:`IdPathEngine` (the evaluator passes its cached one).
    ``initial`` pre-binds variables exactly like the legacy pipelines.

    Counters are reset here, so every execution reports its own rows and
    probes even when the physical plan came out of a cache; pass
    ``reset_stats=False`` to opt back into accumulation across
    executions.  ``timed=True`` additionally measures per-operator self
    time into :attr:`OperatorStats.seconds` (one extra clock read per
    produced row — ``explain_analyze`` turns it on, normal evaluation
    leaves it off).
    """
    if reset_stats:
        plan.reset_stats()
    prefilter_op, join = _unwrap_root(plan)
    if plan.space == "id":
        stream = _execute_id(
            plan, graph, prefilter_op, join, path_evaluator, path_engine, initial, timed
        )
    else:
        stream = _execute_term(
            plan, graph, prefilter_op, join, path_evaluator, initial, timed
        )
    if timed:
        return _timed_iter(stream, plan.root.stats)
    return stream


def _execute_term(
    plan: PhysicalPlan,
    graph,
    prefilter_op: Optional[Filter],
    join: PhysicalOperator,
    path_evaluator: Optional[PathEvaluator],
    initial: Binding,
    timed: bool = False,
) -> Iterator[Binding]:
    """Term-space index-nested-loop pipeline (ex ``plan.execute_plan``)."""
    if prefilter_op is not None:
        prefilter_op.stats.probes += 1
        if not all(satisfies(c, initial) for c in prefilter_op.conditions):
            return iter(())
        prefilter_op.stats.rows += 1
    steps = plan._step_cache
    if steps is None:
        steps = [_unwrap_input(input_op) for input_op in join.inputs]
        plan._step_cache = steps
    total = len(steps)
    join_stats = join.stats
    project_stats = plan.root.stats

    def recurse(position: int, binding: Binding) -> Iterator[Binding]:
        if position == total:
            join_stats.rows += 1
            project_stats.rows += 1
            yield binding
            return
        leaf, conditions, filter_op = steps[position]
        leaf.stats.probes += 1
        if isinstance(leaf, Scan):
            matches: Iterator[Binding] = match_triple(graph, leaf.node.triple, binding)
        else:
            if path_evaluator is None:
                raise TypeError("plan contains a path pattern but no path evaluator")
            matches = _match_path(graph, leaf.node, binding, path_evaluator)
        if timed:
            matches = _timed_iter(matches, leaf.stats)
        # Counters batch into locals, flushed in the finally block (which
        # also covers partially-consumed streams) — a per-row attribute
        # increment is measurable on fan-heavy inner loops, an int += not.
        rows_seen = 0
        slot_probes = 0
        slot_rows = 0
        try:
            for extended in matches:
                rows_seen += 1
                if conditions:
                    slot_probes += 1
                    if not all(satisfies(c, extended) for c in conditions):
                        continue
                    slot_rows += 1
                yield from recurse(position + 1, extended)
        finally:
            leaf.stats.rows += rows_seen
            if filter_op is not None:
                filter_op.stats.probes += slot_probes
                filter_op.stats.rows += slot_rows

    return recurse(0, initial)


def _execute_id(
    plan: PhysicalPlan,
    graph,
    prefilter_op: Optional[Filter],
    join: PhysicalOperator,
    path_evaluator: Optional[PathEvaluator],
    path_engine: Optional[IdPathEngine],
    initial: Binding,
    timed: bool = False,
) -> Iterator[Binding]:
    """Id-space pipelines (ex ``idexec.execute_plan_ids`` + leapfrog)."""
    dictionary = graph.dictionary
    env: Dict[Variable, int] = {}
    if len(initial):
        # encode (not id_for): an initial term outside the graph gets a
        # fresh id that simply never matches a probe — identical, by
        # construction, to the term-space pipeline finding no triples.
        encode = dictionary.encode
        for variable, term in initial.items():
            env[variable] = encode(term)
    if prefilter_op is not None:
        prefilter_op.stats.probes += 1
        compiled_pre = tuple(IdFilter(c, dictionary) for c in prefilter_op.conditions)
        if not all(id_filter.test(env, dictionary) for id_filter in compiled_pre):
            return iter(())
        prefilter_op.stats.rows += 1
    if isinstance(join, LeapfrogJoin):
        return _execute_leapfrog(plan, graph, join, env, dictionary, timed)
    return _execute_id_inlj(
        plan, graph, join, env, dictionary, path_evaluator, path_engine, timed
    )


def _decode_order(env: Dict[Variable, int], plan: PhysicalPlan) -> Tuple[Variable, ...]:
    """Result decode order: plan variables plus initial-bound ones, sorted.

    The environment's domain at the leaf is the same for every result
    row (every operator binds its variables), so the decode order — and
    the Binding sort — is computed once.
    """
    if not env:
        return plan.root.variables
    result_variables = set(env) | set(plan.root.variables)
    return tuple(sorted(result_variables, key=lambda variable: variable.name))


def _execute_id_inlj(
    plan: PhysicalPlan,
    graph,
    join: PhysicalOperator,
    env: Dict[Variable, int],
    dictionary,
    path_evaluator: Optional[PathEvaluator],
    path_engine: Optional[IdPathEngine],
    timed: bool = False,
) -> Iterator[Binding]:
    """Id-space index-nested-loop pipeline with in-place environments."""
    steps = [_unwrap_input(input_op) for input_op in join.inputs]
    needs_engine = any(
        isinstance(leaf, PathExpand) and leaf.mode == "id" for leaf, _, _ in steps
    )
    if path_engine is not None:
        engine: Optional[IdPathEngine] = path_engine
    elif needs_engine and supports_id_paths(graph):
        engine = IdPathEngine(graph)
    else:
        engine = None

    # Compile each step: triple patterns to (is_variable, value) component
    # triples with constants pre-interned; a constant the dictionary has
    # never seen cannot occur in any triple, so the BGP is empty.  Path
    # steps destined for the id engine pre-normalize their path and
    # pre-intern constant endpoints (a fresh id for an unseen constant is
    # harmless: it only ever matches syntactically, via zero-length).
    compiled: List[Tuple[str, object, Tuple[IdFilter, ...], OperatorStats, object]] = []
    for leaf, conditions, filter_op in steps:
        id_filters = tuple(IdFilter(c, dictionary) for c in conditions)
        filter_stats = filter_op.stats if filter_op is not None else None
        if isinstance(leaf, Scan):
            parts = []
            for part in leaf.node.triple:
                if isinstance(part, Variable):
                    parts.append((True, part))
                else:
                    term_id = dictionary.id_for(part)
                    if term_id is None:
                        return iter(())
                    parts.append((False, term_id))
            compiled.append(("triple", tuple(parts), id_filters, leaf.stats, filter_stats))
        elif leaf.mode == "id" and engine is not None:
            node = leaf.node
            path = normalize_path(node.path)
            subject_is_var = isinstance(node.subject, Variable)
            object_is_var = isinstance(node.object, Variable)
            # Constant endpoints resolve through the engine's shared
            # unknown-constant rule: _ABSENT (a non-zero-admitting
            # path with an unseen constant) empties the whole BGP.
            subject_spec = (
                node.subject if subject_is_var else engine.endpoint_id(node.subject, path)
            )
            object_spec = (
                node.object if object_is_var else engine.endpoint_id(node.object, path)
            )
            if subject_spec is _ABSENT or object_spec is _ABSENT:
                return iter(())
            spec = (
                path,
                subject_is_var,
                subject_spec,
                object_is_var,
                object_spec,
                matches_zero_length(path),
            )
            compiled.append(("idpath", spec, id_filters, leaf.stats, filter_stats))
        else:
            if path_evaluator is None:
                raise TypeError("plan contains a path pattern but no path evaluator")
            compiled.append(("path", leaf.node, id_filters, leaf.stats, filter_stats))

    ordered = _decode_order(env, plan)
    decode = dictionary.term
    match_ids = graph.match_triple_ids
    total = len(compiled)
    join_stats = join.stats
    project_stats = plan.root.stats

    def test_slot(slot: Tuple[IdFilter, ...], filter_stats) -> bool:
        if not slot:
            return True
        filter_stats.probes += 1
        if all(id_filter.test(env, dictionary) for id_filter in slot):
            filter_stats.rows += 1
            return True
        return False

    def recurse(position: int) -> Iterator[Binding]:
        if position == total:
            join_stats.rows += 1
            project_stats.rows += 1
            yield Binding.from_sorted_items(
                tuple((variable, decode(env[variable])) for variable in ordered)
            )
            return
        kind, data, slot, leaf_stats, filter_stats = compiled[position]
        leaf_stats.probes += 1
        if kind == "triple":
            probe = []
            free: List[Tuple[int, Variable]] = []
            for index, (is_variable, value) in enumerate(data):
                if is_variable:
                    bound = env.get(value)
                    probe.append(bound)
                    if bound is None:
                        free.append((index, value))
                else:
                    probe.append(value)
            # The per-row counters batch into locals and flush in the
            # finally block: on this innermost loop an attribute increment
            # per intermediate row is measurable (tens of thousands of
            # rows per probe on fan-heavy workloads), an int += is not.
            # The flush also runs when a partially-consumed stream is
            # closed, so abandoned executions still report the rows they
            # actually produced.
            rows_seen = 0
            slot_probes = 0
            slot_rows = 0
            matches = match_ids(probe[0], probe[1], probe[2])
            if timed:
                matches = _timed_iter(matches, leaf_stats)
            try:
                for ids in matches:
                    added: List[Variable] = []
                    consistent = True
                    for index, variable in free:
                        value = ids[index]
                        current = env.get(variable)
                        if current is None:
                            env[variable] = value
                            added.append(variable)
                        elif current != value:
                            # Repeated variable (?x p ?x) matched two ids.
                            consistent = False
                            break
                    if consistent:
                        rows_seen += 1
                        if slot:
                            slot_probes += 1
                            passed = True
                            for id_filter in slot:
                                if not id_filter.test(env, dictionary):
                                    passed = False
                                    break
                            if passed:
                                slot_rows += 1
                                yield from recurse(position + 1)
                        else:
                            yield from recurse(position + 1)
                    for variable in added:
                        del env[variable]
            finally:
                leaf_stats.rows += rows_seen
                if filter_stats is not None:
                    filter_stats.probes += slot_probes
                    filter_stats.rows += slot_rows
        elif kind == "idpath":
            path, subject_is_var, subject, object_is_var, obj, admits_zero = data
            subject_id = env.get(subject) if subject_is_var else subject
            object_id = env.get(obj) if object_is_var else obj
            if admits_zero:
                # A *substituted* variable endpoint only ranges over graph
                # nodes, so its zero-length self-match requires node
                # membership (constants stay syntactic) — the id-space
                # mirror of plan._match_path's pre-check.
                if (
                    subject_is_var
                    and subject_id is not None
                    and not engine.is_node(subject_id)
                ):
                    return
                if (
                    object_is_var
                    and object_id is not None
                    and not engine.is_node(object_id)
                ):
                    return
            pairs = engine.pair_ids(path, subject_id, object_id)
            if timed:
                pairs = _timed_iter(pairs, leaf_stats)
            for start, end in pairs:
                added = []
                consistent = True
                if subject_is_var and subject_id is None:
                    env[subject] = start
                    added.append(subject)
                if object_is_var and object_id is None:
                    current = env.get(obj)
                    if current is None:
                        env[obj] = end
                        added.append(obj)
                    elif current != end:
                        # ?x path ?x with both ends free: the subject
                        # binding above already fixed the shared variable.
                        consistent = False
                if consistent:
                    leaf_stats.rows += 1
                    if test_slot(slot, filter_stats):
                        yield from recurse(position + 1)
                for variable in added:
                    del env[variable]
        else:
            node = data
            endpoint_mapping = {}
            for part in (node.subject, node.object):
                if isinstance(part, Variable):
                    term_id = env.get(part)
                    if term_id is not None:
                        endpoint_mapping[part] = decode(term_id)
            base = Binding(endpoint_mapping)
            encode = dictionary.encode
            extensions = _match_path(graph, node, base, path_evaluator)
            if timed:
                extensions = _timed_iter(extensions, leaf_stats)
            for extension in extensions:
                added = []
                for variable, term in extension.items():
                    if variable not in endpoint_mapping:
                        # Fresh endpoint: interning is idempotent for graph
                        # terms and harmlessly append-only for the rare
                        # zero-length-path endpoint outside the graph.
                        env[variable] = encode(term)
                        added.append(variable)
                leaf_stats.rows += 1
                if test_slot(slot, filter_stats):
                    yield from recurse(position + 1)
                for variable in added:
                    del env[variable]

    return recurse(0)


# ----------------------------------------------------------------------
# leapfrog triejoin
# ----------------------------------------------------------------------
def _leapfrog_intersect(arrays: Sequence[Sequence[int]]) -> Iterator[int]:
    """Yield the sorted intersection of sorted int arrays (leapfrog search).

    Each iterator keeps a cursor; the largest value seen so far is sought
    in the next array with a galloping ``bisect_left`` from that cursor,
    so the cost is O(total seeks · log) and skew (one tiny array against
    a huge one) costs the tiny array's length, not the huge one's.
    """
    k = len(arrays)
    if k == 0:
        return
    if k == 1:
        yield from arrays[0]
        return
    for array in arrays:
        if not array:
            return
    positions = [0] * k
    value = arrays[0][0]
    matched = 1
    index = 1
    while True:
        array = arrays[index]
        position = bisect_left(array, value, positions[index])
        if position == len(array):
            return
        positions[index] = position
        current = array[position]
        if current == value:
            matched += 1
            if matched == k:
                yield value
                position += 1
                if position == len(array):
                    return
                positions[index] = position
                value = array[position]
                matched = 1
        else:
            value = current
            matched = 1
        index += 1
        if index == k:
            index = 0


def _execute_leapfrog(
    plan: PhysicalPlan,
    graph,
    join: LeapfrogJoin,
    env: Dict[Variable, int],
    dictionary,
    timed: bool = False,
) -> Iterator[Binding]:
    """Run a :class:`LeapfrogJoin`: one sorted intersection per variable.

    Every level's candidate runs are *exact* projections of the
    participating patterns onto the level variable (given the bindings
    above it), so each total assignment is enumerated at most once —
    multiset-identical to the binary pipeline on pure-triple BGPs, where
    every pattern admits multiplicity one per assignment.
    """
    var_order = join.var_order
    levels = len(var_order)
    compiled: List[Tuple[object, int, object, OperatorStats]] = []
    for scan in join.scans:
        triple = scan.node.triple
        specs = []
        for part in (triple.subject, triple.object):
            if isinstance(part, Variable):
                specs.append(part)
            else:
                term_id = dictionary.id_for(part)
                if term_id is None:
                    return iter(())
                specs.append(term_id)
        predicate_id = dictionary.id_for(triple.predicate)
        if predicate_id is None:
            return iter(())
        compiled.append((specs[0], predicate_id, specs[1], scan.stats))
    # Fully-ground patterns constrain no variable: membership check once.
    for subject, predicate_id, obj, stats in compiled:
        if not isinstance(subject, Variable) and not isinstance(obj, Variable):
            stats.probes += 1
            if not graph.pattern_cardinality_ids(subject, predicate_id, obj):
                return iter(())
            stats.rows += 1
    level_of = {variable: level for level, variable in enumerate(var_order)}
    occurrences: List[List[Tuple[Tuple, int]]] = [[] for _ in range(levels)]
    for entry in compiled:
        subject, _, obj, _ = entry
        if isinstance(subject, Variable):
            occurrences[level_of[subject]].append((entry, 0))
        if isinstance(obj, Variable):
            occurrences[level_of[obj]].append((entry, 1))
    level_filters = [
        tuple(IdFilter(c, dictionary) for c in slot) for slot in join.level_conditions
    ]
    sorted_sp = graph.sorted_subjects_for_predicate
    sorted_op = graph.sorted_objects_for_predicate
    sorted_spo = graph.sorted_objects_for_subject_predicate
    sorted_pos = graph.sorted_subjects_for_predicate_object

    def candidates(entry: Tuple, position: int) -> Sequence[int]:
        """Sorted candidate run of one pattern at one level, given ``env``.

        ``rows`` counts the candidate ids each run contributes — the
        scan-level "rows produced" of the leapfrog pipeline, and the
        actual the per-probe cardinality estimates are compared against.
        """
        stats = entry[3]
        stats.probes += 1
        if timed:
            started = perf_counter()
            run = _candidate_run(entry, position)
            stats.seconds += perf_counter() - started
        else:
            run = _candidate_run(entry, position)
        stats.rows += len(run)
        return run

    def _candidate_run(entry: Tuple, position: int) -> Sequence[int]:
        subject, predicate_id, obj, _stats = entry
        if position == 0:  # level variable sits at the subject
            other = obj
            if isinstance(other, Variable):
                bound = env.get(other)
                if bound is None:
                    return sorted_sp(predicate_id)
                return sorted_pos(predicate_id, bound)
            return sorted_pos(predicate_id, other)
        other = subject  # level variable sits at the object
        if isinstance(other, Variable):
            bound = env.get(other)
            if bound is None:
                return sorted_op(predicate_id)
            return sorted_spo(bound, predicate_id)
        return sorted_spo(other, predicate_id)

    ordered = _decode_order(env, plan)
    decode = dictionary.term
    join_stats = join.stats
    project_stats = plan.root.stats
    post_filters = level_filters[levels]

    def recurse(level: int) -> Iterator[Binding]:
        if level == levels:
            if post_filters and not all(
                id_filter.test(env, dictionary) for id_filter in post_filters
            ):
                return
            join_stats.rows += 1
            project_stats.rows += 1
            yield Binding.from_sorted_items(
                tuple((variable, decode(env[variable])) for variable in ordered)
            )
            return
        variable = var_order[level]
        slot = level_filters[level]
        arrays = [candidates(entry, position) for entry, position in occurrences[level]]
        prebound = env.get(variable)
        if prebound is not None:
            # Initial-binding variable: membership probe into every run.
            for array in arrays:
                position = bisect_left(array, prebound)
                if position == len(array) or array[position] != prebound:
                    return
            if not slot or all(id_filter.test(env, dictionary) for id_filter in slot):
                yield from recurse(level + 1)
            return
        intersection = _leapfrog_intersect(arrays)
        if timed:
            # The galloping search is the join's own work; its time lands
            # on the LeapfrogJoin operator, the run construction above on
            # the scans that produced each array.
            intersection = _timed_iter(intersection, join_stats)
        for value in intersection:
            env[variable] = value
            if not slot or all(id_filter.test(env, dictionary) for id_filter in slot):
                yield from recurse(level + 1)
        env.pop(variable, None)

    return recurse(0)
