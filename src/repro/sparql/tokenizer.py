"""Tokenizer for SPARQL 1.1 query strings."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Optional


class SparqlSyntaxError(ValueError):
    """Raised by the tokenizer / parser on malformed queries."""


@dataclass(frozen=True)
class Token:
    """A single lexical token with its kind, text and source position."""

    kind: str
    value: str
    position: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r})"


#: Keywords recognised case-insensitively by the parser.
KEYWORDS = {
    "SELECT", "ASK", "CONSTRUCT", "DESCRIBE", "WHERE", "FROM", "NAMED",
    "PREFIX", "BASE", "DISTINCT", "REDUCED", "OPTIONAL", "UNION", "MINUS",
    "FILTER", "GRAPH", "BIND", "VALUES", "AS", "GROUP", "BY", "HAVING",
    "ORDER", "ASC", "DESC", "LIMIT", "OFFSET", "COUNT", "SUM", "MIN", "MAX",
    "AVG", "SAMPLE", "NOT", "IN", "EXISTS", "A", "TRUE", "FALSE", "UNDEF",
    "SERVICE", "SILENT",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>\#[^\n]*)
  | (?P<ws>\s+)
  | (?P<iri><[^<>"{}|^`\\\s]*>)
  | (?P<string>"""
    r'"""(?:[^"\\]|\\.|"(?!""))*"""'
    r"""|'''(?:[^'\\]|\\.|'(?!''))*'''"""
    r"""|"(?:[^"\\\n]|\\.)*"|'(?:[^'\\\n]|\\.)*')
    (?P<string_suffix>@[a-zA-Z][a-zA-Z0-9\-]*|\^\^(?:<[^<>\s]+>|[A-Za-z_][\w\-\.]*:[\w\-\.%]*))?
  | (?P<var>[?$][A-Za-z_][A-Za-z0-9_]*)
  | (?P<number>[+-]?(?:\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?))
  | (?P<bnode>_:[A-Za-z0-9][A-Za-z0-9_\-\.]*)
  | (?P<pname>[A-Za-z_][\w\-\.]*:[\w\-\.%]*|:[\w\-\.%]+)
  | (?P<word>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>\|\||&&|\^\^|!=|<=|>=|[{}()\[\].;,|/^?*+!=<>\-])
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> List[Token]:
    """Split a SPARQL query string into tokens.

    String literals keep their language tag / datatype suffix attached so
    the parser can rebuild the full literal.  Words matching a SPARQL
    keyword are emitted as ``keyword`` tokens (upper-cased value); other
    bare words are an error except ``a`` which is handled as a keyword.
    """
    tokens: List[Token] = []
    position = 0
    length = len(text)
    while position < length:
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise SparqlSyntaxError(
                f"unexpected character at offset {position}: {text[position:position + 20]!r}"
            )
        kind = match.lastgroup
        value = match.group()
        start = position
        position = match.end()
        if kind in ("ws", "comment"):
            continue
        if kind in ("string", "string_suffix"):
            suffix = match.group("string_suffix") or ""
            tokens.append(Token("string", match.group("string") + suffix, start))
            continue
        if kind == "word":
            upper = value.upper()
            if upper in KEYWORDS:
                tokens.append(Token("keyword", upper, start))
            else:
                # Bare words can appear as function names (e.g. REGEX, BOUND).
                tokens.append(Token("funcname", upper, start))
            continue
        tokens.append(Token(kind, value, start))
    return tokens
