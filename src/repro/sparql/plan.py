"""Cost-based planning and streaming evaluation of basic graph patterns.

The reference evaluator used to execute BGPs in textual order, fully
materialising every triple pattern's extension before joining — the
join-order blindness that the worst-case-optimal-join literature shows can
be asymptotically catastrophic.  This module replaces that with a small,
explicit planning pipeline:

1. **Cost model** — :func:`estimate_cardinality` prices a triple or path
   pattern against the exact incremental statistics kept by
   :class:`repro.rdf.Graph` (per-predicate cardinalities, distinct
   subject/object counts).  Patterns whose variables are already bound by
   earlier plan steps are priced with the classic ``card / distinct``
   selectivity division.

2. **Greedy ordering** — :func:`plan_bgp` repeatedly picks the cheapest
   remaining pattern given the variables bound so far, preferring patterns
   connected to the bound set so Cartesian products are only taken when
   unavoidable.  The result is a :class:`BGPPlan`: an ordered tuple of
   :class:`PlanStep` values, i.e. *plans as data* that can be inspected,
   logged and (in later work) cached or shipped to shards.

3. **Streaming execution** — :func:`execute_plan` runs the ordered plan as
   an index-nested-loop pipeline: for each partial solution it substitutes
   the bound variables into the next pattern and probes the graph's
   SPO/POS/OSP indexes directly, yielding bindings lazily so ASK / LIMIT /
   short-circuiting consumers never pay for the full extension.

Both the greedy ordering loop and the pipeline body now live in the
physical operator layer (:mod:`repro.sparql.physical`) — shared with the
id-native executor, the leapfrog triejoin and the Datalog engine's body
ordering; :func:`plan_bgp` and :func:`execute_plan` remain the stable
logical-planning API on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.rdf.graph import Graph
from repro.rdf.terms import Term, Triple, Variable
from repro.sparql.algebra import GraphPatternNode, PathPattern, TriplePatternNode
from repro.sparql.expressions import Expression, satisfies
from repro.sparql.paths import (
    AlternativePath,
    InversePath,
    LinkPath,
    NegatedPropertySet,
    OneOrMorePath,
    PropertyPath,
    RepeatPath,
    SequencePath,
    ZeroOrMorePath,
    ZeroOrOnePath,
    matches_zero_length as _matches_zero_length,
)
from repro.sparql.solutions import Binding, EMPTY_BINDING

#: Callback evaluating a (possibly partially substituted) path pattern
#: against a graph; the evaluator passes its own path machinery in so this
#: module does not depend on the evaluator (avoiding an import cycle).
PathEvaluator = Callable[[PathPattern, Graph], List[Binding]]

#: Per-step FILTER attachment produced by :func:`attach_filters`: slot 0
#: holds conditions checked against the initial binding, slot ``i + 1``
#: those checked right after plan step ``i`` extends a row.
StepFilters = Tuple[Tuple[Expression, ...], ...]

#: Cost multiplier for closure path operators (``+``, ``*``, ``?``): they
#: expand transitively, so a closure step is priced above the plain link
#: cardinality to push it behind selective patterns.
_CLOSURE_COST_FACTOR = 4.0


@dataclass(frozen=True)
class PlanStep:
    """One step of a BGP plan: a pattern plus its estimated cardinality."""

    node: GraphPatternNode
    estimate: float
    source_index: int

    def __repr__(self) -> str:
        return f"PlanStep({self.node!r}, est={self.estimate:g})"


@dataclass(frozen=True)
class BGPPlan:
    """An ordered join plan for a basic graph pattern."""

    steps: Tuple[PlanStep, ...]

    def order(self) -> List[int]:
        """Return the source indexes of the patterns in execution order."""
        return [step.source_index for step in self.steps]

    def explain(self) -> str:
        """Human-readable one-line-per-step rendering of the plan."""
        lines = []
        for position, step in enumerate(self.steps):
            lines.append(
                f"{position}: est={step.estimate:g} "
                f"src={step.source_index} {step.node!r}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# cost model
# ----------------------------------------------------------------------
def _component(part: Union[Term, Variable]) -> Optional[Term]:
    """Map a pattern component to an index probe key (variables → None)."""
    return None if isinstance(part, Variable) else part


def estimate_triple_pattern(
    graph: Graph, triple: Triple, bound: Set[Variable]
) -> float:
    """Estimate the number of matches for ``triple`` given bound variables.

    Components that are ground terms are priced exactly via
    :meth:`Graph.pattern_cardinality`; variable components already in
    ``bound`` (value unknown at plan time) divide the estimate by the
    number of distinct terms in that position.
    """
    subject = _component(triple.subject)
    predicate = _component(triple.predicate)
    obj = _component(triple.object)
    estimate = float(graph.pattern_cardinality(subject, predicate, obj))
    if estimate == 0.0:
        return 0.0
    if subject is None and triple.subject in bound:
        estimate /= max(1, graph.distinct_subjects(predicate))
    if predicate is None and triple.predicate in bound:
        estimate /= max(1, graph.distinct_predicates())
    if obj is None and triple.object in bound:
        estimate /= max(1, graph.distinct_objects(predicate))
    return estimate


def _path_base_cardinality(graph: Graph, path: PropertyPath) -> float:
    """Rough extension size of a property path, from predicate statistics."""
    if isinstance(path, LinkPath):
        return float(graph.predicate_cardinality(path.iri))
    if isinstance(path, InversePath):
        return _path_base_cardinality(graph, path.path)
    if isinstance(path, AlternativePath):
        return _path_base_cardinality(graph, path.left) + _path_base_cardinality(
            graph, path.right
        )
    if isinstance(path, SequencePath):
        # A sequence joins on the middle node; its size is bounded above by
        # the product but is typically closer to the larger side.
        left = _path_base_cardinality(graph, path.left)
        right = _path_base_cardinality(graph, path.right)
        return max(left, right)
    if isinstance(path, (OneOrMorePath, ZeroOrMorePath, ZeroOrOnePath)):
        return _path_base_cardinality(graph, path.path) * _CLOSURE_COST_FACTOR
    if isinstance(path, RepeatPath):
        return _path_base_cardinality(graph, path.path) * _CLOSURE_COST_FACTOR
    if isinstance(path, NegatedPropertySet):
        # A negated set scans every triple except the forbidden predicates
        # (twice when both forward and inverse members are present).
        scans = (1 if path.forward or not path.inverse else 0) + (
            1 if path.inverse else 0
        )
        forbidden = sum(
            graph.predicate_cardinality(iri) for iri in path.forward + path.inverse
        )
        return max(0.0, float(len(graph) * scans - forbidden))
    return float(len(graph))


def estimate_path_pattern(
    graph: Graph, node: PathPattern, bound: Set[Variable]
) -> float:
    """Estimate the result size of a path pattern given bound variables."""
    estimate = _path_base_cardinality(graph, node.path)
    if _matches_zero_length(node.path):
        # Zero-length semantics pair every graph node with itself, so these
        # paths are never free even when the underlying predicate is absent.
        estimate = max(estimate, float(len(graph)))
    elif estimate == 0.0:
        return 0.0
    subject_bound = not isinstance(node.subject, Variable) or node.subject in bound
    object_bound = not isinstance(node.object, Variable) or node.object in bound
    if node.path.is_recursive() and not subject_bound and not object_bound:
        # A recursive path with two free endpoints expands from *every*
        # node (ALP / id-engine alike): price the per-start expansion so
        # the planner binds an endpoint first whenever any other pattern
        # can provide one.  Square root keeps the penalty comparable to
        # the join-selectivity divisions rather than dwarfing them.
        estimate *= max(1.0, float(graph.distinct_subjects())) ** 0.5
    if subject_bound:
        estimate /= max(1, graph.distinct_subjects())
    if object_bound:
        estimate /= max(1, graph.distinct_objects())
    return estimate


def estimate_cardinality(
    graph: Graph, node: GraphPatternNode, bound: Set[Variable]
) -> float:
    """Estimate the cardinality of a plannable pattern node."""
    if isinstance(node, TriplePatternNode):
        return estimate_triple_pattern(graph, node.triple, bound)
    if isinstance(node, PathPattern):
        return estimate_path_pattern(graph, node, bound)
    raise TypeError(f"cannot estimate {type(node).__name__}")


# ----------------------------------------------------------------------
# greedy join ordering
# ----------------------------------------------------------------------
def plan_bgp(graph: Graph, patterns: Sequence[GraphPatternNode]) -> BGPPlan:
    """Greedily order ``patterns`` by estimated cardinality.

    At each step the cheapest pattern among those sharing a variable with
    the already-bound set is chosen (all patterns qualify at the first
    step or when nothing is bound yet); a disconnected pattern — i.e. a
    Cartesian product — is only chosen when no connected pattern remains.
    Ties fall back to source order, keeping planning deterministic.
    """
    # The ordering loop itself lives in the physical layer
    # (physical.greedy_order), shared with the Datalog engine's body
    # ordering; imported lazily because physical imports this module.
    from repro.sparql import physical

    ordered = physical.greedy_order(
        patterns,
        lambda node: node.variables(),
        lambda node, bound: estimate_cardinality(graph, node, bound),
    )
    return BGPPlan(
        tuple(PlanStep(node, estimate, index) for index, node, estimate in ordered)
    )


# ----------------------------------------------------------------------
# FILTER pushdown
# ----------------------------------------------------------------------
def attach_filters(
    plan: BGPPlan, conditions: Sequence[Expression]
) -> StepFilters:
    """Assign each FILTER conjunct to the earliest step binding its variables.

    Once every variable a condition mentions is bound, later steps can
    only *extend* a row with other variables — they never rebind existing
    ones — so the condition's verdict is final and checking it early
    prunes the row before the remaining joins multiply it.  Conditions
    with no variables land in slot 0 (checked once, before any probing);
    conditions mentioning a variable the plan never binds land after the
    last step, where they evaluate exactly as a post-filter would (the
    unbound variable raises, and the error counts as "not satisfied").
    """
    slots: List[List[Expression]] = [[] for _ in range(len(plan.steps) + 1)]
    bound_after: List[Set[Variable]] = []
    bound: Set[Variable] = set()
    for step in plan.steps:
        bound = bound | step.node.variables()
        bound_after.append(bound)
    for condition in conditions:
        variables = condition.variables()
        target = len(plan.steps)
        if not variables:
            target = 0
        else:
            for position, available in enumerate(bound_after):
                if variables <= available:
                    target = position + 1
                    break
        slots[target].append(condition)
    return tuple(tuple(slot) for slot in slots)


# ----------------------------------------------------------------------
# streaming index-nested-loop execution
# ----------------------------------------------------------------------
def match_triple(
    graph: Graph, pattern: Triple, binding: Binding
) -> Iterator[Binding]:
    """Yield extensions of ``binding`` matching ``pattern`` via index probes.

    Variables bound in ``binding`` are substituted into the pattern before
    probing, so the most selective available index is always used.
    """
    parts: List[Optional[Term]] = []
    for part in pattern:
        if isinstance(part, Variable):
            parts.append(binding.get(part))
        else:
            parts.append(part)
    subject, predicate, obj = parts
    for triple in graph.triples(subject, predicate, obj):
        mapping: Dict[Variable, Term] = {}
        consistent = True
        for pattern_part, probe_part, triple_part in zip(pattern, parts, triple):
            if probe_part is not None or not isinstance(pattern_part, Variable):
                continue
            existing = mapping.get(pattern_part)
            if existing is None:
                mapping[pattern_part] = triple_part
            elif existing != triple_part:
                consistent = False
                break
        if consistent:
            yield binding.merge(Binding(mapping)) if mapping else binding


def _match_path(
    graph: Graph,
    node: PathPattern,
    binding: Binding,
    path_evaluator: PathEvaluator,
) -> Iterator[Binding]:
    """Yield extensions of ``binding`` matching a path pattern.

    Bound endpoint variables are substituted before evaluation so closure
    operators expand from a single node instead of the whole graph.

    Substitution must not change semantics: a *syntactic* constant
    endpoint of a zero-length-admitting path (``?``, ``*``) matches
    itself even when it is not a node of the graph, but a variable
    endpoint only ever ranges over graph nodes, so a substituted value
    that is not a node cannot produce any solution — neither a
    zero-length one (join semantics pair only nodes of G) nor an edge
    traversal (a non-node has no edges).
    """
    substituted = False
    subject = node.subject
    if isinstance(subject, Variable):
        value = binding.get(subject)
        if value is not None:
            subject = value
            substituted = True
    obj = node.object
    if isinstance(obj, Variable):
        value = binding.get(obj)
        if value is not None:
            obj = value
            substituted = True
    if substituted and _matches_zero_length(node.path):
        for endpoint, original in ((subject, node.subject), (obj, node.object)):
            if endpoint is not original and not (
                graph.subject_cardinality(endpoint)
                or graph.object_cardinality(endpoint)
            ):
                return
    substituted = (
        node
        if subject is node.subject and obj is node.object
        else PathPattern(subject, node.path, obj)
    )
    for result in path_evaluator(substituted, graph):
        # Substitution removed every variable already bound, so the result
        # binds only fresh variables and the merge is always compatible.
        yield binding.merge(result) if len(result) else binding


def execute_plan(
    plan: BGPPlan,
    graph: Graph,
    path_evaluator: Optional[PathEvaluator] = None,
    initial: Binding = EMPTY_BINDING,
    step_filters: Optional[StepFilters] = None,
) -> Iterator[Binding]:
    """Run a plan as a streaming index-nested-loop pipeline.

    Compatibility shim: the pipeline body moved to the physical operator
    layer (:mod:`repro.sparql.physical`); this lowers the plan to a
    term-space operator DAG and executes it, preserving the original
    signature and semantics exactly.  ``step_filters`` (from
    :func:`attach_filters`) interleaves FILTER checks with the joins: a
    row failing its slot's conditions dies immediately instead of being
    extended by every later step and post-filtered at the end.
    """
    from repro.sparql import physical

    physical_plan = physical.lower_plan(
        plan,
        graph,
        options=physical.LoweringOptions(id_execution=False, wcoj=False),
        step_filters=step_filters,
    )
    return physical.execute(
        physical_plan, graph, path_evaluator=path_evaluator, initial=initial
    )


def evaluate_bgp(
    graph: Graph,
    patterns: Sequence[GraphPatternNode],
    path_evaluator: Optional[PathEvaluator] = None,
) -> Iterator[Binding]:
    """Plan and lazily evaluate a basic graph pattern."""
    return execute_plan(plan_bgp(graph, patterns), graph, path_evaluator)
