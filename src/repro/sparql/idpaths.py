"""Id-native, cardinality-aware property-path evaluation.

The term-level ALP procedure in :mod:`repro.sparql.evaluator` expands
closures over boxed :class:`~repro.rdf.terms.Term` objects: every step
hashes terms, every compound inner path re-materialises its full
extension, and every result crossing the planner boundary is re-interned.
On the dictionary-encoded store none of that is necessary — the SPO / POS
/ OSP indexes already join over integer ids.  :class:`IdPathEngine`
evaluates property paths directly over that id surface:

* frontiers and visited sets are plain ``set`` objects over ints,
* one-step expansion probes :meth:`EncodedGraph.objects_for_ids` /
  :meth:`~repro.store.encoded.EncodedGraph.subjects_for_ids` (and the
  edge iterators for negated sets) without constructing a single term,
* terms are decoded exactly once, at the result boundary.

Direction selection
-------------------
Closure operators pick their expansion direction from the store's
statistics (:meth:`pattern_cardinality_ids` and the per-predicate
distinct-subject/object counts), in the spirit of the frontier-size
arguments of the worst-case-optimal-join literature:

* **bound subject** — forward breadth-first expansion from it,
* **bound object** — the path is reversed down to its leaves
  (:func:`repro.sparql.paths.reverse_path`) and expanded forward from the
  object, probing POS directly,
* **both endpoints bound** — bidirectional meet-in-the-middle: the two
  frontiers grow alternately, always expanding the one whose
  ``len(frontier) * estimated-branching`` is smaller, and the search
  stops at the first meeting node,
* **both endpoints free** — per-start expansion (the inherently
  quadratic case) runs from whichever side has fewer distinct start
  nodes.

Sequences bind their middle variable from the cheaper side: the side with
the smaller estimated extension is materialised (restricted by any bound
endpoint) and the other side is evaluated once per *distinct* middle
node, preserving bag multiplicities by multiplication.

Semantics
---------
Results are multiset-identical to the (fixed) term-level ALP fallback:
closure and ``?`` operators are set-semantics, all other operators
preserve duplicates, a bound endpoint of a zero-length-admitting path
matches itself even when it does not occur in the graph, and negated
property sets evaluate their forward and inverse parts independently.
The hypothesis differential suite in ``tests/test_idpaths.py`` holds the
two implementations to the same multisets on random paths and graphs.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.rdf.terms import Variable
from repro.sparql.algebra import PathPattern
from repro.sparql.paths import (
    AlternativePath,
    InversePath,
    LinkPath,
    NegatedPropertySet,
    OneOrMorePath,
    PropertyPath,
    RepeatPath,
    SequencePath,
    ZeroOrMorePath,
    ZeroOrOnePath,
    matches_zero_length,
    normalize_path,
    reverse_path,
)
from repro.sparql.solutions import Binding

#: An id pair (start, end) matched by a path.
IdPair = Tuple[int, int]
#: One-step successor function over ids.
StepFn = Callable[[int], Iterable[int]]

#: Cost multiplier for closure operators in the direction heuristics,
#: mirroring the planner's ``_CLOSURE_COST_FACTOR``.
_CLOSURE_FACTOR = 4.0

#: Sentinel for a constant endpoint that is neither interned nor able to
#: match syntactically: the pattern can have no solutions.
_ABSENT = object()


def supports_id_paths(graph: object) -> bool:
    """True when ``graph`` exposes the id-level navigation surface.

    Duck-typed like :func:`repro.sparql.idexec.supports_id_execution`:
    any backend providing the dictionary plus the id navigation methods
    (``node_ids``, ``objects_for_ids``, ...) can host the path engine.
    """
    return all(
        hasattr(graph, name)
        for name in (
            "dictionary",
            "match_triple_ids",
            "pattern_cardinality_ids",
            "node_ids",
            "predicate_ids",
            "objects_for_ids",
            "subjects_for_ids",
            "out_edges_ids",
            "in_edges_ids",
            "distinct_subjects_ids",
            "distinct_objects_ids",
            "distinct_predicates",
        )
    )


class IdPathEngine:
    """Evaluates property paths over an id-capable graph (encoded store)."""

    __slots__ = ("_graph", "_dict", "_nodes_cache", "_nodes_version")

    def __init__(self, graph) -> None:
        self._graph = graph
        self._dict = graph.dictionary
        self._nodes_cache: Optional[Set[int]] = None
        self._nodes_version: Optional[int] = None

    @property
    def graph(self):
        """The id-capable graph this engine evaluates over."""
        return self._graph

    # ------------------------------------------------------------------
    # public surface
    # ------------------------------------------------------------------
    def evaluate(self, node: PathPattern) -> List[Binding]:
        """Evaluate a path pattern, decoding only at the result boundary.

        Multiset-identical to ``SparqlEvaluator._eval_path_pattern_terms``;
        used by the evaluator when ``use_id_paths`` is on and the active
        graph is id-capable.
        """
        path = normalize_path(node.path)
        subject, obj = node.subject, node.object
        subject_id = self._endpoint_id(subject, path)
        object_id = self._endpoint_id(obj, path)
        if subject_id is _ABSENT or object_id is _ABSENT:
            return []
        same_variable = (
            isinstance(subject, Variable)
            and isinstance(obj, Variable)
            and subject == obj
        )
        decode = self._dict.term
        results: List[Binding] = []
        for start, end in self.pair_ids(path, subject_id, object_id):
            if same_variable and start != end:
                continue
            mapping = {}
            if isinstance(subject, Variable):
                mapping[subject] = decode(start)
            if isinstance(obj, Variable):
                mapping[obj] = decode(end)
            results.append(Binding(mapping))
        return results

    def is_node(self, term_id: int) -> bool:
        """True when the id occurs in subject or object position."""
        return term_id in self._nodes()

    def endpoint_id(self, part, path: PropertyPath):
        """Resolve a syntactic endpoint to an id without growing the store.

        Variables resolve to ``None`` (free).  A constant already in the
        dictionary resolves to its id.  An *unknown* constant can only
        ever match syntactically — via a zero-length path — so it is
        interned (append-only, bounded by such queries) only when the
        path admits zero length; otherwise the sentinel ``_ABSENT``
        marks the whole pattern as empty, mirroring the unknown-constant
        bail-out of the triple-pattern pipeline.  Note the zero-admitting
        intern does mutate shared store state: the term lands in the
        dictionary for good and will be carried by snapshots — the price
        of keeping every downstream comparison a plain int.

        Public because the physical executor pre-resolves path-step
        endpoints through the same rule.
        """
        if isinstance(part, Variable):
            return None
        term_id = self._dict.id_for(part)
        if term_id is not None:
            return term_id
        if matches_zero_length(path):
            return self._dict.encode(part)
        return _ABSENT

    #: Backwards-compatible alias (pre-physical-layer name).
    _endpoint_id = endpoint_id

    def pair_ids(
        self,
        path: PropertyPath,
        subject: Optional[int],
        obj: Optional[int],
    ) -> Iterator[IdPair]:
        """Yield the ``(start, end)`` id pairs matched by ``path``.

        ``subject`` / ``obj`` are bound endpoint ids (``None`` = free);
        the yielded pairs are exactly the extension of the path restricted
        to those endpoints, with the term-level duplicate semantics
        (closures and ``?`` distinct, everything else a bag).  A bound
        endpoint behaves syntactically: a zero-length-admitting path
        matches a bound id even when it is not a node of the graph.
        """
        if isinstance(path, LinkPath):
            pid = self._dict.id_for(path.iri)
            if pid is None:
                return
            for sid, _pid, oid in self._graph.match_triple_ids(subject, pid, obj):
                yield sid, oid
            return
        if isinstance(path, InversePath):
            for end, start in self.pair_ids(path.path, obj, subject):
                yield start, end
            return
        if isinstance(path, AlternativePath):
            yield from self.pair_ids(path.left, subject, obj)
            yield from self.pair_ids(path.right, subject, obj)
            return
        if isinstance(path, SequencePath):
            yield from self._sequence_pairs(path, subject, obj)
            return
        if isinstance(path, NegatedPropertySet):
            yield from self._negated_pairs(path, subject, obj)
            return
        if isinstance(path, ZeroOrOnePath):
            pairs = self._zero_pairs(subject, obj)
            pairs.update(self.pair_ids(path.path, subject, obj))
            yield from pairs
            return
        if isinstance(path, OneOrMorePath):
            yield from self._closure_pairs(path.path, subject, obj, include_zero=False)
            return
        if isinstance(path, ZeroOrMorePath):
            yield from self._closure_pairs(path.path, subject, obj, include_zero=True)
            return
        if isinstance(path, RepeatPath):  # defensive: normalize_path removes these
            yield from self.pair_ids(normalize_path(path), subject, obj)
            return
        raise TypeError(f"unsupported property path {path!r}")

    # ------------------------------------------------------------------
    # cardinality heuristics
    # ------------------------------------------------------------------
    def relation_stats(self, path: PropertyPath) -> Tuple[float, float, float]:
        """Estimate ``(edges, distinct sources, distinct targets)`` of a path.

        Composed from the store's exact per-predicate statistics; only the
        *relative* magnitudes matter — they steer sequence join order and
        closure expansion direction.
        """
        graph = self._graph
        if isinstance(path, LinkPath):
            pid = self._dict.id_for(path.iri)
            if pid is None:
                return 0.0, 0.0, 0.0
            return (
                float(graph.pattern_cardinality_ids(None, pid, None)),
                float(graph.distinct_subjects_ids(pid)),
                float(graph.distinct_objects_ids(pid)),
            )
        if isinstance(path, InversePath):
            edges, sources, targets = self.relation_stats(path.path)
            return edges, targets, sources
        if isinstance(path, AlternativePath):
            left = self.relation_stats(path.left)
            right = self.relation_stats(path.right)
            return tuple(a + b for a, b in zip(left, right))
        if isinstance(path, SequencePath):
            left = self.relation_stats(path.left)
            right = self.relation_stats(path.right)
            return max(left[0], right[0]), left[1], right[2]
        if isinstance(path, (ZeroOrOnePath, OneOrMorePath, ZeroOrMorePath)):
            edges, sources, targets = self.relation_stats(path.path)
            return edges * _CLOSURE_FACTOR, sources, targets
        if isinstance(path, RepeatPath):
            edges, sources, targets = self.relation_stats(path.path)
            return edges * _CLOSURE_FACTOR, sources, targets
        # Negated property set: a full scan minus the forbidden predicates.
        total = float(len(self._graph))
        spread = float(max(1, self._graph.distinct_predicates()))
        forbidden = 0.0
        for iri in getattr(path, "forward", ()) + getattr(path, "inverse", ()):
            pid = self._dict.id_for(iri)
            if pid is not None:
                forbidden += self._graph.pattern_cardinality_ids(None, pid, None)
        edges = max(1.0, total - forbidden)
        return edges, total / spread, total / spread

    # ------------------------------------------------------------------
    # non-closure operators
    # ------------------------------------------------------------------
    def _sequence_pairs(
        self, path: SequencePath, subject: Optional[int], obj: Optional[int]
    ) -> Iterator[IdPair]:
        """Bag join of a sequence, binding the middle from the cheaper side.

        One side is materialised (with its outer endpoint restriction
        applied) and the other is evaluated once per distinct middle id
        with that middle *bound*, so closures on the unmaterialised side
        expand from single nodes instead of the whole graph.
        """
        if subject is not None:
            left_first = True
        elif obj is not None:
            left_first = False
        else:
            left_edges = self.relation_stats(path.left)[0]
            right_edges = self.relation_stats(path.right)[0]
            left_first = left_edges <= right_edges
        if left_first:
            cache: Dict[int, List[int]] = {}
            for start, middle in self.pair_ids(path.left, subject, None):
                ends = cache.get(middle)
                if ends is None:
                    ends = cache[middle] = [
                        end for _, end in self.pair_ids(path.right, middle, obj)
                    ]
                for end in ends:
                    yield start, end
        else:
            cache = {}
            for middle, end in self.pair_ids(path.right, None, obj):
                starts = cache.get(middle)
                if starts is None:
                    starts = cache[middle] = [
                        start for start, _ in self.pair_ids(path.left, subject, middle)
                    ]
                for start in starts:
                    yield start, end

    def _negated_pairs(
        self, path: NegatedPropertySet, subject: Optional[int], obj: Optional[int]
    ) -> Iterator[IdPair]:
        """Negated-set pairs with bound endpoints pushed into the indexes."""
        graph = self._graph
        id_for = self._dict.id_for
        forward = {pid for pid in map(id_for, path.forward) if pid is not None}
        inverse = {pid for pid in map(id_for, path.inverse) if pid is not None}
        if path.forward or not path.inverse:
            # Forward part: any triple (s, p, o) with p outside the set.
            if subject is not None:
                for pid, oid in graph.out_edges_ids(subject):
                    if pid not in forward and (obj is None or oid == obj):
                        yield subject, oid
            elif obj is not None:
                for pid, sid in graph.in_edges_ids(obj):
                    if pid not in forward:
                        yield sid, obj
            else:
                for pid in graph.predicate_ids():
                    if pid in forward:
                        continue
                    for sid, _pid, oid in graph.match_triple_ids(None, pid, None):
                        yield sid, oid
        if path.inverse:
            # Inverse part: pairs (x, y) for triples (y, p, x), p outside.
            if subject is not None:
                for pid, sid in graph.in_edges_ids(subject):
                    if pid not in inverse and (obj is None or sid == obj):
                        yield subject, sid
            elif obj is not None:
                for pid, oid in graph.out_edges_ids(obj):
                    if pid not in inverse:
                        yield oid, obj
            else:
                for pid in graph.predicate_ids():
                    if pid in inverse:
                        continue
                    for sid, _pid, oid in graph.match_triple_ids(None, pid, None):
                        yield oid, sid

    def _zero_pairs(self, subject: Optional[int], obj: Optional[int]) -> Set[IdPair]:
        """Zero-length pairs under the endpoint restriction.

        Mirrors the term-level rule set: free-free pairs every graph node
        with itself; a bound endpoint matches itself syntactically (even
        outside the graph); two distinct bound endpoints never match.
        """
        if subject is not None and obj is not None:
            return {(subject, subject)} if subject == obj else set()
        if subject is not None:
            return {(subject, subject)}
        if obj is not None:
            return {(obj, obj)}
        return {(node, node) for node in self._nodes()}

    # ------------------------------------------------------------------
    # closure expansion
    # ------------------------------------------------------------------
    def _closure_pairs(
        self,
        inner: PropertyPath,
        subject: Optional[int],
        obj: Optional[int],
        include_zero: bool,
    ) -> Iterator[IdPair]:
        """``inner+`` / ``inner*`` with set semantics, direction-selected."""
        if subject is not None and obj is not None:
            if include_zero and subject == obj:
                yield subject, obj
                return
            if self._reachable(inner, subject, obj):
                yield subject, obj
            return
        if subject is not None:
            reached = self._expand(self._forward_step(inner), subject)
            if include_zero:
                reached.add(subject)
            for end in reached:
                yield subject, end
            return
        if obj is not None:
            reached = self._expand(self._backward_step(inner), obj)
            if include_zero:
                reached.add(obj)
            for start in reached:
                yield start, obj
            return
        # Two free endpoints: per-start expansion from the smaller side.
        _, sources, targets = self.relation_stats(inner)
        nodes = self._nodes()
        pairs: Set[IdPair] = set()
        if sources <= targets:
            step = self._forward_step(inner)
            for start in nodes:
                for end in self._expand(step, start):
                    pairs.add((start, end))
        else:
            step = self._backward_step(inner)
            for end in nodes:
                for start in self._expand(step, end):
                    pairs.add((start, end))
        if include_zero:
            for node in nodes:
                pairs.add((node, node))
        yield from pairs

    def _expand(self, step: StepFn, start: int) -> Set[int]:
        """Nodes reachable from ``start`` in one or more ``step`` hops."""
        reached: Set[int] = set()
        frontier = deque(step(start))
        while frontier:
            current = frontier.popleft()
            if current in reached:
                continue
            reached.add(current)
            frontier.extend(step(current))
        return reached

    def _reachable(self, inner: PropertyPath, subject: int, obj: int) -> bool:
        """Bidirectional meet-in-the-middle: is ``obj`` >=1 steps from ``subject``?

        Both frontiers expand alternately — always the one whose
        ``len(frontier) * estimated branching`` is smaller — and the
        search stops at the first node reached from both sides.  The
        forward visited set covers ">=1 step from subject", the backward
        one ">=0 steps to obj", so a meet is exactly a path of length
        >= 1 (the ``p+`` semantics; ``p*`` zero-length is handled by the
        caller).
        """
        edges, sources, targets = self.relation_stats(inner)
        forward_branch = edges / max(sources, 1.0)
        backward_branch = edges / max(targets, 1.0)
        forward = self._forward_step(inner)
        backward = self._backward_step(inner)
        forward_seen: Set[int] = set(forward(subject))
        if obj in forward_seen:
            return True
        backward_seen: Set[int] = {obj}
        forward_frontier = set(forward_seen)
        backward_frontier = {obj}
        while forward_frontier and backward_frontier:
            forward_cost = len(forward_frontier) * forward_branch
            backward_cost = len(backward_frontier) * backward_branch
            if forward_cost <= backward_cost:
                fresh: Set[int] = set()
                for node in forward_frontier:
                    for successor in forward(node):
                        if successor in backward_seen:
                            return True
                        if successor not in forward_seen:
                            forward_seen.add(successor)
                            fresh.add(successor)
                forward_frontier = fresh
            else:
                fresh = set()
                for node in backward_frontier:
                    for predecessor in backward(node):
                        if predecessor in forward_seen:
                            return True
                        if predecessor not in backward_seen:
                            backward_seen.add(predecessor)
                            fresh.add(predecessor)
                backward_frontier = fresh
        if not forward_frontier:
            # Forward reach is complete and never met the backward set.
            return False
        # Backward reach is complete: a >=1-step path exists exactly when
        # the subject itself reaches obj (subject != obj here, so any
        # >=0-step path is >=1 steps) ...
        if subject != obj:
            return subject in backward_seen
        # ... except for the cycle question (subject == obj), which only
        # the remaining forward expansion can answer.
        while forward_frontier:
            fresh = set()
            for node in forward_frontier:
                for successor in forward(node):
                    if successor in backward_seen:
                        return True
                    if successor not in forward_seen:
                        forward_seen.add(successor)
                        fresh.add(successor)
            forward_frontier = fresh
        return False

    # ------------------------------------------------------------------
    # one-step successor functions
    # ------------------------------------------------------------------
    def _forward_step(self, path: PropertyPath) -> StepFn:
        """Compile a path into a node -> successors function over ids."""
        graph = self._graph
        if isinstance(path, LinkPath):
            pid = self._dict.id_for(path.iri)
            if pid is None:
                return lambda node: ()
            objects_for = graph.objects_for_ids
            return lambda node: objects_for(node, pid)
        if isinstance(path, InversePath):
            return self._backward_step(path.path)
        if isinstance(path, AlternativePath):
            left = self._forward_step(path.left)
            right = self._forward_step(path.right)

            def alternative_step(node: int) -> Iterator[int]:
                yield from left(node)
                yield from right(node)

            return alternative_step
        if isinstance(path, SequencePath):
            left = self._forward_step(path.left)
            right = self._forward_step(path.right)

            def sequence_step(node: int) -> Iterator[int]:
                seen: Set[int] = set()
                for middle in left(node):
                    if middle in seen:
                        continue
                    seen.add(middle)
                    yield from right(middle)

            return sequence_step
        if isinstance(path, ZeroOrOnePath):
            inner = self._forward_step(path.path)

            def zero_or_one_step(node: int) -> Iterator[int]:
                yield node
                yield from inner(node)

            return zero_or_one_step
        if isinstance(path, OneOrMorePath):
            inner = self._forward_step(path.path)
            return lambda node: self._expand(inner, node)
        if isinstance(path, ZeroOrMorePath):
            inner = self._forward_step(path.path)

            def zero_or_more_step(node: int) -> Iterator[int]:
                yield node
                yield from self._expand(inner, node)

            return zero_or_more_step
        if isinstance(path, NegatedPropertySet):
            id_for = self._dict.id_for
            forward = {p for p in map(id_for, path.forward) if p is not None}
            inverse = {p for p in map(id_for, path.inverse) if p is not None}
            scan_forward = bool(path.forward or not path.inverse)
            scan_inverse = bool(path.inverse)

            def negated_step(node: int) -> Iterator[int]:
                if scan_forward:
                    for pid, oid in graph.out_edges_ids(node):
                        if pid not in forward:
                            yield oid
                if scan_inverse:
                    for pid, sid in graph.in_edges_ids(node):
                        if pid not in inverse:
                            yield sid
            return negated_step
        if isinstance(path, RepeatPath):  # defensive: normalized away upstream
            return self._forward_step(normalize_path(path))
        raise TypeError(f"unsupported property path {path!r}")

    def _backward_step(self, path: PropertyPath) -> StepFn:
        """Successor function of the reversed path (predecessors)."""
        if isinstance(path, LinkPath):
            pid = self._dict.id_for(path.iri)
            if pid is None:
                return lambda node: ()
            subjects_for = self._graph.subjects_for_ids
            return lambda node: subjects_for(pid, node)
        return self._forward_step(reverse_path(path))

    # ------------------------------------------------------------------
    # node-set cache
    # ------------------------------------------------------------------
    def _nodes(self) -> Set[int]:
        """Ids of every graph node, cached per graph mutation stamp."""
        version = getattr(self._graph, "version", None)
        if self._nodes_cache is None or version != self._nodes_version:
            self._nodes_cache = self._graph.node_ids()
            self._nodes_version = version
        return self._nodes_cache
