"""Id-native streaming execution of BGP plans over the encoded store.

The dictionary-encoded store (:mod:`repro.store.encoded`) keeps its
SPO/POS/OSP indexes over integer term ids, but until this module the
evaluator joined over decoded :class:`~repro.rdf.terms.Term` objects, so
every index probe paid a dictionary decode and every intermediate row
materialised boxed terms.  :func:`execute_plan_ids` runs the planner's
index-nested-loop pipeline entirely in id space instead:

* partial solutions are plain ``{Variable: int}`` environments mutated
  in place down the depth-first pipeline (bind on match, unbind on
  backtrack) — no per-row allocation at all for intermediate rows,
* triple patterns probe :meth:`EncodedGraph.match_triple_ids` directly,
* FILTER conjuncts pushed between steps (:func:`repro.sparql.plan.attach_filters`)
  are compiled by :class:`IdFilter`: ``sameTerm`` and ``=`` / ``!=``
  comparisons decide on raw ids and kind tags whenever that is sound,
  and every other condition decodes *only the variables it mentions*,
* terms are decoded through the :class:`~repro.store.dictionary.TermDictionary`
  exactly once, at the result boundary, through a precomputed variable
  order so the :class:`~repro.sparql.solutions.Binding` construction
  skips its sort.

Property paths run id-natively too: a path step hands its bound endpoint
*ids* straight to the :class:`~repro.sparql.idpaths.IdPathEngine`
(integer frontier expansion, statistics-driven direction selection) and
binds the resulting id pairs without a single decode.  Backends exposing
the join surface but not the navigation surface — and runs with
``use_id_paths=False`` — fall back to the term-level bridge: decode the
bound endpoints, run the evaluator's path machinery, re-intern the fresh
endpoint bindings.

When is the raw-id fast path sound?  Id equality always implies term
equality (interning is structural), so equal ids decide ``sameTerm``,
``=`` and ``!=`` immediately.  *Unequal* ids decide ``sameTerm`` always,
but decide ``=`` / ``!=`` only when the two ids are not both literals:
distinct literal ids may still be value-equal (``"1"^^xsd:integer`` vs
``"01"^^xsd:integer``), so that single case falls back to decoding.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.rdf.terms import Term, Variable
from repro.sparql.expressions import (
    Comparison,
    Expression,
    FunctionCall,
    TermExpr,
    VariableExpr,
    satisfies,
)
from repro.sparql.idpaths import IdPathEngine
from repro.sparql.plan import BGPPlan, PathEvaluator, StepFilters
from repro.sparql.solutions import Binding, EMPTY_BINDING
from repro.store.dictionary import TermDictionary

#: An id-space partial solution: variable -> interned term id.
IdEnv = Dict[Variable, int]


def supports_id_execution(graph: object) -> bool:
    """True when ``graph`` exposes the id-level store surface.

    Duck-typed rather than an ``isinstance`` check so alternative encoded
    backends (a future sharded store, mmap snapshots, ...) opt in by
    implementing ``match_triple_ids`` + ``dictionary``.
    """
    return hasattr(graph, "match_triple_ids") and hasattr(graph, "dictionary")


# ----------------------------------------------------------------------
# compiled FILTER conjuncts
# ----------------------------------------------------------------------
#: Operand of a fast probe: (is_variable, Variable | constant id).
_OperandSpec = Tuple[bool, object]


def _operand_spec(
    expression: Expression, dictionary: TermDictionary
) -> Optional[_OperandSpec]:
    """Compile a probe operand, or None when no id fast path exists.

    A constant that was never interned gets no spec: the dictionary can
    still intern it mid-execution (e.g. a zero-length path endpoint), so
    a stale "absent" verdict could go wrong — those conditions just take
    the decoding slow path.
    """
    if isinstance(expression, VariableExpr):
        return (True, expression.variable)
    if isinstance(expression, TermExpr):
        term_id = dictionary.id_for(expression.term)
        if term_id is None:
            return None
        return (False, term_id)
    return None


class IdFilter:
    """A FILTER conjunct compiled against a term dictionary.

    ``test`` first consults the raw-id probe (when one was compiled); a
    probe may return a definitive verdict or ``None`` for "undecidable on
    ids" (distinct literal ids under ``=``), in which case — like for any
    condition without a probe — only the variables the condition mentions
    are decoded and the full SPARQL semantics run on a tiny binding.
    """

    __slots__ = ("condition", "needed", "_probe")

    def __init__(self, condition: Expression, dictionary: TermDictionary) -> None:
        self.condition = condition
        self.needed = tuple(condition.variables())
        self._probe = self._compile_probe(condition, dictionary)

    @staticmethod
    def _compile_probe(condition: Expression, dictionary: TermDictionary):
        if (
            isinstance(condition, FunctionCall)
            and condition.name.upper() == "SAMETERM"
            and len(condition.arguments) == 2
        ):
            left = _operand_spec(condition.arguments[0], dictionary)
            right = _operand_spec(condition.arguments[1], dictionary)
            if left is not None and right is not None:
                return (left, right, None)
        if isinstance(condition, Comparison) and condition.operator in ("=", "!="):
            left = _operand_spec(condition.left, dictionary)
            right = _operand_spec(condition.right, dictionary)
            if left is not None and right is not None:
                return (left, right, condition.operator == "=")
        return None

    def test(self, env: IdEnv, dictionary: TermDictionary) -> bool:
        probe = self._probe
        if probe is not None:
            (left_is_var, left), (right_is_var, right), equality = probe
            left_id = env.get(left) if left_is_var else left
            right_id = env.get(right) if right_is_var else right
            if left_id is None or right_id is None:
                # An unbound variable raises in SPARQL; FILTER counts the
                # error as "not satisfied" for sameTerm, = and != alike.
                return False
            if equality is None:  # sameTerm: structural identity == id identity
                return left_id == right_id
            if left_id == right_id:
                return equality
            if not (
                TermDictionary.is_literal(left_id)
                and TermDictionary.is_literal(right_id)
            ):
                return not equality
            # Two distinct literal ids may still be value-equal: decode.
        decode = dictionary.term
        mapping: Dict[Variable, Term] = {}
        for variable in self.needed:
            term_id = env.get(variable)
            if term_id is not None:
                mapping[variable] = decode(term_id)
        return satisfies(self.condition, Binding(mapping))


def _compile_step_filters(
    step_filters: Optional[StepFilters], dictionary: TermDictionary
) -> Optional[List[Tuple[IdFilter, ...]]]:
    if step_filters is None:
        return None
    return [
        tuple(IdFilter(condition, dictionary) for condition in slot)
        for slot in step_filters
    ]


# ----------------------------------------------------------------------
# id-space index-nested-loop pipeline
# ----------------------------------------------------------------------
def execute_plan_ids(
    plan: BGPPlan,
    graph,
    path_evaluator: Optional[PathEvaluator] = None,
    step_filters: Optional[StepFilters] = None,
    initial: Binding = EMPTY_BINDING,
    use_id_paths: bool = True,
    path_engine: Optional[IdPathEngine] = None,
) -> Iterator[Binding]:
    """Run a BGP plan over an id-capable graph, decoding only results.

    Compatibility shim: the pipeline body moved to the physical operator
    layer (:mod:`repro.sparql.physical`); this lowers the plan to an
    id-space operator DAG (never the leapfrog operator — WCOJ selection
    belongs to the evaluator's lowering, not this legacy entry point)
    and executes it with the original signature and semantics.  Path
    steps run through the id-native :class:`IdPathEngine` when the graph
    exposes the navigation surface and ``use_id_paths`` is on (or a
    pre-built ``path_engine`` is handed in); otherwise they bridge to
    the term-level ``path_evaluator``.
    """
    from repro.sparql import physical

    options = physical.LoweringOptions(
        id_execution=True,
        id_paths=use_id_paths or path_engine is not None,
        wcoj=False,
    )
    physical_plan = physical.lower_plan(
        plan, graph, options=options, step_filters=step_filters
    )
    return physical.execute(
        physical_plan,
        graph,
        path_evaluator=path_evaluator,
        path_engine=path_engine,
        initial=initial,
    )
