"""Id-native streaming execution of BGP plans over the encoded store.

The dictionary-encoded store (:mod:`repro.store.encoded`) keeps its
SPO/POS/OSP indexes over integer term ids, but until this module the
evaluator joined over decoded :class:`~repro.rdf.terms.Term` objects, so
every index probe paid a dictionary decode and every intermediate row
materialised boxed terms.  :func:`execute_plan_ids` runs the planner's
index-nested-loop pipeline entirely in id space instead:

* partial solutions are plain ``{Variable: int}`` environments mutated
  in place down the depth-first pipeline (bind on match, unbind on
  backtrack) — no per-row allocation at all for intermediate rows,
* triple patterns probe :meth:`EncodedGraph.match_triple_ids` directly,
* FILTER conjuncts pushed between steps (:func:`repro.sparql.plan.attach_filters`)
  are compiled by :class:`IdFilter`: ``sameTerm`` and ``=`` / ``!=``
  comparisons decide on raw ids and kind tags whenever that is sound,
  and every other condition decodes *only the variables it mentions*,
* terms are decoded through the :class:`~repro.store.dictionary.TermDictionary`
  exactly once, at the result boundary, through a precomputed variable
  order so the :class:`~repro.sparql.solutions.Binding` construction
  skips its sort.

Property paths run id-natively too: a path step hands its bound endpoint
*ids* straight to the :class:`~repro.sparql.idpaths.IdPathEngine`
(integer frontier expansion, statistics-driven direction selection) and
binds the resulting id pairs without a single decode.  Backends exposing
the join surface but not the navigation surface — and runs with
``use_id_paths=False`` — fall back to the term-level bridge: decode the
bound endpoints, run the evaluator's path machinery, re-intern the fresh
endpoint bindings.

When is the raw-id fast path sound?  Id equality always implies term
equality (interning is structural), so equal ids decide ``sameTerm``,
``=`` and ``!=`` immediately.  *Unequal* ids decide ``sameTerm`` always,
but decide ``=`` / ``!=`` only when the two ids are not both literals:
distinct literal ids may still be value-equal (``"1"^^xsd:integer`` vs
``"01"^^xsd:integer``), so that single case falls back to decoding.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.rdf.terms import Term, Variable
from repro.sparql.algebra import PathPattern, TriplePatternNode
from repro.sparql.expressions import (
    Comparison,
    Expression,
    FunctionCall,
    TermExpr,
    VariableExpr,
    satisfies,
)
from repro.sparql.idpaths import _ABSENT, IdPathEngine, supports_id_paths
from repro.sparql.paths import matches_zero_length, normalize_path
from repro.sparql.plan import BGPPlan, PathEvaluator, StepFilters, _match_path
from repro.sparql.solutions import Binding, EMPTY_BINDING
from repro.store.dictionary import TermDictionary

#: An id-space partial solution: variable -> interned term id.
IdEnv = Dict[Variable, int]


def supports_id_execution(graph: object) -> bool:
    """True when ``graph`` exposes the id-level store surface.

    Duck-typed rather than an ``isinstance`` check so alternative encoded
    backends (a future sharded store, mmap snapshots, ...) opt in by
    implementing ``match_triple_ids`` + ``dictionary``.
    """
    return hasattr(graph, "match_triple_ids") and hasattr(graph, "dictionary")


# ----------------------------------------------------------------------
# compiled FILTER conjuncts
# ----------------------------------------------------------------------
#: Operand of a fast probe: (is_variable, Variable | constant id).
_OperandSpec = Tuple[bool, object]


def _operand_spec(
    expression: Expression, dictionary: TermDictionary
) -> Optional[_OperandSpec]:
    """Compile a probe operand, or None when no id fast path exists.

    A constant that was never interned gets no spec: the dictionary can
    still intern it mid-execution (e.g. a zero-length path endpoint), so
    a stale "absent" verdict could go wrong — those conditions just take
    the decoding slow path.
    """
    if isinstance(expression, VariableExpr):
        return (True, expression.variable)
    if isinstance(expression, TermExpr):
        term_id = dictionary.id_for(expression.term)
        if term_id is None:
            return None
        return (False, term_id)
    return None


class IdFilter:
    """A FILTER conjunct compiled against a term dictionary.

    ``test`` first consults the raw-id probe (when one was compiled); a
    probe may return a definitive verdict or ``None`` for "undecidable on
    ids" (distinct literal ids under ``=``), in which case — like for any
    condition without a probe — only the variables the condition mentions
    are decoded and the full SPARQL semantics run on a tiny binding.
    """

    __slots__ = ("condition", "needed", "_probe")

    def __init__(self, condition: Expression, dictionary: TermDictionary) -> None:
        self.condition = condition
        self.needed = tuple(condition.variables())
        self._probe = self._compile_probe(condition, dictionary)

    @staticmethod
    def _compile_probe(condition: Expression, dictionary: TermDictionary):
        if (
            isinstance(condition, FunctionCall)
            and condition.name.upper() == "SAMETERM"
            and len(condition.arguments) == 2
        ):
            left = _operand_spec(condition.arguments[0], dictionary)
            right = _operand_spec(condition.arguments[1], dictionary)
            if left is not None and right is not None:
                return (left, right, None)
        if isinstance(condition, Comparison) and condition.operator in ("=", "!="):
            left = _operand_spec(condition.left, dictionary)
            right = _operand_spec(condition.right, dictionary)
            if left is not None and right is not None:
                return (left, right, condition.operator == "=")
        return None

    def test(self, env: IdEnv, dictionary: TermDictionary) -> bool:
        probe = self._probe
        if probe is not None:
            (left_is_var, left), (right_is_var, right), equality = probe
            left_id = env.get(left) if left_is_var else left
            right_id = env.get(right) if right_is_var else right
            if left_id is None or right_id is None:
                # An unbound variable raises in SPARQL; FILTER counts the
                # error as "not satisfied" for sameTerm, = and != alike.
                return False
            if equality is None:  # sameTerm: structural identity == id identity
                return left_id == right_id
            if left_id == right_id:
                return equality
            if not (
                TermDictionary.is_literal(left_id)
                and TermDictionary.is_literal(right_id)
            ):
                return not equality
            # Two distinct literal ids may still be value-equal: decode.
        decode = dictionary.term
        mapping: Dict[Variable, Term] = {}
        for variable in self.needed:
            term_id = env.get(variable)
            if term_id is not None:
                mapping[variable] = decode(term_id)
        return satisfies(self.condition, Binding(mapping))


def _compile_step_filters(
    step_filters: Optional[StepFilters], dictionary: TermDictionary
) -> Optional[List[Tuple[IdFilter, ...]]]:
    if step_filters is None:
        return None
    return [
        tuple(IdFilter(condition, dictionary) for condition in slot)
        for slot in step_filters
    ]


# ----------------------------------------------------------------------
# id-space index-nested-loop pipeline
# ----------------------------------------------------------------------
def execute_plan_ids(
    plan: BGPPlan,
    graph,
    path_evaluator: Optional[PathEvaluator] = None,
    step_filters: Optional[StepFilters] = None,
    initial: Binding = EMPTY_BINDING,
    use_id_paths: bool = True,
    path_engine: Optional[IdPathEngine] = None,
) -> Iterator[Binding]:
    """Run a BGP plan over an id-capable graph, decoding only results.

    The semantics match :func:`repro.sparql.plan.execute_plan` exactly
    (the differential suite holds both to the same multisets); the work
    per intermediate row is an int dict probe instead of Term hashing and
    Binding construction.  Path steps run through the id-native
    :class:`IdPathEngine` when the graph exposes the navigation surface
    and ``use_id_paths`` is on; otherwise they bridge to the term-level
    ``path_evaluator``.
    """
    dictionary: TermDictionary = graph.dictionary
    steps = plan.steps
    env: IdEnv = {}
    if len(initial):
        # encode (not id_for): an initial term outside the graph gets a
        # fresh id that simply never matches a probe — identical, by
        # construction, to the term-space pipeline finding no triples.
        encode = dictionary.encode
        for variable, term in initial.items():
            env[variable] = encode(term)
    filters = _compile_step_filters(step_filters, dictionary)
    if filters is not None and not all(
        id_filter.test(env, dictionary) for id_filter in filters[0]
    ):
        return
    if path_engine is not None:
        # The evaluator hands in its cached engine so repeated queries
        # against the same graph reuse the version-stamped node-set cache.
        engine: Optional[IdPathEngine] = path_engine
    elif use_id_paths and supports_id_paths(graph):
        engine = IdPathEngine(graph)
    else:
        engine = None

    # Compile each step: triple patterns to (is_variable, value) component
    # triples with constants pre-interned; a constant the dictionary has
    # never seen cannot occur in any triple, so the BGP is empty.  Path
    # steps destined for the id engine pre-normalize their path and
    # pre-intern constant endpoints (a fresh id for an unseen constant is
    # harmless: it only ever matches syntactically, via zero-length).
    compiled: List[Tuple[str, object]] = []
    for step in steps:
        node = step.node
        if isinstance(node, TriplePatternNode):
            parts = []
            for part in node.triple:
                if isinstance(part, Variable):
                    parts.append((True, part))
                else:
                    term_id = dictionary.id_for(part)
                    if term_id is None:
                        return
                    parts.append((False, term_id))
            compiled.append(("triple", tuple(parts)))
        elif isinstance(node, PathPattern):
            if engine is not None:
                path = normalize_path(node.path)
                subject_is_var = isinstance(node.subject, Variable)
                object_is_var = isinstance(node.object, Variable)
                # Constant endpoints resolve through the engine's shared
                # unknown-constant rule: _ABSENT (a non-zero-admitting
                # path with an unseen constant) empties the whole BGP.
                subject_spec = (
                    node.subject
                    if subject_is_var
                    else engine._endpoint_id(node.subject, path)
                )
                object_spec = (
                    node.object
                    if object_is_var
                    else engine._endpoint_id(node.object, path)
                )
                if subject_spec is _ABSENT or object_spec is _ABSENT:
                    return
                spec = (
                    path,
                    subject_is_var,
                    subject_spec,
                    object_is_var,
                    object_spec,
                    matches_zero_length(path),
                )
                compiled.append(("idpath", spec))
            elif path_evaluator is not None:
                compiled.append(("path", node))
            else:
                raise TypeError("plan contains a path pattern but no path evaluator")
        else:  # pragma: no cover - plan_bgp only admits the two kinds above
            raise TypeError(f"unsupported plan node {type(node).__name__}")

    # The environment's domain at the leaf is the same for every result
    # row (every step binds its variables), so the decode order — and the
    # Binding sort — is computed once.
    result_variables = set(env)
    for step in steps:
        result_variables |= step.node.variables()
    ordered = tuple(sorted(result_variables, key=lambda variable: variable.name))
    decode = dictionary.term
    match_ids = graph.match_triple_ids
    total = len(steps)

    def recurse(position: int) -> Iterator[Binding]:
        if position == total:
            yield Binding.from_sorted_items(
                tuple((variable, decode(env[variable])) for variable in ordered)
            )
            return
        kind, data = compiled[position]
        slot = filters[position + 1] if filters is not None else ()
        if kind == "triple":
            probe = []
            free: List[Tuple[int, Variable]] = []
            for index, (is_variable, value) in enumerate(data):
                if is_variable:
                    bound = env.get(value)
                    probe.append(bound)
                    if bound is None:
                        free.append((index, value))
                else:
                    probe.append(value)
            for ids in match_ids(probe[0], probe[1], probe[2]):
                added: List[Variable] = []
                consistent = True
                for index, variable in free:
                    value = ids[index]
                    current = env.get(variable)
                    if current is None:
                        env[variable] = value
                        added.append(variable)
                    elif current != value:
                        # Repeated variable (?x p ?x) matched two ids.
                        consistent = False
                        break
                if consistent and all(
                    id_filter.test(env, dictionary) for id_filter in slot
                ):
                    yield from recurse(position + 1)
                for variable in added:
                    del env[variable]
        elif kind == "idpath":
            path, subject_is_var, subject, object_is_var, obj, admits_zero = data
            subject_id = env.get(subject) if subject_is_var else subject
            object_id = env.get(obj) if object_is_var else obj
            if admits_zero:
                # A *substituted* variable endpoint only ranges over graph
                # nodes, so its zero-length self-match requires node
                # membership (constants stay syntactic) — the id-space
                # mirror of plan._match_path's pre-check.
                if (
                    subject_is_var
                    and subject_id is not None
                    and not engine.is_node(subject_id)
                ):
                    return
                if (
                    object_is_var
                    and object_id is not None
                    and not engine.is_node(object_id)
                ):
                    return
            for start, end in engine.pair_ids(path, subject_id, object_id):
                added = []
                consistent = True
                if subject_is_var and subject_id is None:
                    env[subject] = start
                    added.append(subject)
                if object_is_var and object_id is None:
                    current = env.get(obj)
                    if current is None:
                        env[obj] = end
                        added.append(obj)
                    elif current != end:
                        # ?x path ?x with both ends free: the subject
                        # binding above already fixed the shared variable.
                        consistent = False
                if consistent and all(
                    id_filter.test(env, dictionary) for id_filter in slot
                ):
                    yield from recurse(position + 1)
                for variable in added:
                    del env[variable]
        else:
            node = data
            endpoint_mapping: Dict[Variable, Term] = {}
            for part in (node.subject, node.object):
                if isinstance(part, Variable):
                    term_id = env.get(part)
                    if term_id is not None:
                        endpoint_mapping[part] = decode(term_id)
            base = Binding(endpoint_mapping)
            encode = dictionary.encode
            for extension in _match_path(graph, node, base, path_evaluator):
                added = []
                for variable, term in extension.items():
                    if variable not in endpoint_mapping:
                        # Fresh endpoint: interning is idempotent for graph
                        # terms and harmlessly append-only for the rare
                        # zero-length-path endpoint outside the graph.
                        env[variable] = encode(term)
                        added.append(variable)
                if all(id_filter.test(env, dictionary) for id_filter in slot):
                    yield from recurse(position + 1)
                for variable in added:
                    del env[variable]

    yield from recurse(0)
