"""SPARQL filter / projection expression AST and evaluation.

Expressions appear in FILTER constraints, BIND assignments, ORDER BY keys,
aggregate arguments and HAVING clauses.  Evaluation follows the SPARQL 1.1
error semantics: evaluating an expression over a solution mapping either
yields an RDF term / value or raises :class:`ExpressionError`; FILTER
treats an error as "not satisfied", while most functions propagate errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.rdf.terms import (
    IRI,
    Literal,
    Term,
    Variable,
    XSD_BOOLEAN,
)
from repro.sparql.functions import (
    ExpressionError,
    apply_function,
    effective_boolean_value,
    numeric_value,
    term_compare,
)
from repro.sparql.solutions import Binding


class Expression:
    """Base class of all expression nodes."""

    __slots__ = ()

    def variables(self) -> set:
        """Return the set of variables mentioned by the expression."""
        return set()


@dataclass(frozen=True)
class VariableExpr(Expression):
    """A reference to a query variable."""

    variable: Variable

    def variables(self) -> set:
        return {self.variable}

    def __repr__(self) -> str:
        return repr(self.variable)


@dataclass(frozen=True)
class TermExpr(Expression):
    """A constant RDF term (IRI or literal)."""

    term: Term

    def __repr__(self) -> str:
        return repr(self.term)


@dataclass(frozen=True)
class And(Expression):
    """Logical conjunction with SPARQL three-valued error handling."""

    left: Expression
    right: Expression

    def variables(self) -> set:
        return self.left.variables() | self.right.variables()


@dataclass(frozen=True)
class Or(Expression):
    """Logical disjunction with SPARQL three-valued error handling."""

    left: Expression
    right: Expression

    def variables(self) -> set:
        return self.left.variables() | self.right.variables()


@dataclass(frozen=True)
class Not(Expression):
    """Logical negation."""

    operand: Expression

    def variables(self) -> set:
        return self.operand.variables()


@dataclass(frozen=True)
class Comparison(Expression):
    """A binary comparison: ``=``, ``!=``, ``<``, ``<=``, ``>``, ``>=``."""

    operator: str
    left: Expression
    right: Expression

    def variables(self) -> set:
        return self.left.variables() | self.right.variables()


@dataclass(frozen=True)
class Arithmetic(Expression):
    """A binary arithmetic operation: ``+``, ``-``, ``*``, ``/``."""

    operator: str
    left: Expression
    right: Expression

    def variables(self) -> set:
        return self.left.variables() | self.right.variables()


@dataclass(frozen=True)
class UnaryMinus(Expression):
    """Numeric negation (``-expr``)."""

    operand: Expression

    def variables(self) -> set:
        return self.operand.variables()


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A call to a SPARQL built-in function, e.g. ``REGEX``, ``STR``.

    The function name is stored upper-cased.
    """

    name: str
    arguments: Tuple[Expression, ...]

    def variables(self) -> set:
        result = set()
        for argument in self.arguments:
            result |= argument.variables()
        return result

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(map(repr, self.arguments))})"


@dataclass(frozen=True)
class InExpr(Expression):
    """``expr IN (a, b, ...)`` or ``expr NOT IN (...)``."""

    operand: Expression
    options: Tuple[Expression, ...]
    negated: bool = False

    def variables(self) -> set:
        result = self.operand.variables()
        for option in self.options:
            result |= option.variables()
        return result


@dataclass(frozen=True)
class Aggregate(Expression):
    """An aggregate expression inside a SELECT with GROUP BY.

    ``operation`` is one of COUNT, SUM, MIN, MAX, AVG, SAMPLE and
    ``argument`` is ``None`` only for ``COUNT(*)``.
    """

    operation: str
    argument: Optional[Expression]
    distinct: bool = False

    def variables(self) -> set:
        return self.argument.variables() if self.argument is not None else set()


TRUE_LITERAL = Literal("true", XSD_BOOLEAN)
FALSE_LITERAL = Literal("false", XSD_BOOLEAN)


def _boolean(value: bool) -> Literal:
    return TRUE_LITERAL if value else FALSE_LITERAL


def evaluate(expression: Expression, binding: Binding) -> Term:
    """Evaluate ``expression`` under ``binding``.

    Returns an RDF term.  Raises :class:`ExpressionError` when the SPARQL
    semantics prescribes an error (e.g. unbound variable used in a numeric
    comparison, type errors, malformed regular expressions).
    """
    if isinstance(expression, VariableExpr):
        value = binding.get(expression.variable)
        if value is None:
            raise ExpressionError(f"unbound variable {expression.variable}")
        return value
    if isinstance(expression, TermExpr):
        return expression.term
    if isinstance(expression, And):
        return _evaluate_and(expression, binding)
    if isinstance(expression, Or):
        return _evaluate_or(expression, binding)
    if isinstance(expression, Not):
        value = effective_boolean_value(evaluate(expression.operand, binding))
        return _boolean(not value)
    if isinstance(expression, Comparison):
        return _evaluate_comparison(expression, binding)
    if isinstance(expression, Arithmetic):
        return _evaluate_arithmetic(expression, binding)
    if isinstance(expression, UnaryMinus):
        value = numeric_value(evaluate(expression.operand, binding))
        return Literal.from_python(-value)
    if isinstance(expression, FunctionCall):
        return _evaluate_function(expression, binding)
    if isinstance(expression, InExpr):
        return _evaluate_in(expression, binding)
    if isinstance(expression, Aggregate):
        raise ExpressionError("aggregate evaluated outside GROUP BY context")
    raise ExpressionError(f"unknown expression node: {expression!r}")


def _evaluate_and(expression: And, binding: Binding) -> Literal:
    # SPARQL's three-valued logic: an error on one side can still yield
    # false if the other side is false.
    left_error = right_error = None
    left_value = right_value = None
    try:
        left_value = effective_boolean_value(evaluate(expression.left, binding))
    except ExpressionError as error:
        left_error = error
    try:
        right_value = effective_boolean_value(evaluate(expression.right, binding))
    except ExpressionError as error:
        right_error = error
    if left_error is None and right_error is None:
        return _boolean(left_value and right_value)
    if left_error is None and left_value is False:
        return FALSE_LITERAL
    if right_error is None and right_value is False:
        return FALSE_LITERAL
    raise left_error or right_error


def _evaluate_or(expression: Or, binding: Binding) -> Literal:
    left_error = right_error = None
    left_value = right_value = None
    try:
        left_value = effective_boolean_value(evaluate(expression.left, binding))
    except ExpressionError as error:
        left_error = error
    try:
        right_value = effective_boolean_value(evaluate(expression.right, binding))
    except ExpressionError as error:
        right_error = error
    if left_error is None and right_error is None:
        return _boolean(left_value or right_value)
    if left_error is None and left_value is True:
        return TRUE_LITERAL
    if right_error is None and right_value is True:
        return TRUE_LITERAL
    raise left_error or right_error


def _evaluate_comparison(expression: Comparison, binding: Binding) -> Literal:
    left = evaluate(expression.left, binding)
    right = evaluate(expression.right, binding)
    result = term_compare(expression.operator, left, right)
    return _boolean(result)


def _evaluate_arithmetic(expression: Arithmetic, binding: Binding) -> Literal:
    left = numeric_value(evaluate(expression.left, binding))
    right = numeric_value(evaluate(expression.right, binding))
    operator = expression.operator
    if operator == "+":
        return Literal.from_python(left + right)
    if operator == "-":
        return Literal.from_python(left - right)
    if operator == "*":
        return Literal.from_python(left * right)
    if operator == "/":
        if right == 0:
            raise ExpressionError("division by zero")
        return Literal.from_python(left / right)
    raise ExpressionError(f"unknown arithmetic operator {operator!r}")


def _evaluate_function(expression: FunctionCall, binding: Binding) -> Term:
    name = expression.name.upper()
    if name == "BOUND":
        argument = expression.arguments[0]
        if not isinstance(argument, VariableExpr):
            raise ExpressionError("BOUND expects a variable")
        return _boolean(binding.get(argument.variable) is not None)
    if name == "COALESCE":
        for argument in expression.arguments:
            try:
                return evaluate(argument, binding)
            except ExpressionError:
                continue
        raise ExpressionError("COALESCE: all arguments errored")
    if name == "IF":
        condition = effective_boolean_value(evaluate(expression.arguments[0], binding))
        chosen = expression.arguments[1] if condition else expression.arguments[2]
        return evaluate(chosen, binding)
    arguments = [evaluate(argument, binding) for argument in expression.arguments]
    return apply_function(name, arguments)


def _evaluate_in(expression: InExpr, binding: Binding) -> Literal:
    operand = evaluate(expression.operand, binding)
    found = False
    saved_error: Optional[ExpressionError] = None
    for option in expression.options:
        try:
            if term_compare("=", operand, evaluate(option, binding)):
                found = True
                break
        except ExpressionError as error:
            saved_error = error
    if not found and saved_error is not None:
        raise saved_error
    return _boolean(found != expression.negated)


def satisfies(expression: Expression, binding: Binding) -> bool:
    """FILTER semantics: errors count as "condition not satisfied"."""
    try:
        return effective_boolean_value(evaluate(expression, binding))
    except ExpressionError:
        return False


def conjuncts(expression: Expression) -> List[Expression]:
    """Split an expression into its top-level conjuncts.

    Under FILTER's error-as-false semantics ``FILTER(A && B)`` keeps
    exactly the rows kept by ``FILTER(A) FILTER(B)``: ``&&`` only yields
    true when both sides are error-free and true, and every other
    combination (false, or an error on either side) rejects the row either
    way.  That equivalence is what lets the evaluator push each conjunct
    independently to the earliest join step binding its variables.
    """
    if isinstance(expression, And):
        return conjuncts(expression.left) + conjuncts(expression.right)
    return [expression]
