"""Property path expression AST.

SPARQL 1.1 property paths are regular expressions over predicates.  The
grammar (Section 9 of the SPARQL 1.1 spec, and Appendix A.3 of the paper)
defines the following constructors, each of which gets its own node type:

==================  =======================  =========================
SPARQL syntax       Paper name               AST node
==================  =======================  =========================
``iri``             link path                :class:`LinkPath`
``^p``              inverse path             :class:`InversePath`
``p1 / p2``         sequence path            :class:`SequencePath`
``p1 | p2``         alternative path         :class:`AlternativePath`
``p?``              zero-or-one path         :class:`ZeroOrOnePath`
``p+``              one-or-more path         :class:`OneOrMorePath`
``p*``              zero-or-more path        :class:`ZeroOrMorePath`
``!(...)``          negated property set     :class:`NegatedPropertySet`
``p{n,m}``          bounded repetition       :class:`RepeatPath`
==================  =======================  =========================

``RepeatPath`` covers the gMark-style "exactly n", "n or more" and
"between 0 and n" repetitions the paper adds for benchmark coverage
(Section 4.3); it is expanded into sequences/alternatives before
translation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.rdf.terms import IRI


class PropertyPath:
    """Base class for property path expressions."""

    __slots__ = ()

    def is_recursive(self) -> bool:
        """Return True when the path contains a ``*``, ``+`` or unbounded repeat."""
        return False


@dataclass(frozen=True)
class LinkPath(PropertyPath):
    """A single predicate IRI: the base case of property paths."""

    iri: IRI

    def __repr__(self) -> str:
        return f"Link({self.iri.value})"


@dataclass(frozen=True)
class InversePath(PropertyPath):
    """``^path`` — follow the path backwards."""

    path: PropertyPath

    def __repr__(self) -> str:
        return f"Inverse({self.path!r})"

    def is_recursive(self) -> bool:
        return self.path.is_recursive()


@dataclass(frozen=True)
class SequencePath(PropertyPath):
    """``left / right`` — follow ``left`` then ``right``."""

    left: PropertyPath
    right: PropertyPath

    def __repr__(self) -> str:
        return f"Seq({self.left!r}, {self.right!r})"

    def is_recursive(self) -> bool:
        return self.left.is_recursive() or self.right.is_recursive()


@dataclass(frozen=True)
class AlternativePath(PropertyPath):
    """``left | right`` — follow either branch."""

    left: PropertyPath
    right: PropertyPath

    def __repr__(self) -> str:
        return f"Alt({self.left!r}, {self.right!r})"

    def is_recursive(self) -> bool:
        return self.left.is_recursive() or self.right.is_recursive()


@dataclass(frozen=True)
class ZeroOrOnePath(PropertyPath):
    """``path?`` — zero-length paths plus single traversals (set semantics)."""

    path: PropertyPath

    def __repr__(self) -> str:
        return f"ZeroOrOne({self.path!r})"

    def is_recursive(self) -> bool:
        return self.path.is_recursive()


@dataclass(frozen=True)
class OneOrMorePath(PropertyPath):
    """``path+`` — transitive closure, at least one traversal (set semantics)."""

    path: PropertyPath

    def __repr__(self) -> str:
        return f"OneOrMore({self.path!r})"

    def is_recursive(self) -> bool:
        return True


@dataclass(frozen=True)
class ZeroOrMorePath(PropertyPath):
    """``path*`` — reflexive-transitive closure (set semantics)."""

    path: PropertyPath

    def __repr__(self) -> str:
        return f"ZeroOrMore({self.path!r})"

    def is_recursive(self) -> bool:
        return True


@dataclass(frozen=True)
class NegatedPropertySet(PropertyPath):
    """``!(p1 | ^p2 | ...)`` — any edge whose predicate is not listed.

    ``forward`` holds the forbidden forward predicates, ``inverse`` the
    forbidden inverse ones.  The SPARQL semantics evaluates the forward and
    inverse parts independently and unions the results (Table 5 of the
    paper).
    """

    forward: Tuple[IRI, ...]
    inverse: Tuple[IRI, ...] = ()

    def __repr__(self) -> str:
        parts = [iri.value for iri in self.forward]
        parts += [f"^{iri.value}" for iri in self.inverse]
        return f"Negated({' | '.join(parts)})"


@dataclass(frozen=True)
class RepeatPath(PropertyPath):
    """``path{n}``, ``path{n,m}`` or ``path{n,}`` — bounded repetition.

    ``maximum`` is ``None`` for the unbounded form ``{n,}``.
    """

    path: PropertyPath
    minimum: int
    maximum: Optional[int] = None

    def __repr__(self) -> str:
        upper = "" if self.maximum is None else str(self.maximum)
        return f"Repeat({self.path!r}, {{{self.minimum},{upper}}})"

    def is_recursive(self) -> bool:
        return self.maximum is None or self.path.is_recursive()


def expand_repeat(path: RepeatPath) -> PropertyPath:
    """Rewrite a :class:`RepeatPath` into core path constructors.

    * ``p{n}``   becomes ``p / p / ... / p`` (n times),
    * ``p{n,}``  becomes ``p{n-1} / p+`` (or ``p*`` when n = 0),
    * ``p{0,m}`` becomes ``(p?){m}`` expressed as nested alternatives,
    * ``p{n,m}`` becomes ``p{n} / p{0,m-n}``.

    The expansion mirrors the treatment SparqLog applies before running
    the property-path translation (Section 4.3).
    """
    inner = path.path
    minimum, maximum = path.minimum, path.maximum

    def repeat_exact(base: PropertyPath, count: int) -> Optional[PropertyPath]:
        if count == 0:
            return None
        result = base
        for _ in range(count - 1):
            result = SequencePath(result, base)
        return result

    if maximum is None:
        if minimum == 0:
            return ZeroOrMorePath(inner)
        if minimum == 1:
            return OneOrMorePath(inner)
        prefix = repeat_exact(inner, minimum - 1)
        return SequencePath(prefix, OneOrMorePath(inner))

    if maximum < minimum:
        raise ValueError(f"invalid repetition bounds {{{minimum},{maximum}}}")

    if minimum == maximum:
        exact = repeat_exact(inner, minimum)
        if exact is None:
            raise ValueError("p{0} repetition is not a valid property path")
        return exact

    # p{0,m}: chain of optional hops.
    if minimum == 0:
        result: PropertyPath = ZeroOrOnePath(inner)
        for _ in range(maximum - 1):
            result = SequencePath(ZeroOrOnePath(inner), result)
        return result

    prefix = repeat_exact(inner, minimum)
    suffix = expand_repeat(RepeatPath(inner, 0, maximum - minimum))
    return SequencePath(prefix, suffix)


def matches_zero_length(path: PropertyPath) -> bool:
    """True when the path admits zero-length matches (pairs every node).

    Zero-length admission propagates through inverse, closure and
    repetition operators (``p{0,}`` directly; ``p+`` / ``p{n,}`` when the
    inner path itself admits zero length), through either side of an
    alternative, and through a sequence only when both halves admit it.
    Shared by the planner's cost model, the term-level ALP evaluator and
    the id-native path engine so all three agree on zero-length cases.
    """
    if isinstance(path, (ZeroOrMorePath, ZeroOrOnePath)):
        return True
    if isinstance(path, (InversePath, OneOrMorePath)):
        return matches_zero_length(path.path)
    if isinstance(path, RepeatPath):
        return path.minimum == 0 or matches_zero_length(path.path)
    if isinstance(path, AlternativePath):
        return matches_zero_length(path.left) or matches_zero_length(path.right)
    if isinstance(path, SequencePath):
        return matches_zero_length(path.left) and matches_zero_length(path.right)
    return False


def reverse_path(path: PropertyPath) -> PropertyPath:
    """Return a path matching exactly the reversed (end, start) pairs.

    Used by the id-native engine to expand a closure *backwards* from a
    selective object endpoint: the reversal is pushed down to the leaves
    (``^p`` at each link, sequence operands swapped) so backward
    expansion probes the POS index directly instead of wrapping the whole
    path in an :class:`InversePath` interpreter shim.
    """
    if isinstance(path, LinkPath):
        return InversePath(path)
    if isinstance(path, InversePath):
        return path.path
    if isinstance(path, SequencePath):
        return SequencePath(reverse_path(path.right), reverse_path(path.left))
    if isinstance(path, AlternativePath):
        return AlternativePath(reverse_path(path.left), reverse_path(path.right))
    if isinstance(path, ZeroOrOnePath):
        return ZeroOrOnePath(reverse_path(path.path))
    if isinstance(path, OneOrMorePath):
        return OneOrMorePath(reverse_path(path.path))
    if isinstance(path, ZeroOrMorePath):
        return ZeroOrMorePath(reverse_path(path.path))
    if isinstance(path, RepeatPath):
        return RepeatPath(reverse_path(path.path), path.minimum, path.maximum)
    if isinstance(path, NegatedPropertySet):
        return NegatedPropertySet(forward=path.inverse, inverse=path.forward)
    raise TypeError(f"cannot reverse {path!r}")


def normalize_path(path: PropertyPath) -> PropertyPath:
    """Recursively expand every :class:`RepeatPath` in a path expression."""
    if isinstance(path, RepeatPath):
        return normalize_path(expand_repeat(path))
    if isinstance(path, InversePath):
        return InversePath(normalize_path(path.path))
    if isinstance(path, SequencePath):
        return SequencePath(normalize_path(path.left), normalize_path(path.right))
    if isinstance(path, AlternativePath):
        return AlternativePath(normalize_path(path.left), normalize_path(path.right))
    if isinstance(path, ZeroOrOnePath):
        return ZeroOrOnePath(normalize_path(path.path))
    if isinstance(path, OneOrMorePath):
        return OneOrMorePath(normalize_path(path.path))
    if isinstance(path, ZeroOrMorePath):
        return ZeroOrMorePath(normalize_path(path.path))
    return path
