"""Solution mappings and solution sequences.

A *solution mapping* (binding) assigns RDF terms to a subset of the query
variables.  The result of evaluating a graph pattern is a *multiset* of
solution mappings; after solution modifiers are applied it becomes a
sequence.  :class:`Binding` is an immutable, hashable mapping so bindings
can be counted, deduplicated and compared across engines.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.rdf.terms import Term, Variable, term_sort_key


class Binding:
    """An immutable solution mapping from variables to RDF terms.

    Unbound variables are simply absent; the SPARQL compatibility relation
    and OPTIONAL semantics are expressed in terms of the *domain* of the
    mapping.
    """

    __slots__ = ("_items", "_hash")

    def __init__(self, mapping: Optional[Dict[Variable, Term]] = None) -> None:
        items = tuple(sorted((mapping or {}).items(), key=lambda kv: kv[0].name))
        self._items: Tuple[Tuple[Variable, Term], ...] = items
        self._hash = hash(items)

    @classmethod
    def from_sorted_items(
        cls, items: Tuple[Tuple[Variable, Term], ...]
    ) -> "Binding":
        """Build a binding from pairs already sorted by variable name.

        Skips the per-construction sort of ``__init__`` — the id-native
        executor decodes every result row through a precomputed variable
        order, so re-sorting at the decode boundary would only burn time.
        The caller guarantees sortedness; equality/hashing rely on it.
        """
        binding = object.__new__(cls)
        binding._items = items
        binding._hash = hash(items)
        return binding

    # -- mapping protocol ----------------------------------------------
    def __getitem__(self, variable: Variable) -> Term:
        for var, term in self._items:
            if var == variable:
                return term
        raise KeyError(variable)

    def get(self, variable: Variable, default: Optional[Term] = None) -> Optional[Term]:
        for var, term in self._items:
            if var == variable:
                return term
        return default

    def __contains__(self, variable: Variable) -> bool:
        return any(var == variable for var, _ in self._items)

    def __iter__(self) -> Iterator[Variable]:
        return (var for var, _ in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def items(self) -> Tuple[Tuple[Variable, Term], ...]:
        return self._items

    def variables(self) -> set:
        """Return the domain of the mapping."""
        return {var for var, _ in self._items}

    def as_dict(self) -> Dict[Variable, Term]:
        return dict(self._items)

    # -- value semantics -------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, Binding) and other._items == self._items

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{var}={term!r}" for var, term in self._items)
        return f"{{{inner}}}"

    # -- SPARQL operations -------------------------------------------------
    def is_compatible(self, other: "Binding") -> bool:
        """Two mappings are compatible when they agree on shared variables."""
        if len(self._items) > len(other._items):
            return other.is_compatible(self)
        for var, term in self._items:
            other_term = other.get(var)
            if other_term is not None and other_term != term:
                return False
        return True

    def merge(self, other: "Binding") -> "Binding":
        """Union of two compatible mappings."""
        if not other._items:
            return self
        if not self._items:
            return other
        merged = dict(other._items)
        merged.update(dict(self._items))
        return Binding(merged)

    def project(self, variables: Iterable[Variable]) -> "Binding":
        """Restrict the mapping to ``variables``."""
        wanted = set(variables)
        return Binding({var: term for var, term in self._items if var in wanted})

    def extend(self, variable: Variable, term: Term) -> "Binding":
        """Return a new mapping with one extra (or replaced) assignment."""
        mapping = dict(self._items)
        mapping[variable] = term
        return Binding(mapping)


EMPTY_BINDING = Binding()


class SolutionSequence:
    """An ordered multiset of solution mappings plus the projection variables.

    The class is the common result type of every engine in this repository
    so the compliance framework can compare answers across systems.
    """

    def __init__(
        self,
        variables: Iterable[Variable],
        bindings: Iterable[Binding],
    ) -> None:
        self.variables: List[Variable] = list(variables)
        self.bindings: List[Binding] = list(bindings)

    def __len__(self) -> int:
        return len(self.bindings)

    def __iter__(self) -> Iterator[Binding]:
        return iter(self.bindings)

    def __repr__(self) -> str:
        return f"SolutionSequence({len(self.bindings)} rows, vars={self.variables})"

    def __eq__(self, other: object) -> bool:
        """Bag equality: same multiset of rows (order-insensitive)."""
        if not isinstance(other, SolutionSequence):
            return NotImplemented
        return Counter(self.bindings) == Counter(other.bindings)

    def counter(self) -> Counter:
        """Return the multiset view of the rows."""
        return Counter(self.bindings)

    def distinct(self) -> "SolutionSequence":
        """Return a copy with duplicate rows removed (first occurrence kept)."""
        seen = set()
        unique: List[Binding] = []
        for binding in self.bindings:
            if binding not in seen:
                seen.add(binding)
                unique.append(binding)
        return SolutionSequence(self.variables, unique)

    def rows(self) -> List[Tuple[Optional[Term], ...]]:
        """Return rows as tuples aligned with ``self.variables``."""
        return [
            tuple(binding.get(var) for var in self.variables)
            for binding in self.bindings
        ]

    def sorted_rows(self) -> List[Tuple[Optional[Term], ...]]:
        """Rows in a deterministic order (useful for tests and reports)."""
        return sorted(self.rows(), key=lambda row: [term_sort_key(t) for t in row])

    def to_set(self) -> set:
        """Return the set of rows (ignoring duplicates)."""
        return set(self.rows())
