"""A practical Turtle subset parser.

Supports the Turtle features needed by the examples and workloads:

* ``@prefix`` / ``PREFIX`` declarations and prefixed names,
* ``@base`` declarations (IRIs are resolved by simple concatenation),
* the ``a`` keyword for ``rdf:type``,
* predicate lists (``;``) and object lists (``,``),
* IRIs, blank node labels, plain / typed / language-tagged literals,
* numeric and boolean shorthand literals,
* comments (``#`` to end of line).

Blank node property lists (``[...]``) and collections (``(...)``) are not
supported; the workload generators never emit them.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.rdf.graph import Graph
from repro.rdf.namespace import DEFAULT_PREFIXES, PrefixMap
from repro.rdf.ntriples import LANG_TAG_PATTERN
from repro.rdf.terms import (
    BlankNode,
    IRI,
    Literal,
    RDF,
    Term,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
)


class TurtleParseError(ValueError):
    """Raised on malformed Turtle input."""


_TOKEN_RE = re.compile(
    r"""
    (?P<comment>\#[^\n]*)
  | (?P<iri><[^<>"{}|^`\\\s]*>)
  | (?P<literal>"(?:[^"\\]|\\.)*"(?:@"""
    + LANG_TAG_PATTERN
    + r"""|\^\^\S+)?)
  | (?P<bnode>_:[A-Za-z0-9_\-\.]+)
  | (?P<prefix_decl>@prefix|@base|PREFIX|BASE)
  | (?P<number>[+-]?(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?)
  | (?P<boolean>\btrue\b|\bfalse\b)
  | (?P<pname>[A-Za-z0-9_\-\.]*:[A-Za-z0-9_\-\.%/()]*)
  | (?P<keyword_a>\ba\b)
  | (?P<punct>[;,.\[\]\(\)])
  | (?P<ws>\s+)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise TurtleParseError(
                f"unexpected character at offset {position}: {text[position:position + 20]!r}"
            )
        kind = match.lastgroup
        value = match.group()
        position = match.end()
        if kind in ("ws", "comment"):
            continue
        tokens.append((kind, value))
    return tokens


def _parse_literal_token(token: str) -> Literal:
    match = re.match(
        r'"((?:[^"\\]|\\.)*)"(?:@(' + LANG_TAG_PATTERN + r')|\^\^(\S+))?$', token
    )
    if match is None:
        raise TurtleParseError(f"malformed literal: {token!r}")
    lexical = (
        match.group(1)
        .replace('\\"', '"')
        .replace("\\n", "\n")
        .replace("\\t", "\t")
        .replace("\\\\", "\\")
    )
    language = match.group(2)
    datatype_token = match.group(3)
    datatype: Optional[IRI] = None
    if datatype_token:
        if datatype_token.startswith("<") and datatype_token.endswith(">"):
            datatype = IRI(datatype_token[1:-1])
        else:
            datatype = IRI(datatype_token)  # resolved later against prefixes
    return Literal(lexical, datatype, language)


class _TurtleParser:
    """Recursive token consumer building triples into a graph."""

    def __init__(
        self,
        text: str,
        prefixes: Optional[PrefixMap] = None,
        graph: Optional[Graph] = None,
    ) -> None:
        self.tokens = _tokenize(text)
        self.position = 0
        self.prefixes = prefixes.copy() if prefixes else PrefixMap(DEFAULT_PREFIXES)
        self.base = ""
        # Triples are streamed into the target graph as they are parsed;
        # any object implementing the Graph surface (e.g. an EncodedGraph)
        # can be the sink.
        self.graph = graph if graph is not None else Graph()

    # -- token helpers -------------------------------------------------
    def _peek(self) -> Optional[Tuple[str, str]]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def _next(self) -> Tuple[str, str]:
        token = self._peek()
        if token is None:
            raise TurtleParseError("unexpected end of input")
        self.position += 1
        return token

    def _expect_punct(self, symbol: str) -> None:
        kind, value = self._next()
        if kind != "punct" or value != symbol:
            raise TurtleParseError(f"expected {symbol!r}, found {value!r}")

    # -- grammar -------------------------------------------------------
    def parse(self) -> Graph:
        while self._peek() is not None:
            kind, value = self._peek()
            if kind == "prefix_decl":
                self._parse_directive()
            else:
                self._parse_triples_block()
        return self.graph

    def _parse_directive(self) -> None:
        _, keyword = self._next()
        if keyword in ("@prefix", "PREFIX"):
            _, pname = self._next()
            if not pname.endswith(":"):
                raise TurtleParseError(f"malformed prefix name: {pname!r}")
            kind, iri_token = self._next()
            if kind != "iri":
                raise TurtleParseError("prefix declaration requires an IRI")
            self.prefixes.bind(pname[:-1], iri_token[1:-1])
        else:  # @base / BASE
            kind, iri_token = self._next()
            if kind != "iri":
                raise TurtleParseError("base declaration requires an IRI")
            self.base = iri_token[1:-1]
        if keyword.startswith("@"):
            self._expect_punct(".")

    def _parse_triples_block(self) -> None:
        subject = self._parse_term(position="subject")
        while True:
            predicate = self._parse_term(position="predicate")
            while True:
                obj = self._parse_term(position="object")
                self.graph.add_triple(subject, predicate, obj)
                token = self._peek()
                if token is not None and token == ("punct", ","):
                    self._next()
                    continue
                break
            token = self._peek()
            if token is not None and token == ("punct", ";"):
                self._next()
                # allow a trailing ';' before '.'
                if self._peek() == ("punct", "."):
                    break
                continue
            break
        self._expect_punct(".")

    def _parse_term(self, position: str) -> Term:
        kind, value = self._next()
        if kind == "iri":
            return IRI(self.base + value[1:-1] if not value[1:-1].startswith("http") and self.base else value[1:-1])
        if kind == "pname":
            return self.prefixes.expand(value)
        if kind == "keyword_a":
            if position != "predicate":
                raise TurtleParseError("'a' keyword only allowed as predicate")
            return RDF.type
        if kind == "bnode":
            return BlankNode(value[2:])
        if kind == "literal":
            literal = _parse_literal_token(value)
            if literal.datatype is not None and ":" in literal.datatype.value and not literal.datatype.value.startswith("http"):
                literal = Literal(
                    literal.lexical,
                    self.prefixes.expand(literal.datatype.value),
                    literal.language,
                )
            return literal
        if kind == "number":
            if "." in value or "e" in value.lower():
                datatype = XSD_DOUBLE if "e" in value.lower() else XSD_DECIMAL
                return Literal(value, datatype)
            return Literal(value, XSD_INTEGER)
        if kind == "boolean":
            return Literal(value, XSD_BOOLEAN)
        raise TurtleParseError(f"unexpected token {value!r} in {position} position")


def parse_turtle(
    text: str,
    prefixes: Optional[PrefixMap] = None,
    graph: Optional[Graph] = None,
) -> Graph:
    """Parse a Turtle document (subset, see module docstring) into a graph.

    ``graph`` selects the sink the triples are streamed into; by default a
    fresh hash-indexed :class:`Graph` is built, but any object implementing
    the graph surface (e.g. :class:`repro.store.EncodedGraph`) works.
    """
    return _TurtleParser(text, prefixes, graph).parse()
