"""Namespace and prefix handling for RDF documents and SPARQL queries."""

from __future__ import annotations

from typing import Dict, Optional

from repro.rdf.terms import IRI


class Namespace:
    """A namespace is a base IRI from which terms can be minted.

    Example::

        ex = Namespace("http://example.org/")
        ex.alice            # IRI("http://example.org/alice")
        ex["bob-smith"]     # IRI("http://example.org/bob-smith")
    """

    __slots__ = ("base",)

    def __init__(self, base: str) -> None:
        self.base = base

    def __getattr__(self, name: str) -> IRI:
        if name.startswith("__"):
            raise AttributeError(name)
        return IRI(self.base + name)

    def __getitem__(self, name: str) -> IRI:
        return IRI(self.base + name)

    def __repr__(self) -> str:
        return f"Namespace({self.base!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Namespace) and other.base == self.base

    def __hash__(self) -> int:
        return hash(("Namespace", self.base))

    def contains(self, iri: IRI) -> bool:
        """Return True when the IRI starts with this namespace's base."""
        return iri.value.startswith(self.base)


class PrefixMap:
    """A bidirectional mapping between prefixes and namespace IRIs.

    Used by the Turtle parser, the SPARQL parser and the serialisers to
    expand prefixed names (``ex:name``) into full IRIs and to compact IRIs
    back into prefixed names when printing.
    """

    def __init__(self, initial: Optional[Dict[str, str]] = None) -> None:
        self._prefixes: Dict[str, str] = {}
        if initial:
            for prefix, base in initial.items():
                self.bind(prefix, base)

    def bind(self, prefix: str, base: str) -> None:
        """Associate ``prefix`` with the namespace ``base``."""
        self._prefixes[prefix] = base

    def expand(self, prefixed_name: str) -> IRI:
        """Expand a prefixed name such as ``ex:alice`` into an IRI."""
        if ":" not in prefixed_name:
            raise ValueError(f"not a prefixed name: {prefixed_name!r}")
        prefix, _, local = prefixed_name.partition(":")
        if prefix not in self._prefixes:
            raise KeyError(f"unknown prefix: {prefix!r}")
        return IRI(self._prefixes[prefix] + local)

    def compact(self, iri: IRI) -> str:
        """Compact an IRI to a prefixed name when a prefix matches.

        Falls back to the angle-bracketed form when no prefix applies.
        """
        best_prefix = None
        best_base = ""
        for prefix, base in self._prefixes.items():
            if iri.value.startswith(base) and len(base) > len(best_base):
                best_prefix, best_base = prefix, base
        if best_prefix is None:
            return iri.n3()
        local = iri.value[len(best_base):]
        if not local or any(ch in local for ch in "/#?"):
            return iri.n3()
        return f"{best_prefix}:{local}"

    def __contains__(self, prefix: str) -> bool:
        return prefix in self._prefixes

    def __getitem__(self, prefix: str) -> str:
        return self._prefixes[prefix]

    def items(self):
        return self._prefixes.items()

    def copy(self) -> "PrefixMap":
        return PrefixMap(dict(self._prefixes))


#: Prefixes that are always available to parsers.
DEFAULT_PREFIXES = {
    "rdf": "http://www.w3.org/1999/02/22-rdf-syntax-ns#",
    "rdfs": "http://www.w3.org/2000/01/rdf-schema#",
    "xsd": "http://www.w3.org/2001/XMLSchema#",
    "owl": "http://www.w3.org/2002/07/owl#",
}
