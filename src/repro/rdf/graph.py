"""RDF graphs and datasets with pattern-matching indexes.

A :class:`Graph` stores a *set* of triples and maintains three hash
indexes (SPO, POS, OSP) so that any triple pattern with at least one bound
component can be answered without a full scan.  A :class:`Dataset` holds a
default graph plus zero or more named graphs, mirroring the structure that
SPARQL's ``FROM`` / ``FROM NAMED`` / ``GRAPH`` constructs operate on.

The graph also maintains cheap incremental statistics — per-term occurrence
counts and per-predicate distinct subject counts — kept up to date on every
``add`` / ``remove``.  Together with the three indexes they make every
triple-pattern cardinality (:meth:`Graph.pattern_cardinality`) an exact
O(1) lookup, which is what the BGP join planner
(:mod:`repro.sparql.plan`) builds its cost model on.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.rdf.terms import IRI, Term, Triple

#: A change-capture batch: ``(triple, weight)`` pairs with weight ``+1``
#: for an insert and ``-1`` for a delete.  Every batch describes an
#: *effective* transition — idempotent adds and missing removes never
#: notify — so consumers can treat the graph as a Z-set whose per-triple
#: multiplicity stays in {0, 1}.
DeltaBatch = Sequence[Tuple[Triple, int]]


class Graph:
    """A set of RDF triples with SPO / POS / OSP indexes.

    The graph behaves like a collection: ``len``, ``in`` and iteration are
    supported.  Pattern matching is done through :meth:`triples` where
    ``None`` acts as a wildcard.
    """

    def __init__(self, triples: Optional[Iterable[Triple]] = None) -> None:
        self._triples: Set[Triple] = set()
        self._spo: Dict[Term, Dict[Term, Set[Term]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self._pos: Dict[Term, Dict[Term, Set[Term]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self._osp: Dict[Term, Dict[Term, Set[Term]]] = defaultdict(
            lambda: defaultdict(set)
        )
        # Incremental statistics: occurrence counts per term position and
        # per-predicate distinct-subject counts (the POS index already gives
        # per-predicate distinct objects as len(self._pos[p])).
        self._subject_counts: Counter = Counter()
        self._predicate_counts: Counter = Counter()
        self._object_counts: Counter = Counter()
        self._pred_subject_counts: Dict[Term, Counter] = defaultdict(Counter)
        self._version = 0
        # Change-capture listeners: called with a DeltaBatch after every
        # effective mutation (post-mutation, so listeners observe the new
        # state).  Copies never inherit listeners.
        self._delta_listeners: List[Callable[[DeltaBatch], None]] = []
        if triples:
            for triple in triples:
                self.add(triple)

    @property
    def version(self) -> int:
        """Monotonically increasing mutation stamp.

        Incremented on every *effective* mutation (a new triple added or an
        existing one removed), so any consumer caching work derived from
        the graph's contents — e.g. the evaluator's BGP plan cache — can
        key on ``(id(graph), graph.version)`` and invalidate exactly when
        the contents change.
        """
        return self._version

    # ------------------------------------------------------------------
    # change capture
    # ------------------------------------------------------------------
    def add_change_listener(self, listener: Callable[[DeltaBatch], None]) -> None:
        """Register ``listener`` to receive every effective mutation.

        The listener is called *after* the mutation is applied with a
        batch of ``(triple, ±1)`` deltas; it must not mutate the graph
        re-entrantly.  Materialized views
        (:mod:`repro.ivm`) use this to stay consistent in O(|delta|).
        """
        if listener not in self._delta_listeners:
            self._delta_listeners.append(listener)

    def remove_change_listener(self, listener: Callable[[DeltaBatch], None]) -> None:
        """Unregister a change listener (missing listeners are ignored)."""
        try:
            self._delta_listeners.remove(listener)
        except ValueError:
            pass

    def _notify_delta(self, batch: DeltaBatch) -> None:
        for listener in list(self._delta_listeners):
            listener(batch)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, triple: Triple) -> None:
        """Add a ground triple to the graph (idempotent)."""
        if not triple.is_ground():
            raise ValueError(f"cannot add non-ground triple: {triple!r}")
        if triple in self._triples:
            return
        self._triples.add(triple)
        subject, predicate, obj = triple
        self._spo[subject][predicate].add(obj)
        self._pos[predicate][obj].add(subject)
        self._osp[obj][subject].add(predicate)
        self._subject_counts[subject] += 1
        self._predicate_counts[predicate] += 1
        self._object_counts[obj] += 1
        self._pred_subject_counts[predicate][subject] += 1
        self._version += 1
        if self._delta_listeners:
            self._notify_delta(((triple, 1),))

    def add_triple(self, subject: Term, predicate: Term, obj: Term) -> None:
        """Convenience wrapper to add a triple from its components."""
        self.add(Triple(subject, predicate, obj))

    def update(self, triples: Iterable[Triple]) -> None:
        """Add every triple from ``triples``."""
        for triple in triples:
            self.add(triple)

    def remove(self, triple: Triple) -> None:
        """Remove a triple; missing triples are ignored.

        Emptied index entries are pruned so that the index keys stay exactly
        the set of terms still occurring in some triple — the statistics API
        and :meth:`subjects` / :meth:`predicates` / :meth:`objects` rely on
        this, and it keeps memory bounded under add/remove churn.
        """
        if triple not in self._triples:
            return
        self._triples.discard(triple)
        subject, predicate, obj = triple
        self._prune_index(self._spo, subject, predicate, obj)
        self._prune_index(self._pos, predicate, obj, subject)
        self._prune_index(self._osp, obj, subject, predicate)
        self._decrement(self._subject_counts, subject)
        self._decrement(self._predicate_counts, predicate)
        self._decrement(self._object_counts, obj)
        per_subject = self._pred_subject_counts[predicate]
        self._decrement(per_subject, subject)
        if not per_subject:
            del self._pred_subject_counts[predicate]
        self._version += 1
        if self._delta_listeners:
            self._notify_delta(((triple, -1),))

    @staticmethod
    def _prune_index(
        index: Dict[Term, Dict[Term, Set[Term]]],
        first: Term,
        second: Term,
        third: Term,
    ) -> None:
        """Discard ``third`` from ``index[first][second]``, pruning empties."""
        inner = index[first]
        values = inner[second]
        values.discard(third)
        if not values:
            del inner[second]
            if not inner:
                del index[first]

    @staticmethod
    def _decrement(counts: Counter, key: Term) -> None:
        counts[key] -= 1
        if counts[key] <= 0:
            del counts[key]

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def __repr__(self) -> str:
        return f"Graph({len(self._triples)} triples)"

    def copy(self) -> "Graph":
        """Return a new graph containing the same triples."""
        return Graph(self._triples)

    def triples(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        obj: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Yield all triples matching the pattern.

        ``None`` components are wildcards.  The most selective available
        index is chosen based on which components are bound.
        """
        if subject is not None and predicate is not None and obj is not None:
            candidate = Triple(subject, predicate, obj)
            if candidate in self._triples:
                yield candidate
            return
        if subject is not None:
            by_predicate = self._spo.get(subject)
            if not by_predicate:
                return
            if predicate is not None:
                for matched_obj in by_predicate.get(predicate, ()):  # S P ?
                    yield Triple(subject, predicate, matched_obj)
            else:
                for pred, objects in by_predicate.items():  # S ? ? / S ? O
                    for matched_obj in objects:
                        if obj is None or matched_obj == obj:
                            yield Triple(subject, pred, matched_obj)
            return
        if predicate is not None:
            by_object = self._pos.get(predicate)
            if not by_object:
                return
            if obj is not None:
                for matched_subject in by_object.get(obj, ()):  # ? P O
                    yield Triple(matched_subject, predicate, obj)
            else:
                for matched_obj, subjects in by_object.items():  # ? P ?
                    for matched_subject in subjects:
                        yield Triple(matched_subject, predicate, matched_obj)
            return
        if obj is not None:
            by_subject = self._osp.get(obj)
            if not by_subject:
                return
            for matched_subject, predicates in by_subject.items():  # ? ? O
                for pred in predicates:
                    yield Triple(matched_subject, pred, obj)
            return
        yield from self._triples

    def subjects(self) -> Set[Term]:
        """Return the set of all subjects."""
        return set(self._spo)

    def predicates(self) -> Set[Term]:
        """Return the set of all predicates."""
        return set(self._pos)

    def objects(self) -> Set[Term]:
        """Return the set of all objects."""
        return set(self._osp)

    def terms(self) -> Set[Term]:
        """Return every term occurring anywhere in the graph."""
        return set(self._spo) | set(self._pos) | set(self._osp)

    def nodes(self) -> Set[Term]:
        """Return every term occurring in subject or object position."""
        return set(self._spo) | set(self._osp)

    # ------------------------------------------------------------------
    # statistics (incremental, exact)
    # ------------------------------------------------------------------
    def subject_cardinality(self, subject: Term) -> int:
        """Number of triples with the given subject."""
        return self._subject_counts.get(subject, 0)

    def predicate_cardinality(self, predicate: Term) -> int:
        """Number of triples with the given predicate."""
        return self._predicate_counts.get(predicate, 0)

    def object_cardinality(self, obj: Term) -> int:
        """Number of triples with the given object."""
        return self._object_counts.get(obj, 0)

    def distinct_subjects(self, predicate: Optional[Term] = None) -> int:
        """Number of distinct subjects (optionally restricted to a predicate)."""
        if predicate is None:
            return len(self._spo)
        return len(self._pred_subject_counts.get(predicate, ()))

    def distinct_predicates(self) -> int:
        """Number of distinct predicates."""
        return len(self._pos)

    def distinct_objects(self, predicate: Optional[Term] = None) -> int:
        """Number of distinct objects (optionally restricted to a predicate)."""
        if predicate is None:
            return len(self._osp)
        return len(self._pos.get(predicate, ()))

    def pattern_cardinality(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        obj: Optional[Term] = None,
    ) -> int:
        """Exact number of triples matching the pattern (``None`` = wildcard).

        Every combination of bound components is answered in O(1) from the
        indexes and the incremental counters; this is the ground truth the
        BGP planner's cost model uses.
        """
        if subject is not None and predicate is not None and obj is not None:
            return 1 if Triple(subject, predicate, obj) in self._triples else 0
        if subject is not None:
            if predicate is not None:
                return len(self._spo.get(subject, {}).get(predicate, ()))
            if obj is not None:
                return len(self._osp.get(obj, {}).get(subject, ()))
            return self._subject_counts.get(subject, 0)
        if predicate is not None:
            if obj is not None:
                return len(self._pos.get(predicate, {}).get(obj, ()))
            return self._predicate_counts.get(predicate, 0)
        if obj is not None:
            return self._object_counts.get(obj, 0)
        return len(self._triples)

    def objects_for(self, subject: Term, predicate: Term) -> Set[Term]:
        """Return the set of objects for a fixed subject and predicate."""
        return set(self._spo.get(subject, {}).get(predicate, ()))

    def subjects_for(self, predicate: Term, obj: Term) -> Set[Term]:
        """Return the set of subjects for a fixed predicate and object."""
        return set(self._pos.get(predicate, {}).get(obj, ()))


class Dataset:
    """An RDF dataset: a default graph plus named graphs.

    Named graphs are keyed by their IRI.  The dataset is the unit of input
    to both the reference SPARQL evaluator and the SparqLog data
    translation.
    """

    def __init__(
        self,
        default_graph: Optional[Graph] = None,
        named_graphs: Optional[Dict[IRI, Graph]] = None,
    ) -> None:
        self.default_graph = default_graph if default_graph is not None else Graph()
        self.named_graphs: Dict[IRI, Graph] = dict(named_graphs or {})

    def __repr__(self) -> str:
        return (
            f"Dataset(default={len(self.default_graph)} triples, "
            f"{len(self.named_graphs)} named graphs)"
        )

    def __len__(self) -> int:
        return len(self.default_graph) + sum(
            len(graph) for graph in self.named_graphs.values()
        )

    def add_named_graph(self, name: IRI, graph: Graph) -> None:
        """Register ``graph`` under ``name`` (replacing any previous one)."""
        self.named_graphs[name] = graph

    def graph(self, name: Optional[IRI] = None) -> Graph:
        """Return the named graph for ``name`` or the default graph.

        A missing named graph is returned as an empty graph, matching the
        SPARQL semantics of evaluating ``GRAPH <iri>`` against an unknown
        graph.
        """
        if name is None:
            return self.default_graph
        return self.named_graphs.get(name, Graph())

    def names(self) -> Set[IRI]:
        """Return the IRIs of all named graphs."""
        return set(self.named_graphs.keys())

    def quads(self) -> Iterator[Tuple[Triple, Optional[IRI]]]:
        """Yield (triple, graph-name) pairs; the default graph uses ``None``."""
        for triple in self.default_graph:
            yield triple, None
        for name, graph in self.named_graphs.items():
            for triple in graph:
                yield triple, name

    def copy(self) -> "Dataset":
        """Return a deep copy of the dataset."""
        return Dataset(
            self.default_graph.copy(),
            {name: graph.copy() for name, graph in self.named_graphs.items()},
        )

    @staticmethod
    def from_graph(graph: Graph) -> "Dataset":
        """Wrap a single graph as the default graph of a new dataset."""
        return Dataset(default_graph=graph)
