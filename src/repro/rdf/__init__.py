"""RDF substrate: terms, graphs, datasets and serialisation formats.

This package implements the portion of the RDF 1.1 data model that the
SparqLog translation needs: IRIs, literals (with datatypes and language
tags), blank nodes, triples, graphs with pattern-matching indexes, and
datasets consisting of a default graph plus named graphs.  Parsers for
N-Triples and a practical subset of Turtle are included so that example
data and benchmark datasets can be loaded from text.
"""

from repro.rdf.terms import (
    RDF,
    RDFS,
    XSD,
    BlankNode,
    IRI,
    Literal,
    Term,
    Triple,
    Variable,
)
from repro.rdf.graph import Dataset, Graph
from repro.rdf.namespace import Namespace, PrefixMap
from repro.rdf.ntriples import parse_ntriples, serialize_ntriples
from repro.rdf.turtle import parse_turtle

__all__ = [
    "BlankNode",
    "Dataset",
    "Graph",
    "IRI",
    "Literal",
    "Namespace",
    "PrefixMap",
    "RDF",
    "RDFS",
    "Term",
    "Triple",
    "Variable",
    "XSD",
    "parse_ntriples",
    "parse_turtle",
    "serialize_ntriples",
]
