"""N-Triples parsing and serialisation.

N-Triples is the line-oriented RDF exchange format: one triple per line,
terminated by ``.``.  The parser is strict about term syntax but tolerant
of surrounding whitespace and comment lines starting with ``#``.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, List

from repro.rdf.graph import Graph
from repro.rdf.terms import BlankNode, IRI, Literal, Term, Triple


class NTriplesParseError(ValueError):
    """Raised when a line cannot be parsed as an N-Triples statement."""

    def __init__(self, message: str, line_number: int, line: str) -> None:
        super().__init__(f"line {line_number}: {message}: {line!r}")
        self.line_number = line_number
        self.line = line


_IRI_RE = re.compile(r"<([^<>\"{}|^`\\\s]*)>")
_BNODE_RE = re.compile(r"_:([A-Za-z0-9_\-\.]+)")
_LITERAL_RE = re.compile(
    r'"((?:[^"\\]|\\.)*)"(?:@([a-zA-Z\-]+)|\^\^<([^<>\s]+)>)?'
)

_ESCAPES = {
    "\\n": "\n",
    "\\r": "\r",
    "\\t": "\t",
    '\\"': '"',
    "\\\\": "\\",
}


def _unescape(text: str) -> str:
    """Resolve the N-Triples string escape sequences."""
    result = []
    index = 0
    while index < len(text):
        if text[index] == "\\" and index + 1 < len(text):
            pair = text[index:index + 2]
            if pair in _ESCAPES:
                result.append(_ESCAPES[pair])
                index += 2
                continue
            if pair == "\\u" and index + 6 <= len(text):
                result.append(chr(int(text[index + 2:index + 6], 16)))
                index += 6
                continue
            if pair == "\\U" and index + 10 <= len(text):
                result.append(chr(int(text[index + 2:index + 10], 16)))
                index += 10
                continue
        result.append(text[index])
        index += 1
    return "".join(result)


def _parse_term(fragment: str, line_number: int, line: str) -> tuple:
    """Parse a single term at the start of ``fragment``.

    Returns ``(term, remaining_text)``.
    """
    fragment = fragment.lstrip()
    iri_match = _IRI_RE.match(fragment)
    if iri_match:
        return IRI(iri_match.group(1)), fragment[iri_match.end():]
    bnode_match = _BNODE_RE.match(fragment)
    if bnode_match:
        return BlankNode(bnode_match.group(1)), fragment[bnode_match.end():]
    literal_match = _LITERAL_RE.match(fragment)
    if literal_match:
        lexical = _unescape(literal_match.group(1))
        language = literal_match.group(2)
        datatype = literal_match.group(3)
        literal = Literal(
            lexical,
            IRI(datatype) if datatype else None,
            language,
        )
        return literal, fragment[literal_match.end():]
    raise NTriplesParseError("cannot parse term", line_number, line)


def iter_ntriples(text: str) -> Iterator[Triple]:
    """Yield triples from an N-Triples document, one per non-empty line."""
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        subject, rest = _parse_term(line, line_number, raw_line)
        predicate, rest = _parse_term(rest, line_number, raw_line)
        obj, rest = _parse_term(rest, line_number, raw_line)
        rest = rest.strip()
        if not rest.startswith("."):
            raise NTriplesParseError("missing terminating '.'", line_number, raw_line)
        if not isinstance(predicate, IRI):
            raise NTriplesParseError(
                "predicate must be an IRI", line_number, raw_line
            )
        yield Triple(subject, predicate, obj)


def parse_ntriples(text: str) -> Graph:
    """Parse an N-Triples document into a :class:`Graph`."""
    graph = Graph()
    for triple in iter_ntriples(text):
        graph.add(triple)
    return graph


def serialize_term(term: Term) -> str:
    """Serialise a single ground term to its N-Triples form."""
    if isinstance(term, (IRI, BlankNode, Literal)):
        return term.n3()
    raise TypeError(f"cannot serialise {term!r} as an N-Triples term")


def serialize_ntriples(triples: Iterable[Triple]) -> str:
    """Serialise triples (or a graph) to an N-Triples document string."""
    lines: List[str] = []
    for triple in triples:
        lines.append(
            f"{serialize_term(triple.subject)} "
            f"{serialize_term(triple.predicate)} "
            f"{serialize_term(triple.object)} ."
        )
    return "\n".join(lines) + ("\n" if lines else "")
