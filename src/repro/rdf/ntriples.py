"""N-Triples parsing and serialisation.

N-Triples is the line-oriented RDF exchange format: one triple per line,
terminated by ``.``.  The parser is strict about term syntax but tolerant
of surrounding whitespace and comment lines starting with ``#``.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, List, Tuple

from repro.rdf.graph import Graph
from repro.rdf.terms import BlankNode, IRI, Literal, Term, Triple


class NTriplesParseError(ValueError):
    """Raised when a line cannot be parsed as an N-Triples statement."""

    def __init__(self, message: str, line_number: int, line: str) -> None:
        super().__init__(f"line {line_number}: {message}: {line!r}")
        self.line_number = line_number
        self.line = line


# Shared token fragments: the capturing term regexes below and the bulk
# loader's statement regex (repro.store.bulk) are built from these, so the
# fast path and the strict parser always accept the same dialect.
_IRI_BODY = r'[^<>"{}|^`\\\s]*'
_BNODE_LABEL = r"[A-Za-z0-9_\-\.]+"
#: BCP-47 language tags: an initial alphabetic subtag followed by
#: alphanumeric subtags (``es-419``, ``de-CH-1901``), separated by ``-``.
LANG_TAG_PATTERN = r"[a-zA-Z]+(?:-[a-zA-Z0-9]+)*"
IRI_TOKEN_PATTERN = "<" + _IRI_BODY + ">"
BNODE_TOKEN_PATTERN = "_:" + _BNODE_LABEL
LITERAL_TOKEN_PATTERN = (
    r'"(?:[^"\\]|\\.)*"(?:@' + LANG_TAG_PATTERN + r"|\^\^<[^<>\s]+>)?"
)

_IRI_RE = re.compile("<(" + _IRI_BODY + ")>")
_BNODE_RE = re.compile("_:(" + _BNODE_LABEL + ")")
_LITERAL_RE = re.compile(
    r'"((?:[^"\\]|\\.)*)"(?:@(' + LANG_TAG_PATTERN + r')|\^\^<([^<>\s]+)>)?'
)

_ESCAPES = {
    "\\n": "\n",
    "\\r": "\r",
    "\\t": "\t",
    '\\"': '"',
    "\\\\": "\\",
}


def _unescape(text: str) -> str:
    """Resolve the N-Triples string escape sequences."""
    result = []
    index = 0
    while index < len(text):
        if text[index] == "\\" and index + 1 < len(text):
            pair = text[index:index + 2]
            if pair in _ESCAPES:
                result.append(_ESCAPES[pair])
                index += 2
                continue
            if pair == "\\u" and index + 6 <= len(text):
                result.append(chr(int(text[index + 2:index + 6], 16)))
                index += 6
                continue
            if pair == "\\U" and index + 10 <= len(text):
                result.append(chr(int(text[index + 2:index + 10], 16)))
                index += 10
                continue
        result.append(text[index])
        index += 1
    return "".join(result)


def _parse_term(fragment: str, line_number: int, line: str) -> tuple:
    """Parse a single term at the start of ``fragment``.

    Returns ``(term, remaining_text)``.
    """
    fragment = fragment.lstrip()
    iri_match = _IRI_RE.match(fragment)
    if iri_match:
        return IRI(iri_match.group(1)), fragment[iri_match.end():]
    bnode_match = _BNODE_RE.match(fragment)
    if bnode_match:
        return BlankNode(bnode_match.group(1)), fragment[bnode_match.end():]
    literal_match = _LITERAL_RE.match(fragment)
    if literal_match:
        lexical = _unescape(literal_match.group(1))
        language = literal_match.group(2)
        datatype = literal_match.group(3)
        literal = Literal(
            lexical,
            IRI(datatype) if datatype else None,
            language,
        )
        return literal, fragment[literal_match.end():]
    raise NTriplesParseError("cannot parse term", line_number, line)


def parse_statement(line: str, line_number: int) -> Tuple[Term, IRI, Term]:
    """Parse one N-Triples statement line into its three terms.

    Shared by :func:`iter_ntriples` and the bulk loader's fallback path so
    both accept exactly the same dialect.
    """
    subject, rest = _parse_term(line, line_number, line)
    predicate, rest = _parse_term(rest, line_number, line)
    obj, rest = _parse_term(rest, line_number, line)
    if not rest.strip().startswith("."):
        raise NTriplesParseError("missing terminating '.'", line_number, line)
    if not isinstance(predicate, IRI):
        raise NTriplesParseError("predicate must be an IRI", line_number, line)
    return subject, predicate, obj


def iter_ntriples(text: str) -> Iterator[Triple]:
    """Yield triples from an N-Triples document, one per non-empty line."""
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        subject, predicate, obj = parse_statement(raw_line, line_number)
        yield Triple(subject, predicate, obj)


def parse_ntriples(text: str) -> Graph:
    """Parse an N-Triples document into a :class:`Graph`."""
    graph = Graph()
    for triple in iter_ntriples(text):
        graph.add(triple)
    return graph


def serialize_term(term: Term) -> str:
    """Serialise a single ground term to its N-Triples form."""
    if isinstance(term, (IRI, BlankNode, Literal)):
        return term.n3()
    raise TypeError(f"cannot serialise {term!r} as an N-Triples term")


def serialize_ntriples(triples: Iterable[Triple]) -> str:
    """Serialise triples (or a graph) to an N-Triples document string."""
    lines: List[str] = []
    for triple in triples:
        lines.append(
            f"{serialize_term(triple.subject)} "
            f"{serialize_term(triple.predicate)} "
            f"{serialize_term(triple.object)} ."
        )
    return "\n".join(lines) + ("\n" if lines else "")
