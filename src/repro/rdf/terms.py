"""Core RDF terms: IRIs, literals, blank nodes, variables and triples.

All terms are immutable, hashable value objects so they can be used as
dictionary keys, set members and constants inside the Datalog engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


class Term:
    """Marker base class for RDF terms (IRI, Literal, BlankNode)."""

    __slots__ = ()


@dataclass(frozen=True, order=True)
class IRI(Term):
    """An Internationalised Resource Identifier.

    The value is stored as the plain IRI string (no surrounding angle
    brackets).  Two IRIs are equal iff their strings are equal.
    """

    value: str

    def __str__(self) -> str:
        return self.value

    def __repr__(self) -> str:
        return f"<{self.value}>"

    def n3(self) -> str:
        """Return the N-Triples / Turtle serialisation of this IRI."""
        return f"<{self.value}>"


# Well-known namespaces used throughout the code base.
_XSD = "http://www.w3.org/2001/XMLSchema#"
_RDF = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
_RDFS = "http://www.w3.org/2000/01/rdf-schema#"


class _NamespaceConstants:
    """Convenience holders of frequently used IRIs."""

    __slots__ = ("_prefix",)

    def __init__(self, prefix: str) -> None:
        self._prefix = prefix

    def __getattr__(self, name: str) -> IRI:
        return IRI(self._prefix + name)

    def __getitem__(self, name: str) -> IRI:
        return IRI(self._prefix + name)

    @property
    def prefix(self) -> str:
        return self._prefix


XSD = _NamespaceConstants(_XSD)
RDF = _NamespaceConstants(_RDF)
RDFS = _NamespaceConstants(_RDFS)

XSD_STRING = IRI(_XSD + "string")
XSD_INTEGER = IRI(_XSD + "integer")
XSD_DECIMAL = IRI(_XSD + "decimal")
XSD_DOUBLE = IRI(_XSD + "double")
XSD_BOOLEAN = IRI(_XSD + "boolean")
XSD_DATETIME = IRI(_XSD + "dateTime")
RDF_LANGSTRING = IRI(_RDF + "langString")

_NUMERIC_DATATYPES = frozenset(
    {
        XSD_INTEGER,
        XSD_DECIMAL,
        XSD_DOUBLE,
        IRI(_XSD + "float"),
        IRI(_XSD + "int"),
        IRI(_XSD + "long"),
        IRI(_XSD + "short"),
        IRI(_XSD + "byte"),
        IRI(_XSD + "nonNegativeInteger"),
        IRI(_XSD + "positiveInteger"),
        IRI(_XSD + "negativeInteger"),
        IRI(_XSD + "nonPositiveInteger"),
        IRI(_XSD + "unsignedInt"),
        IRI(_XSD + "unsignedLong"),
    }
)


@dataclass(frozen=True)
class Literal(Term):
    """An RDF literal with an optional datatype IRI and language tag.

    The lexical form is kept verbatim.  ``as_python`` converts the value to
    a native Python object for numeric and boolean datatypes, which is what
    filter-expression evaluation and the Datalog built-ins operate on.
    """

    lexical: str
    datatype: Optional[IRI] = None
    language: Optional[str] = None

    def __post_init__(self) -> None:
        if self.language is not None and self.datatype is None:
            object.__setattr__(self, "datatype", RDF_LANGSTRING)

    def __str__(self) -> str:
        return self.lexical

    def __repr__(self) -> str:
        return self.n3()

    def n3(self) -> str:
        """Return the N-Triples serialisation of this literal."""
        escaped = (
            self.lexical.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        if self.language:
            return f'"{escaped}"@{self.language}'
        if self.datatype and self.datatype != XSD_STRING:
            return f'"{escaped}"^^{self.datatype.n3()}'
        return f'"{escaped}"'

    @property
    def effective_datatype(self) -> IRI:
        """Return the datatype, defaulting to ``xsd:string``."""
        return self.datatype if self.datatype is not None else XSD_STRING

    def is_numeric(self) -> bool:
        """Return True when the literal has a numeric XSD datatype."""
        return self.effective_datatype in _NUMERIC_DATATYPES

    def as_python(self) -> Union[str, int, float, bool]:
        """Convert the literal to a native Python value where possible."""
        datatype = self.effective_datatype
        try:
            if datatype == XSD_INTEGER or datatype.value.endswith(
                ("#int", "#long", "#short", "#byte")
            ):
                return int(self.lexical)
            if datatype in (XSD_DECIMAL, XSD_DOUBLE) or datatype.value.endswith(
                "#float"
            ):
                return float(self.lexical)
            if datatype == XSD_BOOLEAN:
                return self.lexical.strip().lower() in ("true", "1")
            if datatype in _NUMERIC_DATATYPES:
                return float(self.lexical)
        except ValueError:
            return self.lexical
        return self.lexical

    @staticmethod
    def from_python(value: Union[str, int, float, bool]) -> "Literal":
        """Build a typed literal from a native Python value."""
        if isinstance(value, bool):
            return Literal("true" if value else "false", XSD_BOOLEAN)
        if isinstance(value, int):
            return Literal(str(value), XSD_INTEGER)
        if isinstance(value, float):
            return Literal(repr(value), XSD_DOUBLE)
        return Literal(str(value))


@dataclass(frozen=True, order=True)
class BlankNode(Term):
    """A blank node identified by a local label (scoped to one document)."""

    label: str

    def __str__(self) -> str:
        return f"_:{self.label}"

    def __repr__(self) -> str:
        return f"_:{self.label}"

    def n3(self) -> str:
        return f"_:{self.label}"


@dataclass(frozen=True, order=True)
class Variable:
    """A SPARQL query variable (``?name`` or ``$name``)."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"

    def __repr__(self) -> str:
        return f"?{self.name}"

    def n3(self) -> str:
        return f"?{self.name}"


# A triple-pattern component may also be a variable; plain triples only
# contain ground terms.
TermOrVariable = Union[Term, Variable]


@dataclass(frozen=True)
class Triple:
    """An RDF triple (subject, predicate, object).

    When used as a *triple pattern*, any component may be a
    :class:`Variable`.
    """

    subject: TermOrVariable
    predicate: TermOrVariable
    object: TermOrVariable

    def __iter__(self):
        return iter((self.subject, self.predicate, self.object))

    def __repr__(self) -> str:
        return f"({self.subject!r} {self.predicate!r} {self.object!r})"

    def is_ground(self) -> bool:
        """Return True when no component is a variable."""
        return not any(isinstance(part, Variable) for part in self)

    def variables(self) -> set:
        """Return the set of variables occurring in the triple."""
        return {part for part in self if isinstance(part, Variable)}


def term_sort_key(term: Term) -> tuple:
    """A total order over ground terms used for deterministic output.

    Blank nodes sort first, then IRIs, then literals (by lexical form);
    the SPARQL ORDER BY semantics used by the solution translation relies
    on this ordering for mixed-type columns.
    """
    if term is None:
        return (0, "")
    if isinstance(term, BlankNode):
        return (1, term.label)
    if isinstance(term, IRI):
        return (2, term.value)
    if isinstance(term, Literal):
        value = term.as_python()
        if isinstance(value, bool):
            value = int(value)
        if isinstance(value, (int, float)):
            return (3, "", float(value))
        return (4, term.lexical)
    return (5, str(term))
