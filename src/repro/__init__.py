"""repro — a reproduction of SparqLog (VLDB 2023).

SparqLog evaluates SPARQL 1.1 queries by translating them, together with
the RDF dataset, into Warded Datalog± programs.  This package contains the
full stack needed to reproduce the paper on a laptop:

* :mod:`repro.rdf` — RDF data model and serialisation,
* :mod:`repro.sparql` — SPARQL 1.1 parser, algebra and reference evaluator,
* :mod:`repro.datalog` — Warded Datalog± engine (the Vadalog substrate),
* :mod:`repro.core` — the SparqLog translation and engine,
* :mod:`repro.baselines` — the comparison systems (Fuseki-, Virtuoso- and
  Stardog-like behaviour profiles),
* :mod:`repro.workloads` — benchmark generators (SP2Bench-, gMark-,
  BeSEPPI-, FEASIBLE-like and the ontology benchmark),
* :mod:`repro.compliance` — result comparison and the compliance metrics,
* :mod:`repro.harness` — experiment drivers for every table and figure.

Quickstart::

    from repro import SparqLogEngine, parse_turtle, Dataset

    graph = parse_turtle(open("data.ttl").read())
    engine = SparqLogEngine(Dataset.from_graph(graph))
    for row in engine.query("SELECT ?s WHERE { ?s a <http://example.org/City> }"):
        print(row)
"""

from repro.rdf import (
    BlankNode,
    Dataset,
    Graph,
    IRI,
    Literal,
    Namespace,
    Triple,
    Variable,
    parse_ntriples,
    parse_turtle,
)
from repro.store import (
    EncodedGraph,
    TermDictionary,
    bulk_load_ntriples,
    bulk_load_path,
    bulk_load_turtle,
    create_graph,
    load_snapshot,
    open_graph,
    save_snapshot,
)
from repro.sparql import ExecutionProfile, SparqlEvaluator, parse_query
from repro.engine import Engine, create_engine
from repro.ivm import MaterializedView, ViewRegistry
from repro.core import Ontology, SparqLogEngine
from repro.baselines import (
    NativeSparqlEngine,
    StardogLikeEngine,
    VirtuosoLikeEngine,
)

__version__ = "1.0.0"

__all__ = [
    "BlankNode",
    "Dataset",
    "EncodedGraph",
    "Engine",
    "ExecutionProfile",
    "Graph",
    "IRI",
    "Literal",
    "MaterializedView",
    "Namespace",
    "NativeSparqlEngine",
    "Ontology",
    "SparqLogEngine",
    "SparqlEvaluator",
    "StardogLikeEngine",
    "TermDictionary",
    "Triple",
    "Variable",
    "ViewRegistry",
    "VirtuosoLikeEngine",
    "bulk_load_ntriples",
    "bulk_load_path",
    "bulk_load_turtle",
    "create_engine",
    "create_graph",
    "load_snapshot",
    "open_graph",
    "parse_ntriples",
    "parse_query",
    "parse_turtle",
    "save_snapshot",
    "__version__",
]
