"""Ontology benchmark: property paths combined with ontological reasoning.

Section 6.3 / Appendix D.8 of the paper (Figure 10) evaluates query
answering in the presence of an ontology: the SP2Bench dataset is extended
with ``rdfs:subClassOf`` and ``rdfs:subPropertyOf`` statements and queried
with property-path queries — including recursive property paths with two
variables (queries 4 and 5), the cases on which SparqLog clearly beats the
materialise-then-query baseline.

This module builds that benchmark: the SP2Bench-like graph, a citation /
reference hierarchy ontology, and eight queries numbered as in Figure 10.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.ontology import Ontology
from repro.rdf.graph import Dataset, Graph
from repro.rdf.namespace import Namespace
from repro.workloads.sp2bench import (
    BENCH,
    BenchmarkQuery,
    DC,
    FOAF,
    SWRC,
    generate_sp2bench_graph,
)

_PREFIXES = """PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX bench: <http://localhost/vocabulary/bench/>
PREFIX dc: <http://purl.org/dc/elements/1.1/>
PREFIX dcterms: <http://purl.org/dc/terms/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX swrc: <http://swrc.ontoware.org/ontology#>
"""


def build_ontology() -> Ontology:
    """The class / property hierarchy used by the benchmark.

    * every ``bench:Article`` and ``bench:Inproceedings`` is a
      ``bench:Publication``, every ``bench:Publication`` a ``bench:Document``;
    * ``bench:cites`` and ``dcterms:partOf`` are sub-properties of
      ``bench:references``;
    * ``dc:creator`` is a sub-property of ``bench:contributor``;
    * ``bench:references`` has domain/range ``bench:Document``.
    """
    ontology = Ontology()
    ontology.add_subclass(BENCH.Article, BENCH.Publication)
    ontology.add_subclass(BENCH.Inproceedings, BENCH.Publication)
    ontology.add_subclass(BENCH.Publication, BENCH.Document)
    ontology.add_subclass(BENCH.Journal, BENCH.Document)
    ontology.add_subproperty(BENCH.cites, BENCH.references)
    ontology.add_subproperty(
        Namespace("http://purl.org/dc/terms/").partOf, BENCH.references
    )
    ontology.add_subproperty(DC.creator, BENCH.contributor)
    ontology.add_domain(BENCH.references, BENCH.Document)
    ontology.add_range(BENCH.references, BENCH.Document)
    return ontology


def ontology_queries() -> List[BenchmarkQuery]:
    """The eight queries of the Figure 10 experiment."""
    queries: List[BenchmarkQuery] = []

    def add(query_id: str, body: str, *features: str) -> None:
        queries.append(BenchmarkQuery(query_id, _PREFIXES + body, tuple(features)))

    # 1: simple inferred class membership.
    add(
        "onto-1",
        """SELECT ?doc WHERE { ?doc rdf:type bench:Publication }""",
        "Reasoning",
    )
    # 2: inferred property (subPropertyOf) plus a join.
    add(
        "onto-2",
        """SELECT ?doc ?person
WHERE {
  ?doc bench:contributor ?person .
  ?doc rdf:type bench:Publication .
}""",
        "Reasoning",
    )
    # 3: bounded property path over the inferred references property.
    add(
        "onto-3",
        """SELECT ?a ?b
WHERE {
  ?a bench:references/bench:references ?b .
}""",
        "Reasoning", "PropertyPath",
    )
    # 4: recursive property path with two variables over inferred edges.
    add(
        "onto-4",
        """SELECT DISTINCT ?a ?b
WHERE {
  ?a bench:references+ ?b .
}""",
        "Reasoning", "PropertyPath", "RecursivePath", "TwoVariables",
    )
    # 5: the hardest case — zero-or-more with two variables and a join.
    add(
        "onto-5",
        """SELECT DISTINCT ?a ?b
WHERE {
  ?a bench:references* ?b .
  ?b rdf:type bench:Document .
}""",
        "Reasoning", "PropertyPath", "RecursivePath", "TwoVariables",
    )
    # 6: recursive path from a bound start node.
    add(
        "onto-6",
        """SELECT ?doc
WHERE {
  <http://localhost/articles/Article1> bench:references+ ?doc .
}""",
        "Reasoning", "PropertyPath", "RecursivePath",
    )
    # 7: inferred types combined with OPTIONAL.
    add(
        "onto-7",
        """SELECT ?doc ?title
WHERE {
  ?doc rdf:type bench:Document .
  OPTIONAL { ?doc dc:title ?title }
}""",
        "Reasoning", "OPTIONAL",
    )
    # 8: aggregation over inferred contributors.
    add(
        "onto-8",
        """SELECT ?person (COUNT(?doc) AS ?works)
WHERE {
  ?doc bench:contributor ?person .
}
GROUP BY ?person""",
        "Reasoning", "GROUP BY",
    )
    return queries


class OntologyBenchmark:
    """Dataset, ontology and queries of the Figure 10 experiment."""

    name = "SP2Bench+Ontology"

    def __init__(
        self, scale: float = 0.5, seed: int = 1, backend: Optional[str] = None
    ) -> None:
        self._graph: Graph = generate_sp2bench_graph(
            n_articles=max(20, int(400 * scale)),
            n_inproceedings=max(15, int(300 * scale)),
            n_persons=max(10, int(250 * scale)),
            n_journals=max(5, int(40 * scale)),
            n_proceedings=max(5, int(30 * scale)),
            seed=seed,
            backend=backend,
        )
        self.ontology = build_ontology()

    @property
    def graph(self) -> Graph:
        return self._graph

    def dataset(self) -> Dataset:
        return Dataset.from_graph(self._graph.copy())

    def queries(self) -> List[BenchmarkQuery]:
        return ontology_queries()

    def statistics(self) -> Dict[str, int]:
        return {
            "triples": len(self._graph),
            "predicates": len(self._graph.predicates()),
            "queries": len(self.queries()),
            "axioms": len(self.ontology),
        }
