"""SP2Bench-like workload: a DBLP-style synthetic dataset and 17 queries.

SP2Bench (Schmidt et al. 2009) generates DBLP-like bibliographic data —
journals, articles, inproceedings, proceedings, people — together with 17
hand-crafted queries designed to stress query optimisation.  The original
generator is a C program; this module reimplements the data model with the
same schema vocabulary and degree characteristics (power-law-ish author
productivity, journal/issue structure, citations) at laptop scale, and
ships 17 queries with the same feature mix the paper's Table 2 reports for
SP2Bench: heavy FILTER use (≈59 %), DISTINCT (≈35 %), OPTIONAL and UNION
(≈18 % each), no property paths, plus three ASK queries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.rdf.graph import Dataset, Graph
from repro.store import create_graph
from repro.rdf.terms import IRI, Literal, Triple, XSD_INTEGER
from repro.rdf.namespace import Namespace

BENCH = Namespace("http://localhost/vocabulary/bench/")
DC = Namespace("http://purl.org/dc/elements/1.1/")
DCTERMS = Namespace("http://purl.org/dc/terms/")
FOAF = Namespace("http://xmlns.com/foaf/0.1/")
SWRC = Namespace("http://swrc.ontoware.org/ontology#")
RDFS_NS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
RDF_NS = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
PERSON = Namespace("http://localhost/persons/")
ARTICLE = Namespace("http://localhost/articles/")
INPROC = Namespace("http://localhost/inproceedings/")
PROC = Namespace("http://localhost/proceedings/")
JOURNAL = Namespace("http://localhost/journals/")

RDF_TYPE = RDF_NS.type

_FIRST_NAMES = [
    "Adam", "Bea", "Carla", "Dmitri", "Elena", "Farid", "Grete", "Hiro",
    "Ines", "Jonas", "Karin", "Lucas", "Mara", "Noor", "Oskar", "Paula",
    "Quentin", "Rosa", "Sven", "Tara", "Ugo", "Vera", "Wim", "Xenia",
    "Yara", "Zeno",
]
_LAST_NAMES = [
    "Abiteboul", "Bernstein", "Codd", "Date", "Eswaran", "Fagin", "Gray",
    "Halevy", "Imielinski", "Jagadish", "Klug", "Lenzerini", "Maier",
    "Naughton", "Ozsu", "Papadimitriou", "Quass", "Ramakrishnan", "Stone",
    "Tanaka", "Ullman", "Vardi", "Widom", "Yannakakis", "Zaniolo",
]
_TITLE_WORDS = [
    "efficient", "scalable", "distributed", "adaptive", "incremental",
    "declarative", "recursive", "optimal", "parallel", "streaming",
    "query", "evaluation", "reasoning", "indexing", "optimization",
    "graphs", "datalog", "joins", "views", "constraints",
]


@dataclass
class BenchmarkQuery:
    """A query of a workload: identifier, SPARQL text and feature tags."""

    query_id: str
    text: str
    features: Tuple[str, ...] = ()


def _person_name(rng: random.Random) -> str:
    return f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}"


def _title(rng: random.Random) -> str:
    words = rng.sample(_TITLE_WORDS, k=rng.randint(3, 6))
    return " ".join(words)


def generate_sp2bench_graph(
    n_articles: int = 400,
    n_inproceedings: int = 300,
    n_persons: int = 250,
    n_journals: int = 40,
    n_proceedings: int = 30,
    seed: int = 1,
    backend: Optional[str] = None,
) -> Graph:
    """Generate a DBLP-like graph.

    The default parameters produce roughly 8–10 thousand triples; the
    compliance experiments use a smaller instance, the performance
    experiments a larger one (both just scale these counts).
    """
    rng = random.Random(seed)
    graph = create_graph(backend)

    persons = []
    for index in range(n_persons):
        person = PERSON[f"Person{index}"]
        persons.append(person)
        graph.add_triple(person, RDF_TYPE, FOAF.Person)
        graph.add_triple(person, FOAF.name, Literal(_person_name(rng)))

    journals = []
    for index in range(n_journals):
        journal = JOURNAL[f"Journal{index}"]
        journals.append(journal)
        graph.add_triple(journal, RDF_TYPE, BENCH.Journal)
        year = 1940 + (index % 70)
        graph.add_triple(
            journal, DC.title, Literal(f"Journal {1 + index % 60} ({year})")
        )
        graph.add_triple(
            journal, DCTERMS.issued, Literal(str(year), XSD_INTEGER)
        )

    proceedings = []
    for index in range(n_proceedings):
        proc = PROC[f"Proceeding{index}"]
        proceedings.append(proc)
        graph.add_triple(proc, RDF_TYPE, BENCH.Proceedings)
        graph.add_triple(proc, DC.title, Literal(f"Proceedings {index}"))
        graph.add_triple(
            proc, DCTERMS.issued, Literal(str(1990 + index % 30), XSD_INTEGER)
        )

    articles = []
    for index in range(n_articles):
        article = ARTICLE[f"Article{index}"]
        articles.append(article)
        graph.add_triple(article, RDF_TYPE, BENCH.Article)
        graph.add_triple(article, DC.title, Literal(_title(rng)))
        year = 1950 + rng.randint(0, 69)
        graph.add_triple(article, DCTERMS.issued, Literal(str(year), XSD_INTEGER))
        graph.add_triple(article, SWRC.journal, rng.choice(journals))
        graph.add_triple(article, SWRC.pages, Literal(str(rng.randint(1, 400)), XSD_INTEGER))
        # Power-law-ish authorship: a few prolific authors.
        author_count = 1 + min(rng.randint(0, 3), rng.randint(0, 3))
        for _ in range(author_count):
            weight = rng.random()
            author = persons[int(weight * weight * (len(persons) - 1))]
            graph.add_triple(article, DC.creator, author)
        if rng.random() < 0.35:
            graph.add_triple(article, BENCH.abstract, Literal(_title(rng) + " abstract"))
        if rng.random() < 0.25:
            graph.add_triple(
                article, RDFS_NS.seeAlso, IRI(f"http://dblp.example.org/ref/{index}")
            )
        if rng.random() < 0.5 and articles[:-1]:
            graph.add_triple(article, BENCH.cites, rng.choice(articles[:-1]))

    for index in range(n_inproceedings):
        paper = INPROC[f"Inproceeding{index}"]
        graph.add_triple(paper, RDF_TYPE, BENCH.Inproceedings)
        graph.add_triple(paper, DC.title, Literal(_title(rng)))
        graph.add_triple(paper, DCTERMS.partOf, rng.choice(proceedings))
        graph.add_triple(
            paper, DCTERMS.issued, Literal(str(1990 + rng.randint(0, 29)), XSD_INTEGER)
        )
        for _ in range(1 + rng.randint(0, 2)):
            graph.add_triple(paper, DC.creator, rng.choice(persons))
        if rng.random() < 0.3:
            graph.add_triple(paper, FOAF.homepage, IRI(f"http://conf.example.org/p/{index}"))

    return graph


_PREFIXES = """PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX bench: <http://localhost/vocabulary/bench/>
PREFIX dc: <http://purl.org/dc/elements/1.1/>
PREFIX dcterms: <http://purl.org/dc/terms/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX swrc: <http://swrc.ontoware.org/ontology#>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
"""


def sp2bench_queries() -> List[BenchmarkQuery]:
    """The 17 queries of the SP2Bench-like workload.

    The queries mirror the intent of the original SP2Bench q1–q12 set
    (including the a/b/c variants), restricted to the SPARQL features
    SparqLog supports.
    """
    queries: List[BenchmarkQuery] = []

    def add(query_id: str, body: str, *features: str) -> None:
        queries.append(BenchmarkQuery(query_id, _PREFIXES + body, tuple(features)))

    add(
        "q1",
        """SELECT ?yr
WHERE {
  ?journal rdf:type bench:Journal .
  ?journal dc:title "Journal 1 (1940)" .
  ?journal dcterms:issued ?yr .
}""",
        "BGP",
    )
    add(
        "q2",
        """SELECT ?inproc ?author ?booktitle ?proc
WHERE {
  ?inproc rdf:type bench:Inproceedings .
  ?inproc dc:creator ?author .
  ?inproc dcterms:partOf ?proc .
  ?proc dc:title ?booktitle .
  OPTIONAL { ?inproc foaf:homepage ?hp }
}
ORDER BY ?author""",
        "OPTIONAL", "ORDER BY",
    )
    add(
        "q3a",
        """SELECT ?article
WHERE {
  ?article rdf:type bench:Article .
  ?article swrc:pages ?value .
  FILTER (?value > 300)
}""",
        "FILTER",
    )
    add(
        "q3b",
        """SELECT ?article
WHERE {
  ?article rdf:type bench:Article .
  ?article dcterms:issued ?value .
  FILTER (?value >= 2010)
}""",
        "FILTER",
    )
    add(
        "q3c",
        """SELECT ?article
WHERE {
  ?article rdf:type bench:Article .
  ?article rdfs:seeAlso ?ref .
  FILTER (isIRI(?ref))
}""",
        "FILTER",
    )
    add(
        "q4",
        """SELECT DISTINCT ?name1 ?name2
WHERE {
  ?article1 rdf:type bench:Article .
  ?article2 rdf:type bench:Article .
  ?article1 dc:creator ?author1 .
  ?author1 foaf:name ?name1 .
  ?article2 dc:creator ?author2 .
  ?author2 foaf:name ?name2 .
  ?article1 swrc:journal ?journal .
  ?article2 swrc:journal ?journal .
  FILTER (?name1 < ?name2)
}""",
        "DISTINCT", "FILTER",
    )
    add(
        "q5a",
        """SELECT DISTINCT ?person ?name
WHERE {
  ?article rdf:type bench:Article .
  ?article dc:creator ?person .
  ?inproc rdf:type bench:Inproceedings .
  ?inproc dc:creator ?person2 .
  ?person foaf:name ?name .
  ?person2 foaf:name ?name2 .
  FILTER (?name = ?name2)
}""",
        "DISTINCT", "FILTER",
    )
    add(
        "q5b",
        """SELECT DISTINCT ?person ?name
WHERE {
  ?article rdf:type bench:Article .
  ?article dc:creator ?person .
  ?inproc rdf:type bench:Inproceedings .
  ?inproc dc:creator ?person .
  ?person foaf:name ?name .
}""",
        "DISTINCT",
    )
    add(
        "q6",
        """SELECT ?yr ?name ?document
WHERE {
  ?document rdf:type bench:Article .
  ?document dcterms:issued ?yr .
  ?document dc:creator ?author .
  ?author foaf:name ?name .
  OPTIONAL {
    ?document bench:abstract ?abstract
  }
}""",
        "OPTIONAL",
    )
    add(
        "q7",
        """SELECT DISTINCT ?title
WHERE {
  ?doc rdf:type bench:Article .
  ?doc dc:title ?title .
  ?doc bench:cites ?cited .
  ?cited bench:cites ?cited2 .
}""",
        "DISTINCT",
    )
    add(
        "q8",
        """SELECT DISTINCT ?name
WHERE {
  {
    ?article rdf:type bench:Article .
    ?article dc:creator ?author .
    ?author foaf:name ?name .
  } UNION {
    ?inproc rdf:type bench:Inproceedings .
    ?inproc dc:creator ?author .
    ?author foaf:name ?name .
  }
}""",
        "DISTINCT", "UNION",
    )
    add(
        "q9",
        """SELECT DISTINCT ?predicate
WHERE {
  {
    ?person rdf:type foaf:Person .
    ?subject ?predicate ?person .
  } UNION {
    ?person rdf:type foaf:Person .
    ?person ?predicate ?object .
  }
}""",
        "DISTINCT", "UNION",
    )
    add(
        "q10",
        """SELECT ?subject ?predicate
WHERE {
  ?subject ?predicate <http://localhost/persons/Person1>
}""",
        "BGP",
    )
    add(
        "q11",
        """SELECT ?ee
WHERE {
  ?publication rdfs:seeAlso ?ee
}
ORDER BY ?ee
LIMIT 10
OFFSET 5""",
        "ORDER BY", "LIMIT", "OFFSET",
    )
    add(
        "q12a",
        """ASK WHERE {
  ?article rdf:type bench:Article .
  ?article dc:creator ?person .
  ?inproc rdf:type bench:Inproceedings .
  ?inproc dc:creator ?person .
}""",
        "ASK",
    )
    add(
        "q12b",
        """ASK WHERE {
  ?person rdf:type foaf:Person .
  ?person foaf:name "Erwin Schroedinger" .
}""",
        "ASK",
    )
    add(
        "q12c",
        """ASK WHERE {
  <http://localhost/persons/Person0> rdf:type foaf:Person .
}""",
        "ASK",
    )
    return queries


class SP2BenchWorkload:
    """Dataset plus queries, packaged for the experiment harness."""

    name = "SP2Bench"

    def __init__(
        self, scale: float = 1.0, seed: int = 1, backend: Optional[str] = None
    ) -> None:
        self.scale = scale
        self.seed = seed
        self._graph: Graph = generate_sp2bench_graph(
            n_articles=max(20, int(400 * scale)),
            n_inproceedings=max(15, int(300 * scale)),
            n_persons=max(10, int(250 * scale)),
            n_journals=max(5, int(40 * scale)),
            n_proceedings=max(5, int(30 * scale)),
            seed=seed,
            backend=backend,
        )

    @property
    def graph(self) -> Graph:
        return self._graph

    def dataset(self) -> Dataset:
        """Return a fresh dataset wrapping a copy of the generated graph."""
        return Dataset.from_graph(self._graph.copy())

    def queries(self) -> List[BenchmarkQuery]:
        return sp2bench_queries()

    def statistics(self) -> Dict[str, int]:
        """Triple / predicate / query counts (Table 6)."""
        return {
            "triples": len(self._graph),
            "predicates": len(self._graph.predicates()),
            "queries": len(self.queries()),
        }
