"""Benchmark feature analysis (Table 2 of the paper).

The paper analyses which SPARQL features each benchmark covers, as the
percentage of queries using the feature (following Saleem et al. 2019).
The reproduction computes the same profile for every workload it
generates, and keeps the paper's reported numbers for all twelve analysed
benchmarks as reference constants so the Table 2 harness can print them
side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from repro.sparql.algebra import pattern_features
from repro.sparql.parser import SparqlSyntaxError, parse_query
from repro.workloads.sp2bench import BenchmarkQuery

#: The Table 2 column order: feature key -> human readable abbreviation.
TABLE2_COLUMNS = [
    ("DISTINCT", "DIST"),
    ("FILTER", "FILT"),
    ("REGEX", "REG"),
    ("OPTIONAL", "OPT"),
    ("UNION", "UN"),
    ("GRAPH", "GRA"),
    ("PathSequence", "PSeq"),
    ("PathAlternative", "PAlt"),
    ("GROUP BY", "GRO"),
]

#: Feature coverage of the benchmarks analysed in the paper (Table 2),
#: in percent of queries.  Used as the reference column of the report.
PAPER_TABLE2: Dict[str, Dict[str, float]] = {
    "Bowlogna": {"DIST": 5.9, "FILT": 41.2, "REG": 11.8, "OPT": 0.0, "UN": 0.0,
                 "GRA": 0.0, "PSeq": 0.0, "PAlt": 0.0, "GRO": 76.5},
    "TrainBench": {"DIST": 0.0, "FILT": 41.7, "REG": 0.0, "OPT": 0.0, "UN": 0.0,
                   "GRA": 0.0, "PSeq": 0.0, "PAlt": 0.0, "GRO": 0.0},
    "BSBM": {"DIST": 25.0, "FILT": 37.5, "REG": 0.0, "OPT": 54.2, "UN": 8.3,
             "GRA": 0.0, "PSeq": 0.0, "PAlt": 0.0, "GRO": 0.0},
    "SP2Bench": {"DIST": 35.3, "FILT": 58.8, "REG": 0.0, "OPT": 17.6, "UN": 17.6,
                 "GRA": 0.0, "PSeq": 0.0, "PAlt": 0.0, "GRO": 0.0},
    "WatDiv": {"DIST": 0.0, "FILT": 0.0, "REG": 0.0, "OPT": 0.0, "UN": 0.0,
               "GRA": 0.0, "PSeq": 0.0, "PAlt": 0.0, "GRO": 0.0},
    "SNB-BI": {"DIST": 0.0, "FILT": 66.7, "REG": 0.0, "OPT": 45.8, "UN": 20.8,
               "GRA": 0.0, "PSeq": 16.7, "PAlt": 0.0, "GRO": 100.0},
    "SNB-INT": {"DIST": 0.0, "FILT": 47.4, "REG": 0.0, "OPT": 31.6, "UN": 15.8,
                "GRA": 0.0, "PSeq": 5.3, "PAlt": 10.5, "GRO": 42.1},
    "FEASIBLE (D)": {"DIST": 56.0, "FILT": 58.0, "REG": 14.0, "OPT": 28.0, "UN": 40.0,
                     "GRA": 0.0, "PSeq": 0.0, "PAlt": 0.0, "GRO": 0.0},
    "FEASIBLE (S)": {"DIST": 56.0, "FILT": 27.0, "REG": 9.0, "OPT": 32.0, "UN": 34.0,
                     "GRA": 10.0, "PSeq": 0.0, "PAlt": 0.0, "GRO": 25.0},
    "Fishmark": {"DIST": 0.0, "FILT": 0.0, "REG": 0.0, "OPT": 9.1, "UN": 0.0,
                 "GRA": 0.0, "PSeq": 0.0, "PAlt": 0.0, "GRO": 0.0},
    "DBPSB": {"DIST": 100.0, "FILT": 44.0, "REG": 4.0, "OPT": 32.0, "UN": 36.0,
              "GRA": 0.0, "PSeq": 0.0, "PAlt": 0.0, "GRO": 0.0},
    "BioBench": {"DIST": 39.3, "FILT": 32.1, "REG": 14.3, "OPT": 10.7, "UN": 17.9,
                 "GRA": 0.0, "PSeq": 0.0, "PAlt": 0.0, "GRO": 10.7},
}


@dataclass
class BenchmarkFeatureProfile:
    """Feature usage percentages of one benchmark's query set."""

    benchmark: str
    query_count: int
    percentages: Dict[str, float] = field(default_factory=dict)
    unparsed: int = 0

    def as_row(self) -> List[float]:
        """The profile in Table 2 column order."""
        return [self.percentages.get(abbrev, 0.0) for _, abbrev in TABLE2_COLUMNS]


def analyze_workload_features(
    benchmark_name: str, queries: Sequence[BenchmarkQuery]
) -> BenchmarkFeatureProfile:
    """Compute the per-feature usage percentages of a query workload."""
    counts: Dict[str, int] = {abbrev: 0 for _, abbrev in TABLE2_COLUMNS}
    unparsed = 0
    for query in queries:
        try:
            parsed = parse_query(query.text)
        except SparqlSyntaxError:
            unparsed += 1
            continue
        features = pattern_features(parsed)
        for feature_key, abbrev in TABLE2_COLUMNS:
            if feature_key in features:
                counts[abbrev] += 1
    total = max(1, len(queries) - unparsed)
    percentages = {
        abbrev: round(100.0 * count / total, 1) for abbrev, count in counts.items()
    }
    return BenchmarkFeatureProfile(
        benchmark=benchmark_name,
        query_count=len(queries),
        percentages=percentages,
        unparsed=unparsed,
    )
