"""BeSEPPI-like workload: semantic-based property-path compliance testing.

BeSEPPI (Skubella, Janke, Staab 2019) ships a small, hand-crafted RDF
graph and 236 queries that probe the *correct and complete* handling of
every property-path constructor, with the expected answer attached to
every query.  The paper uses it for the Table 3 compliance study.

This module regenerates the suite: a fixed 23-triple graph containing
cycles, self-loops, an isolated node and a literal object (the structures
that trigger the known engine bugs), and per-constructor query families
whose sizes match the paper's Table 3 exactly:

=================  ====
Inverse              20
Sequence             24
Alternative          23
Zero or One          24
One or More          34
Zero or More         38
Negated              73
Total               236
=================  ====

Expected answers are computed by a small, self-contained implementation of
the W3C property-path semantics written directly from the spec (and kept
independent of the engines under test).
"""

from __future__ import annotations

import itertools
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.rdf.graph import Dataset, Graph
from repro.store import create_graph
from repro.rdf.namespace import Namespace
from repro.rdf.terms import IRI, Literal, Term, Triple

B = Namespace("http://beseppi.example.org/")

#: The fixed benchmark graph (see module docstring).
_EDGES: List[Tuple[str, str, Union[str, Literal]]] = [
    ("n1", "p", "n2"),
    ("n2", "p", "n3"),
    ("n3", "p", "n1"),          # 3-cycle over p
    ("n3", "p", "n4"),
    ("n4", "p", "n5"),
    ("n5", "p", "n5"),          # self loop over p
    ("n1", "q", "n4"),
    ("n4", "q", "n6"),
    ("n6", "q", "n6"),          # self loop over q
    ("n6", "q", "n2"),
    ("n2", "r", "n5"),
    ("n5", "r", "n7"),
    ("n7", "r", "n2"),          # 3-cycle over r
    ("n8", "r", "n8"),          # isolated self loop
    ("n7", "p", Literal("leaf")),
    ("n1", "r", "n6"),
    ("n4", "r", "n1"),
    ("n2", "q", "n7"),
    ("n7", "q", "n4"),
    ("n3", "r", "n3"),
    ("n5", "q", "n1"),
    ("n6", "p", "n7"),
    ("n8", "p", "n1"),
]

PREDICATES = ("p", "q", "r")

#: A term that does not occur in the graph (zero-length path corner case).
OUTSIDE_NODE = "n99"


def beseppi_graph(backend: Optional[str] = None) -> Graph:
    """Return the fixed benchmark graph."""
    graph = create_graph(backend)
    for subject, predicate, obj in _EDGES:
        object_term: Term = obj if isinstance(obj, Literal) else B[obj]
        graph.add(Triple(B[subject], B[predicate], object_term))
    return graph


# ----------------------------------------------------------------------
# a tiny, spec-level property path evaluator (the expected-answer oracle)
# ----------------------------------------------------------------------
PathSpec = Tuple  # recursive tuples, e.g. ("seq", ("link","p"), ("inv", ("link","q")))


def _oracle_pairs(spec: PathSpec, graph: Graph) -> List[Tuple[Term, Term]]:
    """Pairs matched by a non-closure path expression (bag semantics)."""
    kind = spec[0]
    if kind == "link":
        return [(t.subject, t.object) for t in graph.triples(None, B[spec[1]], None)]
    if kind == "inv":
        return [(o, s) for s, o in _oracle_pairs(spec[1], graph)]
    if kind == "seq":
        left = _oracle_pairs(spec[1], graph)
        right = _oracle_pairs(spec[2], graph)
        return [(x, z) for x, y in left for y2, z in right if y == y2]
    if kind == "alt":
        return _oracle_pairs(spec[1], graph) + _oracle_pairs(spec[2], graph)
    if kind == "neg":
        forward, inverse = spec[1], spec[2]
        pairs: List[Tuple[Term, Term]] = []
        if forward or not inverse:
            forbidden = {B[p] for p in forward}
            pairs += [
                (t.subject, t.object) for t in graph if t.predicate not in forbidden
            ]
        if inverse:
            forbidden = {B[p] for p in inverse}
            pairs += [
                (t.object, t.subject) for t in graph if t.predicate not in forbidden
            ]
        return pairs
    if kind in ("zoo", "oom", "zom"):
        raise ValueError("closure paths need endpoint information; use _oracle_closure")
    raise ValueError(f"unknown path spec {spec!r}")


def _oracle_closure(
    spec: PathSpec, graph: Graph, subject_term: Optional[Term], object_term: Optional[Term]
) -> Set[Tuple[Term, Term]]:
    """Pairs matched by ?, + or * (set semantics, spec Section 18.4)."""
    kind, inner = spec[0], spec[1]
    single = set(_oracle_pairs(inner, graph)) if inner[0] not in ("zoo", "oom", "zom") else None
    if single is None:
        raise ValueError("nested closure operators are not used by the suite")

    nodes = graph.nodes()
    zero: Set[Tuple[Term, Term]] = {(node, node) for node in nodes}
    if subject_term is not None and object_term is None:
        zero.add((subject_term, subject_term))
    if object_term is not None and subject_term is None:
        zero.add((object_term, object_term))
    if subject_term is not None and object_term is not None and subject_term == object_term:
        zero.add((subject_term, subject_term))

    if kind == "zoo":
        return zero | single

    # transitive closure of the single-step pairs
    closure = set(single)
    changed = True
    while changed:
        changed = False
        additions = {
            (x, z)
            for x, y in closure
            for y2, z in single
            if y == y2 and (x, z) not in closure
        }
        if additions:
            closure |= additions
            changed = True
    if kind == "oom":
        return closure
    return closure | zero


def _spec_to_sparql(spec: PathSpec) -> str:
    """Render a path spec as SPARQL property-path syntax."""
    kind = spec[0]
    if kind == "link":
        return f"b:{spec[1]}"
    if kind == "inv":
        return f"^{_spec_to_sparql(spec[1])}"
    if kind == "seq":
        return f"({_spec_to_sparql(spec[1])}/{_spec_to_sparql(spec[2])})"
    if kind == "alt":
        return f"({_spec_to_sparql(spec[1])}|{_spec_to_sparql(spec[2])})"
    if kind == "zoo":
        return f"({_spec_to_sparql(spec[1])})?"
    if kind == "oom":
        return f"({_spec_to_sparql(spec[1])})+"
    if kind == "zom":
        return f"({_spec_to_sparql(spec[1])})*"
    if kind == "neg":
        parts = [f"b:{p}" for p in spec[1]] + [f"^b:{p}" for p in spec[2]]
        return f"!({'|'.join(parts)})"
    raise ValueError(f"unknown path spec {spec!r}")


@dataclass
class BeSEPPIQuery:
    """One compliance query with its expected answer.

    ``expected_rows`` is a multiset of result tuples aligned with
    ``variables`` (empty tuple rows for ASK queries are not used —
    ``expected_boolean`` carries the expectation instead).
    """

    query_id: str
    category: str
    text: str
    variables: Tuple[str, ...]
    expected_rows: Optional[Counter] = None
    expected_boolean: Optional[bool] = None


def _endpoint_term(name: Optional[str]) -> Optional[Term]:
    if name is None:
        return None
    return B[name]


def _build_query(
    query_id: str,
    category: str,
    spec: PathSpec,
    subject: Optional[str],
    obj: Optional[str],
    graph: Graph,
) -> BeSEPPIQuery:
    """Construct the SPARQL text and the expected answer for one query."""
    prefix = "PREFIX b: <http://beseppi.example.org/>\n"
    path_text = _spec_to_sparql(spec)
    subject_term = _endpoint_term(subject)
    object_term = _endpoint_term(obj)

    if spec[0] in ("zoo", "oom", "zom"):
        pairs: Iterable[Tuple[Term, Term]] = _oracle_closure(
            spec, graph, subject_term, object_term
        )
    else:
        pairs = _oracle_pairs(spec, graph)

    subject_text = f"b:{subject}" if subject is not None else "?x"
    object_text = f"b:{obj}" if obj is not None else "?y"

    if subject is None and obj is None:
        variables = ("x", "y")
        rows = Counter((x, y) for x, y in pairs)
        text = f"{prefix}SELECT ?x ?y WHERE {{ ?x {path_text} ?y }}"
        return BeSEPPIQuery(query_id, category, text, variables, expected_rows=rows)
    if subject is not None and obj is None:
        variables = ("y",)
        rows = Counter((y,) for x, y in pairs if x == subject_term)
        text = f"{prefix}SELECT ?y WHERE {{ {subject_text} {path_text} ?y }}"
        return BeSEPPIQuery(query_id, category, text, variables, expected_rows=rows)
    if subject is None and obj is not None:
        variables = ("x",)
        rows = Counter((x,) for x, y in pairs if y == object_term)
        text = f"{prefix}SELECT ?x WHERE {{ ?x {path_text} {object_text} }}"
        return BeSEPPIQuery(query_id, category, text, variables, expected_rows=rows)
    # Both endpoints bound: ASK query.
    expected = any(x == subject_term and y == object_term for x, y in pairs)
    text = f"{prefix}ASK WHERE {{ {subject_text} {path_text} {object_text} }}"
    return BeSEPPIQuery(query_id, category, text, (), expected_boolean=expected)


def _endpoint_configurations() -> List[Tuple[Optional[str], Optional[str]]]:
    """The endpoint configurations cycled through by every category."""
    return [
        (None, None),
        ("n1", None),
        ("n3", None),
        ("n5", None),
        (None, "n5"),
        (None, "n2"),
        ("n1", "n5"),
        ("n8", None),
        (OUTSIDE_NODE, None),
        (None, OUTSIDE_NODE),
        (OUTSIDE_NODE, OUTSIDE_NODE),
        ("n6", "n6"),
    ]


def _category_specs() -> Dict[str, List[PathSpec]]:
    """Path templates per category (cycled against endpoint configurations)."""
    link = lambda p: ("link", p)  # noqa: E731 - tiny local helper
    specs: Dict[str, List[PathSpec]] = {
        "Inverse": [
            ("inv", link("p")),
            ("inv", link("q")),
            ("inv", link("r")),
            ("inv", ("seq", link("p"), link("q"))),
            ("seq", ("inv", link("p")), link("q")),
        ],
        "Sequence": [
            ("seq", link("p"), link("q")),
            ("seq", link("q"), link("r")),
            ("seq", link("p"), link("p")),
            ("seq", ("seq", link("p"), link("q")), link("r")),
            ("seq", link("r"), ("inv", link("q"))),
        ],
        "Alternative": [
            ("alt", link("p"), link("q")),
            ("alt", link("q"), link("r")),
            ("alt", link("p"), ("inv", link("p"))),
            ("alt", ("seq", link("p"), link("q")), link("r")),
            ("alt", link("p"), link("p")),
        ],
        "Zero or One": [
            ("zoo", link("p")),
            ("zoo", link("q")),
            ("zoo", link("r")),
            ("zoo", ("alt", link("p"), link("q"))),
            ("zoo", ("seq", link("p"), link("q"))),
        ],
        "One or More": [
            ("oom", link("p")),
            ("oom", link("q")),
            ("oom", link("r")),
            ("oom", ("alt", link("p"), link("q"))),
            ("oom", ("seq", link("p"), link("q"))),
            ("oom", ("inv", link("p"))),
            ("oom", ("alt", link("q"), link("r"))),
        ],
        "Zero or More": [
            ("zom", link("p")),
            ("zom", link("q")),
            ("zom", link("r")),
            ("zom", ("alt", link("p"), link("q"))),
            ("zom", ("seq", link("p"), link("q"))),
            ("zom", ("inv", link("q"))),
            ("zom", ("alt", link("p"), link("r"))),
        ],
        "Negated": [
            ("neg", ("p",), ()),
            ("neg", ("q",), ()),
            ("neg", ("r",), ()),
            ("neg", ("p", "q"), ()),
            ("neg", ("p", "r"), ()),
            ("neg", ("q", "r"), ()),
            ("neg", ("p", "q", "r"), ()),
            ("neg", (), ("p",)),
            ("neg", (), ("q",)),
            ("neg", (), ("r",)),
            ("neg", ("p",), ("q",)),
            ("neg", ("q",), ("r",)),
            ("neg", ("p", "q"), ("r",)),
        ],
    }
    return specs


#: Per-category query counts matching the paper's Table 3.
CATEGORY_COUNTS: Dict[str, int] = {
    "Inverse": 20,
    "Sequence": 24,
    "Alternative": 23,
    "Zero or One": 24,
    "One or More": 34,
    "Zero or More": 38,
    "Negated": 73,
}


class BeSEPPIWorkload:
    """The full 236-query compliance suite with expected answers."""

    name = "BeSEPPI"

    def __init__(self, backend: Optional[str] = None) -> None:
        self._graph = beseppi_graph(backend)
        self._queries = self._build_queries()

    @property
    def graph(self) -> Graph:
        return self._graph

    def dataset(self) -> Dataset:
        return Dataset.from_graph(self._graph.copy())

    def queries(self) -> List[BeSEPPIQuery]:
        return list(self._queries)

    def queries_by_category(self) -> Dict[str, List[BeSEPPIQuery]]:
        grouped: Dict[str, List[BeSEPPIQuery]] = {}
        for query in self._queries:
            grouped.setdefault(query.category, []).append(query)
        return grouped

    def statistics(self) -> Dict[str, int]:
        return {
            "triples": len(self._graph),
            "predicates": len(self._graph.predicates()),
            "queries": len(self._queries),
        }

    def _build_queries(self) -> List[BeSEPPIQuery]:
        queries: List[BeSEPPIQuery] = []
        configurations = _endpoint_configurations()
        for category, specs in _category_specs().items():
            target = CATEGORY_COUNTS[category]
            # Configuration-major order so every path template of the
            # category is exercised even for the smaller families.
            combos = itertools.cycle(
                itertools.product(configurations, specs)
            )
            produced = 0
            seen: Set[Tuple] = set()
            while produced < target:
                (subject, obj), spec = next(combos)
                key = (spec, subject, obj)
                if key in seen:
                    # All distinct combinations exhausted: allow repeats with
                    # a different identifier (keeps counts faithful).
                    pass
                seen.add(key)
                produced += 1
                query_id = f"{category.replace(' ', '')}-{produced}"
                queries.append(
                    _build_query(query_id, category, spec, subject, obj, self._graph)
                )
        return queries
