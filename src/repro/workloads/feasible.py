"""FEASIBLE(S)-like workload: 77 diverse real-world-style queries.

FEASIBLE (Saleem et al. 2015) samples benchmark queries from real query
logs; the paper uses the variant generated from the Semantic Web Dog Food
(SWDF) log, reduced to 77 unique queries after stripping LIMIT / OFFSET
duplicates.  The suite's value is its *feature diversity*: heavy DISTINCT
(≈56 %), FILTER (≈27 %), OPTIONAL (≈32 %), UNION (≈34 %), GRAPH (10 %),
GROUP BY (25 %), plus ORDER BY with complex arguments, string functions
(UCASE, CONTAINS) and DATATYPE — the features the paper added to SparqLog
specifically to cover this benchmark.

This module generates an SWDF-flavoured dataset (conferences, papers,
people, talks, organisations, spread over a default and a named graph) and
77 queries instantiated from templates with that same feature mix.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.rdf.graph import Dataset, Graph
from repro.store import create_graph
from repro.rdf.namespace import Namespace
from repro.rdf.terms import IRI, Literal, XSD_INTEGER
from repro.workloads.sp2bench import BenchmarkQuery

SWDF = Namespace("http://data.semanticweb.org/")
SWC = Namespace("http://data.semanticweb.org/ns/swc/ontology#")
FOAF = Namespace("http://xmlns.com/foaf/0.1/")
DC = Namespace("http://purl.org/dc/elements/1.1/")
DCTERMS = Namespace("http://purl.org/dc/terms/")
RDF_NS = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
ICAL = Namespace("http://www.w3.org/2002/12/cal/ical#")

NAMED_GRAPH_IRI = IRI("http://data.semanticweb.org/graph/metadata")

_CONFERENCE_NAMES = ["ISWC", "ESWC", "WWW", "VLDB", "SIGMOD", "EDBT", "ICDE"]
_TOPICS = [
    "ontologies", "reasoning", "query processing", "knowledge graphs",
    "linked data", "provenance", "stream processing", "federation",
]


def generate_swdf_graph(
    n_people: int = 150,
    n_papers: int = 220,
    n_conferences: int = 14,
    n_organisations: int = 30,
    seed: int = 3,
    backend: Optional[str] = None,
) -> Dataset:
    """Generate the SWDF-like dataset (default graph + one named graph)."""
    rng = random.Random(seed)
    default = create_graph(backend)
    metadata = create_graph(backend)

    organisations = []
    for index in range(n_organisations):
        organisation = SWDF[f"organization/org{index}"]
        organisations.append(organisation)
        default.add_triple(organisation, RDF_NS.type, FOAF.Organization)
        default.add_triple(organisation, FOAF.name, Literal(f"Organisation {index}"))

    people = []
    for index in range(n_people):
        person = SWDF[f"person/person{index}"]
        people.append(person)
        default.add_triple(person, RDF_NS.type, FOAF.Person)
        default.add_triple(person, FOAF.name, Literal(f"Researcher {index}"))
        if rng.random() < 0.6:
            default.add_triple(person, FOAF.member, rng.choice(organisations))
        if rng.random() < 0.4:
            default.add_triple(
                person, FOAF.homepage, IRI(f"http://people.example.org/{index}")
            )
        metadata.add_triple(person, DCTERMS.modified, Literal(str(2005 + index % 15)))

    conferences = []
    for index in range(n_conferences):
        conference = SWDF[f"conference/conf{index}"]
        conferences.append(conference)
        name = _CONFERENCE_NAMES[index % len(_CONFERENCE_NAMES)]
        year = 2005 + index
        default.add_triple(conference, RDF_NS.type, SWC.ConferenceEvent)
        default.add_triple(conference, DC.title, Literal(f"{name} {year}"))
        default.add_triple(conference, ICAL.dtstart, Literal(str(year), XSD_INTEGER))

    for index in range(n_papers):
        paper = SWDF[f"paper/paper{index}"]
        default.add_triple(paper, RDF_NS.type, SWC.Paper)
        topic = rng.choice(_TOPICS)
        default.add_triple(paper, DC.title, Literal(f"A study of {topic} ({index})"))
        default.add_triple(paper, SWC.isPartOf, rng.choice(conferences))
        default.add_triple(paper, DCTERMS.issued, Literal(str(2005 + index % 15), XSD_INTEGER))
        for _ in range(1 + rng.randint(0, 2)):
            author = rng.choice(people)
            default.add_triple(paper, DC.creator, author)
            default.add_triple(author, FOAF.made, paper)
        if rng.random() < 0.3:
            default.add_triple(paper, SWC.hasTopic, Literal(topic))
        metadata.add_triple(paper, DCTERMS.source, Literal("swdf-dump"))

    return Dataset(default_graph=default, named_graphs={NAMED_GRAPH_IRI: metadata})


_PREFIXES = """PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX swc: <http://data.semanticweb.org/ns/swc/ontology#>
PREFIX dc: <http://purl.org/dc/elements/1.1/>
PREFIX dcterms: <http://purl.org/dc/terms/>
PREFIX ical: <http://www.w3.org/2002/12/cal/ical#>
"""


def feasible_queries(seed: int = 5) -> List[BenchmarkQuery]:
    """Generate the 77-query FEASIBLE(S)-like suite."""
    rng = random.Random(seed)
    queries: List[BenchmarkQuery] = []

    def add(body: str, *features: str) -> None:
        index = len(queries) + 1
        queries.append(
            BenchmarkQuery(f"feasible-{index}", _PREFIXES + body, tuple(features))
        )

    # 1–10: DISTINCT + FILTER over papers of specific years.
    for year in range(2005, 2015):
        add(
            f"""SELECT DISTINCT ?paper ?title
WHERE {{
  ?paper rdf:type swc:Paper .
  ?paper dc:title ?title .
  ?paper dcterms:issued ?year .
  FILTER (?year = {year})
}}""",
            "DISTINCT", "FILTER",
        )

    # 11–18: OPTIONAL author homepages.
    for index in range(8):
        add(
            f"""SELECT ?person ?name ?hp
WHERE {{
  ?person rdf:type foaf:Person .
  ?person foaf:name ?name .
  OPTIONAL {{ ?person foaf:homepage ?hp }}
  FILTER (CONTAINS(?name, "{index}"))
}}""",
            "OPTIONAL", "FILTER",
        )

    # 19–28: UNION of papers and people with a given keyword / regex.
    for topic in _TOPICS[:5]:
        add(
            f"""SELECT DISTINCT ?entity ?label
WHERE {{
  {{ ?entity rdf:type swc:Paper . ?entity dc:title ?label }}
  UNION
  {{ ?entity rdf:type foaf:Person . ?entity foaf:name ?label }}
  FILTER (REGEX(?label, "{topic.split()[0]}", "i"))
}}""",
            "DISTINCT", "UNION", "FILTER", "REGEX",
        )
        add(
            f"""SELECT ?entity
WHERE {{
  {{ ?entity swc:hasTopic "{topic}" }}
  UNION
  {{ ?entity dc:title ?t . FILTER (STRSTARTS(?t, "A study")) }}
}}""",
            "UNION", "FILTER",
        )

    # 29–36: GRAPH queries over the metadata named graph.
    for index in range(8):
        add(
            f"""SELECT ?s ?o
WHERE {{
  GRAPH <http://data.semanticweb.org/graph/metadata> {{
    ?s dcterms:modified ?o .
    FILTER (?o = "{2005 + index}")
  }}
}}""",
            "GRAPH", "FILTER",
        )

    # 37–46: ORDER BY with complex arguments, string functions, DATATYPE.
    for index in range(5):
        add(
            f"""SELECT ?paper ?title
WHERE {{
  ?paper rdf:type swc:Paper .
  ?paper dc:title ?title .
  OPTIONAL {{ ?paper swc:hasTopic ?topic }}
}}
ORDER BY DESC(BOUND(?topic)) ?title
LIMIT {10 + index}""",
            "OPTIONAL", "ORDER BY", "LIMIT",
        )
        add(
            f"""SELECT DISTINCT ?up
WHERE {{
  ?person foaf:name ?name .
  FILTER (STRLEN(?name) > {10 + index})
  FILTER (UCASE(?name) != ?name)
}}
ORDER BY ?up""",
            "DISTINCT", "FILTER", "ORDER BY",
        )

    # 47–56: GROUP BY / aggregates.
    for index in range(10):
        if index % 2 == 0:
            add(
                """SELECT ?conf (COUNT(?paper) AS ?papers)
WHERE {
  ?paper rdf:type swc:Paper .
  ?paper swc:isPartOf ?conf .
}
GROUP BY ?conf""",
                "GROUP BY",
            )
        else:
            add(
                f"""SELECT ?author (COUNT(?paper) AS ?works)
WHERE {{
  ?paper dc:creator ?author .
  ?paper dcterms:issued ?year .
  FILTER (?year >= {2005 + index})
}}
GROUP BY ?author""",
                "GROUP BY", "FILTER",
            )

    # 57–64: MINUS and negated patterns.
    for index in range(8):
        add(
            f"""SELECT DISTINCT ?person
WHERE {{
  ?person rdf:type foaf:Person .
  MINUS {{ ?person foaf:member ?org . FILTER(ISIRI(?org)) }}
  ?person foaf:name ?name .
  FILTER (CONTAINS(?name, "{index}"))
}}""",
            "DISTINCT", "MINUS", "FILTER",
        )

    # 65–72: ASK queries and DATATYPE checks.
    for index in range(4):
        add(
            f"""ASK WHERE {{
  ?paper dcterms:issued ?year .
  FILTER (?year = {2006 + index})
}}""",
            "ASK", "FILTER",
        )
        add(
            f"""SELECT ?paper
WHERE {{
  ?paper dcterms:issued ?year .
  FILTER (DATATYPE(?year) = <http://www.w3.org/2001/XMLSchema#integer>)
  FILTER (?year > {2008 + index})
}}""",
            "FILTER",
        )

    # 73–77: plain BGP star/chain queries of increasing size.
    for size in range(2, 7):
        lines = ["?paper rdf:type swc:Paper .", "?paper dc:title ?title ."]
        if size >= 3:
            lines.append("?paper dc:creator ?author .")
        if size >= 4:
            lines.append("?author foaf:name ?name .")
        if size >= 5:
            lines.append("?paper swc:isPartOf ?conf .")
        if size >= 6:
            lines.append("?conf dc:title ?confTitle .")
        body = "SELECT * WHERE {\n  " + "\n  ".join(lines) + "\n}"
        add(body, "BGP")

    assert len(queries) == 77, f"expected 77 queries, generated {len(queries)}"
    return queries


class FeasibleWorkload:
    """SWDF-like dataset plus the 77-query FEASIBLE(S) suite."""

    name = "FEASIBLE (S)"

    def __init__(
        self, scale: float = 1.0, seed: int = 3, backend: Optional[str] = None
    ) -> None:
        self.seed = seed
        self._dataset = generate_swdf_graph(
            n_people=max(20, int(150 * scale)),
            n_papers=max(25, int(220 * scale)),
            n_conferences=max(4, int(14 * scale)),
            n_organisations=max(5, int(30 * scale)),
            seed=seed,
            backend=backend,
        )
        self._queries = feasible_queries(seed=seed + 2)

    def dataset(self) -> Dataset:
        return self._dataset.copy()

    def queries(self) -> List[BenchmarkQuery]:
        return list(self._queries)

    def statistics(self) -> Dict[str, int]:
        graph = self._dataset.default_graph
        return {
            "triples": len(self._dataset),
            "predicates": len(graph.predicates()),
            "queries": len(self._queries),
        }
