"""gMark-like workload: schema-driven graphs and path-query workloads.

gMark (Bagan et al. 2017) generates graph instances from a schema (node
types, edge predicates, degree distributions) together with a workload of
*path queries* — conjunctions of property-path patterns, including the
recursive operators missing from every other SPARQL benchmark.  The paper
uses gMark's ``test`` and ``social`` demo scenarios (50 queries each) to
evaluate recursive-property-path performance (Figures 8 and 9, Tables
6–10).

This module reimplements the two scenarios as seeded synthetic generators:
the social scenario has 27 predicates over persons, posts, tags, cities
and universities; the test scenario has 4 predicates over a single node
type.  The query generator produces 50 SPARQL queries per scenario with a
controlled mix of recursive (``+``, ``*``, bounded repetition) and
non-recursive path expressions, bound and unbound endpoints — including
the two-variable recursive queries that separate the engines.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.rdf.graph import Dataset, Graph
from repro.store import create_graph
from repro.rdf.namespace import Namespace
from repro.rdf.terms import IRI
from repro.workloads.sp2bench import BenchmarkQuery

GMARK = Namespace("http://example.org/gMark/")


@dataclass
class EdgeSpec:
    """One predicate of the schema: source type, target type, fan-out."""

    predicate: str
    source_type: str
    target_type: str
    average_out_degree: float


@dataclass
class GMarkScenario:
    """A gMark scenario: node-type sizes plus edge specifications."""

    name: str
    node_counts: Dict[str, int]
    edges: List[EdgeSpec]
    query_count: int = 50

    def scaled(self, scale: float) -> "GMarkScenario":
        """Return a copy with node counts scaled by ``scale``."""
        return GMarkScenario(
            name=self.name,
            node_counts={
                node_type: max(5, int(count * scale))
                for node_type, count in self.node_counts.items()
            },
            edges=list(self.edges),
            query_count=self.query_count,
        )

    def predicates(self) -> List[str]:
        return [edge.predicate for edge in self.edges]


def social_scenario() -> GMarkScenario:
    """The social-network demo scenario (27 predicates)."""
    node_counts = {
        "Person": 600,
        "Post": 900,
        "Comment": 700,
        "Forum": 120,
        "Tag": 150,
        "City": 60,
        "Country": 25,
        "University": 40,
        "Company": 50,
    }
    edges = [
        EdgeSpec("knows", "Person", "Person", 4.0),
        EdgeSpec("follows", "Person", "Person", 3.0),
        EdgeSpec("likes", "Person", "Post", 3.0),
        EdgeSpec("created", "Person", "Post", 1.5),
        EdgeSpec("commented", "Person", "Comment", 1.2),
        EdgeSpec("replyOf", "Comment", "Post", 1.0),
        EdgeSpec("replyOfComment", "Comment", "Comment", 0.5),
        EdgeSpec("hasTag", "Post", "Tag", 1.5),
        EdgeSpec("hasTagComment", "Comment", "Tag", 0.7),
        EdgeSpec("subTagOf", "Tag", "Tag", 0.8),
        EdgeSpec("moderates", "Person", "Forum", 0.2),
        EdgeSpec("memberOf", "Person", "Forum", 2.0),
        EdgeSpec("containerOf", "Forum", "Post", 5.0),
        EdgeSpec("livesIn", "Person", "City", 1.0),
        EdgeSpec("partOf", "City", "Country", 1.0),
        EdgeSpec("studyAt", "Person", "University", 0.7),
        EdgeSpec("locatedIn", "University", "City", 1.0),
        EdgeSpec("worksAt", "Person", "Company", 0.9),
        EdgeSpec("companyIn", "Company", "Country", 1.0),
        EdgeSpec("friendOf", "Person", "Person", 2.0),
        EdgeSpec("influences", "Person", "Person", 1.0),
        EdgeSpec("mentions", "Post", "Person", 0.8),
        EdgeSpec("linksTo", "Post", "Post", 1.2),
        EdgeSpec("derivedFrom", "Post", "Post", 0.4),
        EdgeSpec("interestedIn", "Person", "Tag", 1.3),
        EdgeSpec("endorses", "Person", "Company", 0.4),
        EdgeSpec("travelsTo", "Person", "City", 0.6),
    ]
    return GMarkScenario("social", node_counts, edges)


def test_scenario() -> GMarkScenario:
    """The small test demo scenario (4 predicates over one node type)."""
    node_counts = {"Node": 800}
    edges = [
        EdgeSpec("p0", "Node", "Node", 2.5),
        EdgeSpec("p1", "Node", "Node", 2.0),
        EdgeSpec("p2", "Node", "Node", 1.5),
        EdgeSpec("p3", "Node", "Node", 1.0),
    ]
    return GMarkScenario("test", node_counts, edges)


def generate_gmark_graph(
    scenario: GMarkScenario, seed: int = 7, backend: Optional[str] = None
) -> Graph:
    """Materialise a graph instance of the scenario."""
    rng = random.Random(seed)
    graph = create_graph(backend)
    nodes: Dict[str, List[IRI]] = {}
    for node_type, count in scenario.node_counts.items():
        nodes[node_type] = [GMARK[f"{node_type}{index}"] for index in range(count)]
    for edge in scenario.edges:
        sources = nodes[edge.source_type]
        targets = nodes[edge.target_type]
        predicate = GMARK[edge.predicate]
        for source in sources:
            # Zipf-flavoured out-degree around the configured average.
            degree = rng.randint(0, max(1, int(edge.average_out_degree * 2)))
            for _ in range(degree):
                weight = rng.random()
                target = targets[int(weight * weight * (len(targets) - 1))]
                graph.add_triple(source, predicate, target)
    return graph


# ----------------------------------------------------------------------
# query generation
# ----------------------------------------------------------------------
def _random_path_expression(
    rng: random.Random, predicates: Sequence[str], recursive: bool
) -> str:
    """Build a property-path expression string over the given predicates."""

    def atom() -> str:
        predicate = rng.choice(predicates)
        prefixed = f"gmark:{predicate}"
        if rng.random() < 0.2:
            return f"^{prefixed}"
        return prefixed

    def simple() -> str:
        kind = rng.random()
        if kind < 0.45:
            return atom()
        if kind < 0.75:
            return f"({atom()}/{atom()})"
        return f"({atom()}|{atom()})"

    if not recursive:
        parts = [simple() for _ in range(rng.randint(1, 3))]
        return "/".join(parts)

    body = simple()
    modifier = rng.random()
    if modifier < 0.4:
        closed = f"({body})+"
    elif modifier < 0.7:
        closed = f"({body})*"
    elif modifier < 0.85:
        closed = f"({body})?"
    else:
        closed = f"({body}){{1,{rng.randint(2, 4)}}}"
    if rng.random() < 0.4:
        return f"{simple()}/{closed}"
    return closed


def generate_gmark_queries(
    scenario: GMarkScenario,
    graph: Graph,
    seed: int = 11,
    count: Optional[int] = None,
    recursive_only: bool = False,
) -> List[BenchmarkQuery]:
    """Generate the path-query workload for a scenario.

    Roughly half of the queries contain a recursive path operator, and a
    third of those leave both endpoints unbound (the case Virtuoso rejects
    and Fuseki struggles with).  ``recursive_only=True`` makes every query
    recursive — the slice the path-perf CI gate and the paper's Figures
    8/9 stress.
    """
    rng = random.Random(seed)
    count = count if count is not None else scenario.query_count
    prefix = "PREFIX gmark: <http://example.org/gMark/>\n"
    node_pool = sorted(graph.nodes(), key=lambda term: getattr(term, "value", str(term)))
    queries: List[BenchmarkQuery] = []
    for index in range(count):
        recursive = recursive_only or rng.random() < 0.55
        expression = _random_path_expression(rng, scenario.predicates(), recursive)
        endpoint_choice = rng.random()
        features: List[str] = ["PropertyPath"]
        if recursive:
            features.append("RecursivePath")
        if endpoint_choice < 0.4 and node_pool:
            source = rng.choice(node_pool)
            body = f"SELECT ?y WHERE {{ <{source.value}> {expression} ?y }}"
            features.append("BoundSubject")
        elif endpoint_choice < 0.6 and node_pool:
            target = rng.choice(node_pool)
            body = f"SELECT ?x WHERE {{ ?x {expression} <{target.value}> }}"
            features.append("BoundObject")
        else:
            body = f"SELECT ?x ?y WHERE {{ ?x {expression} ?y }}"
            features.append("TwoVariables")
        queries.append(
            BenchmarkQuery(f"{scenario.name}-{index}", prefix + body, tuple(features))
        )
    return queries


class GMarkWorkload:
    """A generated gMark scenario instance plus its query workload."""

    def __init__(
        self,
        scenario: Optional[GMarkScenario] = None,
        scale: float = 1.0,
        seed: int = 7,
        query_count: Optional[int] = None,
        backend: Optional[str] = None,
        recursive_only: bool = False,
    ) -> None:
        self.scenario = (scenario or social_scenario()).scaled(scale)
        self.seed = seed
        self.name = f"gMark-{self.scenario.name}"
        self._graph = generate_gmark_graph(self.scenario, seed=seed, backend=backend)
        self._queries = generate_gmark_queries(
            self.scenario,
            self._graph,
            seed=seed + 13,
            count=query_count,
            recursive_only=recursive_only,
        )

    @property
    def graph(self) -> Graph:
        return self._graph

    def dataset(self) -> Dataset:
        return Dataset.from_graph(self._graph.copy())

    def queries(self) -> List[BenchmarkQuery]:
        return list(self._queries)

    def statistics(self) -> Dict[str, int]:
        """Triple / predicate / query counts (Table 6)."""
        return {
            "triples": len(self._graph),
            "predicates": len(self._graph.predicates()),
            "queries": len(self._queries),
        }
