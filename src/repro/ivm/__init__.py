"""Incremental view maintenance (IVM) over the physical operator layer.

Z-set (weighted-multiset) deltas flow from the stores' change-capture
hooks through differentiated physical operators into continuously
maintained materialized views:

* :mod:`repro.ivm.zset` — the ±weighted-row primitives,
* :mod:`repro.ivm.delta` — differentiation of physical BGP plans
  (:func:`~repro.ivm.delta.differentiate`, :class:`~repro.ivm.delta.DeltaPipeline`),
* :mod:`repro.ivm.views` — :class:`~repro.ivm.views.MaterializedView` and
  the :class:`~repro.ivm.views.ViewRegistry` that feeds views from change
  capture.

The public entry point is the engine facade::

    from repro import create_engine, open_graph

    engine = create_engine(open_graph("data.nt", backend="encoded"))
    view = engine.materialize(
        "SELECT ?a ?c WHERE { ?a <p> ?b . ?b <p> ?c }"
    )
    view.on_change(lambda events: print(events))
    view.rows()   # always current, maintained in O(|change|)
"""

from repro.ivm.delta import (
    DeltaFilter,
    DeltaJoin,
    DeltaPipeline,
    DeltaProject,
    DeltaScan,
    DeltaStats,
    differentiate,
)
from repro.ivm.views import MaterializedView, ViewRegistry
from repro.ivm.zset import (
    ZSet,
    zset_add,
    zset_diff,
    zset_expand,
    zset_from_rows,
    zset_merge,
    zset_rows,
)

__all__ = [
    "DeltaFilter",
    "DeltaJoin",
    "DeltaPipeline",
    "DeltaProject",
    "DeltaScan",
    "DeltaStats",
    "MaterializedView",
    "ViewRegistry",
    "ZSet",
    "differentiate",
    "zset_add",
    "zset_diff",
    "zset_expand",
    "zset_from_rows",
    "zset_merge",
    "zset_rows",
]
