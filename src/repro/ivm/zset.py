"""Z-set primitives for incremental view maintenance.

A Z-set (DBSP's core abstraction; Budiu et al., PVLDB 2023) is a
collection with integer multiplicities: a plain ``dict`` mapping each
element to a non-zero weight.  Positive weights are (bag) multiplicity,
negative weights are retractions in a delta.  The helpers here keep one
invariant everywhere: a Z-set never stores a zero weight, so emptiness
checks and equality stay structural.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, TypeVar

Element = TypeVar("Element", bound=Hashable)

#: A Z-set over ``Element``: element -> non-zero integer weight.
ZSet = Dict[Element, int]


def zset_add(zset: ZSet, element: Element, weight: int) -> None:
    """Accumulate ``weight`` onto ``element``, dropping zeroed entries."""
    if not weight:
        return
    updated = zset.get(element, 0) + weight
    if updated:
        zset[element] = updated
    else:
        del zset[element]


def zset_merge(target: ZSet, delta: ZSet) -> None:
    """Add every weighted element of ``delta`` into ``target`` in place."""
    for element, weight in delta.items():
        zset_add(target, element, weight)


def zset_from_rows(rows: Iterable[Element]) -> ZSet:
    """Build a Z-set counting the multiplicity of each row in ``rows``."""
    zset: ZSet = {}
    for row in rows:
        zset[row] = zset.get(row, 0) + 1
    return zset


def zset_diff(new: ZSet, old: ZSet) -> ZSet:
    """Return ``new - old`` as a delta Z-set (empty when they agree)."""
    delta: ZSet = {}
    for element, weight in new.items():
        change = weight - old.get(element, 0)
        if change:
            delta[element] = change
    for element, weight in old.items():
        if element not in new:
            delta[element] = -weight
    return delta


def zset_expand(zset: ZSet) -> Iterator[Element]:
    """Yield each element ``weight`` times (weights must be positive)."""
    for element, weight in zset.items():
        for _ in range(weight):
            yield element


def zset_rows(zset: ZSet, distinct: bool = False) -> List[Element]:
    """Materialise the bag (or its support, with ``distinct=True``)."""
    if distinct:
        return list(zset)
    return list(zset_expand(zset))
