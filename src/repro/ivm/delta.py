"""Differentiated physical operators: O(|Δ|) maintenance of BGP views.

The physical layer (:mod:`repro.sparql.physical`) executes a BGP as a
``Project ∘ Filter? ∘ IndexNestedLoopJoin`` DAG over ``Scan`` leaves.
This module *differentiates* that DAG: :func:`differentiate` turns an
eligible :class:`~repro.sparql.physical.PhysicalPlan` into a
:class:`DeltaPipeline` whose :meth:`~DeltaPipeline.apply` consumes a
±1-weighted batch of triple changes and emits the exact Z-set of result
rows the change adds to / retracts from the view — without re-running
the query.

The maintenance rule is the classical join differentiation (counting
algorithm of Gupta/Mumick, the linear case of DBSP's bilinear-operator
rule).  For a batch ``[(t_1, w_1), …, (t_m, w_m)]`` applied to graph
``G_0`` (so ``G_k = G_{k-1} + w_k·t_k``), the delta of a join
``p_1 ⋈ … ⋈ p_n`` telescopes into one term per change and seed
position::

    ΔQ = Σ_k Σ_i  p_1(G_k) ⋈ … ⋈ p_{i-1}(G_k)
                  ⋈ w_k·δ_i(t_k)
                  ⋈ p_{i+1}(G_{k-1}) ⋈ … ⋈ p_n(G_{k-1})

The listener protocol delivers batches *after* the store mutated, so the
live graph is ``G_m`` and the intermediate states are virtual.  They are
reconstructed with a *corrections overlay*: a ``Triple -> ±1`` adjustment
dict holding the not-yet-processed suffix of the batch negated
(``G_k = G_m − Σ_{j>k} w_j·t_j``), consulted by :class:`DeltaScan` on
every probe.  Because change capture only fires on effective transitions,
presence under any overlay stays in ``{0, 1}``.

Plans containing a :class:`~repro.sparql.physical.LeapfrogJoin` or
:class:`~repro.sparql.physical.PathExpand` operator are not
differentiated — :func:`differentiate` returns ``None`` and the view
layer (:mod:`repro.ivm.views`) falls back to scoped re-evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.rdf.terms import Term, Triple, Variable
from repro.sparql import physical
from repro.sparql.expressions import Expression, satisfies
from repro.sparql.plan import match_triple
from repro.sparql.solutions import Binding, EMPTY_BINDING
from repro.ivm.zset import ZSet, zset_add

#: A corrections overlay: triple -> presence adjustment vs. the live graph
#: (+1 = treat as present although absent, -1 = treat as absent).
Overlay = Dict[Triple, int]

#: One change-capture batch, as delivered by the store listeners.
DeltaBatch = Sequence[Tuple[Triple, int]]

#: A view delta: result row (terms aligned with the projection) -> weight.
RowDelta = ZSet


def _unify(pattern: Triple, triple: Triple, binding: Binding) -> Optional[Binding]:
    """Extend ``binding`` so that ``pattern`` matches exactly ``triple``.

    Returns ``None`` when a constant or an already-bound (or repeated)
    variable disagrees with the corresponding component of ``triple``.
    """
    mapping: Dict[Variable, Term] = {}
    for pattern_part, triple_part in zip(pattern, triple):
        if isinstance(pattern_part, Variable):
            bound = binding.get(pattern_part)
            if bound is None:
                bound = mapping.get(pattern_part)
            if bound is None:
                mapping[pattern_part] = triple_part
            elif bound != triple_part:
                return None
        elif pattern_part != triple_part:
            return None
    return binding.merge(Binding(mapping)) if mapping else binding


def _ground(pattern: Triple, binding: Binding) -> Triple:
    """Substitute ``binding`` into ``pattern`` (every variable bound)."""
    return Triple(
        binding.get(pattern.subject)
        if isinstance(pattern.subject, Variable)
        else pattern.subject,
        binding.get(pattern.predicate)
        if isinstance(pattern.predicate, Variable)
        else pattern.predicate,
        binding.get(pattern.object)
        if isinstance(pattern.object, Variable)
        else pattern.object,
    )


@dataclass
class DeltaStats:
    """Counters of one pipeline's maintenance work since creation."""

    batches: int = 0
    changes: int = 0
    seed_matches: int = 0
    rows: int = 0


class DeltaFilter:
    """Differentiated ``Filter``: the same conjuncts, applied per delta row.

    Selections are linear operators, so the delta of a filter is the
    filter of the delta — the conditions simply run against each candidate
    binding of the differentiated join.
    """

    __slots__ = ("conditions",)

    def __init__(self, conditions: Tuple[Expression, ...]) -> None:
        self.conditions = conditions

    def accepts(self, binding: Binding) -> bool:
        return all(satisfies(condition, binding) for condition in self.conditions)


class DeltaScan:
    """Differentiated ``Scan``: pattern matching under a corrections overlay.

    Two roles, mirroring the two factor kinds of the maintenance rule:
    :meth:`seed` unifies the pattern against the changed triple itself
    (the ``δ_i`` factor), :meth:`matches` probes the live graph adjusted
    by an overlay to act as the virtual old/new state (the ``p_j``
    factors).
    """

    __slots__ = ("pattern", "filter")

    def __init__(self, pattern: Triple, delta_filter: Optional[DeltaFilter]) -> None:
        self.pattern = pattern
        self.filter = delta_filter

    def seed(self, triple: Triple, binding: Binding) -> Optional[Binding]:
        return _unify(self.pattern, triple, binding)

    def matches(
        self, graph, binding: Binding, overlay: Overlay
    ) -> Iterator[Binding]:
        if not overlay:
            yield from match_triple(graph, self.pattern, binding)
            return
        removed = {triple for triple, adjust in overlay.items() if adjust < 0}
        for extended in match_triple(graph, self.pattern, binding):
            if removed and _ground(self.pattern, extended) in removed:
                continue
            yield extended
        for triple, adjust in overlay.items():
            if adjust > 0:
                extended = _unify(self.pattern, triple, binding)
                if extended is not None:
                    yield extended


class DeltaProject:
    """Differentiated ``Project``: bindings to projection-aligned rows.

    Projection is linear too; weights of distinct bindings collapsing to
    one row accumulate in the output Z-set.
    """

    __slots__ = ("variables",)

    def __init__(self, variables: Tuple[Variable, ...]) -> None:
        self.variables = variables

    def row(self, binding: Binding) -> Tuple[Optional[Term], ...]:
        return tuple(binding.get(variable) for variable in self.variables)


class DeltaJoin:
    """Differentiated ``IndexNestedLoopJoin`` over :class:`DeltaScan` steps.

    For one change ``(t, w)`` the join emits, per seed position ``i``, the
    bindings of ``p_{<i}(new) ⋈ δ_i(t) ⋈ p_{>i}(old)``.  The overlay a
    factor sees is fixed by its *plan* position relative to the seed, but
    the *evaluation* order is not: joins commute, and walking the plan
    left-to-right would probe positions before the seed completely
    unbound — an O(|G|) scan per change.  Instead each seed gets a
    statically precomputed order: the seed binds first (O(1) unification
    against the changed triple), then the remaining steps greedily by
    how many of their components are already bound, with every FILTER
    conjunct re-anchored to the earliest point its variables are all
    bound.  Per-change work is then proportional to the bindings joined
    through the changed triple, not to the graph.
    """

    __slots__ = ("steps", "_plans")

    def __init__(self, steps: Sequence[DeltaScan]) -> None:
        self.steps = tuple(steps)
        self._plans = tuple(
            self._order_for(seed) for seed in range(len(self.steps))
        )

    @staticmethod
    def _pattern_variables(pattern: Triple) -> set:
        return {part for part in pattern if isinstance(part, Variable)}

    def _order_for(self, seed: int):
        """Static evaluation order for one seed position.

        Returns ``(seed_conditions, order)`` where ``order`` is a tuple
        of ``(plan_position, conditions)`` pairs: the position to probe
        next and the filter conjuncts that become fully bound there.
        """
        steps = self.steps
        pending = [
            (condition, condition.variables())
            for step in steps
            if step.filter is not None
            for condition in step.filter.conditions
        ]
        bound = set(self._pattern_variables(steps[seed].pattern))

        def take_ready() -> Tuple[Expression, ...]:
            ready = tuple(c for c, vs in pending if vs <= bound)
            pending[:] = [(c, vs) for c, vs in pending if not vs <= bound]
            return ready

        seed_conditions = take_ready()
        remaining = [i for i in range(len(steps)) if i != seed]
        order: List[Tuple[int, Tuple[Expression, ...]]] = []
        while remaining:

            def bound_components(position: int) -> Tuple[bool, int]:
                pattern = steps[position].pattern
                score = sum(
                    1
                    for part in pattern
                    if not isinstance(part, Variable) or part in bound
                )
                connected = bool(self._pattern_variables(pattern) & bound)
                return (connected, score)

            best = max(remaining, key=bound_components)
            remaining.remove(best)
            bound |= self._pattern_variables(steps[best].pattern)
            order.append((best, take_ready()))
        if pending:  # defensive: conjuncts with variables the BGP never binds
            leftovers = tuple(c for c, _ in pending)
            if order:
                position, conditions = order[-1]
                order[-1] = (position, conditions + leftovers)
            else:
                seed_conditions += leftovers
        return seed_conditions, tuple(order)

    def deltas(
        self,
        graph,
        triple: Triple,
        new_overlay: Overlay,
        old_overlay: Overlay,
        stats: DeltaStats,
    ) -> Iterator[Binding]:
        steps = self.steps

        for seed in range(len(steps)):
            seeded = steps[seed].seed(triple, EMPTY_BINDING)
            if seeded is None:
                continue
            seed_conditions, order = self._plans[seed]
            if not all(satisfies(c, seeded) for c in seed_conditions):
                continue
            stats.seed_matches += 1

            def expand(index: int, binding: Binding) -> Iterator[Binding]:
                if index == len(order):
                    yield binding
                    return
                position, conditions = order[index]
                step = steps[position]
                overlay = new_overlay if position < seed else old_overlay
                for extended in step.matches(graph, binding, overlay):
                    if conditions and not all(
                        satisfies(c, extended) for c in conditions
                    ):
                        continue
                    yield from expand(index + 1, extended)

            yield from expand(0, seeded)


class DeltaPipeline:
    """The differentiated form of one physical BGP plan.

    :meth:`apply` maps a change batch to the Z-set of projected result
    rows it adds (positive weights) and retracts (negative weights),
    touching only graph regions joined through the changed triples —
    O(|Δ|) for selective patterns, never a full re-evaluation.
    """

    def __init__(
        self,
        graph,
        join: DeltaJoin,
        project: DeltaProject,
        prefilters: Tuple[Expression, ...] = (),
    ) -> None:
        self.graph = graph
        self.join = join
        self.project = project
        self.stats = DeltaStats()
        # Variable-free conjuncts are constant: evaluate once.  A false
        # prefilter makes the view permanently empty, so every delta is ∅.
        self._live = all(satisfies(c, EMPTY_BINDING) for c in prefilters)

    def apply(self, batch: DeltaBatch) -> RowDelta:
        """Return the view delta (row -> ±weight) caused by ``batch``.

        The live graph must already reflect the whole batch (the store
        listeners guarantee this: they fire post-mutation).
        """
        stats = self.stats
        stats.batches += 1
        stats.changes += len(batch)
        if not self._live:
            return {}
        # corrections == live − G_0; adding back each change's weight as
        # it is processed walks the overlay forward through the virtual
        # states G_1 … G_m of the batch.
        corrections: Overlay = {}
        for triple, weight in batch:
            zset_add(corrections, triple, -weight)
        delta: RowDelta = {}
        graph = self.graph
        row_of = self.project.row
        for triple, weight in batch:
            zset_add(corrections, triple, weight)  # new side is now G_k
            old_overlay = dict(corrections)
            zset_add(old_overlay, triple, -weight)  # old side is G_{k-1}
            for binding in self.join.deltas(
                graph, triple, corrections, old_overlay, stats
            ):
                stats.rows += 1
                zset_add(delta, row_of(binding), weight)
        return delta


def differentiate(
    plan: physical.PhysicalPlan,
    graph,
    variables: Sequence[Variable],
) -> Optional[DeltaPipeline]:
    """Differentiate a lowered physical plan, or ``None`` if ineligible.

    Eligible plans are ``Project ∘ Filter? ∘ IndexNestedLoopJoin`` DAGs
    whose every input is a (possibly Filter-wrapped) triple ``Scan`` —
    the shape the lowering pass emits for acyclic all-triple BGPs.
    ``LeapfrogJoin`` plans (cyclic BGPs) and plans containing
    ``PathExpand`` (property paths) return ``None``; their views are
    maintained by scoped re-evaluation instead.  ``variables`` fixes the
    projection of the emitted row deltas.
    """
    root = plan.root
    child = root.child
    prefilters: Tuple[Expression, ...] = ()
    if isinstance(child, physical.Filter):
        prefilters = child.conditions
        child = child.child
    if not isinstance(child, physical.IndexNestedLoopJoin):
        return None
    steps: List[DeltaScan] = []
    for input_op in child.inputs:
        conditions: Tuple[Expression, ...] = ()
        leaf = input_op
        if isinstance(leaf, physical.Filter):
            conditions = leaf.conditions
            leaf = leaf.child
        if not isinstance(leaf, physical.Scan):
            return None
        steps.append(
            DeltaScan(
                leaf.node.triple,
                DeltaFilter(conditions) if conditions else None,
            )
        )
    return DeltaPipeline(
        graph,
        DeltaJoin(steps),
        DeltaProject(tuple(variables)),
        prefilters,
    )
