"""Materialized views with live change subscriptions.

:class:`ViewRegistry` turns SELECT queries into continuously-maintained
:class:`MaterializedView` objects.  The registry installs one
change-capture listener per watched graph (the hook added to
``Graph.add/remove`` and ``EncodedGraph``'s insert/remove paths) and
routes every ±1-weighted triple batch to the views over that graph:

* **Delta maintenance** — queries whose physical plan differentiates
  (acyclic all-triple BGPs plus FILTER, see :mod:`repro.ivm.delta`) are
  updated in O(|Δ|) through a :class:`~repro.ivm.delta.DeltaPipeline`.

* **Scoped re-evaluation** — every other supported query (property
  paths, UNION/OPTIONAL/MINUS, leapfrog plans, solution modifiers) falls
  back to re-running the query and diffing the result Z-set, *scoped* by
  a relevant-predicate gate: batches that touch none of the query's
  constant predicates are skipped without re-evaluating, and views with
  no subscribers defer the re-evaluation until the next read instead of
  paying it per mutation.

View state is a Z-set of projected result rows, so bag semantics and
multiplicities survive maintenance exactly; DISTINCT/REDUCED queries keep
full multiplicities internally (deletions need the counting algorithm)
and present the support.  Every view also self-heals: reads compare the
graph's version stamp against the last synchronised one and fall back to
a full refresh when they diverge, so a view can never silently serve
stale rows even across bulk loads that defer their version bump.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.rdf.graph import Dataset
from repro.rdf.terms import IRI, Term, Variable, term_sort_key
from repro.sparql.algebra import (
    BGP,
    Filter,
    GraphGraphPattern,
    GraphPatternNode,
    PathPattern,
    Query,
    SelectQuery,
    TriplePatternNode,
    walk,
)
from repro.sparql.expressions import Expression, conjuncts
from repro.sparql.parser import parse_query
from repro.sparql.solutions import SolutionSequence
from repro.ivm.delta import DeltaBatch, DeltaPipeline, RowDelta, differentiate
from repro.ivm.zset import ZSet, zset_diff, zset_expand, zset_from_rows, zset_merge

#: A view row: terms aligned with the view's projected variables.
Row = Tuple[Optional[Term], ...]

#: A change event delivered to subscribers: ``(row, weight)`` — for bag
#: views the multiplicity change, for DISTINCT views ±1 on support
#: transitions (row appeared / disappeared) only.
ChangeEvent = Tuple[Row, int]

ChangeCallback = Callable[[List[ChangeEvent]], None]


def _row_sort_key(row: Row):
    """Deterministic, ``None``-safe ordering of view rows."""
    return tuple(
        (0, ()) if term is None else (1, term_sort_key(term)) for term in row
    )


class MaterializedView:
    """A continuously-maintained query result over one graph.

    Views are created through :meth:`ViewRegistry.materialize` (or the
    engine facade's ``materialize``).  :meth:`rows` reads the current
    result, :meth:`on_change` subscribes to deltas, :meth:`close`
    detaches the view from change capture.
    """

    def __init__(
        self,
        registry: "ViewRegistry",
        query: SelectQuery,
        state_query: SelectQuery,
        graph,
        pipeline: Optional[DeltaPipeline],
        distinct: bool,
        relevant_predicates: Optional[Set[IRI]],
    ) -> None:
        self._registry = registry
        self.query = query
        self._state_query = state_query
        self.graph = graph
        self._pipeline = pipeline
        self.distinct = distinct
        self._relevant_predicates = relevant_predicates
        self.variables: Tuple[Variable, ...] = tuple(query.projected_variables())
        self.closed = False
        self._callbacks: List[ChangeCallback] = []
        self._state: ZSet = {}
        #: Graph version the state was last synchronised against; ``None``
        #: marks the state dirty (next read refreshes).
        self._synced_version: Optional[int] = None
        self.refresh()

    # -- introspection -------------------------------------------------
    @property
    def maintenance(self) -> str:
        """``"delta"`` (differentiated plan) or ``"reeval"`` (fallback)."""
        return "delta" if self._pipeline is not None else "reeval"

    @property
    def delta_stats(self):
        """Counters of the delta pipeline (``None`` for re-eval views)."""
        return self._pipeline.stats if self._pipeline is not None else None

    def __repr__(self) -> str:
        state = "closed" if self.closed else f"{len(self._state)} distinct rows"
        return f"MaterializedView({self.maintenance}, {state})"

    # -- reads ---------------------------------------------------------
    def rows(self, distinct: Optional[bool] = None) -> List[Row]:
        """Current result rows, deterministically sorted.

        Bag views return multiplicities; DISTINCT/REDUCED queries (or an
        explicit ``distinct=True``) return the support.  Reads self-heal:
        a version mismatch against the graph triggers a full refresh
        first, so a stale answer is impossible.
        """
        if self.closed:
            raise RuntimeError("view is closed")
        self._ensure_fresh()
        use_distinct = self.distinct if distinct is None else distinct
        if use_distinct:
            result = list(self._state)
        else:
            result = list(zset_expand(self._state))
        result.sort(key=_row_sort_key)
        return result

    def __len__(self) -> int:
        if self.closed:
            raise RuntimeError("view is closed")
        self._ensure_fresh()
        if self.distinct:
            return len(self._state)
        return sum(self._state.values())

    def _ensure_fresh(self) -> None:
        if self._synced_version != getattr(self.graph, "version", None):
            self.refresh()

    # -- subscriptions ---------------------------------------------------
    def on_change(self, callback: ChangeCallback) -> Callable[[], None]:
        """Subscribe ``callback`` to this view's deltas.

        The callback receives a non-empty list of ``(row, weight)``
        events after every mutation batch that changed the result (for
        DISTINCT views: only support transitions).  Returns an
        unsubscribe function.  Note that subscribing switches a re-eval
        view from read-time to mutation-time maintenance, since deltas
        must be observed eagerly.
        """
        if self.closed:
            raise RuntimeError("view is closed")
        self._callbacks.append(callback)

        def unsubscribe() -> None:
            try:
                self._callbacks.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Detach from change capture; further reads raise."""
        if not self.closed:
            self.closed = True
            self._callbacks.clear()
            self._registry._detach(self)

    # -- maintenance -----------------------------------------------------
    def refresh(self) -> None:
        """Re-evaluate the query and replace the state (diff-notifying)."""
        # Stamp before evaluating: a mutation racing the evaluation would
        # bump the version past this and force another (correct) refresh.
        self._synced_version = getattr(self.graph, "version", None)
        fresh = self._evaluate_state()
        delta = zset_diff(fresh, self._state)
        self._registry._refreshes.inc()
        if delta:
            self._commit(delta)

    def _evaluate_state(self) -> ZSet:
        evaluator = self._registry._state_evaluator(self.graph)
        result = evaluator.evaluate(self._state_query)
        assert isinstance(result, SolutionSequence)
        return zset_from_rows(tuple(row) for row in result.rows())

    def _apply_batch(self, batch: DeltaBatch) -> int:
        """Route one change-capture batch into the view. Returns |Δrows|."""
        if self.closed:
            return 0
        if self._pipeline is not None:
            delta = self._pipeline.apply(batch)
            self._synced_version = getattr(self.graph, "version", None)
            if delta:
                self._commit(delta)
            return len(delta)
        if self._relevant_predicates is not None and not any(
            triple.predicate in self._relevant_predicates for triple, _ in batch
        ):
            # The batch cannot affect the result: stay synchronised (but a
            # dirty view stays dirty) and skip the re-evaluation outright.
            self._registry._skipped.inc()
            if self._synced_version is not None:
                self._synced_version = getattr(self.graph, "version", None)
            return 0
        if self._callbacks:
            self.refresh()
        else:
            # No subscriber needs the delta now: defer the re-evaluation
            # to the next read instead of paying it per mutation.
            self._synced_version = None
        return 0

    def _commit(self, delta: RowDelta) -> None:
        events: List[ChangeEvent] = []
        if self.distinct:
            for row, weight in delta.items():
                before = self._state.get(row, 0)
                after = before + weight
                if before <= 0 < after:
                    events.append((row, 1))
                elif after <= 0 < before:
                    events.append((row, -1))
        else:
            events.extend(delta.items())
        zset_merge(self._state, delta)
        if events and self._callbacks:
            events.sort(key=lambda event: _row_sort_key(event[0]))
            for callback in list(self._callbacks):
                callback(events)


def _relevant_predicates(pattern: GraphPatternNode) -> Optional[Set[IRI]]:
    """Constant predicates a pattern can match, or ``None`` for "any".

    A triple whose predicate is outside this set cannot change any
    pattern match, so batches disjoint from it are skipped.  Variable
    predicates and property paths (whose link set is path-structure
    dependent) disable the gate.
    """
    predicates: Set[IRI] = set()
    for node in walk(pattern):
        if isinstance(node, TriplePatternNode):
            if isinstance(node.triple.predicate, Variable):
                return None
            predicates.add(node.triple.predicate)
        elif isinstance(node, PathPattern):
            return None
    return predicates


class ViewRegistry:
    """Creates materialized views and feeds them from change capture.

    One listener is installed per watched graph (on first view) and
    removed when the graph's last view closes, so an idle engine leaves
    no trace on its graphs.  All IVM metrics live on the evaluator's
    metrics registry: ``ivm_delta_batches_total``, ``ivm_delta_rows_total``,
    ``ivm_view_refreshes_total``, ``ivm_skipped_batches_total`` and the
    ``ivm_views_active`` gauge.
    """

    def __init__(self, evaluator, tracer=None) -> None:
        self.evaluator = evaluator
        self.tracer = tracer if tracer is not None else evaluator.tracer
        self._views: List[MaterializedView] = []
        #: id(graph) -> (graph, installed listener) for active listeners.
        self._listeners: Dict[int, Tuple[object, Callable]] = {}
        #: id(graph) -> evaluator for views watching a non-default graph.
        self._graph_evaluators: Dict[int, object] = {}
        registry = evaluator.metrics_registry
        self._batches = registry.counter(
            "ivm_delta_batches_total", "Change-capture batches routed to views"
        )
        self._delta_rows = registry.counter(
            "ivm_delta_rows_total", "Result-row deltas emitted by delta pipelines"
        )
        self._refreshes = registry.counter(
            "ivm_view_refreshes_total", "Full view re-evaluations (init + fallback)"
        )
        self._skipped = registry.counter(
            "ivm_skipped_batches_total",
            "Batches skipped by the relevant-predicate gate",
        )
        registry.gauge(
            "ivm_views_active",
            "Materialized views currently open",
            callback=lambda: len(self._views),
        )

    # -- view creation ---------------------------------------------------
    def materialize(
        self, query: Union[str, Query], graph=None
    ) -> MaterializedView:
        """Create a continuously-maintained view of a SELECT query.

        ``graph`` defaults to the evaluator's default graph and must
        support change capture (both store backends do).  Queries with
        FROM clauses or GRAPH patterns are rejected — change capture is
        per-graph, and those shapes read beyond the watched graph.
        """
        if isinstance(query, str):
            query = parse_query(query)
        if not isinstance(query, SelectQuery):
            raise ValueError(
                "only SELECT queries can be materialized "
                f"(got {type(query).__name__})"
            )
        if query.dataset_clauses:
            raise ValueError("queries with FROM clauses cannot be materialized")
        if any(
            isinstance(node, GraphGraphPattern) for node in walk(query.pattern)
        ):
            raise ValueError("queries with GRAPH patterns cannot be materialized")
        if graph is None:
            graph = self.evaluator.dataset.default_graph
        if not hasattr(graph, "add_change_listener"):
            raise TypeError(
                f"{type(graph).__name__} does not support change capture"
            )
        pipeline, state_query, distinct = self._build_maintenance(query, graph)
        relevant = (
            _relevant_predicates(query.pattern) if pipeline is None else None
        )
        view = MaterializedView(
            self, query, state_query, graph, pipeline, distinct, relevant
        )
        self._views.append(view)
        self._attach(graph)
        return view

    def _build_maintenance(
        self, query: SelectQuery, graph
    ) -> Tuple[Optional[DeltaPipeline], SelectQuery, bool]:
        """Choose delta vs. re-eval maintenance for ``query``.

        Delta eligibility: no solution modifiers beyond DISTINCT/REDUCED,
        plain-variable projection, and a pattern peeling (FILTER*) down
        to a plannable all-triple BGP whose lowered plan differentiates
        (acyclic → IndexNestedLoopJoin of Scans).  DISTINCT is handled by
        maintaining the un-DISTINCT state (multiplicities are required to
        know when a deletion empties a row) and presenting the support.
        """
        distinct = query.distinct or query.reduced
        if (
            query.order_by
            or query.limit is not None
            or query.offset
            or query.group_by
            or query.having is not None
            or query.has_aggregates()
            or any(item.expression is not None for item in query.projection)
        ):
            return None, query, False
        conditions: List[Expression] = []
        current: GraphPatternNode = query.pattern
        while isinstance(current, Filter):
            conditions.extend(conjuncts(current.condition))
            current = current.pattern
        if isinstance(current, (TriplePatternNode,)):
            current = BGP((current,))
        if not (
            isinstance(current, BGP)
            and current.patterns
            and all(isinstance(p, TriplePatternNode) for p in current.patterns)
        ):
            return None, query, False
        evaluator = self.evaluator
        if not evaluator.use_planner:
            return None, query, False
        plan = evaluator._lower_bgp(current, graph, tuple(conditions))
        pipeline = differentiate(plan, graph, query.projected_variables())
        if pipeline is None:
            return None, query, False
        state_query = (
            replace(query, distinct=False, reduced=False) if distinct else query
        )
        return pipeline, state_query, distinct

    def _state_evaluator(self, graph):
        """The evaluator that re-evaluates views watching ``graph``.

        Views on the default graph share the registry's evaluator (and
        its plan caches); a view over any other graph gets a dedicated
        evaluator with the same profile and tracer, so its state is
        always computed against the graph it actually watches.
        """
        if graph is self.evaluator.dataset.default_graph:
            return self.evaluator
        key = id(graph)
        cached = self._graph_evaluators.get(key)
        if cached is None or cached.dataset.default_graph is not graph:
            cached = type(self.evaluator)(
                Dataset.from_graph(graph),
                profile=self.evaluator.profile,
                tracer=self.evaluator.tracer,
            )
            self._graph_evaluators[key] = cached
        return cached

    # -- change capture --------------------------------------------------
    def _attach(self, graph) -> None:
        key = id(graph)
        if key in self._listeners:
            return

        def listener(batch: DeltaBatch) -> None:
            self._dispatch(graph, batch)

        graph.add_change_listener(listener)
        self._listeners[key] = (graph, listener)

    def _detach(self, view: MaterializedView) -> None:
        if view in self._views:
            self._views.remove(view)
        key = id(view.graph)
        if key in self._listeners and not any(
            other.graph is view.graph for other in self._views
        ):
            graph, listener = self._listeners.pop(key)
            graph.remove_change_listener(listener)
            self._graph_evaluators.pop(key, None)

    def _dispatch(self, graph, batch: DeltaBatch) -> None:
        self._batches.inc()
        tracer = self.tracer
        views = [view for view in self._views if view.graph is graph]
        if tracer is not None and tracer.enabled:
            with tracer.span(
                "ivm.apply", category="ivm", changes=len(batch), views=len(views)
            ) as span:
                rows = 0
                for view in views:
                    rows += view._apply_batch(batch)
                span.annotate(rows=rows)
        else:
            rows = 0
            for view in views:
                rows += view._apply_batch(batch)
        if rows:
            self._delta_rows.inc(rows)

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Close every view and remove all installed listeners."""
        for view in list(self._views):
            view.close()

    @property
    def views(self) -> List[MaterializedView]:
        """The currently-open views (snapshot list)."""
        return list(self._views)
