"""Experiment harness: timing, reporting and the per-table/figure drivers.

The experiment drivers live in :mod:`repro.harness.experiments`; import
that module directly (``from repro.harness import experiments``) — it is
not re-exported here to keep the package import graph acyclic (the
compliance runner uses :mod:`repro.harness.timing`, while the experiment
drivers use the compliance runner).
"""

from repro.harness.timing import TimeoutError_, call_with_timeout, time_call
from repro.harness.report import format_summary, format_table, format_timing_series

__all__ = [
    "TimeoutError_",
    "call_with_timeout",
    "format_summary",
    "format_table",
    "format_timing_series",
    "time_call",
]
