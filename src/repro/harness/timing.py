"""Timing utilities: wall-clock measurement and best-effort timeouts.

The paper runs every system with a 900-second timeout.  At laptop scale
the harness uses much smaller budgets, enforced with ``signal.setitimer``
when running on the main thread (the usual pytest / script case) and
falling back to unenforced execution otherwise.  Engines that support a
cooperative timeout (the SparqLog engine's Datalog evaluator) additionally
check their own deadline.
"""

from __future__ import annotations

import signal
import threading
import time
from typing import Callable, Tuple, TypeVar

T = TypeVar("T")


class TimeoutError_(RuntimeError):
    """Raised when a call exceeds its time budget."""


def _is_main_thread() -> bool:
    return threading.current_thread() is threading.main_thread()


def call_with_timeout(function: Callable[[], T], seconds: float) -> T:
    """Run ``function`` with a best-effort wall-clock timeout.

    On the main thread a SIGALRM-based interrupt is installed; elsewhere
    the function simply runs to completion (cooperative engine timeouts
    still apply).
    """
    if seconds is None or seconds <= 0 or not _is_main_thread() or not hasattr(signal, "SIGALRM"):
        return function()

    def _handler(signum, frame):  # pragma: no cover - signal plumbing
        raise TimeoutError_(f"evaluation exceeded {seconds:.1f}s")

    previous_handler = signal.signal(signal.SIGALRM, _handler)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        return function()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous_handler)


def time_call(
    function: Callable[[], T], tracer=None, label: str = "call"
) -> Tuple[T, float]:
    """Run ``function`` and return (result, elapsed_seconds).

    With a :class:`repro.obs.tracer.Tracer` attached the measurement is
    also recorded as a ``harness``-category span named ``label``, so
    harness-level timings and the evaluator's phase spans land in one
    trace.  The span is recorded post-hoc (``Tracer.event``) to keep the
    measured region free of tracer bookkeeping.
    """
    start = time.perf_counter()
    result = function()
    elapsed = time.perf_counter() - start
    if tracer is not None and tracer.enabled:
        tracer.event(label, category="harness", duration=elapsed)
    return result, elapsed
