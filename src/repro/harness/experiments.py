"""Experiment drivers: one function per table / figure of the paper.

Every driver returns a structured result object and can render itself as
text; the ``benchmarks/`` suite calls these functions with a small
:class:`ExperimentConfig` so that the full evaluation can be regenerated
with ``pytest benchmarks/ --benchmark-only`` in minutes, and the
``examples/`` scripts call them with larger scales for closer-to-paper
runs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines.interface import EngineError
from repro.baselines.native import NativeSparqlEngine
from repro.baselines.stardog_like import StardogLikeEngine
from repro.baselines.virtuoso_like import VirtuosoLikeEngine
from repro.compliance.compare import ComparisonOutcome
from repro.compliance.runner import ComplianceReport, ComplianceRunner
from repro.core.capabilities import FEATURE_TABLE
from repro.core.engine import SparqLogEngine
from repro.harness.report import format_table, format_timing_series
from repro.harness.timing import TimeoutError_, call_with_timeout, time_call
from repro.workloads.beseppi import BeSEPPIWorkload, CATEGORY_COUNTS
from repro.workloads.feasible import FeasibleWorkload
from repro.workloads.feature_analysis import (
    PAPER_TABLE2,
    TABLE2_COLUMNS,
    analyze_workload_features,
)
from repro.workloads.gmark import GMarkWorkload, social_scenario, test_scenario
from repro.workloads.ontology_bench import OntologyBenchmark
from repro.workloads.sp2bench import SP2BenchWorkload


@dataclass
class ExperimentConfig:
    """Knobs shared by all experiment drivers.

    ``scale`` shrinks the generated datasets relative to the paper's sizes;
    ``query_limit`` truncates query workloads (useful inside
    pytest-benchmark); ``timeout_seconds`` is the per-query budget standing
    in for the paper's 900 s timeout.
    """

    scale: float = 0.12
    query_limit: Optional[int] = None
    timeout_seconds: float = 10.0
    seed: int = 1
    #: Storage backend for the generated workload graphs (see
    #: :mod:`repro.store`): ``None`` (process default), "hash" or "encoded".
    backend: Optional[str] = None

    def limited(self, queries: Sequence) -> List:
        if self.query_limit is None:
            return list(queries)
        return list(queries)[: self.query_limit]


@dataclass
class PerformanceSeries:
    """Per-query execution times of several systems on one workload."""

    workload: str
    query_ids: List[str] = field(default_factory=list)
    times: Dict[str, List[Optional[float]]] = field(default_factory=dict)
    errors: Dict[str, List[Optional[str]]] = field(default_factory=dict)

    def failures(self, engine: str) -> int:
        return sum(1 for value in self.times.get(engine, []) if value is None)

    def completed(self, engine: str) -> int:
        return sum(1 for value in self.times.get(engine, []) if value is not None)

    def total_time(self, engine: str) -> float:
        return sum(value for value in self.times.get(engine, []) if value is not None)

    def render(self) -> str:
        return format_timing_series(
            self.query_ids, self.times, title=f"{self.workload} — per-query time"
        )


# ----------------------------------------------------------------------
# engine factories
# ----------------------------------------------------------------------
def default_engine_factories(
    timeout_seconds: float,
) -> Dict[str, Callable]:
    """Factories building a fresh engine over a dataset (reload per query)."""
    return {
        "SparqLog": lambda dataset: SparqLogEngine(
            dataset, timeout_seconds=timeout_seconds
        ),
        "Native": lambda dataset: NativeSparqlEngine(dataset),
        "VirtuosoLike": lambda dataset: VirtuosoLikeEngine(dataset),
    }


def _run_performance(
    workload_name: str,
    dataset_factory: Callable,
    queries: Sequence,
    engine_factories: Dict[str, Callable],
    config: ExperimentConfig,
) -> PerformanceSeries:
    """Time every query on every engine, reloading the dataset each time."""
    series = PerformanceSeries(workload=workload_name)
    series.query_ids = [query.query_id for query in queries]
    for engine_name in engine_factories:
        series.times[engine_name] = []
        series.errors[engine_name] = []
    for query in queries:
        for engine_name, factory in engine_factories.items():
            dataset = dataset_factory()
            engine = factory(dataset)

            def run_query():
                return engine.query(query.text)

            try:
                _, elapsed = time_call(
                    lambda: call_with_timeout(run_query, config.timeout_seconds)
                )
                series.times[engine_name].append(elapsed)
                series.errors[engine_name].append(None)
            except (EngineError, TimeoutError_, NotImplementedError, Exception) as error:
                series.times[engine_name].append(None)
                series.errors[engine_name].append(f"{type(error).__name__}: {error}")
    return series


# ----------------------------------------------------------------------
# Table 1 — SPARQL feature coverage of SparqLog
# ----------------------------------------------------------------------
def table1_feature_coverage() -> str:
    """Regenerate Table 1 from the capability registry."""
    rows = [
        (
            row.general_feature,
            row.specific_feature,
            row.usage or "",
            "yes" if row.supported else "no",
        )
        for row in FEATURE_TABLE
    ]
    return format_table(
        ["General Feature", "Specific Feature", "Feature Usage", "Supported"],
        rows,
        title="Table 1 — SPARQL feature coverage of SparqLog",
    )


# ----------------------------------------------------------------------
# Table 2 — feature coverage of SPARQL benchmarks
# ----------------------------------------------------------------------
def table2_benchmark_features(config: Optional[ExperimentConfig] = None) -> str:
    """Analyse the generated workloads and print them next to the paper's values."""
    config = config or ExperimentConfig()
    workloads = [
        (
            "SP2Bench",
            SP2BenchWorkload(
                scale=config.scale, seed=config.seed, backend=config.backend
            ).queries(),
        ),
        (
            "FEASIBLE (S)",
            FeasibleWorkload(
                scale=config.scale, seed=config.seed, backend=config.backend
            ).queries(),
        ),
        (
            "gMark Social",
            GMarkWorkload(
                social_scenario(), scale=config.scale, seed=config.seed,
                backend=config.backend,
            ).queries(),
        ),
        (
            "gMark Test",
            GMarkWorkload(
                test_scenario(), scale=config.scale, seed=config.seed,
                backend=config.backend,
            ).queries(),
        ),
    ]
    headers = ["Benchmark", "Queries"] + [abbrev for _, abbrev in TABLE2_COLUMNS]
    rows: List[List] = []
    for name, queries in workloads:
        profile = analyze_workload_features(name, queries)
        rows.append([name, profile.query_count] + profile.as_row())
    rows.append(["--- paper reference ---", ""] + [""] * len(TABLE2_COLUMNS))
    for name, values in PAPER_TABLE2.items():
        rows.append(
            [name, ""] + [values[abbrev] for _, abbrev in TABLE2_COLUMNS]
        )
    return format_table(
        headers, rows, title="Table 2 — feature coverage of SPARQL benchmarks"
    )


# ----------------------------------------------------------------------
# Table 3 — BeSEPPI compliance
# ----------------------------------------------------------------------
def table3_beseppi_compliance(
    config: Optional[ExperimentConfig] = None,
) -> Tuple[ComplianceReport, str]:
    """Run the BeSEPPI-like suite on the three engines and tabulate errors."""
    config = config or ExperimentConfig()
    workload = BeSEPPIWorkload(backend=config.backend)
    queries = config.limited(workload.queries())
    engines = [
        VirtuosoLikeEngine(workload.dataset()),
        NativeSparqlEngine(workload.dataset()),
        SparqLogEngine(workload.dataset(), timeout_seconds=config.timeout_seconds),
    ]
    runner = ComplianceRunner(engines, timeout_seconds=config.timeout_seconds)
    report = runner.run_with_expected("BeSEPPI", queries)

    categories = list(CATEGORY_COUNTS)
    headers = ["Expression"]
    for engine in engines:
        headers += [
            f"{engine.name} inc&cor",
            f"{engine.name} com&inc",
            f"{engine.name} inc&inc",
            f"{engine.name} error",
        ]
    headers.append("#Queries")
    rows: List[List] = []
    per_engine = {
        engine.name: report.outcome_counts_by_category(engine.name) for engine in engines
    }
    query_counts = Counter(query.category for query in queries)
    for category in categories:
        row: List = [category]
        for engine in engines:
            counts = per_engine[engine.name].get(category, Counter())
            row += [
                counts[ComparisonOutcome.INCOMPLETE_CORRECT],
                counts[ComparisonOutcome.COMPLETE_INCORRECT],
                counts[ComparisonOutcome.INCOMPLETE_INCORRECT],
                counts[ComparisonOutcome.ERROR],
            ]
        row.append(query_counts.get(category, 0))
        rows.append(row)
    totals: List = ["Total"]
    for engine in engines:
        counts = report.outcome_counts(engine.name)
        totals += [
            counts[ComparisonOutcome.INCOMPLETE_CORRECT],
            counts[ComparisonOutcome.COMPLETE_INCORRECT],
            counts[ComparisonOutcome.INCOMPLETE_INCORRECT],
            counts[ComparisonOutcome.ERROR],
        ]
    totals.append(sum(query_counts.values()))
    rows.append(totals)
    text = format_table(headers, rows, title="Table 3 — BeSEPPI compliance results")
    return report, text


# ----------------------------------------------------------------------
# Section 6.2 — FEASIBLE and SP2Bench compliance (majority voting)
# ----------------------------------------------------------------------
def feasible_sp2bench_compliance(
    config: Optional[ExperimentConfig] = None,
) -> Tuple[Dict[str, ComplianceReport], str]:
    """Compliance of the three engines on FEASIBLE(S) and SP2Bench."""
    config = config or ExperimentConfig()
    reports: Dict[str, ComplianceReport] = {}
    lines: List[str] = []
    for workload in (
        FeasibleWorkload(scale=config.scale, seed=config.seed, backend=config.backend),
        SP2BenchWorkload(scale=config.scale, seed=config.seed, backend=config.backend),
    ):
        dataset = workload.dataset()
        engines = [
            VirtuosoLikeEngine(dataset),
            NativeSparqlEngine(dataset),
            SparqLogEngine(dataset, timeout_seconds=config.timeout_seconds),
        ]
        runner = ComplianceRunner(engines, timeout_seconds=config.timeout_seconds)
        queries = config.limited(workload.queries())
        report = runner.run_with_majority_vote(workload.name, queries)
        reports[workload.name] = report
        headers = ["Engine", "correct", "incomplete", "incorrect", "both", "error"]
        rows = []
        for engine in engines:
            counts = report.outcome_counts(engine.name)
            rows.append(
                [
                    engine.name,
                    counts[ComparisonOutcome.CORRECT],
                    counts[ComparisonOutcome.INCOMPLETE_CORRECT],
                    counts[ComparisonOutcome.COMPLETE_INCORRECT],
                    counts[ComparisonOutcome.INCOMPLETE_INCORRECT],
                    counts[ComparisonOutcome.ERROR],
                ]
            )
        lines.append(
            format_table(
                headers,
                rows,
                title=f"Compliance on {workload.name} ({len(queries)} queries)",
            )
        )
    return reports, "\n\n".join(lines)


# ----------------------------------------------------------------------
# Figure 7 / Table 11 — SP2Bench performance
# ----------------------------------------------------------------------
def figure7_sp2bench_performance(
    config: Optional[ExperimentConfig] = None,
) -> PerformanceSeries:
    config = config or ExperimentConfig()
    workload = SP2BenchWorkload(
        scale=config.scale, seed=config.seed, backend=config.backend
    )
    queries = config.limited(workload.queries())
    return _run_performance(
        "SP2Bench (Figure 7)",
        workload.dataset,
        queries,
        default_engine_factories(config.timeout_seconds),
        config,
    )


# ----------------------------------------------------------------------
# Figures 8 / 9 and Tables 7–10 — gMark performance
# ----------------------------------------------------------------------
def figure8_gmark_social(
    config: Optional[ExperimentConfig] = None,
) -> PerformanceSeries:
    config = config or ExperimentConfig()
    workload = GMarkWorkload(
        social_scenario(), scale=config.scale, seed=config.seed,
        query_count=config.query_limit, backend=config.backend,
    )
    return _run_performance(
        "gMark Social (Figure 8)",
        workload.dataset,
        workload.queries(),
        default_engine_factories(config.timeout_seconds),
        config,
    )


def figure9_gmark_test(
    config: Optional[ExperimentConfig] = None,
) -> PerformanceSeries:
    config = config or ExperimentConfig()
    workload = GMarkWorkload(
        test_scenario(), scale=config.scale, seed=config.seed,
        query_count=config.query_limit, backend=config.backend,
    )
    return _run_performance(
        "gMark Test (Figure 9)",
        workload.dataset,
        workload.queries(),
        default_engine_factories(config.timeout_seconds),
        config,
    )


def table7_8_gmark_summary(series: PerformanceSeries) -> str:
    """Summarise a gMark run in the style of Tables 7 / 8."""
    headers = ["System", "#Answered", "#Time-outs / errors", "Total time [s]"]
    rows = []
    for engine_name in series.times:
        rows.append(
            [
                engine_name,
                series.completed(engine_name),
                series.failures(engine_name),
                round(series.total_time(engine_name), 2),
            ]
        )
    return format_table(headers, rows, title=f"Summary — {series.workload}")


# ----------------------------------------------------------------------
# Table 6 — benchmark statistics
# ----------------------------------------------------------------------
def table6_benchmark_statistics(config: Optional[ExperimentConfig] = None) -> str:
    config = config or ExperimentConfig()
    workloads = [
        GMarkWorkload(
            social_scenario(), scale=config.scale, seed=config.seed,
            backend=config.backend,
        ),
        GMarkWorkload(
            test_scenario(), scale=config.scale, seed=config.seed,
            backend=config.backend,
        ),
        SP2BenchWorkload(scale=config.scale, seed=config.seed, backend=config.backend),
    ]
    headers = ["Benchmark", "#Triples", "#Predicates", "#Queries"]
    rows = []
    for workload in workloads:
        statistics = workload.statistics()
        rows.append(
            [
                getattr(workload, "name", type(workload).__name__),
                statistics["triples"],
                statistics["predicates"],
                statistics["queries"],
            ]
        )
    return format_table(headers, rows, title="Table 6 — benchmark statistics")


# ----------------------------------------------------------------------
# Figure 10 — ontological reasoning performance
# ----------------------------------------------------------------------
def figure10_ontology(
    config: Optional[ExperimentConfig] = None,
) -> PerformanceSeries:
    config = config or ExperimentConfig()
    benchmark = OntologyBenchmark(
        scale=config.scale, seed=config.seed, backend=config.backend
    )
    queries = config.limited(benchmark.queries())
    engine_factories = {
        "SparqLog": lambda dataset: SparqLogEngine(
            dataset,
            ontology=benchmark.ontology,
            timeout_seconds=config.timeout_seconds,
        ),
        "StardogLike": lambda dataset: StardogLikeEngine(
            dataset, ontology=benchmark.ontology
        ),
    }
    return _run_performance(
        "SP2Bench + ontology (Figure 10)",
        benchmark.dataset,
        queries,
        engine_factories,
        config,
    )
