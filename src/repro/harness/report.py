"""Plain-text rendering of experiment tables and timing series.

The paper's figures are log-scale bar charts of per-query execution time;
the harness renders the same data as aligned text tables (one row per
query, one column per system) plus a compact log-scale bar so the shape of
the comparison is visible directly in the terminal or in CI logs.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def _format_cell(value: Cell) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    formatted_rows = [[_format_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in formatted_rows:
        for index, value in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(value))

    def render_row(values: Sequence[str]) -> str:
        cells = [
            value.ljust(widths[index]) if index < len(widths) else value
            for index, value in enumerate(values)
        ]
        return "| " + " | ".join(cells) + " |"

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("|" + "|".join("-" * (width + 2) for width in widths) + "|")
    for row in formatted_rows:
        lines.append(render_row(row))
    return "\n".join(lines)


def _log_bar(value: Optional[float], minimum: float = 1e-4, width: int = 24) -> str:
    """A log-scale bar: each character ≈ one third of a decade."""
    if value is None:
        return "TIMEOUT/ERROR"
    clamped = max(value, minimum)
    magnitude = math.log10(clamped / minimum)
    return "#" * max(1, min(width, int(round(magnitude * 3))))


def format_timing_series(
    query_ids: Sequence[str],
    series: Dict[str, Sequence[Optional[float]]],
    title: Optional[str] = None,
) -> str:
    """Render per-query execution times of several systems.

    ``series`` maps a system name to one value per query; ``None`` marks a
    timeout or error (rendered as such, like the missing bars of the
    paper's figures).
    """
    headers = ["query"] + [
        column
        for system in series
        for column in (f"{system} [s]", f"{system} (log)")
    ]
    rows: List[List[Cell]] = []
    for index, query_id in enumerate(query_ids):
        row: List[Cell] = [query_id]
        for system, values in series.items():
            value = values[index] if index < len(values) else None
            row.append(value)
            row.append(_log_bar(value))
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_summary(summary: Dict[str, Cell], title: Optional[str] = None) -> str:
    """Render a key/value summary block."""
    lines: List[str] = []
    if title:
        lines.append(title)
    width = max((len(key) for key in summary), default=0)
    for key, value in summary.items():
        lines.append(f"  {key.ljust(width)} : {_format_cell(value)}")
    return "\n".join(lines)
