"""The standard-compliant native engine (the "Jena Fuseki" role).

A thin wrapper around the reference algebra evaluator.  Its behaviour is
fully standard-compliant — the paper's compliance experiments find Fuseki
correct on every benchmark query — while its property-path evaluation
re-expands paths from each candidate start node, which is what makes it
slow on the recursive gMark workloads (Section 6.3).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.baselines.interface import EngineError, SparqlEngine
from repro.rdf.graph import Dataset
from repro.sparql.evaluator import EvaluationError, SparqlEvaluator
from repro.sparql.parser import SparqlSyntaxError, parse_query
from repro.sparql.solutions import SolutionSequence


class NativeSparqlEngine(SparqlEngine):
    """Directly evaluate the SPARQL algebra over the dataset."""

    name = "Native"

    def __init__(self, dataset: Dataset) -> None:
        super().__init__(dataset)

    def query(self, query_text: str) -> Union[SolutionSequence, bool]:
        try:
            parsed = parse_query(query_text)
        except SparqlSyntaxError as error:
            raise EngineError(f"parse error: {error}") from error
        evaluator = SparqlEvaluator(self.dataset)
        try:
            return evaluator.evaluate(parsed)
        except EvaluationError as error:
            raise EngineError(str(error)) from error
        except RecursionError as error:  # pragma: no cover - defensive
            raise EngineError("recursion limit exceeded") from error
