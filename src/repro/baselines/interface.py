"""Common interface of every SPARQL engine in the reproduction."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.rdf.graph import Dataset
from repro.sparql.solutions import SolutionSequence


class EngineError(RuntimeError):
    """Raised when an engine cannot evaluate a query.

    The compliance framework records this as the "Error" outcome category
    (Table 3 / the gMark result tables), so engines signal unsupported
    features, timeouts and internal failures uniformly through it.
    """


@dataclass
class QueryOutcome:
    """The outcome of running one query on one engine.

    Exactly one of ``result`` / ``boolean`` / ``error`` is populated.
    ``elapsed_seconds`` is the wall-clock evaluation time (query only).
    """

    engine: str
    query_id: str
    result: Optional[SolutionSequence] = None
    boolean: Optional[bool] = None
    error: Optional[str] = None
    elapsed_seconds: float = 0.0
    timed_out: bool = False

    @property
    def failed(self) -> bool:
        return self.error is not None


class SparqlEngine:
    """Abstract engine: evaluate SPARQL queries over an RDF dataset."""

    #: Human-readable engine name used in reports.
    name = "abstract"

    def __init__(self, dataset: Dataset) -> None:
        self.dataset = dataset

    def query(self, query_text: str) -> Union[SolutionSequence, bool]:
        """Evaluate a SPARQL query string.

        Returns a :class:`SolutionSequence` for SELECT queries or a boolean
        for ASK queries.  Raises :class:`EngineError` when the engine cannot
        evaluate the query.
        """
        raise NotImplementedError

    def load(self, dataset: Dataset) -> None:
        """Replace the engine's dataset (used by the reload-per-query harness)."""
        self.dataset = dataset
