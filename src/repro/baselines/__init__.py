"""Baseline SPARQL engines used in the compliance and performance studies.

The paper compares SparqLog against Apache Jena Fuseki, OpenLink Virtuoso
and Stardog.  Those systems are closed or impractical to embed here, so
the reproduction implements one engine per *behavioural profile* the paper
reports:

* :class:`NativeSparqlEngine` — a fully standard-compliant direct
  evaluator (the Fuseki role),
* :class:`VirtuosoLikeEngine` — a relational-style engine that reproduces
  the documented non-standard behaviours of Virtuoso on property paths,
  DISTINCT and UNION duplicates,
* :class:`StardogLikeEngine` — an ontology-materialising engine whose
  property-path evaluation searches per start node (the Stardog role in
  the Figure 10 experiment).

All engines implement :class:`SparqlEngine` so the compliance framework
and the benchmark harness can drive them interchangeably.
"""

from repro.baselines.interface import EngineError, QueryOutcome, SparqlEngine
from repro.baselines.native import NativeSparqlEngine
from repro.baselines.virtuoso_like import VirtuosoLikeEngine
from repro.baselines.stardog_like import StardogLikeEngine

__all__ = [
    "EngineError",
    "NativeSparqlEngine",
    "QueryOutcome",
    "SparqlEngine",
    "StardogLikeEngine",
    "VirtuosoLikeEngine",
]
