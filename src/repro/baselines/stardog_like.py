"""An ontology-aware baseline playing the Stardog role (Figure 10).

Stardog answers SPARQL queries under ontologies.  The reproduction models
it as *materialisation followed by native evaluation*: the ontology
closure (subclass, subproperty, domain, range) is computed up front over
the dataset and the query is evaluated by the standard algebra evaluator.

Because the underlying evaluator expands recursive property paths per
start node, the engine shows the behaviour the paper reports for Stardog:
competitive on ordinary queries, but much slower than SparqLog — up to a
timeout — on recursive property-path queries with two variables, where
SparqLog's single semi-naive transitive-closure fixpoint wins.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.baselines.interface import EngineError, SparqlEngine
from repro.core.ontology import Ontology
from repro.rdf.graph import Dataset
from repro.sparql.evaluator import EvaluationError, SparqlEvaluator
from repro.sparql.parser import SparqlSyntaxError, parse_query
from repro.sparql.solutions import SolutionSequence


class StardogLikeEngine(SparqlEngine):
    """Materialise the ontology, then evaluate queries natively."""

    name = "StardogLike"

    def __init__(self, dataset: Dataset, ontology: Optional[Ontology] = None) -> None:
        super().__init__(dataset)
        self.ontology = ontology or Ontology()
        self._materialized: Optional[Dataset] = None

    def load(self, dataset: Dataset) -> None:
        super().load(dataset)
        self._materialized = None

    def _materialized_dataset(self) -> Dataset:
        if self._materialized is None:
            default = self.ontology.materialize(self.dataset.default_graph)
            named = {
                name: self.ontology.materialize(graph)
                for name, graph in self.dataset.named_graphs.items()
            }
            self._materialized = Dataset(default, named)
        return self._materialized

    def query(self, query_text: str) -> Union[SolutionSequence, bool]:
        try:
            parsed = parse_query(query_text)
        except SparqlSyntaxError as error:
            raise EngineError(f"parse error: {error}") from error
        evaluator = SparqlEvaluator(self._materialized_dataset())
        try:
            return evaluator.evaluate(parsed)
        except EvaluationError as error:
            raise EngineError(str(error)) from error
