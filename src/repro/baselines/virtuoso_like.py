"""A baseline reproducing Virtuoso's documented non-standard behaviours.

The paper's compliance study (Section 6.2, Table 3; Appendix D.2.3) and
the BeSEPPI paper it builds on attribute the following deviations to
OpenLink Virtuoso:

* recursive property paths (``?``, ``+``, ``*``) with **two variable
  endpoints** are rejected with a "transitive start not given" error —
  the feature was apparently left out because the relational backend would
  need huge joins;
* ``+`` (one-or-more) paths over cyclic data can miss the start node,
  suggesting the implementation computes ``*`` and removes the start node;
* alternative property paths drop duplicate solutions;
* some queries mishandle duplicates around DISTINCT / UNION (FEASIBLE
  findings: wrongly emitting or omitting duplicates).

This engine wraps the standard-compliant evaluator and then *re-applies*
those deviations, so the compliance experiments regenerate the paper's
error taxonomy from an explicit, documented failure model rather than
from hard-coded result tables.
"""

from __future__ import annotations

from typing import List, Union

from repro.baselines.interface import EngineError, SparqlEngine
from repro.rdf.graph import Dataset
from repro.rdf.terms import Variable
from repro.sparql.algebra import PathPattern, Query, SelectQuery, walk
from repro.sparql.evaluator import EvaluationError, SparqlEvaluator
from repro.sparql.parser import SparqlSyntaxError, parse_query
from repro.sparql.paths import (
    AlternativePath,
    OneOrMorePath,
    PropertyPath,
    ZeroOrMorePath,
    ZeroOrOnePath,
)
from repro.sparql.solutions import Binding, SolutionSequence


def _contains_recursive_modifier(path: PropertyPath) -> bool:
    """Does the path contain ?, + or * anywhere?"""
    stack = [path]
    while stack:
        current = stack.pop()
        if isinstance(current, (OneOrMorePath, ZeroOrMorePath, ZeroOrOnePath)):
            return True
        for attribute in ("path", "left", "right"):
            child = getattr(current, attribute, None)
            if child is not None:
                stack.append(child)
    return False


def _contains_alternative(path: PropertyPath) -> bool:
    stack = [path]
    while stack:
        current = stack.pop()
        if isinstance(current, AlternativePath):
            return True
        for attribute in ("path", "left", "right"):
            child = getattr(current, attribute, None)
            if child is not None:
                stack.append(child)
    return False


class VirtuosoLikeEngine(SparqlEngine):
    """Standard evaluator plus Virtuoso's documented deviations."""

    name = "VirtuosoLike"

    def query(self, query_text: str) -> Union[SolutionSequence, bool]:
        try:
            parsed = parse_query(query_text)
        except SparqlSyntaxError as error:
            raise EngineError(f"parse error: {error}") from error

        path_nodes: List[PathPattern] = [
            node for node in walk(self._pattern_of(parsed)) if isinstance(node, PathPattern)
        ]
        # Deviation 1: recursive paths with two variable endpoints error out.
        for node in path_nodes:
            if (
                _contains_recursive_modifier(node.path)
                and isinstance(node.subject, Variable)
                and isinstance(node.object, Variable)
            ):
                raise EngineError(
                    "Virtuoso 22023 Error TR...: transitive start not given"
                )

        evaluator = SparqlEvaluator(self.dataset)
        try:
            result = evaluator.evaluate(parsed)
        except EvaluationError as error:
            raise EngineError(str(error)) from error
        if isinstance(result, bool):
            return result

        # Deviation 2: one-or-more paths may drop the start node on cycles.
        for node in path_nodes:
            if isinstance(node.path, OneOrMorePath):
                result = self._drop_cyclic_start_nodes(result, node)
        # Deviation 3: alternative paths lose duplicate solutions.
        if any(_contains_alternative(node.path) for node in path_nodes):
            result = result.distinct()
        # Deviation 4: duplicate mishandling around UNION in non-DISTINCT
        # queries (the FEASIBLE finding of omitted duplicates).
        if isinstance(parsed, SelectQuery) and not parsed.distinct:
            from repro.sparql.algebra import Union as UnionNode

            if any(isinstance(node, UnionNode) for node in walk(parsed.pattern)):
                result = result.distinct()
        return result

    @staticmethod
    def _pattern_of(query: Query):
        return query.pattern  # SelectQuery and AskQuery both expose .pattern

    def _drop_cyclic_start_nodes(
        self, result: SolutionSequence, node: PathPattern
    ) -> SolutionSequence:
        """Remove (x, x) rows of ``+`` paths — the cycle start-node bug."""
        subject, obj = node.subject, node.object
        if not isinstance(subject, Variable) or isinstance(obj, Variable):
            # The error shows up in the bound-object / bound-subject cases too,
            # but only when subject equals object; handled below generically.
            pass
        kept: List[Binding] = []
        for binding in result.bindings:
            subject_value = (
                binding.get(subject) if isinstance(subject, Variable) else subject
            )
            object_value = binding.get(obj) if isinstance(obj, Variable) else obj
            if subject_value is not None and subject_value == object_value:
                continue
            kept.append(binding)
        return SolutionSequence(result.variables, kept)
