"""Property paths: recursive reachability queries over a country graph.

Reproduces the running example of Section 4.2 of the paper (which
countries are reachable from Spain?) and demonstrates every property-path
constructor, cross-checking SparqLog against the standard-compliant native
evaluator and showing the non-standard behaviour of the Virtuoso-like
baseline.

Run with:  python examples/property_paths.py
"""

from repro import (
    Dataset,
    NativeSparqlEngine,
    SparqLogEngine,
    VirtuosoLikeEngine,
    parse_turtle,
)
from repro.baselines.interface import EngineError

TURTLE_DATA = """
@prefix ex: <http://ex.org/> .

ex:spain   ex:borders ex:france .
ex:france  ex:borders ex:belgium .
ex:france  ex:borders ex:germany .
ex:belgium ex:borders ex:germany .
ex:germany ex:borders ex:austria .
ex:austria ex:borders ex:italy .
ex:italy   ex:borders ex:france .
"""

PREFIX = "PREFIX ex: <http://ex.org/>\n"

QUERIES = {
    "one-or-more (+) from Spain": "SELECT ?B WHERE { ex:spain ex:borders+ ?B }",
    "zero-or-more (*) from Spain": "SELECT ?B WHERE { ex:spain ex:borders* ?B }",
    "zero-or-one (?) from Spain": "SELECT ?B WHERE { ex:spain ex:borders? ?B }",
    "inverse (^) into Germany": "SELECT ?A WHERE { ?A ^ex:borders ex:germany }",
    "sequence (/) two hops": "SELECT ?B WHERE { ex:spain ex:borders/ex:borders ?B }",
    "bounded repetition {2,3}": "SELECT ?B WHERE { ex:spain ex:borders{2,3} ?B }",
    "negated property set": "SELECT ?A ?B WHERE { ?A !(ex:nothing) ?B } LIMIT 3",
    "two-variable transitive closure": "SELECT DISTINCT ?A ?B WHERE { ?A ex:borders+ ?B }",
}


def short(term) -> str:
    value = getattr(term, "value", str(term))
    return value.rsplit("/", 1)[-1]


def main() -> None:
    dataset = Dataset.from_graph(parse_turtle(TURTLE_DATA))
    sparqlog = SparqLogEngine(dataset)
    native = NativeSparqlEngine(dataset)
    virtuoso = VirtuosoLikeEngine(dataset)

    for title, body in QUERIES.items():
        query = PREFIX + body
        print(f"=== {title} ===")
        result = sparqlog.query(query)
        rows = sorted(tuple(short(t) if t else "-" for t in row) for row in result.rows())
        print(f"  SparqLog       : {rows}")
        reference = native.query(query)
        agree = result.counter() == reference.counter()
        print(f"  Native (Fuseki-like) agrees: {agree}")
        try:
            virtuoso_result = virtuoso.query(query)
            deviation = "" if virtuoso_result.counter() == reference.counter() else "  (deviates!)"
            print(f"  Virtuoso-like  : {len(virtuoso_result)} rows{deviation}")
        except EngineError as error:
            print(f"  Virtuoso-like  : ERROR — {error}")
        print()


if __name__ == "__main__":
    main()
